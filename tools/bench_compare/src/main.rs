//! CI perf ratchet over the experiment suite's JSON telemetry.
//!
//! Reads every `BENCH_<experiment>.json` in a directory (optionally
//! producing them first by running the driver) and compares each
//! experiment against a committed baseline:
//!
//! - **`total_events` must match exactly** — the sweeps are seeded and
//!   bit-deterministic, so any drift means a semantic change to the
//!   simulation and fails the check (refresh intentionally with
//!   `--update`);
//! - **`total_wall_secs` may only regress so far** — a current wall time
//!   more than `--warn-wall-pct` percent above the baseline prints a
//!   warning (never fails: CI machines are too noisy for a hard gate).
//!
//! ```text
//! bench_compare --dir out/ --baseline tools/bench_compare/baseline.tsv
//!               [--update] [--warn-wall-pct 50] [--run]
//! ```
//!
//! The baseline is a three-column TSV (`experiment  total_events
//! wall_secs`) so diffs stay reviewable. `--run` invokes
//! `cargo run --release -p aitf-bench --bin all_experiments -- --quick
//! --json <dir>` first, which is what CI does in one step.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One experiment's comparable numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Measure {
    total_events: u64,
    wall_secs: f64,
}

/// Finds the first `"key"` in `doc` and returns the raw token after the
/// colon (up to `,`, `}` or newline). The emitter writes document-level
/// fields before the `records` array, so the first occurrence is the
/// sweep-level one.
fn json_field<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = &doc[at + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Extracts `(experiment, measure)` from one BENCH document.
fn parse_bench(doc: &str) -> Result<(String, Measure), String> {
    let experiment = json_field(doc, "experiment")
        .ok_or("missing \"experiment\"")?
        .trim_matches('"')
        .to_string();
    let total_events: u64 = json_field(doc, "total_events")
        .ok_or("missing \"total_events\"")?
        .parse()
        .map_err(|e| format!("bad total_events: {e}"))?;
    let wall_secs: f64 = json_field(doc, "total_wall_secs")
        .ok_or("missing \"total_wall_secs\"")?
        .parse()
        .unwrap_or(f64::NAN);
    Ok((
        experiment,
        Measure {
            total_events,
            wall_secs,
        },
    ))
}

/// Parses the committed baseline TSV.
fn parse_baseline(text: &str) -> Result<BTreeMap<String, Measure>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split('\t');
        let (Some(exp), Some(events), Some(wall)) = (cols.next(), cols.next(), cols.next()) else {
            return Err(format!(
                "line {}: expected 3 tab-separated columns",
                lineno + 1
            ));
        };
        let measure = Measure {
            total_events: events
                .parse()
                .map_err(|e| format!("line {}: {e}", lineno + 1))?,
            wall_secs: wall.parse().unwrap_or(f64::NAN),
        };
        out.insert(exp.to_string(), measure);
    }
    Ok(out)
}

fn render_baseline(measures: &BTreeMap<String, Measure>) -> String {
    let mut out = String::from(
        "# bench_compare baseline: all_experiments --quick --json (base seed 42)\n\
         # experiment\ttotal_events\twall_secs\n",
    );
    for (exp, m) in measures {
        out.push_str(&format!("{exp}\t{}\t{:.3}\n", m.total_events, m.wall_secs));
    }
    out
}

/// Compares current measures against the baseline. Returns
/// `(failures, warnings)` as printable messages.
fn compare(
    baseline: &BTreeMap<String, Measure>,
    current: &BTreeMap<String, Measure>,
    warn_wall_pct: f64,
) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    for (exp, cur) in current {
        match baseline.get(exp) {
            None => failures.push(format!(
                "{exp}: not in baseline (new experiment? refresh with --update)"
            )),
            Some(base) => {
                if base.total_events != cur.total_events {
                    failures.push(format!(
                        "{exp}: total_events drifted {} -> {} (determinism break, \
                         or an intended change needing --update)",
                        base.total_events, cur.total_events
                    ));
                }
                // Sub-50ms sweeps are pure scheduler noise; only meaningful
                // walls participate in the regression warning.
                const WALL_FLOOR_SECS: f64 = 0.05;
                let limit = base.wall_secs * (1.0 + warn_wall_pct / 100.0);
                if base.wall_secs.is_finite()
                    && base.wall_secs >= WALL_FLOOR_SECS
                    && cur.wall_secs.is_finite()
                    && cur.wall_secs > limit
                {
                    warnings.push(format!(
                        "{exp}: wall time {:.3}s exceeds baseline {:.3}s by more than {}%",
                        cur.wall_secs, base.wall_secs, warn_wall_pct
                    ));
                }
            }
        }
    }
    for exp in baseline.keys() {
        if !current.contains_key(exp) {
            failures.push(format!("{exp}: in baseline but produced no BENCH json"));
        }
    }
    (failures, warnings)
}

fn load_dir(dir: &Path) -> Result<BTreeMap<String, Measure>, String> {
    let mut out = BTreeMap::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let doc = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let (exp, m) = parse_bench(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
        out.insert(exp, m);
    }
    if out.is_empty() {
        return Err(format!("no BENCH_*.json files under {}", dir.display()));
    }
    Ok(out)
}

struct Args {
    dir: PathBuf,
    baseline: PathBuf,
    update: bool,
    run: bool,
    warn_wall_pct: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: PathBuf::from("out"),
        baseline: PathBuf::from("tools/bench_compare/baseline.tsv"),
        update: false,
        run: false,
        warn_wall_pct: 50.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--dir" => args.dir = PathBuf::from(value("--dir")?),
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")?),
            "--update" => args.update = true,
            "--run" => args.run = true,
            "--warn-wall-pct" => {
                args.warn_wall_pct = value("--warn-wall-pct")?
                    .parse()
                    .map_err(|e| format!("--warn-wall-pct: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_compare [--dir DIR] [--baseline FILE] \
                     [--update] [--run] [--warn-wall-pct P]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    if args.run {
        let status = std::process::Command::new("cargo")
            .args([
                "run",
                "--release",
                "-p",
                "aitf-bench",
                "--bin",
                "all_experiments",
                "--",
            ])
            .args(["--quick", "--json"])
            .arg(&args.dir)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("bench_compare: all_experiments exited with {s}");
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("bench_compare: spawning all_experiments: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let current = match load_dir(&args.dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    if args.update {
        if let Err(e) = std::fs::write(&args.baseline, render_baseline(&current)) {
            eprintln!("bench_compare: writing {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
        println!(
            "bench_compare: baseline refreshed with {} experiment(s) -> {}",
            current.len(),
            args.baseline.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(&args.baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "bench_compare: reading {}: {e} (create it with --update)",
                args.baseline.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match parse_baseline(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_compare: {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
    };

    let (failures, warnings) = compare(&baseline, &current, args.warn_wall_pct);
    for w in &warnings {
        eprintln!("bench_compare: WARNING {w}");
    }
    if failures.is_empty() {
        println!(
            "bench_compare: OK — {} experiment(s) match the baseline \
             ({} wall-time warning(s))",
            current.len(),
            warnings.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_compare: FAIL {f}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "schema": 1,
  "experiment": "e1_escalation",
  "title": "t",
  "quick": true,
  "base_seed": 42,
  "threads": 2,
  "total_events": 72960,
  "total_wall_secs": 0.125,
  "events_per_sec": 583680,
  "records": [
    {"experiment":"e1_escalation","index":0,"seed":7,"params":{},"metrics":{},"events":100,"wall_secs":0.1,"events_per_sec":1000}
  ]
}"#;

    #[test]
    fn parses_document_level_fields_not_record_fields() {
        let (exp, m) = parse_bench(DOC).unwrap();
        assert_eq!(exp, "e1_escalation");
        assert_eq!(m.total_events, 72960);
        assert_eq!(m.wall_secs, 0.125);
    }

    #[test]
    fn baseline_roundtrips_through_tsv() {
        let mut measures = BTreeMap::new();
        measures.insert(
            "e1".to_string(),
            Measure {
                total_events: 5,
                wall_secs: 0.25,
            },
        );
        let parsed = parse_baseline(&render_baseline(&measures)).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed["e1"].total_events, 5);
        assert_eq!(parsed["e1"].wall_secs, 0.25);
    }

    #[test]
    fn event_drift_fails_and_wall_regression_warns() {
        let base = parse_baseline("e1\t100\t1.0\n").unwrap();
        let mut cur = base.clone();
        cur.get_mut("e1").unwrap().total_events = 101;
        let (failures, _) = compare(&base, &cur, 50.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("drifted 100 -> 101"));

        let mut slow = base.clone();
        slow.get_mut("e1").unwrap().wall_secs = 2.0;
        let (failures, warnings) = compare(&base, &slow, 50.0);
        assert!(failures.is_empty(), "wall regressions never fail");
        assert_eq!(warnings.len(), 1);

        // Sub-floor baselines are scheduler noise: no warning however large
        // the relative regression.
        let tiny = parse_baseline("e1\t100\t0.001\n").unwrap();
        let mut tiny_slow = tiny.clone();
        tiny_slow.get_mut("e1").unwrap().wall_secs = 0.04;
        let (_, warnings) = compare(&tiny, &tiny_slow, 50.0);
        assert!(warnings.is_empty());
    }

    #[test]
    fn missing_and_extra_experiments_fail() {
        let base = parse_baseline("e1\t100\t1.0\ne2\t200\t1.0\n").unwrap();
        let cur = parse_baseline("e1\t100\t1.0\ne3\t300\t1.0\n").unwrap();
        let (failures, _) = compare(&base, &cur, 50.0);
        assert_eq!(failures.len(), 2);
        assert!(failures.iter().any(|f| f.contains("e2")));
        assert!(failures.iter().any(|f| f.contains("e3")));
    }

    #[test]
    fn matching_measures_pass_clean() {
        let base = parse_baseline("e1\t100\t1.0\n").unwrap();
        let (failures, warnings) = compare(&base, &base.clone(), 50.0);
        assert!(failures.is_empty() && warnings.is_empty());
    }
}
