//! CI perf ratchet over the experiment suite's JSON telemetry.
//!
//! Reads every `BENCH_<experiment>.json` in a directory (optionally
//! producing them first by running the driver) and compares each
//! experiment against a committed baseline:
//!
//! - **`total_events` must match exactly** — the sweeps are seeded and
//!   bit-deterministic, so any drift means a semantic change to the
//!   simulation and fails the check (refresh intentionally with
//!   `--update`);
//! - **`total_wall_secs` is gated variance-aware** — the baseline stores a
//!   per-experiment wall **mean and spread** measured over `--repeats N`
//!   runs. A current wall above `mean × (1 + warn%)` warns; a wall above
//!   `mean + max(gate_sigma × spread, mean × warn%)` is statistically
//!   attributable to the change under test and **fails**, with a pointer
//!   at the profiling runner. Legacy three-column baselines carry no
//!   spread and degrade to warn-only.
//!
//! ```text
//! bench_compare --dir out/ --baseline tools/bench_compare/baseline.tsv
//!               [--update] [--repeats N] [--warn-wall-pct 50]
//!               [--gate-sigma 4] [--run]
//! ```
//!
//! The baseline is a five-column TSV (`experiment  total_events
//! wall_mean_secs  wall_spread_secs  events_per_sec`) so diffs stay
//! reviewable; the throughput column is reported as an informational
//! delta per experiment, never gated. `--run`
//! invokes `cargo run --release -p aitf-bench --bin all_experiments --
//! --quick --json <dir>` first (N times under `--update --repeats N`),
//! which is what CI does in one step.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One experiment's numbers from a single suite run.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Measure {
    total_events: u64,
    wall_secs: f64,
    /// Suite-level dispatch throughput; `None` when the document predates
    /// the field or the wall was unmeasured.
    events_per_sec: Option<f64>,
}

/// One committed baseline row: the deterministic event count plus the
/// wall-time distribution over the update's repeats. `wall_spread` is the
/// sample standard deviation; `None` for legacy three-column rows, which
/// therefore cannot support a statistical gate and only ever warn.
/// `events_per_sec` (fifth column, mean over repeats) is informational
/// only — the report shows the throughput delta but never gates on it,
/// since wall time already carries the variance-aware gate.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BaselineEntry {
    total_events: u64,
    wall_mean: f64,
    wall_spread: Option<f64>,
    events_per_sec: Option<f64>,
}

/// Finds the first `"key"` in `doc` and returns the raw token after the
/// colon (up to `,`, `}` or newline). The emitter writes document-level
/// fields before the `records` array, so the first occurrence is the
/// sweep-level one.
fn json_field<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = &doc[at + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Extracts `(experiment, measure)` from one BENCH document. Corrupt
/// numeric fields are named errors, never silently NaN.
fn parse_bench(doc: &str) -> Result<(String, Measure), String> {
    let experiment = json_field(doc, "experiment")
        .ok_or("missing \"experiment\"")?
        .trim_matches('"')
        .to_string();
    let total_events: u64 = json_field(doc, "total_events")
        .ok_or("missing \"total_events\"")?
        .parse()
        .map_err(|e| format!("bad total_events: {e}"))?;
    let raw_wall = json_field(doc, "total_wall_secs").ok_or("missing \"total_wall_secs\"")?;
    let wall_secs: f64 = if raw_wall == "null" {
        f64::NAN
    } else {
        raw_wall
            .parse()
            .map_err(|e| format!("bad total_wall_secs {raw_wall:?}: {e}"))?
    };
    let events_per_sec = match json_field(doc, "events_per_sec") {
        None => None,
        Some("null") => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|e| format!("bad events_per_sec {raw:?}: {e}"))?,
        ),
    };
    Ok((
        experiment,
        Measure {
            total_events,
            wall_secs,
            events_per_sec,
        },
    ))
}

/// Parses the committed baseline TSV. Accepts the current five-column
/// format plus the legacy four-column (no throughput) and three-column
/// (no spread → warn-only rows) ones; anything unparsable is a named
/// error, never a silent NaN.
fn parse_baseline(text: &str) -> Result<BTreeMap<String, BaselineEntry>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        let [exp, events, wall_mean, rest @ ..] = cols.as_slice() else {
            return Err(format!(
                "line {}: expected 3 to 5 tab-separated columns, got {}",
                lineno + 1,
                cols.len()
            ));
        };
        if rest.len() > 2 {
            return Err(format!(
                "line {}: expected 3 to 5 tab-separated columns, got {}",
                lineno + 1,
                cols.len()
            ));
        }
        let total_events: u64 = events
            .parse()
            .map_err(|e| format!("line {}: bad total_events {events:?}: {e}", lineno + 1))?;
        let wall_mean: f64 = wall_mean
            .parse()
            .map_err(|e| format!("line {}: bad wall_mean {wall_mean:?}: {e}", lineno + 1))?;
        let wall_spread: Option<f64> = match rest.first() {
            None => None,
            Some(s) => Some(
                s.parse()
                    .map_err(|e| format!("line {}: bad wall_spread {s:?}: {e}", lineno + 1))?,
            ),
        };
        let events_per_sec: Option<f64> = match rest.get(1) {
            None => None,
            Some(s) => Some(
                s.parse()
                    .map_err(|e| format!("line {}: bad events_per_sec {s:?}: {e}", lineno + 1))?,
            ),
        };
        out.insert(
            exp.to_string(),
            BaselineEntry {
                total_events,
                wall_mean,
                wall_spread,
                events_per_sec,
            },
        );
    }
    Ok(out)
}

fn render_baseline(entries: &BTreeMap<String, BaselineEntry>) -> String {
    let mut out = String::from(
        "# bench_compare baseline: all_experiments --quick --json (base seed 42)\n\
         # wall_mean/wall_spread over --repeats runs (spread = sample std dev)\n\
         # events_per_sec is informational (mean over repeats), never gated\n\
         # experiment\ttotal_events\twall_mean_secs\twall_spread_secs\tevents_per_sec\n",
    );
    for (exp, e) in entries {
        out.push_str(&format!(
            "{exp}\t{}\t{:.3}\t{:.4}\t{:.0}\n",
            e.total_events,
            e.wall_mean,
            e.wall_spread.unwrap_or(0.0),
            e.events_per_sec.unwrap_or(0.0),
        ));
    }
    out
}

/// Folds `repeats` per-run measures into baseline rows: events must agree
/// across repeats (they are deterministic), walls become mean ± spread.
fn aggregate_repeats(
    repeats: &[BTreeMap<String, Measure>],
) -> Result<BTreeMap<String, BaselineEntry>, String> {
    let mut out = BTreeMap::new();
    let Some(first) = repeats.first() else {
        return Err("no runs to aggregate".into());
    };
    for (exp, m0) in first {
        let mut walls = Vec::with_capacity(repeats.len());
        for (i, rep) in repeats.iter().enumerate() {
            let m = rep.get(exp).ok_or(format!(
                "{exp}: present in repeat 1 but missing from repeat {}",
                i + 1
            ))?;
            if m.total_events != m0.total_events {
                return Err(format!(
                    "{exp}: total_events differ across repeats ({} vs {}) — \
                     the sweep is not deterministic",
                    m0.total_events, m.total_events
                ));
            }
            walls.push(m.wall_secs);
        }
        let n = walls.len() as f64;
        let mean = walls.iter().sum::<f64>() / n;
        let spread = if walls.len() > 1 {
            (walls.iter().map(|w| (w - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        } else {
            0.0
        };
        // Throughput mean only when every repeat measured one; a single
        // missing value degrades the row to "no throughput" rather than
        // averaging an incomplete sample.
        let eps: Vec<f64> = repeats
            .iter()
            .filter_map(|rep| rep.get(exp).and_then(|m| m.events_per_sec))
            .collect();
        let events_per_sec =
            (eps.len() == repeats.len()).then(|| eps.iter().sum::<f64>() / eps.len() as f64);
        out.insert(
            exp.clone(),
            BaselineEntry {
                total_events: m0.total_events,
                wall_mean: mean,
                wall_spread: Some(spread),
                events_per_sec,
            },
        );
    }
    Ok(out)
}

/// Sub-50ms sweeps are pure scheduler noise; only meaningful walls
/// participate in the regression warning/gate.
const WALL_FLOOR_SECS: f64 = 0.05;

/// Compares current measures against the baseline. Returns
/// `(failures, warnings)` as printable messages.
fn compare(
    baseline: &BTreeMap<String, BaselineEntry>,
    current: &BTreeMap<String, Measure>,
    warn_wall_pct: f64,
    gate_sigma: f64,
) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    for (exp, cur) in current {
        match baseline.get(exp) {
            None => failures.push(format!(
                "{exp}: not in baseline (new experiment? refresh with --update)"
            )),
            Some(base) => {
                if base.total_events != cur.total_events {
                    failures.push(format!(
                        "{exp}: total_events drifted {} -> {} (determinism break, \
                         or an intended change needing --update)",
                        base.total_events, cur.total_events
                    ));
                }
                if !(base.wall_mean.is_finite()
                    && base.wall_mean >= WALL_FLOOR_SECS
                    && cur.wall_secs.is_finite())
                {
                    continue;
                }
                let warn_limit = base.wall_mean * (1.0 + warn_wall_pct / 100.0);
                // The hard gate needs a measured spread: regressions beyond
                // gate_sigma spreads (and beyond the warn margin, so a
                // near-zero spread cannot make the gate hair-triggered)
                // are attributable to the change under test, not CI noise.
                let fail_limit = base.wall_spread.map(|s| {
                    base.wall_mean + (gate_sigma * s).max(base.wall_mean * warn_wall_pct / 100.0)
                });
                match fail_limit {
                    Some(limit) if cur.wall_secs > limit => failures.push(format!(
                        "{exp}: wall time {:.3}s exceeds baseline {:.3}s ± {:.4}s by more \
                         than {gate_sigma}σ and {warn_wall_pct}% — statistically \
                         attributable regression; break it down with: cargo run \
                         --release -p aitf-bench --features trace --bin \
                         profiling_runner -- --quick --filter {exp}",
                        cur.wall_secs,
                        base.wall_mean,
                        base.wall_spread.unwrap_or(0.0)
                    )),
                    _ if cur.wall_secs > warn_limit => warnings.push(format!(
                        "{exp}: wall time {:.3}s exceeds baseline {:.3}s by more than \
                         {warn_wall_pct}%{}",
                        cur.wall_secs,
                        base.wall_mean,
                        if base.wall_spread.is_none() {
                            " (legacy baseline row has no spread; warn-only)"
                        } else {
                            ""
                        }
                    )),
                    _ => {}
                }
            }
        }
    }
    for exp in baseline.keys() {
        if !current.contains_key(exp) {
            failures.push(format!("{exp}: in baseline but produced no BENCH json"));
        }
    }
    (failures, warnings)
}

/// Informational per-experiment throughput deltas versus the baseline's
/// `events_per_sec` column. Never gates: wall time already carries the
/// variance-aware gate, and throughput is its reciprocal view — this
/// exists so a perf change's report quantifies the win (or cost) without
/// anyone re-deriving events ÷ wall by hand. Sub-floor walls are skipped
/// (pure scheduler noise), as are rows lacking a measured baseline.
fn throughput_report(
    baseline: &BTreeMap<String, BaselineEntry>,
    current: &BTreeMap<String, Measure>,
) -> Vec<String> {
    let mut out = Vec::new();
    for (exp, cur) in current {
        let Some(base) = baseline.get(exp) else {
            continue;
        };
        let (Some(base_eps), Some(cur_eps)) = (base.events_per_sec, cur.events_per_sec) else {
            continue;
        };
        if !(base_eps.is_finite() && base_eps > 0.0 && cur_eps.is_finite())
            || base.wall_mean < WALL_FLOOR_SECS
        {
            continue;
        }
        let delta_pct = (cur_eps - base_eps) / base_eps * 100.0;
        out.push(format!(
            "{exp}: throughput {cur_eps:.0} ev/s vs baseline {base_eps:.0} ev/s ({delta_pct:+.1}%)"
        ));
    }
    out
}

fn load_dir(dir: &Path) -> Result<BTreeMap<String, Measure>, String> {
    let mut out = BTreeMap::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let doc = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let (exp, m) = parse_bench(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
        out.insert(exp, m);
    }
    if out.is_empty() {
        return Err(format!("no BENCH_*.json files under {}", dir.display()));
    }
    Ok(out)
}

fn run_suite(dir: &Path) -> Result<(), String> {
    let status = std::process::Command::new("cargo")
        .args([
            "run",
            "--release",
            "-p",
            "aitf-bench",
            "--bin",
            "all_experiments",
            "--",
        ])
        .args(["--quick", "--json"])
        .arg(dir)
        .status();
    match status {
        Ok(s) if s.success() => Ok(()),
        Ok(s) => Err(format!("all_experiments exited with {s}")),
        Err(e) => Err(format!("spawning all_experiments: {e}")),
    }
}

struct Args {
    dir: PathBuf,
    baseline: PathBuf,
    update: bool,
    run: bool,
    repeats: usize,
    warn_wall_pct: f64,
    gate_sigma: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: PathBuf::from("out"),
        baseline: PathBuf::from("tools/bench_compare/baseline.tsv"),
        update: false,
        run: false,
        repeats: 3,
        warn_wall_pct: 50.0,
        gate_sigma: 4.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--dir" => args.dir = PathBuf::from(value("--dir")?),
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")?),
            "--update" => args.update = true,
            "--run" => args.run = true,
            "--repeats" => {
                args.repeats = value("--repeats")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
                if args.repeats == 0 {
                    return Err("--repeats must be at least 1".into());
                }
            }
            "--warn-wall-pct" => {
                args.warn_wall_pct = value("--warn-wall-pct")?
                    .parse()
                    .map_err(|e| format!("--warn-wall-pct: {e}"))?
            }
            "--gate-sigma" => {
                args.gate_sigma = value("--gate-sigma")?
                    .parse()
                    .map_err(|e| format!("--gate-sigma: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_compare [--dir DIR] [--baseline FILE] \
                     [--update] [--repeats N] [--run] [--warn-wall-pct P] \
                     [--gate-sigma K]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    if args.update {
        // Refresh: measure `repeats` full runs (when --run) so the
        // committed rows carry a real spread; without --run a single
        // already-produced directory is aggregated with zero spread.
        let reps = if args.run { args.repeats } else { 1 };
        let mut measured = Vec::with_capacity(reps);
        for i in 0..reps {
            if args.run {
                println!("bench_compare: measuring repeat {}/{reps}", i + 1);
                if let Err(e) = run_suite(&args.dir) {
                    eprintln!("bench_compare: {e}");
                    return ExitCode::from(2);
                }
            }
            match load_dir(&args.dir) {
                Ok(c) => measured.push(c),
                Err(e) => {
                    eprintln!("bench_compare: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        let entries = match aggregate_repeats(&measured) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("bench_compare: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&args.baseline, render_baseline(&entries)) {
            eprintln!("bench_compare: writing {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
        println!(
            "bench_compare: baseline refreshed with {} experiment(s) over {} run(s) -> {}",
            entries.len(),
            reps,
            args.baseline.display()
        );
        return ExitCode::SUCCESS;
    }

    if args.run {
        if let Err(e) = run_suite(&args.dir) {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    }

    let current = match load_dir(&args.dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_text = match std::fs::read_to_string(&args.baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "bench_compare: reading {}: {e} (create it with --update)",
                args.baseline.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match parse_baseline(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_compare: {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
    };

    let (failures, warnings) = compare(&baseline, &current, args.warn_wall_pct, args.gate_sigma);
    for info in throughput_report(&baseline, &current) {
        println!("bench_compare: INFO {info}");
    }
    for w in &warnings {
        eprintln!("bench_compare: WARNING {w}");
    }
    if failures.is_empty() {
        println!(
            "bench_compare: OK — {} experiment(s) match the baseline \
             ({} wall-time warning(s))",
            current.len(),
            warnings.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_compare: FAIL {f}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "schema": 1,
  "experiment": "e1_escalation",
  "title": "t",
  "quick": true,
  "base_seed": 42,
  "threads": 2,
  "total_events": 72960,
  "total_wall_secs": 0.125,
  "events_per_sec": 583680,
  "records": [
    {"experiment":"e1_escalation","index":0,"seed":7,"params":{},"metrics":{},"events":100,"wall_secs":0.1,"events_per_sec":1000}
  ]
}"#;

    #[test]
    fn parses_document_level_fields_not_record_fields() {
        let (exp, m) = parse_bench(DOC).unwrap();
        assert_eq!(exp, "e1_escalation");
        assert_eq!(m.total_events, 72960);
        assert_eq!(m.wall_secs, 0.125);
        assert_eq!(m.events_per_sec, Some(583680.0));
    }

    #[test]
    fn missing_or_null_events_per_sec_is_none() {
        // Strip the record-level copy too: json_field takes the first
        // occurrence, so a leftover per-record field would shadow
        // "missing at document level".
        let doc = DOC
            .replace("\"events_per_sec\": 583680,", "")
            .replace(",\"events_per_sec\":1000", "");
        assert_eq!(parse_bench(&doc).unwrap().1.events_per_sec, None);
        let doc = DOC.replace("\"events_per_sec\": 583680", "\"events_per_sec\": null");
        assert_eq!(parse_bench(&doc).unwrap().1.events_per_sec, None);
    }

    #[test]
    fn corrupt_wall_in_bench_doc_is_a_named_error() {
        let doc = DOC.replace("0.125", "0.1x25");
        let err = parse_bench(&doc).unwrap_err();
        assert!(err.contains("bad total_wall_secs"), "{err}");
        assert!(err.contains("0.1x25"), "{err}");
    }

    #[test]
    fn baseline_roundtrips_through_tsv() {
        let mut entries = BTreeMap::new();
        entries.insert(
            "e1".to_string(),
            BaselineEntry {
                total_events: 5,
                wall_mean: 0.25,
                wall_spread: Some(0.01),
                events_per_sec: Some(20.0),
            },
        );
        let parsed = parse_baseline(&render_baseline(&entries)).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed["e1"].total_events, 5);
        assert_eq!(parsed["e1"].wall_mean, 0.25);
        assert_eq!(parsed["e1"].wall_spread, Some(0.01));
        assert_eq!(parsed["e1"].events_per_sec, Some(20.0));
    }

    #[test]
    fn legacy_short_rows_parse_without_spread_or_throughput() {
        let parsed = parse_baseline("e1\t100\t1.0\n").unwrap();
        assert_eq!(parsed["e1"].wall_spread, None);
        assert_eq!(parsed["e1"].events_per_sec, None);
        let parsed = parse_baseline("e1\t100\t1.0\t0.1\n").unwrap();
        assert_eq!(parsed["e1"].wall_spread, Some(0.1));
        assert_eq!(parsed["e1"].events_per_sec, None);
    }

    #[test]
    fn corrupt_baseline_rows_are_named_errors() {
        for (row, field) in [
            ("e1\tx100\t1.0\t0.1\n", "total_events"),
            ("e1\t100\t1.x\t0.1\n", "wall_mean"),
            ("e1\t100\t1.0\t0.x\n", "wall_spread"),
            ("e1\t100\t1.0\t0.1\t9x9\n", "events_per_sec"),
        ] {
            let err = parse_baseline(row).unwrap_err();
            assert!(err.contains("line 1"), "{err}");
            assert!(err.contains(field), "{err}");
        }
        let err = parse_baseline("e1\t100\t1.0\t0.1\t100\textra\n").unwrap_err();
        assert!(err.contains("3 to 5"), "{err}");
    }

    fn cur(events: u64, wall: f64) -> BTreeMap<String, Measure> {
        let mut m = BTreeMap::new();
        m.insert(
            "e1".to_string(),
            Measure {
                total_events: events,
                wall_secs: wall,
                events_per_sec: None,
            },
        );
        m
    }

    #[test]
    fn event_drift_fails() {
        let base = parse_baseline("e1\t100\t1.0\t0.05\n").unwrap();
        let (failures, _) = compare(&base, &cur(101, 1.0), 50.0, 4.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("drifted 100 -> 101"));
    }

    #[test]
    fn wall_gate_is_variance_aware() {
        let base = parse_baseline("e1\t100\t1.0\t0.05\n").unwrap();
        // Within both margins: clean.
        let (f, w) = compare(&base, &cur(100, 1.1), 50.0, 4.0);
        assert!(f.is_empty() && w.is_empty());
        // Beyond 4σ (0.2s) but within the 50% warn margin: still clean —
        // the gate never undercuts the warn threshold.
        let (f, w) = compare(&base, &cur(100, 1.3), 50.0, 4.0);
        assert!(f.is_empty() && w.is_empty());
        // Beyond both: statistically attributable — fails, and the message
        // points at the profiling runner.
        let (f, _) = compare(&base, &cur(100, 1.6), 50.0, 4.0);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("profiling_runner"), "{}", f[0]);
        // A wide spread widens the gate: same 1.6s passes with σ = 0.2.
        let wide = parse_baseline("e1\t100\t1.0\t0.2\n").unwrap();
        let (f, w) = compare(&wide, &cur(100, 1.6), 50.0, 4.0);
        assert!(f.is_empty());
        assert_eq!(w.len(), 1, "still past the warn margin");
    }

    #[test]
    fn legacy_rows_without_spread_warn_but_never_fail() {
        let base = parse_baseline("e1\t100\t1.0\n").unwrap();
        let (failures, warnings) = compare(&base, &cur(100, 9.0), 50.0, 4.0);
        assert!(failures.is_empty(), "no spread, no hard gate");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("warn-only"), "{}", warnings[0]);
    }

    #[test]
    fn sub_floor_walls_are_ignored() {
        let base = parse_baseline("e1\t100\t0.001\t0.0\n").unwrap();
        let (failures, warnings) = compare(&base, &cur(100, 0.04), 50.0, 4.0);
        assert!(failures.is_empty() && warnings.is_empty());
    }

    #[test]
    fn missing_and_extra_experiments_fail() {
        let base = parse_baseline("e1\t100\t1.0\t0.0\ne2\t200\t1.0\t0.0\n").unwrap();
        let mut current = cur(100, 1.0);
        current.insert(
            "e3".to_string(),
            Measure {
                total_events: 300,
                wall_secs: 1.0,
                events_per_sec: None,
            },
        );
        let (failures, _) = compare(&base, &current, 50.0, 4.0);
        assert_eq!(failures.len(), 2);
        assert!(failures.iter().any(|f| f.contains("e2")));
        assert!(failures.iter().any(|f| f.contains("e3")));
    }

    fn cur_eps(events: u64, wall: f64, eps: Option<f64>) -> BTreeMap<String, Measure> {
        let mut m = cur(events, wall);
        m.get_mut("e1").unwrap().events_per_sec = eps;
        m
    }

    #[test]
    fn throughput_deltas_are_informational_only() {
        let base = parse_baseline("e1\t100\t1.0\t0.05\t1000\n").unwrap();
        // Throughput halves: reported as a delta, but nothing fails.
        let current = cur_eps(100, 1.0, Some(500.0));
        let infos = throughput_report(&base, &current);
        assert_eq!(infos.len(), 1);
        assert!(infos[0].contains("-50.0%"), "{}", infos[0]);
        let (failures, _) = compare(&base, &current, 50.0, 4.0);
        assert!(failures.is_empty());
        // No current measurement → no line; legacy baseline row → no line.
        assert!(throughput_report(&base, &cur(100, 1.0)).is_empty());
        let legacy = parse_baseline("e1\t100\t1.0\t0.05\n").unwrap();
        assert!(throughput_report(&legacy, &current).is_empty());
        // Sub-floor walls are scheduler noise, not throughput signal.
        let tiny = parse_baseline("e1\t100\t0.001\t0.0\t1000\n").unwrap();
        assert!(throughput_report(&tiny, &current).is_empty());
    }

    #[test]
    fn aggregate_repeats_keeps_throughput_only_when_all_repeats_have_it() {
        let reps = vec![
            cur_eps(100, 1.0, Some(900.0)),
            cur_eps(100, 1.0, Some(1100.0)),
        ];
        let agg = aggregate_repeats(&reps).unwrap();
        assert_eq!(agg["e1"].events_per_sec, Some(1000.0));
        let reps = vec![cur_eps(100, 1.0, Some(900.0)), cur(100, 1.0)];
        let agg = aggregate_repeats(&reps).unwrap();
        assert_eq!(agg["e1"].events_per_sec, None);
    }

    #[test]
    fn aggregate_repeats_computes_mean_and_spread() {
        let reps = vec![cur(100, 1.0), cur(100, 1.2), cur(100, 0.8)];
        let agg = aggregate_repeats(&reps).unwrap();
        let e = agg["e1"];
        assert_eq!(e.total_events, 100);
        assert!((e.wall_mean - 1.0).abs() < 1e-9);
        assert!((e.wall_spread.unwrap() - 0.2).abs() < 1e-9);
        // Deterministic events must agree across repeats.
        let bad = vec![cur(100, 1.0), cur(101, 1.0)];
        let err = aggregate_repeats(&bad).unwrap_err();
        assert!(err.contains("not deterministic"), "{err}");
    }
}
