//! The detlint manifest: which files are simulation code, which belong to
//! the profiling subsystem, and which functions sit on the pinned
//! allocation-free hot path.
//!
//! Hand-parsed INI-style file (`tools/detlint/detlint.toml`):
//!
//! ```text
//! [sim-crates]            # hash-iter applies under these path prefixes
//! crates/netsim
//!
//! [wall-clock-exempt]     # the profiling subsystem: Instant/SystemTime ok
//! crates/trace/src
//!
//! [hot]                   # file = comma-separated hot function names
//! crates/netsim/src/sim.rs = run_window, dispatch_packet
//! ```
//!
//! Path entries match a scanned file when they are a component-aligned
//! substring of its normalized relative path, so the manifest works from
//! any checkout root.

use std::collections::BTreeMap;

#[derive(Debug, Default)]
pub struct Manifest {
    /// Path prefixes where the `hash-iter` / `float-accum` rules apply.
    pub sim_crates: Vec<String>,
    /// Path prefixes exempt from `wall-clock` (the profiling subsystem).
    pub wall_clock_exempt: Vec<String>,
    /// `path -> hot function names` for the `hot-alloc` rule.
    pub hot: BTreeMap<String, Vec<String>>,
}

impl Manifest {
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut m = Manifest::default();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            match section.as_str() {
                "sim-crates" => m.sim_crates.push(line.to_string()),
                "wall-clock-exempt" => m.wall_clock_exempt.push(line.to_string()),
                "hot" => {
                    let (path, fns) = line
                        .split_once('=')
                        .ok_or_else(|| format!("line {}: [hot] entry needs `path = fns`", i + 1))?;
                    let fns: Vec<String> = fns
                        .split(',')
                        .map(|f| f.trim().to_string())
                        .filter(|f| !f.is_empty())
                        .collect();
                    if fns.is_empty() {
                        return Err(format!("line {}: [hot] entry lists no functions", i + 1));
                    }
                    m.hot.insert(path.trim().to_string(), fns);
                }
                "" => return Err(format!("line {}: entry before any [section]", i + 1)),
                other => return Err(format!("line {}: unknown section [{other}]", i + 1)),
            }
        }
        Ok(m)
    }

    pub fn is_sim_path(&self, path: &str) -> bool {
        self.sim_crates.iter().any(|p| path_matches(path, p))
    }

    pub fn is_wall_clock_exempt(&self, path: &str) -> bool {
        self.wall_clock_exempt.iter().any(|p| path_matches(path, p))
    }

    /// Hot function names declared for `path`, empty if none.
    pub fn hot_fns(&self, path: &str) -> &[String] {
        for (p, fns) in &self.hot {
            if path_matches(path, p) {
                return fns;
            }
        }
        &[]
    }
}

/// Component-aligned substring match: `entry` must appear in `path` with
/// `/` (or string boundaries) on both sides, so `crates/core` matches
/// `crates/core/src/world.rs` but not `crates/core2/src/lib.rs`.
pub fn path_matches(path: &str, entry: &str) -> bool {
    let path = path.replace('\\', "/");
    let entry = entry.trim_matches('/');
    let mut from = 0;
    while let Some(i) = path[from..].find(entry) {
        let start = from + i;
        let end = start + entry.len();
        let left_ok = start == 0 || path.as_bytes()[start - 1] == b'/';
        let right_ok = end == path.len() || path.as_bytes()[end] == b'/';
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_sections() {
        let m = Manifest::parse(
            "# header comment\n\
             [sim-crates]\n crates/netsim\n crates/core # inline\n\
             [wall-clock-exempt]\n crates/trace/src\n\
             [hot]\n crates/netsim/src/sim.rs = run_window, dispatch_packet\n",
        )
        .unwrap();
        assert_eq!(m.sim_crates, ["crates/netsim", "crates/core"]);
        assert!(m.is_sim_path("crates/core/src/world.rs"));
        assert!(!m.is_sim_path("crates/scenario/src/probe.rs"));
        assert!(m.is_wall_clock_exempt("crates/trace/src/profile.rs"));
        assert_eq!(
            m.hot_fns("crates/netsim/src/sim.rs"),
            ["run_window", "dispatch_packet"]
        );
        assert!(m.hot_fns("crates/netsim/src/link.rs").is_empty());
    }

    #[test]
    fn component_alignment() {
        assert!(path_matches("a/b/c.rs", "b"));
        assert!(path_matches("a/b/c.rs", "a/b"));
        assert!(path_matches("b/c.rs", "b"));
        assert!(!path_matches("a/bb/c.rs", "b"));
        assert!(!path_matches("a/xb/c.rs", "b"));
        assert!(path_matches("tests/fixtures/x.rs", "fixtures/x.rs"));
    }

    #[test]
    fn errors_are_line_numbered() {
        let e = Manifest::parse("[hot]\nno-equals-here\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        let e = Manifest::parse("stray\n").unwrap_err();
        assert!(e.contains("line 1"), "{e}");
        let e = Manifest::parse("[bogus]\nx\n").unwrap_err();
        assert!(e.contains("bogus"), "{e}");
    }
}
