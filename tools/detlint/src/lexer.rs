//! A hand-rolled Rust lexer, just deep enough for detlint.
//!
//! Produces a stream of identifier / number / punctuation tokens with
//! `line:col` positions, plus the list of comments (so the rule engine can
//! parse `detlint::allow` annotations). Everything the rules must never
//! trip over — string literals, raw strings, char literals, lifetimes,
//! nested block comments — is consumed here and never reaches the token
//! stream.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `for`, ...).
    Ident(String),
    /// Numeric literal, verbatim (`0.5`, `1_000u64`, `0xff`).
    Num(String),
    /// Single punctuation byte (`.`, `:`, `(`, `<`, ...).
    Punct(char),
}

impl Tok {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment, with enough context to resolve allow annotations.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Text after `//` / inside `/* */`, untrimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based column of the leading `/`.
    pub col: u32,
    /// True when nothing but whitespace precedes the comment on its line.
    pub standalone: bool,
}

/// Lexes `src`, returning tokens and comments.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        line_has_code: false,
        toks: Vec::new(),
        comments: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Whether a token has been emitted on the current line (for
    /// `Comment::standalone`).
    line_has_code: bool,
    toks: Vec<Tok>,
    comments: Vec<Comment>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advances one byte, maintaining line/col.
    fn bump(&mut self) -> u8 {
        let b = self.bytes[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.line_has_code = false;
        } else {
            self.col += 1;
        }
        b
    }

    fn run(mut self) -> (Vec<Tok>, Vec<Comment>) {
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string_lit(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_string_ahead() => self.raw_string(),
                b'b' if self.peek(1) == b'"' => {
                    self.bump();
                    self.string_lit();
                }
                b'b' if self.peek(1) == b'\'' => {
                    self.bump();
                    self.bump(); // opening quote of the byte literal
                    self.byte_char_tail();
                }
                _ if b.is_ascii_alphabetic() || b == b'_' => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    let (line, col) = (self.line, self.col);
                    let c = self.bump() as char;
                    self.line_has_code = true;
                    self.toks.push(Tok {
                        kind: TokKind::Punct(c),
                        line,
                        col,
                    });
                }
            }
        }
        (self.toks, self.comments)
    }

    fn line_comment(&mut self) {
        let (line, col) = (self.line, self.col);
        let standalone = !self.line_has_code;
        self.bump();
        self.bump();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        self.comments.push(Comment {
            text: String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned(),
            line,
            col,
            standalone,
        });
    }

    fn block_comment(&mut self) {
        let (line, col) = (self.line, self.col);
        let standalone = !self.line_has_code;
        self.bump();
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                end = self.pos;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        self.comments.push(Comment {
            text: String::from_utf8_lossy(&self.bytes[start..end]).into_owned(),
            line,
            col,
            standalone,
        });
    }

    fn string_lit(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// True when the cursor sits on `r"`, `r#`, `br"` or `br#`.
    fn raw_string_ahead(&self) -> bool {
        let (mut i, b) = (1, self.peek(0));
        if b == b'b' {
            if self.peek(1) != b'r' {
                return false;
            }
            i = 2;
        }
        matches!(self.peek(i), b'"' | b'#')
            && (self.peek(i) == b'"' || {
                // r#ident is a raw identifier, not a raw string: require
                // the hashes to terminate in a quote.
                let mut j = i;
                while self.peek(j) == b'#' {
                    j += 1;
                }
                self.peek(j) == b'"'
            })
    }

    fn raw_string(&mut self) {
        if self.peek(0) == b'b' {
            self.bump();
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            if self.peek(0) == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        let c1 = self.peek(1);
        let is_lifetime =
            (c1.is_ascii_alphabetic() || c1 == b'_') && self.peek(2) != b'\'' && c1 != b'\\';
        if is_lifetime {
            self.bump(); // '
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
            return;
        }
        self.bump(); // opening quote
        self.byte_char_tail();
    }

    /// Consumes a (possibly escaped) char literal body and closing quote.
    fn byte_char_tail(&mut self) {
        if self.peek(0) == b'\\' {
            self.bump();
            self.bump();
            // \x7f and \u{...} escapes: eat to the closing quote.
            while self.pos < self.bytes.len() && self.peek(0) != b'\'' {
                self.bump();
            }
        } else if self.pos < self.bytes.len() {
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
    }

    fn ident(&mut self) {
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
            self.bump();
        }
        self.line_has_code = true;
        self.toks.push(Tok {
            kind: TokKind::Ident(
                String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned(),
            ),
            line,
            col,
        });
    }

    fn number(&mut self) {
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        while self.peek(0).is_ascii_alphanumeric()
            || self.peek(0) == b'_'
            || (self.peek(0) == b'.' && self.peek(1).is_ascii_digit())
        {
            self.bump();
        }
        self.line_has_code = true;
        self.toks.push(Tok {
            kind: TokKind::Num(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()),
            line,
            col,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn line_comments_are_captured_not_tokenized() {
        let (toks, comments) = lex("let x = 1; // HashMap.iter()\nlet y = 2;");
        assert!(toks.iter().all(|t| !t.is_ident("HashMap")));
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("HashMap.iter()"));
        assert!(!comments[0].standalone, "trailing comment has code before");
    }

    #[test]
    fn standalone_comment_flag_and_position() {
        let (_, comments) = lex("fn f() {\n    // detlint::allow(x): y\n    g();\n}");
        assert_eq!(comments.len(), 1);
        assert!(comments[0].standalone);
        assert_eq!((comments[0].line, comments[0].col), (2, 5));
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("/* outer /* inner thread_rng */ still out */ fn f() {}");
        assert!(toks.iter().all(|t| !t.is_ident("thread_rng")));
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("inner thread_rng"));
        assert_eq!(idents("/* a */ fn f() {}"), ["fn", "f"]);
    }

    #[test]
    fn string_literals_do_not_leak_tokens() {
        let src = r#"let s = "Instant::now() \" HashMap"; let t = 1;"#;
        assert_eq!(idents(src), ["let", "s", "let", "t"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"SystemTime "quoted" inside"#; let u = 2;"###;
        assert_eq!(idents(src), ["let", "s", "let", "u"]);
        let src2 = "let s = r\"thread_rng\"; done();";
        assert_eq!(idents(src2), ["let", "s", "done"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(idents(r#"let s = b"HashMap"; f();"#), ["let", "s", "f"]);
        assert_eq!(
            idents(r##"let s = br#"HashSet"#; f();"##),
            ["let", "s", "f"]
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        // 'a' is a char, 'a in a generic is a lifetime; both must not eat
        // the following tokens.
        assert_eq!(
            idents("let c = 'x'; fn f<'a>(v: &'a str) {}"),
            ["let", "c", "fn", "f", "v", "str"]
        );
        assert_eq!(idents(r"let c = '\n'; g();"), ["let", "c", "g"]);
        assert_eq!(idents(r"let c = '\''; g();"), ["let", "c", "g"]);
        assert_eq!(idents("let b = b'x'; g();"), ["let", "b", "g"]);
    }

    #[test]
    fn nested_generics_tokenize_as_puncts() {
        let (toks, _) = lex("let m: HashMap<u8, HashMap<Addr, Vec<u64>>> = x;");
        let shifts = toks.iter().filter(|t| t.is_punct('<')).count();
        assert_eq!(shifts, 3);
        assert_eq!(
            toks.iter().filter(|t| t.is_ident("HashMap")).count(),
            2,
            "both HashMap idents visible"
        );
    }

    #[test]
    fn positions_are_one_based_line_col() {
        let (toks, _) = lex("ab cd\n  ef");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (1, 4));
        assert_eq!((toks[2].line, toks[2].col), (2, 3));
    }

    #[test]
    fn numbers_including_floats_and_suffixes() {
        let (toks, _) = lex("f(0.5, 1_000u64, 0xff, 2.0f64)");
        let nums: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["0.5", "1_000u64", "0xff", "2.0f64"]);
        // Method calls on ints must not merge the dot into the number.
        let (toks, _) = lex("1.max(2)");
        assert!(toks.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        // r#fn splits into `r` `#` `fn` — the point is that the `#` must
        // not start raw-string consumption and swallow the rest.
        assert_eq!(idents("let r#fn = 1; g();"), ["let", "r", "fn", "g"]);
    }
}
