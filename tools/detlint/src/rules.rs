//! The detlint rule engine.
//!
//! Operates on the lexed token stream of one file plus the workspace
//! manifest. Rules:
//!
//! - `hash-iter` — iteration over a `HashMap`/`HashSet` in simulation
//!   crates, where unordered order can feed event order or emitted
//!   records. Fires on `.iter()`-family calls and `for _ in map` loops
//!   whose receiver was declared with a hash-collection type in this file.
//! - `wall-clock` — `Instant::now` / `SystemTime` outside the profiling
//!   subsystem; simulation time must come from the virtual clock.
//! - `ad-hoc-rng` — `thread_rng` / `rand::random` anywhere; all
//!   randomness must be derived from the run seed.
//! - `float-accum` — float `sum()`/`fold()` at the end of a method chain
//!   rooted at a hash collection: float addition is not associative, so
//!   unordered accumulation is run-to-run unstable.
//! - `hot-alloc` — `.clone()`, `Vec::new`, `to_vec`, `format!`,
//!   `Box::new` inside functions the manifest pins as allocation-free.
//! - `bad-allow` — a `detlint::allow` annotation without a reason, or
//!   naming an unknown rule.
//! - `stale-allow` — a well-formed allow that no longer suppresses any
//!   finding; the annotation set must stay honest.
//!
//! Suppression: `// detlint::allow(rule[, rule]): reason` suppresses
//! matching findings on its own line (trailing comment) or the next line
//! (standalone comment).

use crate::lexer::{self, Comment, Tok, TokKind};
use crate::manifest::Manifest;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    HashIter,
    WallClock,
    AdHocRng,
    FloatAccum,
    HotAlloc,
    BadAllow,
    StaleAllow,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::AdHocRng => "ad-hoc-rng",
            Rule::FloatAccum => "float-accum",
            Rule::HotAlloc => "hot-alloc",
            Rule::BadAllow => "bad-allow",
            Rule::StaleAllow => "stale-allow",
        }
    }

    /// Rule ids a `detlint::allow` may name (the meta rules cannot be
    /// suppressed, so an honest annotation set stays enforceable).
    pub const ALLOWABLE: [Rule; 5] = [
        Rule::HashIter,
        Rule::WallClock,
        Rule::AdHocRng,
        Rule::FloatAccum,
        Rule::HotAlloc,
    ];
}

#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: Rule,
    pub message: String,
}

struct Allow {
    line: u32,
    col: u32,
    /// Line whose findings this allow suppresses.
    target_line: u32,
    rules: Vec<Rule>,
    used: bool,
}

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: [&str; 11] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Lints one file; `path` is the workspace-relative path used for manifest
/// scoping and reporting.
pub fn check_file(path: &str, src: &str, manifest: &Manifest) -> Vec<Finding> {
    let (toks, comments) = lexer::lex(src);
    let mut findings = Vec::new();
    let mut allows = parse_allows(path, &comments, &mut findings);

    let sim = manifest.is_sim_path(path);
    let wall_exempt = manifest.is_wall_clock_exempt(path);
    let hot_fns = manifest.hot_fns(path);
    let hot_spans = if hot_fns.is_empty() {
        Vec::new()
    } else {
        fn_spans(&toks)
            .into_iter()
            .filter(|(name, _, _)| hot_fns.iter().any(|f| f == name))
            .collect()
    };
    let hash_names = if sim { hash_names(&toks) } else { Vec::new() };

    let mut raw = Vec::new();
    for i in 0..toks.len() {
        if sim {
            scan_hash_iter(path, &toks, i, &hash_names, &mut raw);
        }
        if !wall_exempt {
            scan_wall_clock(path, &toks, i, &mut raw);
        }
        scan_rng(path, &toks, i, &mut raw);
        if hot_spans.iter().any(|&(_, s, e)| i >= s && i < e) {
            scan_hot_alloc(path, &toks, i, &hot_spans, &mut raw);
        }
    }

    // Apply suppressions; unmatched well-formed allows become stale.
    for f in raw {
        let allowed = allows
            .iter_mut()
            .find(|a| a.target_line == f.line && a.rules.contains(&f.rule));
        match allowed {
            Some(a) => a.used = true,
            None => findings.push(f),
        }
    }
    for a in &allows {
        if !a.used {
            findings.push(Finding {
                file: path.to_string(),
                line: a.line,
                col: a.col,
                rule: Rule::StaleAllow,
                message: format!(
                    "allow({}) suppresses nothing on line {}; remove it or fix the target",
                    a.rules
                        .iter()
                        .map(|r| r.id())
                        .collect::<Vec<_>>()
                        .join(", "),
                    a.target_line
                ),
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// Parses `detlint::allow(rule[, rule]): reason` comments. Malformed
/// annotations produce `bad-allow` findings and suppress nothing.
fn parse_allows(path: &str, comments: &[Comment], findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("detlint::allow") else {
            continue;
        };
        let mut bad = |msg: String| {
            findings.push(Finding {
                file: path.to_string(),
                line: c.line,
                col: c.col,
                rule: Rule::BadAllow,
                message: msg,
            });
        };
        let Some(rest) = rest.trim_start().strip_prefix('(') else {
            bad("allow needs a rule list: detlint::allow(rule): reason".into());
            continue;
        };
        let Some((list, tail)) = rest.split_once(')') else {
            bad("unclosed rule list in detlint::allow".into());
            continue;
        };
        let mut rules = Vec::new();
        let mut ok = true;
        for name in list.split(',').map(str::trim) {
            match Rule::ALLOWABLE.iter().find(|r| r.id() == name) {
                Some(&r) => rules.push(r),
                None => {
                    bad(format!(
                        "unknown or non-suppressible rule `{name}` in allow"
                    ));
                    ok = false;
                }
            }
        }
        let reason = tail.trim_start().strip_prefix(':').map(str::trim);
        match reason {
            Some(r) if !r.is_empty() => {}
            _ => {
                bad(
                    "allow without a reason: write detlint::allow(rule): <why this is sound>"
                        .into(),
                );
                ok = false;
            }
        }
        if ok {
            allows.push(Allow {
                line: c.line,
                col: c.col,
                target_line: if c.standalone { c.line + 1 } else { c.line },
                rules,
                used: false,
            });
        }
    }
    allows
}

/// All `fn name` items with their body token ranges (nested included).
fn fn_spans(toks: &[Tok]) -> Vec<(String, usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some(name) = toks[i + 1].ident() {
                // Find the body `{` at zero paren/bracket depth; a `;`
                // first means a bodyless declaration.
                let mut j = i + 2;
                let (mut paren, mut bracket) = (0i32, 0i32);
                let mut body = None;
                while j < toks.len() {
                    match toks[j].kind {
                        TokKind::Punct('(') => paren += 1,
                        TokKind::Punct(')') => paren -= 1,
                        TokKind::Punct('[') => bracket += 1,
                        TokKind::Punct(']') => bracket -= 1,
                        TokKind::Punct('{') if paren == 0 && bracket == 0 => {
                            body = Some(j);
                            break;
                        }
                        TokKind::Punct(';') if paren == 0 && bracket == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(start) = body {
                    let mut depth = 0i32;
                    let mut end = toks.len();
                    for (k, t) in toks.iter().enumerate().skip(start) {
                        match t.kind {
                            TokKind::Punct('{') => depth += 1,
                            TokKind::Punct('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    end = k + 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    spans.push((name.to_string(), start, end));
                }
            }
        }
        i += 1;
    }
    spans
}

/// Names declared with a hash-collection type in this file: struct fields
/// and bindings annotated `name: ...HashMap<...>...`, and `let` bindings
/// initialized from `HashMap::`/`HashSet::` constructors.
fn hash_names(toks: &[Tok]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mut add = |n: &str| {
        if !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    };
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if matches!(
            name,
            "fn" | "let" | "mut" | "pub" | "if" | "else" | "match" | "return"
        ) {
            continue;
        }
        // `name : <type containing HashMap/HashSet>` up to a top-level
        // terminator. Angle/paren depth tracked so generic commas don't
        // end the scan early.
        if i + 1 < toks.len() && toks[i + 1].is_punct(':') && !is_path_sep(toks, i + 1) {
            let (mut depth, mut j) = (0i32, i + 2);
            while j < toks.len() && j < i + 64 {
                match &toks[j].kind {
                    TokKind::Punct('<') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct('>') | TokKind::Punct(')') | TokKind::Punct(']') => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1
                    }
                    TokKind::Punct(',')
                    | TokKind::Punct(';')
                    | TokKind::Punct('=')
                    | TokKind::Punct('{')
                        if depth == 0 =>
                    {
                        break
                    }
                    TokKind::Ident(t) if t == "HashMap" || t == "HashSet" => {
                        add(name);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // `let [mut] name = ...HashMap::...` / `HashSet::...` before `;`.
        if name == "let" {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            let Some(bound) = toks.get(j).and_then(Tok::ident) else {
                continue;
            };
            if toks.get(j + 1).map(|t| t.is_punct('=')) == Some(true) {
                let mut k = j + 2;
                while k < toks.len() && k < j + 16 {
                    match toks[k].ident() {
                        Some("HashMap") | Some("HashSet") => {
                            add(bound);
                            break;
                        }
                        _ if toks[k].is_punct(';') => break,
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
    }
    names
}

/// True when the `:` at `i` is half of a `::` path separator.
fn is_path_sep(toks: &[Tok], i: usize) -> bool {
    (i > 0 && toks[i - 1].is_punct(':')) || toks.get(i + 1).map(|t| t.is_punct(':')) == Some(true)
}

fn push(out: &mut Vec<Finding>, path: &str, t: &Tok, rule: Rule, message: String) {
    out.push(Finding {
        file: path.to_string(),
        line: t.line,
        col: t.col,
        rule,
        message,
    });
}

fn scan_hash_iter(path: &str, toks: &[Tok], i: usize, names: &[String], out: &mut Vec<Finding>) {
    // Receiver position: an identifier declared as a hash collection, not
    // itself a call (`series(` is the method, `series.` the field).
    let is_hash_recv = |k: usize| {
        toks.get(k)
            .and_then(Tok::ident)
            .is_some_and(|n| names.iter().any(|h| h == n))
            && toks.get(k + 1).map(|t| t.is_punct('(')) != Some(true)
    };

    // `recv.iter()` and friends.
    if is_hash_recv(i)
        && toks.get(i + 1).map(|t| t.is_punct('.')) == Some(true)
        && toks
            .get(i + 2)
            .and_then(Tok::ident)
            .is_some_and(|m| ITER_METHODS.contains(&m))
        && toks.get(i + 3).map(|t| t.is_punct('(')) == Some(true)
    {
        let name = toks[i].ident().unwrap();
        let method = toks[i + 2].ident().unwrap();
        push(
            out,
            path,
            &toks[i + 2],
            Rule::HashIter,
            format!(
                "unordered iteration: `{name}.{method}()` walks a hash collection in \
                 simulation code; use BTreeMap/sorted order or justify with an allow"
            ),
        );
        scan_float_chain(path, toks, i + 2, out);
    }

    // `for pat in [&[mut]] expr-ending-in-hash-name {`.
    if toks[i].is_ident("for") {
        let (mut depth, mut j) = (0i32, i + 1);
        let mut in_at = None;
        while j < toks.len() && j < i + 48 {
            match toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct('{') | TokKind::Punct(';') => break,
                TokKind::Ident(ref s) if s == "in" && depth == 0 => {
                    in_at = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(in_at) = in_at else { return };
        let (mut depth, mut j) = (0i32, in_at + 1);
        let mut last = None;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct('{') if depth == 0 => break,
                _ => {}
            }
            last = Some(j);
            j += 1;
        }
        if let Some(l) = last {
            if is_hash_recv(l) {
                let name = toks[l].ident().unwrap();
                push(
                    out,
                    path,
                    &toks[l],
                    Rule::HashIter,
                    format!(
                        "unordered iteration: `for _ in {name}` consumes a hash collection \
                         in simulation code; use BTreeMap/sorted order or justify with an allow"
                    ),
                );
            }
        }
    }
}

/// Walks the method chain starting at the iteration method token and flags
/// float `sum::<f64>()` / `fold(<float literal>, ...)` accumulation.
fn scan_float_chain(path: &str, toks: &[Tok], mut m: usize, out: &mut Vec<Finding>) {
    loop {
        let name = toks[m].ident().unwrap_or_default().to_string();
        let open = m + 1;
        if toks.get(open).map(|t| t.is_punct('(')) != Some(true) {
            // `sum::<f64>()` carries a turbofish between name and parens.
            if name == "sum"
                && toks.get(m + 1).map(|t| t.is_punct(':')) == Some(true)
                && toks.get(m + 2).map(|t| t.is_punct(':')) == Some(true)
                && toks
                    .get(m + 4)
                    .and_then(Tok::ident)
                    .is_some_and(|t| t == "f64" || t == "f32")
            {
                push(
                    out,
                    path,
                    &toks[m],
                    Rule::FloatAccum,
                    "float accumulation over an unordered iterator: float addition is not \
                     associative, so the total depends on hash order"
                        .to_string(),
                );
            }
            return;
        }
        if name == "fold" {
            if let Some(TokKind::Num(n)) = toks.get(open + 1).map(|t| &t.kind) {
                if n.contains('.') || n.ends_with("f32") || n.ends_with("f64") {
                    push(
                        out,
                        path,
                        &toks[m],
                        Rule::FloatAccum,
                        "float accumulation over an unordered iterator: float addition is \
                         not associative, so the total depends on hash order"
                            .to_string(),
                    );
                }
            }
        }
        // Skip the argument list, then continue if the chain goes on.
        let mut depth = 0i32;
        let mut j = open;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if toks.get(j + 1).map(|t| t.is_punct('.')) == Some(true)
            && toks.get(j + 2).and_then(Tok::ident).is_some()
        {
            m = j + 2;
        } else {
            return;
        }
    }
}

fn scan_wall_clock(path: &str, toks: &[Tok], i: usize, out: &mut Vec<Finding>) {
    if toks[i].is_ident("Instant")
        && toks.get(i + 1).map(|t| t.is_punct(':')) == Some(true)
        && toks.get(i + 2).map(|t| t.is_punct(':')) == Some(true)
        && toks.get(i + 3).map(|t| t.is_ident("now")) == Some(true)
    {
        push(
            out,
            path,
            &toks[i],
            Rule::WallClock,
            "wall-clock read: `Instant::now` outside the profiling subsystem; \
             simulation logic must use virtual time"
                .to_string(),
        );
    }
    if toks[i].is_ident("SystemTime") {
        push(
            out,
            path,
            &toks[i],
            Rule::WallClock,
            "wall-clock read: `SystemTime` outside the profiling subsystem; \
             simulation logic must use virtual time"
                .to_string(),
        );
    }
}

fn scan_rng(path: &str, toks: &[Tok], i: usize, out: &mut Vec<Finding>) {
    if toks[i].is_ident("thread_rng") {
        push(
            out,
            path,
            &toks[i],
            Rule::AdHocRng,
            "ad-hoc RNG: `thread_rng` is seeded from the OS; all randomness must \
             derive from the run seed"
                .to_string(),
        );
    }
    if toks[i].is_ident("rand")
        && toks.get(i + 1).map(|t| t.is_punct(':')) == Some(true)
        && toks.get(i + 2).map(|t| t.is_punct(':')) == Some(true)
        && toks.get(i + 3).map(|t| t.is_ident("random")) == Some(true)
    {
        push(
            out,
            path,
            &toks[i],
            Rule::AdHocRng,
            "ad-hoc RNG: `rand::random` is seeded from the OS; all randomness must \
             derive from the run seed"
                .to_string(),
        );
    }
}

fn scan_hot_alloc(
    path: &str,
    toks: &[Tok],
    i: usize,
    spans: &[(String, usize, usize)],
    out: &mut Vec<Finding>,
) {
    let fn_name = spans
        .iter()
        .find(|&&(_, s, e)| i >= s && i < e)
        .map(|(n, _, _)| n.as_str())
        .unwrap_or("?");
    let hot = |what: &str| {
        format!(
            "allocation in pinned hot path `{fn_name}`: {what} (this function is held \
             at 0 allocs/event by trace_zero_cost.rs)"
        )
    };
    if toks[i].is_punct('.')
        && toks.get(i + 1).map(|t| t.is_ident("clone")) == Some(true)
        && toks.get(i + 2).map(|t| t.is_punct('(')) == Some(true)
    {
        push(out, path, &toks[i + 1], Rule::HotAlloc, hot("`.clone()`"));
    }
    if toks[i].is_punct('.') && toks.get(i + 1).map(|t| t.is_ident("to_vec")) == Some(true) {
        push(out, path, &toks[i + 1], Rule::HotAlloc, hot("`.to_vec()`"));
    }
    let path_call = |head: &str, tail: &str| {
        toks[i].is_ident(head)
            && toks.get(i + 1).map(|t| t.is_punct(':')) == Some(true)
            && toks.get(i + 2).map(|t| t.is_punct(':')) == Some(true)
            && toks.get(i + 3).map(|t| t.is_ident(tail)) == Some(true)
    };
    if path_call("Vec", "new") {
        push(out, path, &toks[i], Rule::HotAlloc, hot("`Vec::new`"));
    }
    if path_call("Box", "new") {
        push(out, path, &toks[i], Rule::HotAlloc, hot("`Box::new`"));
    }
    if toks[i].is_ident("format") && toks.get(i + 1).map(|t| t.is_punct('!')) == Some(true) {
        push(out, path, &toks[i], Rule::HotAlloc, hot("`format!`"));
    }
}
