//! detlint — workspace determinism & hot-path static analysis.
//!
//! The repo's load-bearing invariant is bit-identical records at any
//! `--threads` and any `--shards`. The equivalence fixtures enforce that
//! dynamically; detlint enforces the source-level contracts that make it
//! hold *statically*, before a 100k-net world shakes a hazard out:
//!
//! ```text
//! detlint --workspace [--json] [--manifest tools/detlint/detlint.toml]
//! detlint path/to/file.rs dir/ ...
//! ```
//!
//! Exit codes: 0 clean, 1 findings (including stale allows), 2 usage or
//! I/O error. Suppress a finding with an in-source annotation carrying a
//! mandatory reason:
//!
//! ```text
//! // detlint::allow(hash-iter): u64 sum over values is order-independent
//! ```
//!
//! An allow that no longer suppresses anything is itself an error
//! (`stale-allow`), so the annotation set stays honest. See
//! ARCHITECTURE.md "Determinism contract & static analysis".

mod lexer;
mod manifest;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use manifest::Manifest;
use rules::Finding;

struct Args {
    workspace: bool,
    paths: Vec<PathBuf>,
    manifest: Option<PathBuf>,
    json: bool,
}

const DEFAULT_MANIFEST: &str = "tools/detlint/detlint.toml";

fn usage() -> String {
    "usage: detlint (--workspace | PATH...) [--manifest FILE] [--json]".to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        paths: Vec::new(),
        manifest: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--manifest" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--manifest needs a path".to_string())?;
                args.manifest = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()))
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if args.workspace != args.paths.is_empty() {
        // Exactly one of --workspace / explicit paths.
        return Err(usage());
    }
    Ok(args)
}

/// Workspace scan: every `.rs` under a `src` directory of `crates/*`,
/// `tools/*` or the umbrella `src/`, skipping vendored shims and build
/// output. Test fixtures (known-bad snippets) live under `tests/` and are
/// deliberately out of scope.
fn workspace_files() -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for root in ["crates", "tools", "src"] {
        let root = Path::new(root);
        if root.is_dir() {
            walk(root, &mut files, true)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>, require_src: bool) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | "vendor" | ".git") {
                continue;
            }
            walk(&path, out, require_src)?;
        } else if name.ends_with(".rs") {
            let p = path.to_string_lossy().replace('\\', "/");
            if !require_src || p.split('/').any(|c| c == "src") {
                out.push(path);
            }
        }
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn emit(findings: &[Finding], json: bool) {
    if json {
        println!("[");
        for (i, f) in findings.iter().enumerate() {
            let comma = if i + 1 < findings.len() { "," } else { "" };
            println!(
                "  {{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}{comma}",
                json_escape(&f.file),
                f.line,
                f.col,
                f.rule.id(),
                json_escape(&f.message)
            );
        }
        println!("]");
    } else {
        for f in findings {
            println!(
                "{}:{}:{}: detlint[{}]: {}",
                f.file,
                f.line,
                f.col,
                f.rule.id(),
                f.message
            );
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;

    let manifest = match &args.manifest {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
            Manifest::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?
        }
        None => {
            let p = Path::new(DEFAULT_MANIFEST);
            if p.is_file() {
                let text =
                    std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
                Manifest::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?
            } else {
                Manifest::default()
            }
        }
    };

    let files = if args.workspace {
        workspace_files()?
    } else {
        let mut files = Vec::new();
        for p in &args.paths {
            if p.is_dir() {
                walk(p, &mut files, false)?;
            } else if p.is_file() {
                files.push(p.clone());
            } else {
                return Err(format!("{}: no such file or directory", p.display()));
            }
        }
        files.sort();
        files
    };

    let mut findings = Vec::new();
    for path in &files {
        let rel = path.to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        findings.extend(rules::check_file(&rel, &src, &manifest));
    }

    emit(&findings, args.json);
    if findings.is_empty() {
        if !args.json {
            println!(
                "detlint: clean — {} file(s), 0 findings, 0 stale allows",
                files.len()
            );
        }
        Ok(ExitCode::SUCCESS)
    } else {
        if !args.json {
            eprintln!(
                "detlint: {} finding(s) in {} file(s)",
                findings.len(),
                files.len()
            );
        }
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("detlint: {msg}");
            ExitCode::from(2)
        }
    }
}
