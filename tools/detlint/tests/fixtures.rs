//! Integration tests over the fixture corpus: one known-bad and one
//! allowed twin per rule, driven through the real binary with `--json`.
//!
//! Positions are pinned exactly (line AND column) so a lexer or scanner
//! regression that shifts diagnostics — even while still "finding" the
//! site — fails loudly.

use std::process::Command;

const MANIFEST: &str = "tests/fixtures/manifest.toml";

/// Run the detlint binary on one fixture and return (exit_code, stdout).
fn run(fixture: &str) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
        .args(["--json", "--manifest", MANIFEST, fixture])
        .output()
        .expect("spawn detlint");
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    (out.status.code().expect("exit code"), stdout)
}

/// Assert the JSON output contains an entry at exactly (line, col) for `rule`.
fn assert_finding(json: &str, fixture: &str, line: u32, col: u32, rule: &str) {
    let needle =
        format!("\"file\":\"{fixture}\",\"line\":{line},\"col\":{col},\"rule\":\"{rule}\"");
    assert!(
        json.contains(&needle),
        "expected {rule} at {fixture}:{line}:{col}, got:\n{json}"
    );
}

/// Count findings in the JSON output.
fn count_findings(json: &str) -> usize {
    json.matches("\"rule\":").count()
}

fn assert_clean(fixture: &str) {
    let (code, json) = run(fixture);
    assert_eq!(code, 0, "{fixture} should be clean, got:\n{json}");
    assert_eq!(
        count_findings(&json),
        0,
        "{fixture}: unexpected findings:\n{json}"
    );
}

#[test]
fn hash_iter_bad_flags_method_and_for_loop_forms() {
    let f = "tests/fixtures/hash_iter_bad.rs";
    let (code, json) = run(f);
    assert_eq!(code, 1);
    assert_finding(&json, f, 10, 20, "hash-iter"); // self.flows.values()
    assert_finding(&json, f, 14, 24, "hash-iter"); // for k in &self.flows
    assert_finding(&json, f, 23, 14, "hash-iter"); // for s in seen (let-bound HashSet)
    assert_eq!(count_findings(&json), 3, "{json}");
}

#[test]
fn hash_iter_allowed_is_clean() {
    assert_clean("tests/fixtures/hash_iter_allowed.rs");
}

#[test]
fn wall_clock_bad_flags_instant_and_system_time() {
    let f = "tests/fixtures/wall_clock_bad.rs";
    let (code, json) = run(f);
    assert_eq!(code, 1);
    assert_finding(&json, f, 2, 26, "wall-clock"); // use ... SystemTime
    assert_finding(&json, f, 5, 13, "wall-clock"); // Instant::now()
    assert_finding(&json, f, 6, 13, "wall-clock"); // SystemTime::now()
    assert_eq!(count_findings(&json), 3, "{json}");
}

#[test]
fn wall_clock_allowed_is_clean() {
    assert_clean("tests/fixtures/wall_clock_allowed.rs");
}

#[test]
fn wall_clock_exempt_path_needs_no_annotation() {
    assert_clean("tests/fixtures/wall_clock_exempt.rs");
}

#[test]
fn rng_bad_flags_thread_rng_and_rand_random() {
    let f = "tests/fixtures/rng_bad.rs";
    let (code, json) = run(f);
    assert_eq!(code, 1);
    assert_finding(&json, f, 3, 25, "ad-hoc-rng"); // rand::thread_rng()
    assert_finding(&json, f, 4, 18, "ad-hoc-rng"); // rand::random()
    assert_eq!(count_findings(&json), 2, "{json}");
}

#[test]
fn rng_allowed_is_clean() {
    assert_clean("tests/fixtures/rng_allowed.rs");
}

#[test]
fn float_accum_bad_flags_sum_and_fold() {
    let f = "tests/fixtures/float_accum_bad.rs";
    let (code, json) = run(f);
    assert_eq!(code, 1);
    // Each site fires twice: the hash iteration itself, then the float
    // accumulation layered on top of it.
    assert_finding(&json, f, 11, 18, "hash-iter");
    assert_finding(&json, f, 11, 27, "float-accum"); // .sum::<f64>()
    assert_finding(&json, f, 15, 18, "hash-iter");
    assert_finding(&json, f, 15, 27, "float-accum"); // .fold(0.0f64, ..)
    assert_eq!(count_findings(&json), 4, "{json}");
}

#[test]
fn float_accum_allowed_one_annotation_covers_both_rules() {
    assert_clean("tests/fixtures/float_accum_allowed.rs");
}

#[test]
fn hot_alloc_bad_flags_all_five_forms_only_in_hot_fn() {
    let f = "tests/fixtures/hot_alloc_bad.rs";
    let (code, json) = run(f);
    assert_eq!(code, 1);
    assert_finding(&json, f, 4, 13, "hot-alloc"); // Vec::new
    assert_finding(&json, f, 5, 16, "hot-alloc"); // .to_vec()
    assert_finding(&json, f, 6, 13, "hot-alloc"); // Box::new
    assert_finding(&json, f, 7, 13, "hot-alloc"); // format!
    assert_finding(&json, f, 8, 19, "hot-alloc"); // .clone()

    // cold_fn allocates identically but is not in the manifest: no findings.
    assert_eq!(count_findings(&json), 5, "{json}");
}

#[test]
fn hot_alloc_allowed_is_clean() {
    assert_clean("tests/fixtures/hot_alloc_allowed.rs");
}

#[test]
fn stale_allow_is_itself_a_finding() {
    let f = "tests/fixtures/stale_allow.rs";
    let (code, json) = run(f);
    assert_eq!(code, 1);
    assert_finding(&json, f, 4, 5, "stale-allow");
    assert_eq!(count_findings(&json), 1, "{json}");
}

#[test]
fn bad_allow_missing_reason_and_unknown_rule_suppress_nothing() {
    let f = "tests/fixtures/bad_allow.rs";
    let (code, json) = run(f);
    assert_eq!(code, 1);
    assert_finding(&json, f, 7, 5, "bad-allow"); // no reason
    assert_finding(&json, f, 8, 5, "wall-clock"); // NOT suppressed by the bad allow
    assert_finding(&json, f, 11, 1, "bad-allow"); // unknown rule id
    assert_eq!(count_findings(&json), 3, "{json}");
}

#[test]
fn whole_corpus_totals_are_stable() {
    let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
        .args(["--json", "--manifest", MANIFEST, "tests/fixtures"])
        .output()
        .expect("spawn detlint");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert_eq!(count_findings(&json), 21, "{json}");
}

#[test]
fn usage_error_exits_2() {
    // --workspace and explicit paths are mutually exclusive.
    let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
        .args(["--workspace", "tests/fixtures"])
        .output()
        .expect("spawn detlint");
    assert_eq!(out.status.code(), Some(2));
}
