// Exempt via [wall-clock-exempt] in the manifest: the profiling
// subsystem reads the wall clock without annotations.
use std::time::Instant;

fn profile() -> std::time::Duration {
    Instant::now().elapsed()
}
