// Allowed twin: both rules on the same line, one annotation.
use std::collections::HashMap;

struct Rates {
    bps: HashMap<u64, f64>,
}

impl Rates {
    fn total(&self) -> f64 {
        // detlint::allow(hash-iter, float-accum): diagnostics print only, tolerance far above f64 ulps
        self.bps.values().sum::<f64>()
    }
}
