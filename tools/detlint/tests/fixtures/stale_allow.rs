// Known-bad: a well-formed allow that suppresses nothing must itself be
// flagged, or the annotation set rots.
fn clean() -> u64 {
    // detlint::allow(wall-clock): this line stopped reading the clock long ago
    42
}
