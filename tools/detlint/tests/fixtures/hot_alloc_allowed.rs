// Allowed twin: an amortized allocation in a pinned hot function.
fn hot_fn(xs: &[u32]) -> Vec<u32> {
    // detlint::allow(hot-alloc): amortized — fires once per new flow, steady state early-returns
    xs.to_vec()
}
