// Known-bad: float accumulation over an unordered iterator — float
// addition is not associative, so the total depends on hash order.
use std::collections::HashMap;

struct Rates {
    bps: HashMap<u64, f64>,
}

impl Rates {
    fn total(&self) -> f64 {
        self.bps.values().sum::<f64>()
    }

    fn peak(&self) -> f64 {
        self.bps.values().fold(0.0f64, |a, &b| a + b)
    }
}
