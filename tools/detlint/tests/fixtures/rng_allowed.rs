// Allowed twin (hypothetical: a diagnostics-only path).
fn jitter() -> u64 {
    // detlint::allow(ad-hoc-rng): operator-facing diagnostics only, never in a record
    rand::random()
}
