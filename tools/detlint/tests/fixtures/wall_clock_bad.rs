// Known-bad: wall-clock reads outside the profiling subsystem.
use std::time::{Instant, SystemTime};

fn timestamp() -> f64 {
    let t = Instant::now();
    let _ = SystemTime::now();
    t.elapsed().as_secs_f64()
}
