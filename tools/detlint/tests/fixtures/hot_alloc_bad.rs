// Known-bad: allocations inside a manifest-pinned hot function. The same
// tokens in a non-hot function are fine.
fn hot_fn(xs: &[u32]) -> Vec<u32> {
    let v = Vec::new();
    let w = xs.to_vec();
    let b = Box::new(1u32);
    let s = format!("{}", b);
    let _ = (v, s.clone());
    w
}

fn cold_fn(xs: &[u32]) -> Vec<u32> {
    let _ = format!("{}", xs.len());
    xs.to_vec()
}
