// Known-bad: unordered iteration over hash collections in simulation code.
use std::collections::{HashMap, HashSet};

struct State {
    flows: HashMap<u64, u64>,
}

impl State {
    fn sum(&self) -> u64 {
        self.flows.values().sum()
    }

    fn visit(&self) {
        for k in &self.flows {
            let _ = k;
        }
    }
}

fn local_set() -> usize {
    let seen: HashSet<u32> = HashSet::new();
    let mut n = 0;
    for s in seen {
        n += s as usize;
    }
    n
}
