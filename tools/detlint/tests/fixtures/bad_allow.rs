// Known-bad: malformed allows. A reason is mandatory, rule names must be
// real, and a malformed allow suppresses nothing (the Instant::now below
// still fires).
use std::time::Instant;

fn wall() -> Instant {
    // detlint::allow(wall-clock)
    Instant::now()
}

// detlint::allow(no-such-rule): typo'd rule id
fn other() {}
