// Known-bad: OS-seeded randomness; everything must derive from the run seed.
fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    let x: u64 = rand::random();
    x
}
