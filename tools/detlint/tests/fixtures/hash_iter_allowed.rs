// Allowed twin: same iteration sites, each justified with a reason.
use std::collections::HashMap;

struct State {
    flows: HashMap<u64, u64>,
}

impl State {
    fn sum(&self) -> u64 {
        // detlint::allow(hash-iter): u64 addition is commutative
        self.flows.values().sum()
    }

    fn purge(&mut self) {
        self.flows.retain(|_, v| *v > 0) // detlint::allow(hash-iter): per-entry predicate
    }
}
