// Allowed twin: telemetry-only wall reads carry reasons.
use std::time::Instant;

fn wall() -> f64 {
    // detlint::allow(wall-clock): wall telemetry only, never recorded
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
