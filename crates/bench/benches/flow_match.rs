//! Microbenchmark: flow-label matching.
//!
//! Label matching is the innermost loop of both the filter table and the
//! shadow cache; narrow (host-pair) and wide (wildcard) labels must both
//! be branch-cheap.

use aitf_packet::{Addr, FlowLabel, Header, Protocol};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_match(c: &mut Criterion) {
    let attacker = Addr::new(10, 9, 0, 7);
    let victim = Addr::new(10, 1, 0, 1);
    let host_pair = FlowLabel::src_dst(attacker, victim);
    let narrow = host_pair.with_proto(Protocol::Udp).with_dst_port(53);
    let wide = FlowLabel::net_to_host("10.9.0.0/16".parse().unwrap(), victim);
    let hdr_hit = Header::udp(attacker, victim, 4000, 53);
    let hdr_miss = Header::udp(Addr::new(10, 8, 0, 7), victim, 4000, 53);

    let mut group = c.benchmark_group("flow_match");
    group.bench_function("host_pair_hit", |b| {
        b.iter(|| black_box(host_pair.matches(black_box(&hdr_hit))))
    });
    group.bench_function("host_pair_miss", |b| {
        b.iter(|| black_box(host_pair.matches(black_box(&hdr_miss))))
    });
    group.bench_function("narrow_hit", |b| {
        b.iter(|| black_box(narrow.matches(black_box(&hdr_hit))))
    });
    group.bench_function("prefix_hit", |b| {
        b.iter(|| black_box(wide.matches(black_box(&hdr_hit))))
    });
    group.bench_function("covers", |b| {
        b.iter(|| black_box(wide.covers(black_box(&narrow))))
    });
    group.finish();
}

fn quick_config() -> Criterion {
    // Short, stable runs: the suite has many benchmarks and CI time is
    // better spent on breadth than on sub-nanosecond precision.
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick_config(); targets = bench_match);
criterion_main!(benches);
