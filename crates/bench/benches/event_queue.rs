//! Microbenchmark: the simulator core.
//!
//! Event scheduling/dispatch bounds how much virtual traffic a wall-clock
//! second can simulate; this pins the cost of the heap operations.

use aitf_netsim::{EventKind, EventQueue, NodeId, SimTime};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_schedule_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &backlog in &[0usize, 1024, 65_536] {
        group.bench_with_input(
            BenchmarkId::new("schedule_then_pop", backlog),
            &backlog,
            |b, &backlog| {
                let mut q = EventQueue::new();
                for i in 0..backlog {
                    q.schedule(
                        SimTime(1_000_000 + i as u64),
                        EventKind::Timer {
                            node: NodeId(0),
                            token: i as u64,
                        },
                    );
                }
                b.iter(|| {
                    q.schedule(
                        SimTime(0),
                        EventKind::Timer {
                            node: NodeId(0),
                            token: 0,
                        },
                    );
                    black_box(q.pop());
                });
            },
        );
    }
    group.finish();
}

fn quick_config() -> Criterion {
    // Short, stable runs: the suite has many benchmarks and CI time is
    // better spent on breadth than on sub-nanosecond precision.
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick_config(); targets = bench_schedule_pop);
criterion_main!(benches);
