//! Microbenchmark: traceback providers.
//!
//! Route-record observation happens per received packet at every victim;
//! sampling reconstruction happens per filtering request. Both must stay
//! out of the way of the data path.

use aitf_packet::{Addr, FlowLabel, Header, Packet, RouteRecord, TracebackMark, TrafficClass};
use aitf_traceback::{RouteRecordTraceback, SamplingTraceback, Traceback};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn attack_packet() -> Packet {
    let mut p = Packet::data(
        1,
        Header::udp(Addr::new(10, 9, 0, 7), Addr::new(10, 1, 0, 1), 1, 2),
        TrafficClass::Attack,
        100,
    );
    p.route_record = RouteRecord::from_hops([
        Addr::new(10, 9, 0, 254),
        Addr::new(10, 8, 0, 254),
        Addr::new(10, 1, 0, 254),
    ]);
    p.mark = Some(TracebackMark {
        router: Addr::new(10, 9, 0, 254),
        distance: 2,
    });
    p
}

fn bench_observe(c: &mut Criterion) {
    let pkt = attack_packet();
    let mut group = c.benchmark_group("traceback_observe");
    group.bench_function("route_record", |b| {
        let mut tb = RouteRecordTraceback::new(4096);
        b.iter(|| tb.observe(black_box(&pkt)));
    });
    group.bench_function("sampling", |b| {
        let mut tb = SamplingTraceback::new(4096, 3);
        b.iter(|| tb.observe(black_box(&pkt)));
    });
    group.finish();
}

fn bench_path_query(c: &mut Criterion) {
    let pkt = attack_packet();
    let flow = FlowLabel::src_dst(Addr::new(10, 9, 0, 7), Addr::new(10, 1, 0, 1));
    let mut rr = RouteRecordTraceback::new(4096);
    rr.observe(&pkt);
    c.bench_function("traceback_attack_path_rr", |b| {
        b.iter(|| black_box(rr.attack_path(black_box(&flow))));
    });
}

fn quick_config() -> Criterion {
    // Short, stable runs: the suite has many benchmarks and CI time is
    // better spent on breadth than on sub-nanosecond precision.
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick_config(); targets = bench_observe, bench_path_query);
criterion_main!(benches);
