//! Microbenchmark: the wire-speed filter table.
//!
//! Quantifies the paper's premise that per-packet filter lookups must be
//! cheap even at high occupancy, and that installation/expiry churn at the
//! contract rate is affordable.

use aitf_filter::{EvictionPolicy, FilterTable};
use aitf_netsim::{SimDuration, SimTime};
use aitf_packet::{Addr, FlowLabel, Header};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn filled_table(n: usize) -> FilterTable {
    let mut t = FilterTable::new(n + 1);
    for i in 0..n {
        let label = FlowLabel::src_dst(
            Addr::new(10, (i / 250) as u8 + 1, (i % 250) as u8, 7),
            Addr::new(10, 1, 0, 1),
        );
        t.install(label, SimTime::ZERO, SimDuration::from_secs(3600))
            .expect("capacity");
    }
    t
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_table_lookup");
    for &occupancy in &[64usize, 1024, 4096] {
        let mut table = filled_table(occupancy);
        // Hit: matches an installed filter (same dst host bucket).
        let hit = Header::udp(Addr::new(10, 1, 0, 7), Addr::new(10, 1, 0, 1), 1, 2);
        // Miss: different destination, empty bucket.
        let miss = Header::udp(Addr::new(10, 9, 0, 7), Addr::new(10, 2, 0, 1), 1, 2);
        group.bench_with_input(BenchmarkId::new("hit", occupancy), &occupancy, |b, _| {
            b.iter(|| black_box(table.matches(black_box(&hit), SimTime(1))));
        });
        group.bench_with_input(BenchmarkId::new("miss", occupancy), &occupancy, |b, _| {
            b.iter(|| black_box(table.matches(black_box(&miss), SimTime(1))));
        });
    }
    group.finish();
}

fn bench_install_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_table_install");
    for policy in [EvictionPolicy::Reject, EvictionPolicy::EvictSoonestExpiring] {
        let name = format!("{policy:?}");
        group.bench_function(BenchmarkId::new("install_remove", name), |b| {
            let mut table = FilterTable::with_policy(4096, policy);
            let label = FlowLabel::src_dst(Addr::new(10, 9, 0, 7), Addr::new(10, 1, 0, 1));
            b.iter(|| {
                table
                    .install(black_box(label), SimTime::ZERO, SimDuration::from_secs(60))
                    .expect("space available");
                assert!(table.remove(&label));
            });
        });
    }
    group.finish();
}

fn bench_purge(c: &mut Criterion) {
    c.bench_function("filter_table_purge_4096_live", |b| {
        let mut table = filled_table(4096);
        // Nothing is expired: this measures the scan cost alone.
        b.iter(|| table.purge_expired(black_box(SimTime(1))));
    });
}

fn quick_config() -> Criterion {
    // Short, stable runs: the suite has many benchmarks and CI time is
    // better spent on breadth than on sub-nanosecond precision.
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick_config(); targets = bench_lookup, bench_install_remove, bench_purge);
criterion_main!(benches);
