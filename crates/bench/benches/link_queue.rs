//! Microbenchmark: link enqueue/dequeue.
//!
//! The drop-tail transmit queue is the other half of the packet hot path:
//! every send enqueues, every `LinkTxDone` dequeues and schedules delivery.
//! The ring buffers are pre-sized for their byte capacity, so steady-state
//! churn must not grow them.

use aitf_netsim::{
    EventKind, EventQueue, Link, LinkDirection, LinkId, LinkParams, NodeId, SimDuration, SimTime,
};
use aitf_packet::{Addr, Header, Packet, TrafficClass};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn pkt(id: u64, size: u32) -> Packet {
    let h = Header::udp(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), 1, 2);
    Packet::data(id, h, TrafficClass::Legit, size)
}

/// Saturated-transmitter steady state: every `LinkTxDone` retires one
/// packet and a fresh one replaces it, so the backlog (and therefore every
/// buffer) stays at its high-water mark — the pattern a flooded gateway
/// link runs millions of times per experiment.
fn bench_enqueue_dequeue(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_queue");
    for &backlog in &[1usize, 16, 48] {
        group.bench_with_input(
            BenchmarkId::new("event_cycle_backlog", backlog),
            &backlog,
            |b, &backlog| {
                let params = LinkParams::ethernet(1_000_000_000, SimDuration::from_micros(10));
                let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), params);
                let mut q = EventQueue::new();
                // Prime: one in flight plus `backlog` queued packets.
                for i in 0..=backlog as u64 {
                    link.enqueue(SimTime(0), LinkDirection::AToB, pkt(i, 1000), &mut q);
                }
                let mut id = backlog as u64 + 1;
                b.iter(|| {
                    let ev = q.pop().expect("saturated link always has events");
                    match ev.kind {
                        EventKind::LinkTxDone { dir, .. } => {
                            link.on_tx_done(ev.time, dir, &mut q);
                            // Keep the transmitter saturated.
                            link.enqueue(ev.time, LinkDirection::AToB, pkt(id, 1000), &mut q);
                            id += 1;
                        }
                        EventKind::Deliver { packet, .. } => {
                            black_box(packet.id);
                        }
                        EventKind::Timer { .. } => unreachable!("no timers armed"),
                    }
                    black_box(link.queued_bytes(LinkDirection::AToB))
                });
            },
        );
    }
    group.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick_config(); targets = bench_enqueue_dequeue);
criterion_main!(benches);
