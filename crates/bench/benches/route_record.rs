//! Microbenchmark: route-record append and clone.
//!
//! Every AITF border router pushes one hop onto the record of every data
//! packet it forwards, and every queued copy clones the record. The inline
//! representation makes both operations allocation-free up to
//! [`INLINE_ROUTE_RECORD`] hops; this pins the per-operation cost on both
//! sides of the spill boundary.

use aitf_packet::{Addr, RouteRecord, INLINE_ROUTE_RECORD, MAX_ROUTE_RECORD};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_record");
    for &hops in &[4usize, INLINE_ROUTE_RECORD, MAX_ROUTE_RECORD] {
        group.bench_with_input(BenchmarkId::new("append", hops), &hops, |b, &hops| {
            b.iter(|| {
                let mut rr = RouteRecord::new();
                for i in 0..hops {
                    let _ = rr.push(Addr::new(10, 0, i as u8, 254));
                }
                black_box(rr.len())
            });
        });
    }
    group.finish();
}

fn bench_clone(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_record");
    for &hops in &[4usize, INLINE_ROUTE_RECORD, MAX_ROUTE_RECORD] {
        let rr = RouteRecord::from_hops((0..hops).map(|i| Addr::new(10, 0, i as u8, 254)));
        group.bench_with_input(BenchmarkId::new("clone", hops), &rr, |b, rr| {
            b.iter(|| black_box(rr.clone()));
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_record");
    let rr = RouteRecord::from_hops((0..MAX_ROUTE_RECORD).map(|i| Addr::new(10, 0, i as u8, 254)));
    let probe = Addr::new(10, 0, (MAX_ROUTE_RECORD - 1) as u8, 254);
    group.bench_function("position_worst_case", |b| {
        b.iter(|| black_box(rr.position(black_box(probe))));
    });
    group.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick_config();
    targets = bench_append, bench_clone, bench_lookup);
criterion_main!(benches);
