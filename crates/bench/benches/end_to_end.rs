//! Macrobenchmark: whole-protocol round on the Figure 1 world.
//!
//! One iteration builds the paper's topology, launches a flood and runs
//! two seconds of virtual time — covering detection, request propagation,
//! the 3-way handshake and the attacker-side block. This is the number
//! that says how much AITF world a wall-clock second simulates.

use aitf_attack::FloodSource;
use aitf_core::{AitfConfig, HostPolicy};
use aitf_netsim::SimDuration;
use aitf_scenario::fig1;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_cooperative_round(c: &mut Criterion) {
    c.bench_function("end_to_end_fig1_2s", |b| {
        b.iter(|| {
            let mut f = fig1(AitfConfig::default(), 42, HostPolicy::Compliant);
            let target = f.world.host_addr(f.victim);
            f.world
                .add_app(f.attacker, Box::new(FloodSource::new(target, 1000, 500)));
            f.world.sim.run_for(SimDuration::from_secs(2));
            black_box(f.world.host(f.victim).counters().rx_attack_pkts)
        });
    });
}

fn bench_forwarding_throughput(c: &mut Criterion) {
    // Pure data-plane: no attack, just a CBR stream across 6 routers.
    c.bench_function("end_to_end_forwarding_5k_pkts", |b| {
        b.iter(|| {
            let mut f = fig1(AitfConfig::default(), 42, HostPolicy::Compliant);
            let target = f.world.host_addr(f.victim);
            f.world.add_app(
                f.attacker,
                Box::new(aitf_attack::LegitClient::new(target, 5000, 500)),
            );
            f.world.sim.run_for(SimDuration::from_secs(1));
            black_box(f.world.host(f.victim).counters().rx_legit_pkts)
        });
    });
}

fn quick_config() -> Criterion {
    // Short, stable runs: the suite has many benchmarks and CI time is
    // better spent on breadth than on sub-nanosecond precision.
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick_config(); targets = bench_cooperative_round, bench_forwarding_throughput);
criterion_main!(benches);
