//! Microbenchmark: contract policing.
//!
//! Every filtering request crosses a token bucket; a border router under a
//! request storm polices at line rate, so `try_acquire` must be a handful
//! of integer operations.

use aitf_filter::{RateLimiterBank, TokenBucket};
use aitf_netsim::SimTime;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_bucket(c: &mut Criterion) {
    c.bench_function("token_bucket_try_acquire", |b| {
        let mut tb = TokenBucket::new(100.0, 100);
        let mut now = 0u64;
        b.iter(|| {
            now += 1_000_000;
            black_box(tb.try_acquire(SimTime(now)))
        });
    });
}

fn bench_bank(c: &mut Criterion) {
    c.bench_function("rate_limiter_bank_16_keys", |b| {
        let mut bank = RateLimiterBank::new(100.0, 100);
        for k in 0..16 {
            bank.set_contract(k, 100.0, 100);
        }
        let mut now = 0u64;
        let mut key = 0u64;
        b.iter(|| {
            now += 1_000_000;
            key = (key + 1) % 16;
            black_box(bank.try_acquire(key, SimTime(now)))
        });
    });
}

fn quick_config() -> Criterion {
    // Short, stable runs: the suite has many benchmarks and CI time is
    // better spent on breadth than on sub-nanosecond precision.
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick_config(); targets = bench_bucket, bench_bank);
criterion_main!(benches);
