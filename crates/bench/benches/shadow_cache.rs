//! Microbenchmark: the DRAM shadow cache.
//!
//! The shadow is consulted on the victim-gateway data path for every
//! non-filtered packet (on-off detection), so both the miss path and the
//! reactivation hit must be cheap even with thousands of live shadows —
//! the "DRAM is cheap" half of the paper's economy.

use aitf_filter::ShadowCache;
use aitf_netsim::{SimDuration, SimTime};
use aitf_packet::{Addr, FlowLabel, Header};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn filled(n: usize) -> ShadowCache {
    let mut c = ShadowCache::new(n + 1);
    for i in 0..n {
        let label = FlowLabel::src_dst(
            Addr::new(10, (i / 250) as u8 + 1, (i % 250) as u8, 7),
            Addr::new(10, 1, 0, 1),
        );
        c.insert(
            label,
            i as u64,
            SimTime::ZERO,
            SimDuration::from_secs(3600),
            1,
        );
    }
    c
}

fn bench_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow_cache_check");
    for &occupancy in &[1024usize, 6000, 65_536] {
        let mut cache = filled(occupancy);
        let hit = Header::udp(Addr::new(10, 1, 0, 7), Addr::new(10, 1, 0, 1), 1, 2);
        let miss = Header::udp(Addr::new(10, 9, 0, 7), Addr::new(10, 2, 0, 1), 1, 2);
        group.bench_with_input(BenchmarkId::new("hit", occupancy), &occupancy, |b, _| {
            b.iter(|| black_box(cache.check_reactivation(black_box(&hit), SimTime(1))));
        });
        group.bench_with_input(BenchmarkId::new("miss", occupancy), &occupancy, |b, _| {
            b.iter(|| black_box(cache.check_reactivation(black_box(&miss), SimTime(1))));
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("shadow_cache_insert_refresh", |b| {
        let mut cache = filled(6000);
        let label = FlowLabel::src_dst(Addr::new(10, 1, 0, 7), Addr::new(10, 1, 0, 1));
        b.iter(|| {
            cache.insert(
                black_box(label),
                1,
                SimTime(1),
                SimDuration::from_secs(60),
                1,
            );
        });
    });
}

fn quick_config() -> Criterion {
    // Short, stable runs: the suite has many benchmarks and CI time is
    // better spent on breadth than on sub-nanosecond precision.
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick_config(); targets = bench_check, bench_insert);
criterion_main!(benches);
