//! Microbenchmark: end-to-end event dispatch on the simulator hot path.
//!
//! A chain of border-router-like relays forwards a steady packet stream
//! over finite-bandwidth links; every relay stamps the route record the
//! way a real AITF border router does. This exercises the full datapath
//! (event queue, link transmit queues, packet moves, route-record append)
//! and — via a counting global allocator — reports **heap allocations per
//! dispatched event**, the number the allocation-free refactor ratchets.

use aitf_netsim::{
    impl_node_any, Context, LinkId, LinkParams, NetworkBuilder, Node, SimDuration, Simulator,
};
use aitf_packet::alloc_probe::CountingAlloc;
use aitf_packet::{Addr, Header, Packet, TrafficClass};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Floods fixed-size packets towards `dst` at a steady rate, re-armed by
/// timer — the shape of every traffic source in the experiment suite.
struct Source {
    dst: Addr,
    gap: SimDuration,
}

impl Node for Source {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.gap, 0);
    }

    fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
        let id = ctx.next_packet_id();
        let h = Header::udp(Addr::new(10, 0, 0, 1), self.dst, 7, 9);
        let link = ctx.my_links()[0];
        ctx.send(link, Packet::data(id, h, TrafficClass::Attack, 600));
        ctx.set_timer(self.gap, 0);
    }

    impl_node_any!();
}

/// Forwards every arrival out of its other link, stamping the route record
/// the way a border router's data plane does.
struct Relay {
    addr: Addr,
}

impl Node for Relay {
    fn on_packet(&mut self, mut packet: Packet, link: LinkId, ctx: &mut Context<'_>) {
        packet.header.ttl = match packet.header.ttl.checked_sub(1) {
            Some(t) if t > 0 => t,
            _ => return,
        };
        let _ = packet.route_record.push(self.addr);
        // Borrow-safe link iteration: index the slice fresh each step
        // instead of copying it to a Vec (see ARCHITECTURE.md).
        for i in 0..ctx.my_links().len() {
            let l = ctx.my_links()[i];
            if l != link {
                ctx.send(l, packet);
                return;
            }
        }
    }

    impl_node_any!();
}

/// Swallows everything.
struct Sink;

impl Node for Sink {
    fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}

    impl_node_any!();
}

/// Builds a source → relay × `hops` → sink chain over finite links.
fn chain(hops: usize) -> Simulator {
    let mut b = NetworkBuilder::new(0xD15);
    let src = b.add_node();
    let relays: Vec<_> = (0..hops).map(|_| b.add_node()).collect();
    let sink = b.add_node();
    let params = LinkParams::ethernet(100_000_000, SimDuration::from_micros(50));
    let mut prev = src;
    for &r in &relays {
        b.connect(prev, r, params);
        prev = r;
    }
    b.connect(prev, sink, params);
    let mut sim = b.build();
    sim.install(
        src,
        Box::new(Source {
            dst: Addr::new(10, 0, 0, 99),
            gap: SimDuration::from_micros(100),
        }),
    );
    for (i, &r) in relays.iter().enumerate() {
        sim.install(
            r,
            Box::new(Relay {
                addr: Addr::new(10, 1, i as u8, 254),
            }),
        );
    }
    sim.install(sink, Box::new(Sink));
    sim
}

/// Steady-state allocations per dispatched event, after a warm-up run that
/// lets every queue and slab reach its high-water capacity.
fn measure_allocs_per_event(hops: usize) -> (f64, u64) {
    let mut sim = chain(hops);
    // Warm-up: fills link queues, the event slab and heap to steady state.
    sim.run_for(SimDuration::from_secs(2));
    let ev0 = sim.dispatched_events();
    let ((), allocs) = CountingAlloc::count(|| sim.run_for(SimDuration::from_secs(8)));
    let events = sim.dispatched_events() - ev0;
    (allocs as f64 / events.max(1) as f64, events)
}

fn bench_dispatch(c: &mut Criterion) {
    for &hops in &[4usize, 12] {
        let (allocs_per_event, events) = measure_allocs_per_event(hops);
        println!(
            "event_dispatch/steady_state_allocs/{hops} hops: \
             {allocs_per_event:.4} allocs/event over {events} events"
        );
    }

    let mut group = c.benchmark_group("event_dispatch");
    group.bench_function("chain_8hop_1s", |b| {
        b.iter(|| {
            let mut sim = chain(8);
            sim.run_for(SimDuration::from_secs(1));
            black_box(sim.dispatched_events())
        });
    });
    group.finish();

    // Throughput summary outside the timed harness: virtual events per
    // wall-clock second on a long steady run.
    let mut sim = chain(8);
    sim.run_for(SimDuration::from_secs(1));
    let start = std::time::Instant::now();
    let ev0 = sim.dispatched_events();
    sim.run_for(SimDuration::from_secs(30));
    let rate = (sim.dispatched_events() - ev0) as f64 / start.elapsed().as_secs_f64();
    println!("event_dispatch/events_per_sec: {rate:.0}");
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick_config(); targets = bench_dispatch);
criterion_main!(benches);
