//! E3 — Section IV-A.2: protection capacity `Nv = R1·T`.
//!
//! *"If a client is allowed to send R1 filtering requests per time unit to
//! the provider, then the client is protected against `Nv = R1·T`
//! simultaneous undesired flows."* (Paper example: R1 = 100/s, T = 1 min →
//! Nv = 6000.)
//!
//! We throw `F` simultaneous zombie flows at one victim and sweep `F`
//! across the `Nv` boundary. Below `Nv` every flow gets blocked; above it
//! the victim's own contract bucket (and the gateway's policing) caps how
//! many requests exist at once, so the excess flows keep leaking.

use aitf_core::{AitfConfig, Contract, HostPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{
    HostSel, ProbeSet, Role, Scenario, Side, TargetSel, TopologySpec, TrafficSpec,
};

use crate::harness::{run_spec, Table};

/// The declarative E3 scenario: a star of zombie networks (50 hosts each)
/// with exactly `flows` zombies armed, contract `r1` req/s, horizon `t`.
pub fn scenario(flows: usize, r1: f64, t: SimDuration) -> Scenario {
    let cfg = AitfConfig {
        t_long: t,
        client_contract: Contract::new(r1, (r1 as u32).max(1)),
        // The attacker side must not be the bottleneck being measured:
        // give the zombies' gateways ample request contracts.
        peer_contract: Contract::new(1000.0, 1000),
        // Measure the filter economy, not disconnection.
        grace: t * 100,
        detection_delay: SimDuration::from_millis(10),
        ..AitfConfig::default()
    };
    let hosts_per_net = 50;
    let nets = flows.div_ceil(hosts_per_net);
    Scenario::new(TopologySpec::star(
        nets,
        hosts_per_net,
        HostPolicy::Malicious,
        100_000_000,
    ))
    .config(cfg)
    .duration(t)
    .traffic(TrafficSpec::flood(
        HostSel::RoleFirst(Role::Attacker, flows),
        TargetSel::Victim,
        50,
        200,
    ))
    .probes(
        ProbeSet::new()
            .end(|w, m| {
                let vc = w.world.host(w.victim()).counters();
                m.set("requests", vc.requests_sent);
                m.set("self_limited", vc.requests_self_limited);
            })
            .filters_installed_on("blocked_flows", Side::Attacker)
            .leak_ratio("leak_r"),
    )
}

/// Runs one point: `flows` zombies, contract `r1` req/s, horizon `t`.
pub fn run_one(flows: usize, r1: f64, t: SimDuration, seed: u64) -> Outcome {
    scenario(flows, r1, t).run(seed)
}

/// The E3 scenario spec: offered-flow count swept across the `Nv`
/// boundary. Scaled-down contract so the capacity boundary is reachable
/// in simulation time: R1 = 10/s, T = 10 s → Nv = 100 flows.
pub fn spec(quick: bool) -> ScenarioSpec {
    let nv = 100u64;
    let fractions: &[f64] = if quick {
        &[0.5, 1.5]
    } else {
        &[0.25, 0.5, 1.0, 1.5, 2.0]
    };
    ScenarioSpec::new(
        "e3_protection_capacity",
        "E3 (§IV-A.2): protection capacity Nv = R1*T (R1=10/s, T=10s, Nv=100)",
        "§IV-A.2",
    )
    .expectation(
        "below Nv all flows get blocked; above Nv the request budget \
         saturates near R1*T = 100 and excess flows leak. Paper example at \
         full scale: R1 = 100/s, T = 60 s -> Nv = 6000 flows.",
    )
    .points(fractions.iter().map(|&frac| {
        Params::new()
            .with("flows", ((nv as f64) * frac) as u64)
            .with("f_over_nv", frac)
            .with("_r1", 10.0)
            .with("_t_s", 10u64)
    }))
    .runner(|p, ctx| {
        scenario(
            p.usize("flows"),
            p.f64("_r1"),
            SimDuration::from_secs(p.u64("_t_s")),
        )
        .shards(ctx.shards)
        .run(ctx.seed)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_capacity_every_flow_is_blocked() {
        let o = run_one(40, 10.0, SimDuration::from_secs(10), 5);
        assert_eq!(o.metrics.u64("blocked_flows"), 40, "{o:?}");
        assert!(o.metrics.f64("leak_r") < 0.2, "{o:?}");
    }

    #[test]
    fn above_capacity_requests_saturate() {
        let o = run_one(150, 10.0, SimDuration::from_secs(10), 6);
        // The victim cannot have emitted meaningfully more than R1*T + burst.
        let nv = 10.0 * 10.0;
        assert!(
            o.metrics.u64("requests") as f64 <= nv + 10.0 + 1.0,
            "requests beyond contract: {o:?}"
        );
        assert!(
            o.metrics.u64("self_limited") > 0,
            "the bucket must have withheld some: {o:?}"
        );
        // Not all flows can be blocked within T.
        assert!(o.metrics.u64("blocked_flows") < 150, "{o:?}");
    }
}
