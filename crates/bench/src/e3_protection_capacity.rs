//! E3 — Section IV-A.2: protection capacity `Nv = R1·T`.
//!
//! *"If a client is allowed to send R1 filtering requests per time unit to
//! the provider, then the client is protected against `Nv = R1·T`
//! simultaneous undesired flows."* (Paper example: R1 = 100/s, T = 1 min →
//! Nv = 6000.)
//!
//! We throw `F` simultaneous zombie flows at one victim and sweep `F`
//! across the `Nv` boundary. Below `Nv` every flow gets blocked; above it
//! the victim's own contract bucket (and the gateway's policing) caps how
//! many requests exist at once, so the excess flows keep leaking.

use aitf_attack::army::{arm_floods, ZombieArmySpec};
use aitf_attack::scenarios::star;
use aitf_core::{AitfConfig, Contract, HostPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;

use crate::harness::{run_spec, Table};

/// Result of one sweep point.
#[derive(Debug)]
pub struct CapacityPoint {
    /// Offered simultaneous undesired flows.
    pub flows: usize,
    /// The contract capacity `Nv = R1·T`.
    pub nv: f64,
    /// Requests the victim actually emitted.
    pub requests_sent: u64,
    /// Requests the victim withheld (its own bucket empty).
    pub self_limited: u64,
    /// Flows blocked at the attacker side by the end of the run.
    pub blocked_flows: u64,
    /// Leak ratio over the run.
    pub leak: f64,
    /// Simulator events dispatched during the run.
    pub events: u64,
}

/// Runs one point: `flows` zombies, contract `r1` req/s, horizon `t`.
pub fn run_one(flows: usize, r1: f64, t: SimDuration, seed: u64) -> CapacityPoint {
    let cfg = AitfConfig {
        t_long: t,
        client_contract: Contract::new(r1, (r1 as u32).max(1)),
        // The attacker side must not be the bottleneck being measured:
        // give the zombies' gateways ample request contracts.
        peer_contract: Contract::new(1000.0, 1000),
        // Measure the filter economy, not disconnection.
        grace: t * 100,
        detection_delay: SimDuration::from_millis(10),
        ..AitfConfig::default()
    };
    let hosts_per_net = 50;
    let nets = flows.div_ceil(hosts_per_net);
    let mut s = star(
        cfg,
        seed,
        nets,
        hosts_per_net,
        HostPolicy::Malicious,
        100_000_000,
    );
    // Trim to exactly `flows` zombies.
    let zombies: Vec<_> = s.zombies.iter().copied().take(flows).collect();
    let target = s.world.host_addr(s.victim);
    let spec = ZombieArmySpec {
        pps: 50,
        size: 200,
        stagger: SimDuration::ZERO,
    };
    arm_floods(&mut s.world, &zombies, target, &spec);
    s.world.sim.run_for(t);

    let vc = s.world.host(s.victim).counters();
    let mut blocked = 0u64;
    for &net in &s.attacker_nets {
        blocked += s.world.router(net).counters().filters_installed;
    }
    let offered: u64 = zombies
        .iter()
        .map(|&z| s.world.host(z).counters().tx_bytes)
        .sum();
    let leak = if offered == 0 {
        0.0
    } else {
        vc.rx_attack_bytes as f64 / offered as f64
    };
    CapacityPoint {
        flows,
        nv: r1 * t.as_secs_f64(),
        requests_sent: vc.requests_sent,
        self_limited: vc.requests_self_limited,
        blocked_flows: blocked,
        leak,
        events: s.world.sim.dispatched_events(),
    }
}

/// The E3 scenario spec: offered-flow count swept across the `Nv`
/// boundary. Scaled-down contract so the capacity boundary is reachable
/// in simulation time: R1 = 10/s, T = 10 s → Nv = 100 flows.
pub fn spec(quick: bool) -> ScenarioSpec {
    let nv = 100u64;
    let fractions: &[f64] = if quick {
        &[0.5, 1.5]
    } else {
        &[0.25, 0.5, 1.0, 1.5, 2.0]
    };
    ScenarioSpec::new(
        "e3_protection_capacity",
        "E3 (§IV-A.2): protection capacity Nv = R1*T (R1=10/s, T=10s, Nv=100)",
        "§IV-A.2",
    )
    .expectation(
        "below Nv all flows get blocked; above Nv the request budget \
         saturates near R1*T = 100 and excess flows leak. Paper example at \
         full scale: R1 = 100/s, T = 60 s -> Nv = 6000 flows.",
    )
    .points(fractions.iter().map(|&frac| {
        Params::new()
            .with("flows", ((nv as f64) * frac) as u64)
            .with("f_over_nv", frac)
            .with("_r1", 10.0)
            .with("_t_s", 10u64)
    }))
    .runner(|p, ctx| {
        let o = run_one(
            p.usize("flows"),
            p.f64("_r1"),
            SimDuration::from_secs(p.u64("_t_s")),
            ctx.seed,
        );
        Outcome::new(
            Params::new()
                .with("requests", o.requests_sent)
                .with("self_limited", o.self_limited)
                .with("blocked_flows", o.blocked_flows)
                .with("leak_r", o.leak),
        )
        .with_events(o.events)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_capacity_every_flow_is_blocked() {
        let p = run_one(40, 10.0, SimDuration::from_secs(10), 5);
        assert_eq!(p.blocked_flows, 40, "{p:?}");
        assert!(p.leak < 0.2, "{p:?}");
    }

    #[test]
    fn above_capacity_requests_saturate() {
        let p = run_one(150, 10.0, SimDuration::from_secs(10), 6);
        // The victim cannot have emitted meaningfully more than R1*T + burst.
        assert!(
            p.requests_sent as f64 <= p.nv + 10.0 + 1.0,
            "requests beyond contract: {p:?}"
        );
        assert!(
            p.self_limited > 0,
            "the bucket must have withheld some: {p:?}"
        );
        // Not all flows can be blocked within T.
        assert!(p.blocked_flows < 150, "{p:?}");
    }
}
