//! E11 — detection ablation: oracle vs rate-threshold detection.
//!
//! The paper deliberately "starts from the point where the node has
//! identified the undesired flow(s)" (Section V) and carries detection
//! time as the free parameter `Td`. This experiment closes the loop with a
//! real detector: a per-source EWMA rate threshold at the victim. We
//! measure the *emergent* detection latency (the oracle's `Td` analogue),
//! confirm that a flood is caught and blocked end-to-end, and that a
//! legitimate client below the threshold is never flagged.

use aitf_core::{AitfConfig, DetectionMode};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};

use crate::harness::{run_spec, Table};

/// The declarative E11 scenario: a 4 Mbit/s flood plus a 0.4 Mbit/s
/// legitimate stream from a *different* host in the same attacker
/// network — per-source detection must separate the two.
pub fn scenario(mode: DetectionMode) -> Scenario {
    let cfg = AitfConfig {
        detection: mode,
        ..AitfConfig::default()
    };
    let mut topo = TopologySpec::new();
    let wan = topo.net("wan", "10.100.0.0/16", None);
    let g_net = topo.net("g_net", "10.1.0.0/16", Some(wan));
    let b_net = topo.net("b_net", "10.9.0.0/16", Some(wan));
    topo.host(g_net, Role::Victim);
    // A *compliant* flooder: the experiment measures detection, not
    // disconnection games.
    topo.host(b_net, Role::Attacker);
    topo.host(b_net, Role::Legit);
    Scenario::new(topo)
        .config(cfg)
        .duration(SimDuration::from_secs(10))
        .traffic(TrafficSpec::flood(
            HostSel::Role(Role::Attacker),
            TargetSel::Victim,
            1000,
            500,
        ))
        .traffic(TrafficSpec::legit(
            HostSel::Role(Role::Legit),
            TargetSel::Victim,
            100,
            500,
        ))
        .probes(ProbeSet::new().end(|w, m| {
            let v = w.world.host(w.victim()).counters();
            m.set("leak_pkts", v.rx_attack_pkts);
            m.set("detections", v.detections);
            m.set(
                "blocked",
                w.world.router(w.net("b_net")).counters().filters_installed > 0,
            );
            m.set("legit_pkts_delivered", v.rx_legit_pkts);
        }))
}

/// Runs one detection mode.
pub fn run_one(mode: DetectionMode, seed: u64) -> Outcome {
    scenario(mode).run(seed)
}

/// The rate detector used by the sweep and tests: flood is 500 kB/s,
/// legit stream 50 kB/s — the threshold sits in between.
pub fn rate_detector() -> DetectionMode {
    DetectionMode::RateThreshold {
        bytes_per_sec: 150_000.0,
        window: SimDuration::from_millis(100),
    }
}

/// The E11 scenario spec: oracle vs EWMA rate-threshold detection.
pub fn spec(_quick: bool) -> ScenarioSpec {
    ScenarioSpec::new(
        "e11_detection",
        "E11 (ablation): oracle vs rate-threshold detection",
        "§V (detection boundary)",
    )
    .expectation(
        "the rate detector reaches the same block with a latency comparable \
         to the assumed Td, and never flags the below-threshold legitimate \
         stream (its packets keep flowing).",
    )
    .points([false, true].into_iter().map(|rate| {
        Params::new()
            .with(
                "mode",
                if rate {
                    "EWMA rate threshold"
                } else {
                    "oracle (Td = 100 ms)"
                },
            )
            .with("rate_detector", rate)
            // Shared seed group: the expectation compares the two
            // detectors on the same world.
            .with("_seed_group", 0u64)
    }))
    .runner(|p, ctx| {
        let mode = if p.bool("rate_detector") {
            rate_detector()
        } else {
            DetectionMode::Oracle
        };
        scenario(mode).shards(ctx.shards).run(ctx.seed)
    })
}

/// Runs both modes and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_detector_blocks_the_flood_end_to_end() {
        let o = run_one(rate_detector(), 3);
        assert!(o.metrics.bool("blocked"), "{o:?}");
        assert!(o.metrics.u64("detections") >= 1, "{o:?}");
        // Emergent latency within ~5x the oracle's assumed window.
        assert!(o.metrics.u64("leak_pkts") < 1000, "{o:?}");
    }

    #[test]
    fn legit_stream_below_threshold_is_never_cut() {
        let o = run_one(rate_detector(), 4);
        // ~100 pps * 10 s offered; nearly all must arrive.
        assert!(
            o.metrics.u64("legit_pkts_delivered") > 800,
            "false positive cut the legit flow: {o:?}"
        );
    }

    #[test]
    fn both_modes_agree_on_the_outcome() {
        let a = run_one(DetectionMode::Oracle, 5);
        let b = run_one(rate_detector(), 5);
        assert!(a.metrics.bool("blocked") && b.metrics.bool("blocked"));
    }
}
