//! E11 — detection ablation: oracle vs rate-threshold detection.
//!
//! The paper deliberately "starts from the point where the node has
//! identified the undesired flow(s)" (Section V) and carries detection
//! time as the free parameter `Td`. This experiment closes the loop with a
//! real detector: a per-source EWMA rate threshold at the victim. We
//! measure the *emergent* detection latency (the oracle's `Td` analogue),
//! confirm that a flood is caught and blocked end-to-end, and that a
//! legitimate client below the threshold is never flagged.

use aitf_attack::{FloodSource, LegitClient};
use aitf_core::{AitfConfig, DetectionMode, HostPolicy, WorldBuilder};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;

use crate::harness::{run_spec, Table};

/// Outcome of one run.
#[derive(Debug)]
pub struct DetectionOutcome {
    /// Mode label.
    pub mode: &'static str,
    /// Attack packets the victim saw before the flood was cut (proxy for
    /// detection + response latency).
    pub leak_pkts: u64,
    /// Detections fired at the victim.
    pub detections: u64,
    /// Did the attacker's gateway end up blocking?
    pub blocked: bool,
    /// Legitimate packets delivered (false-positive damage check).
    pub legit_pkts: u64,
    /// Simulator events dispatched during the run.
    pub events: u64,
}

/// Runs one detection mode against a 4 Mbit/s flood plus a 0.4 Mbit/s
/// legitimate stream from a *different* host in the same attacker
/// network — per-source detection must separate the two.
pub fn run_one(mode: DetectionMode, seed: u64) -> DetectionOutcome {
    let cfg = AitfConfig {
        detection: mode,
        ..AitfConfig::default()
    };
    let mut b = WorldBuilder::new(seed, cfg);
    let wan = b.network("wan", "10.100.0.0/16", None);
    let g_net = b.network("g_net", "10.1.0.0/16", Some(wan));
    let b_net = b.network("b_net", "10.9.0.0/16", Some(wan));
    let victim = b.host(g_net);
    let attacker = b.host_with(
        b_net,
        HostPolicy::Compliant,
        WorldBuilder::default_host_link(),
    );
    let legit = b.host(b_net);
    let mut w = b.build();
    let target = w.host_addr(victim);
    w.add_app(attacker, Box::new(FloodSource::new(target, 1000, 500)));
    w.add_app(legit, Box::new(LegitClient::new(target, 100, 500)));
    w.sim.run_for(SimDuration::from_secs(10));

    let v = w.host(victim).counters();
    DetectionOutcome {
        mode: match mode {
            DetectionMode::Oracle => "oracle (Td = 100 ms)",
            DetectionMode::RateThreshold { .. } => "EWMA rate threshold",
        },
        leak_pkts: v.rx_attack_pkts,
        detections: v.detections,
        blocked: w.router(b_net).counters().filters_installed > 0,
        legit_pkts: v.rx_legit_pkts,
        events: w.sim.dispatched_events(),
    }
}

/// The E11 scenario spec: oracle vs EWMA rate-threshold detection.
pub fn spec(_quick: bool) -> ScenarioSpec {
    ScenarioSpec::new(
        "e11_detection",
        "E11 (ablation): oracle vs rate-threshold detection",
        "§V (detection boundary)",
    )
    .expectation(
        "the rate detector reaches the same block with a latency comparable \
         to the assumed Td, and never flags the below-threshold legitimate \
         stream (its packets keep flowing).",
    )
    .points([false, true].into_iter().map(|rate| {
        Params::new()
            .with(
                "mode",
                if rate {
                    "EWMA rate threshold"
                } else {
                    "oracle (Td = 100 ms)"
                },
            )
            .with("rate_detector", rate)
            // Shared seed group: the expectation compares the two
            // detectors on the same world.
            .with("_seed_group", 0u64)
    }))
    .runner(|p, ctx| {
        let mode = if p.bool("rate_detector") {
            // Flood is 500 kB/s, legit stream 50 kB/s: threshold in between.
            DetectionMode::RateThreshold {
                bytes_per_sec: 150_000.0,
                window: SimDuration::from_millis(100),
            }
        } else {
            DetectionMode::Oracle
        };
        let o = run_one(mode, ctx.seed);
        Outcome::new(
            Params::new()
                .with("leak_pkts", o.leak_pkts)
                .with("detections", o.detections)
                .with("blocked", o.blocked)
                .with("legit_pkts_delivered", o.legit_pkts),
        )
        .with_events(o.events)
    })
}

/// Runs both modes and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_detector_blocks_the_flood_end_to_end() {
        let o = run_one(
            DetectionMode::RateThreshold {
                bytes_per_sec: 150_000.0,
                window: SimDuration::from_millis(100),
            },
            3,
        );
        assert!(o.blocked, "{o:?}");
        assert!(o.detections >= 1, "{o:?}");
        // Emergent latency within ~5x the oracle's assumed window.
        assert!(o.leak_pkts < 1000, "{o:?}");
    }

    #[test]
    fn legit_stream_below_threshold_is_never_cut() {
        let o = run_one(
            DetectionMode::RateThreshold {
                bytes_per_sec: 150_000.0,
                window: SimDuration::from_millis(100),
            },
            4,
        );
        // ~100 pps * 10 s offered; nearly all must arrive.
        assert!(
            o.legit_pkts > 800,
            "false positive cut the legit flow: {o:?}"
        );
    }

    #[test]
    fn both_modes_agree_on_the_outcome() {
        let a = run_one(DetectionMode::Oracle, 5);
        let b = run_one(
            DetectionMode::RateThreshold {
                bytes_per_sec: 150_000.0,
                window: SimDuration::from_millis(100),
            },
            5,
        );
        assert!(a.blocked && b.blocked);
    }
}
