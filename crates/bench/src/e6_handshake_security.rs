//! E6 — Sections II-E / III-B: the 3-way verification handshake.
//!
//! Three scenarios over a legitimate flow A→V:
//!
//! 1. **off-path forger** — a node that is not on the A→V path forges
//!    "block A→V". The victim denies the verification query, the filter is
//!    never installed, the flow survives. (The paper's security claim.)
//! 2. **on-path compromised router** — a compromised router that *routes*
//!    the A→V traffic snoops the nonce and forges a confirming reply; the
//!    filter goes in. The paper's caveat: such a node "can disrupt A-V
//!    communication anyway, by simply dropping the corresponding packets".
//! 3. **verification disabled** (ablation) — the off-path forgery
//!    succeeds, demonstrating why the handshake exists.

use aitf_attack::{LegitClient, RequestForger};
use aitf_core::{AitfConfig, NetId, RouterPolicy, World, WorldBuilder};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_packet::FlowLabel;

use crate::harness::{run_spec, Table};

/// Outcome of one scenario.
#[derive(Debug)]
pub struct SecurityOutcome {
    /// Scenario label.
    pub scenario: &'static str,
    /// Was a filter installed against the legit flow at A's gateway?
    pub filter_installed: bool,
    /// Handshakes denied by the victim.
    pub denied: u64,
    /// Forged replies injected by a compromised router.
    pub forged: u64,
    /// Legit packets delivered to V over the run.
    pub legit_delivered: u64,
    /// Simulator events dispatched during the run.
    pub events: u64,
}

/// Topology: A — a_net — wan — mid — v_net — V, forger M in m_net off the
/// A→V path. `mid` is the on-path router that may be compromised.
struct SecurityWorld {
    world: World,
    a_net: NetId,
    #[allow(dead_code)]
    mid: NetId,
    victim_delivered: aitf_core::HostId,
}

fn build(verification: bool, compromised_mid: bool, seed: u64) -> SecurityWorld {
    let cfg = AitfConfig {
        verification,
        ..AitfConfig::default()
    };
    let mut b = WorldBuilder::new(seed, cfg);
    let wan = b.network("wan", "10.100.0.0/16", None);
    let a_net = b.network("a_net", "10.1.0.0/16", Some(wan));
    let mid = b.network("mid", "10.50.0.0/16", Some(wan));
    let v_net = b.network("v_net", "10.2.0.0/16", Some(mid));
    let m_net = b.network("m_net", "10.3.0.0/16", Some(wan));
    if compromised_mid {
        b.set_router_policy(mid, RouterPolicy::compromised());
    }
    let a = b.host(a_net);
    let v = b.host(v_net);
    let m = b.host(m_net);
    let mut world = b.build();
    let a_addr = world.host_addr(a);
    let v_addr = world.host_addr(v);
    let a_gw = world.router_addr(a_net);
    world.add_app(a, Box::new(LegitClient::new(v_addr, 100, 500)));
    world.add_app(
        m,
        Box::new(RequestForger::new(
            a_gw,
            FlowLabel::src_dst(a_addr, v_addr),
            SimDuration::from_secs(1),
        )),
    );
    SecurityWorld {
        world,
        a_net,
        mid,
        victim_delivered: v,
    }
}

fn run_scenario(
    scenario: &'static str,
    verification: bool,
    compromised: bool,
    seed: u64,
) -> SecurityOutcome {
    let mut s = build(verification, compromised, seed);
    s.world.sim.run_for(SimDuration::from_secs(5));
    let a_router = s.world.router(s.a_net).counters();
    let forged = if compromised {
        s.world.router(s.mid).counters().handshakes_forged
    } else {
        0
    };
    SecurityOutcome {
        scenario,
        filter_installed: a_router.filters_installed > 0,
        denied: a_router.handshakes_denied,
        forged,
        legit_delivered: s.world.host(s.victim_delivered).counters().rx_legit_pkts,
        events: s.world.sim.dispatched_events(),
    }
}

/// The E6 scenario spec: the three forgery scenarios.
pub fn spec(_quick: bool) -> ScenarioSpec {
    let scenarios: [(&'static str, bool, bool); 3] = [
        ("off-path forger, handshake ON", true, false),
        ("ON-path compromised router", true, true),
        ("off-path forger, handshake OFF", false, false),
    ];
    ScenarioSpec::new(
        "e6_handshake_security",
        "E6 (§II-E, §III-B): 3-way handshake vs forged filtering requests",
        "§II-E, §III-B",
    )
    .expectation(
        "row 1 — forgery dies (victim denies); row 2 — an on-path \
         compromised router CAN forge the handshake, but it routes the flow \
         and could drop it anyway (§III-B); row 3 — without the handshake, \
         forgery cuts the legitimate flow.",
    )
    .points(scenarios.iter().map(|&(name, verification, compromised)| {
        Params::new()
            .with("scenario", name)
            .with("verification", verification)
            .with("compromised", compromised)
            // One seed group: the expectation compares legit delivery
            // across the three rows, so they must share a world.
            .with("_seed_group", 0u64)
    }))
    .runner(|p, ctx| {
        // The scenario label lives in the params; the static names are only
        // used for the Debug outcome.
        let o = run_scenario(
            "engine point",
            p.bool("verification"),
            p.bool("compromised"),
            ctx.seed,
        );
        Outcome::new(
            Params::new()
                .with("filter_installed", o.filter_installed)
                .with("denied", o.denied)
                .with("forged_replies", o.forged)
                .with("legit_pkts_delivered", o.legit_delivered),
        )
        .with_events(o.events)
    })
}

/// Runs all three scenarios and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_path_forgery_fails_with_handshake() {
        let o = run_scenario("x", true, false, 77);
        assert!(!o.filter_installed, "{o:?}");
        assert_eq!(o.denied, 1, "{o:?}");
        assert!(o.legit_delivered > 400, "{o:?}");
    }

    #[test]
    fn on_path_compromised_router_defeats_handshake() {
        let o = run_scenario("x", true, true, 77);
        assert!(o.filter_installed, "{o:?}");
        assert!(o.forged >= 1, "{o:?}");
        // The legit flow was cut early.
        assert!(o.legit_delivered < 150, "{o:?}");
    }

    #[test]
    fn disabling_verification_lets_forgery_through() {
        let o = run_scenario("x", false, false, 77);
        assert!(o.filter_installed, "{o:?}");
        assert!(o.legit_delivered < 150, "{o:?}");
    }
}
