//! E6 — Sections II-E / III-B: the 3-way verification handshake.
//!
//! Three scenarios over a legitimate flow A→V:
//!
//! 1. **off-path forger** — a node that is not on the A→V path forges
//!    "block A→V". The victim denies the verification query, the filter is
//!    never installed, the flow survives. (The paper's security claim.)
//! 2. **on-path compromised router** — a compromised router that *routes*
//!    the A→V traffic snoops the nonce and forges a confirming reply; the
//!    filter goes in. The paper's caveat: such a node "can disrupt A-V
//!    communication anyway, by simply dropping the corresponding packets".
//! 3. **verification disabled** (ablation) — the off-path forgery
//!    succeeds, demonstrating why the handshake exists.

use aitf_attack::RequestForger;
use aitf_core::{AitfConfig, RouterPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_packet::FlowLabel;
use aitf_scenario::{HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};

use crate::harness::{run_spec, Table};

/// The declarative E6 scenario. Topology:
/// `A — a_net — wan — mid — v_net — V`, forger M in `m_net` off the A→V
/// path; `mid` is the on-path router that may be compromised.
pub fn scenario(verification: bool, compromised_mid: bool) -> Scenario {
    let cfg = AitfConfig {
        verification,
        ..AitfConfig::default()
    };
    let mut topo = TopologySpec::new();
    let wan = topo.net("wan", "10.100.0.0/16", None);
    let a_net = topo.net("a_net", "10.1.0.0/16", Some(wan));
    let mid = topo.net("mid", "10.50.0.0/16", Some(wan));
    let v_net = topo.net("v_net", "10.2.0.0/16", Some(mid));
    let m_net = topo.net("m_net", "10.3.0.0/16", Some(wan));
    if compromised_mid {
        topo.set_net_policy("mid", RouterPolicy::compromised());
    }
    topo.host(a_net, Role::Legit);
    topo.host(v_net, Role::Victim);
    topo.host(m_net, Role::Attacker);
    Scenario::new(topo)
        .config(cfg)
        .duration(SimDuration::from_secs(5))
        .traffic(TrafficSpec::legit(
            HostSel::Role(Role::Legit),
            TargetSel::Victim,
            100,
            500,
        ))
        .traffic(TrafficSpec::custom(
            HostSel::Role(Role::Attacker),
            |w, _| {
                // Forge "block A→V" towards A's gateway.
                let a = w.first_with(Role::Legit);
                let flow = FlowLabel::src_dst(w.world.host_addr(a), w.world.host_addr(w.victim()));
                let a_gw = w.world.router_addr(w.net("a_net"));
                Box::new(RequestForger::new(a_gw, flow, SimDuration::from_secs(1)))
            },
        ))
        .probes(ProbeSet::new().end(move |w, m| {
            let a_router = w.world.router(w.net("a_net")).counters();
            m.set("filter_installed", a_router.filters_installed > 0);
            m.set("denied", a_router.handshakes_denied);
            let forged = if compromised_mid {
                w.world.router(w.net("mid")).counters().handshakes_forged
            } else {
                0
            };
            m.set("forged_replies", forged);
            m.set(
                "legit_pkts_delivered",
                w.world.host(w.victim()).counters().rx_legit_pkts,
            );
        }))
}

/// Runs one forgery scenario.
pub fn run_scenario(verification: bool, compromised: bool, seed: u64) -> Outcome {
    scenario(verification, compromised).run(seed)
}

/// The E6 scenario spec: the three forgery scenarios.
pub fn spec(_quick: bool) -> ScenarioSpec {
    let scenarios: [(&'static str, bool, bool); 3] = [
        ("off-path forger, handshake ON", true, false),
        ("ON-path compromised router", true, true),
        ("off-path forger, handshake OFF", false, false),
    ];
    ScenarioSpec::new(
        "e6_handshake_security",
        "E6 (§II-E, §III-B): 3-way handshake vs forged filtering requests",
        "§II-E, §III-B",
    )
    .expectation(
        "row 1 — forgery dies (victim denies); row 2 — an on-path \
         compromised router CAN forge the handshake, but it routes the flow \
         and could drop it anyway (§III-B); row 3 — without the handshake, \
         forgery cuts the legitimate flow.",
    )
    .points(scenarios.iter().map(|&(name, verification, compromised)| {
        Params::new()
            .with("scenario", name)
            .with("verification", verification)
            .with("compromised", compromised)
            // One seed group: the expectation compares legit delivery
            // across the three rows, so they must share a world.
            .with("_seed_group", 0u64)
    }))
    .runner(|p, ctx| {
        scenario(p.bool("verification"), p.bool("compromised"))
            .shards(ctx.shards)
            .run(ctx.seed)
    })
}

/// Runs all three scenarios and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_path_forgery_fails_with_handshake() {
        let o = run_scenario(true, false, 77);
        assert!(!o.metrics.bool("filter_installed"), "{o:?}");
        assert_eq!(o.metrics.u64("denied"), 1, "{o:?}");
        assert!(o.metrics.u64("legit_pkts_delivered") > 400, "{o:?}");
    }

    #[test]
    fn on_path_compromised_router_defeats_handshake() {
        let o = run_scenario(true, true, 77);
        assert!(o.metrics.bool("filter_installed"), "{o:?}");
        assert!(o.metrics.u64("forged_replies") >= 1, "{o:?}");
        // The legit flow was cut early.
        assert!(o.metrics.u64("legit_pkts_delivered") < 150, "{o:?}");
    }

    #[test]
    fn disabling_verification_lets_forgery_through() {
        let o = run_scenario(false, false, 77);
        assert!(o.metrics.bool("filter_installed"), "{o:?}");
        assert!(o.metrics.u64("legit_pkts_delivered") < 150, "{o:?}");
    }
}
