//! E8 — Section V: AITF vs hop-by-hop pushback (\[MBF+01\]).
//!
//! The paper's two contrasts:
//!
//! 1. *Involvement*: "the propagation of an AITF filtering request
//!    involves only 4 nodes ... a pushback request is propagated hop by
//!    hop" — we count the routers that end up processing requests and
//!    holding filters as the path deepens.
//! 2. *Teeth*: "a pushback request ... relies on good will. In contrast,
//!    AITF forces the attacker ... or else risk disconnection" — we insert
//!    one rogue hop and watch pushback stall while AITF escalates around
//!    it and disconnects.

use aitf_baseline::{build_pushback_world, PushbackRouter};
use aitf_core::{AitfConfig, HostPolicy, NetId, RouterPolicy, WorldBuilder};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;

use crate::harness::{render_sweep, Table};

/// Result of one (protocol, depth) run.
#[derive(Debug)]
pub struct ComparisonPoint {
    /// Chain depth per side.
    pub depth: usize,
    /// Routers that processed a request or pushback message.
    pub nodes_involved: usize,
    /// Routers holding at least one filter at the end.
    pub routers_with_filters: usize,
    /// Victim leak ratio.
    pub leak: f64,
    /// Simulator events dispatched during the run.
    pub events: u64,
}

fn build_chains(
    depth: usize,
    rogue_b_level: Option<usize>,
    seed: u64,
) -> (
    WorldBuilder,
    Vec<NetId>,
    Vec<NetId>,
    aitf_core::HostId,
    aitf_core::HostId,
) {
    let cfg = AitfConfig {
        t_long: SimDuration::from_secs(30),
        ..AitfConfig::default()
    };
    let mut b = WorldBuilder::new(seed, cfg);
    let mut g_chain = Vec::new();
    let mut b_chain = Vec::new();
    for side in 0..2usize {
        let mut parent = None;
        let chain = if side == 0 {
            &mut g_chain
        } else {
            &mut b_chain
        };
        for level in (0..depth).rev() {
            let prefix = format!("10.{}.0.0/16", 1 + side * 100 + level);
            let id = b.network(&format!("{side}-{level}"), &prefix, parent);
            parent = Some(id);
            chain.push(id);
        }
        chain.reverse();
    }
    b.peer(
        g_chain[depth - 1],
        b_chain[depth - 1],
        WorldBuilder::default_net_link(),
    );
    if let Some(level) = rogue_b_level {
        b.set_router_policy(b_chain[level], RouterPolicy::non_cooperating());
    }
    let v = b.host(g_chain[0]);
    let a = b.host_with(
        b_chain[0],
        HostPolicy::Malicious,
        WorldBuilder::default_host_link(),
    );
    (b, g_chain, b_chain, v, a)
}

/// Runs AITF on a depth-`depth` chain (all routers cooperative).
pub fn run_aitf(depth: usize, seed: u64) -> ComparisonPoint {
    let (b, g_chain, b_chain, v, a) = build_chains(depth, None, seed);
    let mut w = b.build();
    let target = w.host_addr(v);
    w.add_app(
        a,
        Box::new(aitf_attack::FloodSource::new(target, 1000, 500)),
    );
    w.sim.run_for(SimDuration::from_secs(10));
    let mut nodes_involved = 0;
    let mut with_filters = 0;
    for &net in g_chain.iter().chain(b_chain.iter()) {
        let c = w.router(net).counters();
        if c.requests_received > 0 {
            nodes_involved += 1;
        }
        if w.router(net).filters().stats().installs > 0 {
            with_filters += 1;
        }
    }
    let offered = w.host(a).counters().tx_bytes;
    let leak = if offered == 0 {
        0.0
    } else {
        w.host(v).counters().rx_attack_bytes as f64 / offered as f64
    };
    ComparisonPoint {
        depth,
        nodes_involved,
        routers_with_filters: with_filters,
        leak,
        events: w.sim.dispatched_events(),
    }
}

/// Runs pushback on the same chain.
pub fn run_pushback(depth: usize, seed: u64) -> ComparisonPoint {
    let (b, g_chain, b_chain, v, a) = build_chains(depth, None, seed);
    let mut w = build_pushback_world(b);
    let target = w.host_addr(v);
    w.add_app(
        a,
        Box::new(aitf_attack::FloodSource::new(target, 1000, 500)),
    );
    w.sim.run_for(SimDuration::from_secs(10));
    let mut nodes_involved = 0;
    let mut with_filters = 0;
    for &net in g_chain.iter().chain(b_chain.iter()) {
        let r = w
            .sim
            .node_ref::<PushbackRouter>(w.router_node(net))
            .expect("pushback router");
        let c = r.counters();
        if c.requests_received > 0 || c.pushback_received > 0 {
            nodes_involved += 1;
        }
        if r.filters().stats().installs > 0 {
            with_filters += 1;
        }
    }
    let offered = w.host(a).counters().tx_bytes;
    let leak = if offered == 0 {
        0.0
    } else {
        w.host(v).counters().rx_attack_bytes as f64 / offered as f64
    };
    ComparisonPoint {
        depth,
        nodes_involved,
        routers_with_filters: with_filters,
        leak,
        events: w.sim.dispatched_events(),
    }
}

/// The rogue-hop outcome for both protocols.
#[derive(Debug)]
pub struct RogueOutcome {
    /// True if the protocol found a lever against the rogue's side: AITF
    /// disconnects the rogue client; pushback would need the rogue's own
    /// edge filter (which never appears).
    pub source_cut: bool,
    /// Packets that still crossed the rogue's uplink wire during the last
    /// 5 seconds of the run — the bandwidth the rogue's side keeps burning.
    pub uplink_carried_late: u64,
    /// Simulator events dispatched during the run.
    pub events: u64,
}

fn uplink_sent(w: &aitf_core::World, net: NetId) -> u64 {
    let link = w.uplink(net).expect("edge network has an uplink");
    let (a, b) = w.sim.link_endpoints(link);
    let parent = if a == w.router_node(net) { b } else { a };
    w.sim.link_stats_towards(link, parent).sent_pkts
}

/// AITF with the *attacker's gateway itself* rogue: round 2 reaches its
/// provider, which filters AND disconnects the rogue client after the
/// grace period — nothing crosses the rogue's uplink any more.
pub fn rogue_aitf(seed: u64) -> RogueOutcome {
    let (b, _g, b_chain, v, a) = build_chains(3, Some(0), seed);
    let mut w = b.build();
    let target = w.host_addr(v);
    w.add_app(
        a,
        Box::new(aitf_attack::FloodSource::new(target, 1000, 500)),
    );
    w.sim.run_for(SimDuration::from_secs(10));
    let before = uplink_sent(&w, b_chain[0]);
    w.sim.run_for(SimDuration::from_secs(5));
    let after = uplink_sent(&w, b_chain[0]);
    let disconnected = w
        .sim
        .node_ref::<aitf_core::BorderRouter>(w.router_node(b_chain[1]))
        .expect("router")
        .counters()
        .disconnects_client
        > 0;
    RogueOutcome {
        source_cut: disconnected,
        uplink_carried_late: after - before,
        events: w.sim.dispatched_events(),
    }
}

/// Pushback with the same rogue: the chain stalls one hop above; the
/// rogue's uplink keeps carrying the full flood forever.
pub fn rogue_pushback(seed: u64) -> RogueOutcome {
    let (b, _g, b_chain, v, a) = build_chains(3, Some(0), seed);
    let mut w = build_pushback_world(b);
    let target = w.host_addr(v);
    w.add_app(
        a,
        Box::new(aitf_attack::FloodSource::new(target, 1000, 500)),
    );
    w.sim.run_for(SimDuration::from_secs(10));
    let edge_filtered = w
        .sim
        .node_ref::<PushbackRouter>(w.router_node(b_chain[0]))
        .expect("router")
        .counters()
        .filters_installed
        > 0;
    let before = uplink_sent(&w, b_chain[0]);
    w.sim.run_for(SimDuration::from_secs(5));
    let after = uplink_sent(&w, b_chain[0]);
    RogueOutcome {
        source_cut: edge_filtered,
        uplink_carried_late: after - before,
        events: w.sim.dispatched_events(),
    }
}

/// The E8 scenario spec: AITF vs pushback across chain depths.
pub fn spec(quick: bool) -> ScenarioSpec {
    let depths: &[u64] = if quick { &[2, 3] } else { &[2, 3, 4, 5, 6] };
    ScenarioSpec::new(
        "e8_vs_pushback",
        "E8 (§V): AITF vs pushback — involvement grows with path depth only for pushback",
        "§V",
    )
    .expectation(
        "AITF involves a constant number of nodes (the round's 2 gateways) \
         regardless of depth; pushback involves every router on the path.",
    )
    .points(
        depths
            .iter()
            .map(|&d| Params::new().with("depth_per_side", d)),
    )
    .runner(|p, ctx| {
        let d = p.usize("depth_per_side");
        let aitf = run_aitf(d, ctx.seed);
        let pb = run_pushback(d, ctx.seed);
        Outcome::new(
            Params::new()
                .with("aitf_nodes", aitf.nodes_involved)
                .with("aitf_filters", aitf.routers_with_filters)
                .with("pb_nodes", pb.nodes_involved)
                .with("pb_filters", pb.routers_with_filters)
                .with("aitf_leak", aitf.leak)
                .with("pb_leak", pb.leak),
        )
        .with_events(aitf.events + pb.events)
    })
}

/// The E8b scenario spec: one rogue hop, disconnection vs good will.
pub fn spec_rogue(_quick: bool) -> ScenarioSpec {
    ScenarioSpec::new(
        "e8b_rogue_hop",
        "E8b (§V): one rogue hop — disconnection vs good will",
        "§V",
    )
    .expectation(
        "with a rogue hop, AITF's disconnection still cuts the source; \
         pushback silently stalls and the flood keeps burning upstream \
         bandwidth.",
    )
    .points(["AITF", "pushback"].into_iter().map(|proto| {
        // Shared seed group: the expectation contrasts the two protocols
        // on the same world.
        Params::new()
            .with("protocol", proto)
            .with("_seed_group", 0u64)
    }))
    .runner(|p, ctx| {
        let o = match p.str("protocol") {
            "AITF" => rogue_aitf(ctx.seed),
            _ => rogue_pushback(ctx.seed),
        };
        Outcome::new(
            Params::new()
                .with("source_cut", o.source_cut)
                .with("rogue_uplink_pkts_last_5s", o.uplink_carried_late),
        )
        .with_events(o.events)
    })
}

/// Runs the comparison and prints both tables.
pub fn run(quick: bool) -> Table {
    let specs = [spec(quick), spec_rogue(quick)];
    let grouped = aitf_engine::Runner::default().quick(quick).run_all(&specs);
    let table = render_sweep(&specs[0], &grouped[0]);
    let _ = render_sweep(&specs[1], &grouped[1]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aitf_involvement_is_constant_pushback_grows() {
        let a3 = run_aitf(3, 1);
        let a5 = run_aitf(5, 1);
        let p3 = run_pushback(3, 1);
        let p5 = run_pushback(5, 1);
        assert_eq!(a3.nodes_involved, a5.nodes_involved, "{a3:?} vs {a5:?}");
        assert!(p5.nodes_involved > p3.nodes_involved, "{p3:?} vs {p5:?}");
        assert!(
            p5.routers_with_filters >= 2 * a5.routers_with_filters,
            "{p5:?} vs {a5:?}"
        );
    }

    #[test]
    fn both_protect_the_victim_in_the_cooperative_case() {
        let a = run_aitf(3, 2);
        let p = run_pushback(3, 2);
        assert!(a.leak < 0.1, "{a:?}");
        assert!(p.leak < 0.1, "{p:?}");
    }

    #[test]
    fn rogue_hop_distinguishes_the_protocols() {
        let ra = rogue_aitf(3);
        let rp = rogue_pushback(3);
        assert!(ra.source_cut, "{ra:?}");
        assert_eq!(ra.uplink_carried_late, 0, "{ra:?}");
        assert!(!rp.source_cut, "{rp:?}");
        assert!(rp.uplink_carried_late > 2000, "{rp:?}");
    }
}
