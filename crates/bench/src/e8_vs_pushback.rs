//! E8 — Section V: AITF vs hop-by-hop pushback (\[MBF+01\]).
//!
//! The paper's two contrasts:
//!
//! 1. *Involvement*: "the propagation of an AITF filtering request
//!    involves only 4 nodes ... a pushback request is propagated hop by
//!    hop" — we count the routers that end up processing requests and
//!    holding filters as the path deepens.
//! 2. *Teeth*: "a pushback request ... relies on good will. In contrast,
//!    AITF forces the attacker ... or else risk disconnection" — we insert
//!    one rogue hop and watch pushback stall while AITF escalates around
//!    it and disconnects.

use aitf_core::{AitfConfig, DefensePolicy, NetId, RouterPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{
    BuiltWorld, HostSel, ProbeSet, Role, Scenario, Side, TargetSel, TopologySpec, TrafficSpec,
};

use crate::harness::{render_sweep, Table};

fn config() -> AitfConfig {
    AitfConfig {
        t_long: SimDuration::from_secs(30),
        ..AitfConfig::default()
    }
}

/// The shared chain scenario: two depth-`depth` provider chains (E8's
/// by-level naming), a 1000 pps flood, optionally one rogue attacker-side
/// hop at `rogue_b_level`.
fn chain_scenario(depth: usize, rogue_b_level: Option<usize>, policy: DefensePolicy) -> Scenario {
    let mut topo = TopologySpec::chain_pair_by_level(depth);
    if let Some(level) = rogue_b_level {
        topo.set_net_policy(&format!("1-{level}"), RouterPolicy::non_cooperating());
    }
    Scenario::new(topo)
        .config(config())
        .defense(policy)
        .duration(SimDuration::from_secs(10))
        .traffic(TrafficSpec::flood(
            HostSel::Role(Role::Attacker),
            TargetSel::Victim,
            1000,
            500,
        ))
}

/// Counts `(nodes_involved, routers_with_filters)` over every chain
/// router, for either defense.
fn involvement(w: &BuiltWorld, policy: DefensePolicy) -> (u64, u64) {
    let mut nodes_involved = 0u64;
    let mut with_filters = 0u64;
    let mut nets = w.nets_on(Side::Victim);
    nets.extend(w.nets_on(Side::Attacker));
    for net in nets {
        let r = w.world.router(net);
        let touched = match policy {
            DefensePolicy::Pushback => {
                r.counters().requests_received > 0 || r.pushback().pushback_received > 0
            }
            _ => r.counters().requests_received > 0,
        };
        let installs = r.filters().stats().installs;
        nodes_involved += u64::from(touched);
        with_filters += u64::from(installs > 0);
    }
    (nodes_involved, with_filters)
}

/// Runs one protocol on a depth-`depth` chain (all routers cooperative);
/// metrics `nodes`, `filters`, `leak`.
pub fn run_protocol(depth: usize, policy: DefensePolicy, seed: u64, shards: usize) -> Outcome {
    chain_scenario(depth, None, policy)
        .shards(shards)
        .probes(
            ProbeSet::new()
                .end(move |w, m| {
                    let (nodes, filters) = involvement(w, policy);
                    m.set("nodes", nodes);
                    m.set("filters", filters);
                })
                .leak_ratio("leak"),
        )
        .run(seed)
}

/// The rogue-hop outcome for both protocols.
#[derive(Debug)]
pub struct RogueOutcome {
    /// True if the protocol found a lever against the rogue's side: AITF
    /// disconnects the rogue client; pushback would need the rogue's own
    /// edge filter (which never appears).
    pub source_cut: bool,
    /// Packets that still crossed the rogue's uplink wire during the last
    /// 5 seconds of the run — the bandwidth the rogue's side keeps burning.
    pub uplink_carried_late: u64,
    /// Simulator events dispatched during the run.
    pub events: u64,
}

fn uplink_sent(w: &aitf_core::World, net: NetId) -> u64 {
    let link = w.uplink(net).expect("edge network has an uplink");
    let (a, b) = w.sim.link_endpoints(link);
    let parent = if a == w.router_node(net) { b } else { a };
    w.sim.link_stats_towards(link, parent).sent_pkts
}

/// AITF with the *attacker's gateway itself* rogue: round 2 reaches its
/// provider, which filters AND disconnects the rogue client after the
/// grace period — nothing crosses the rogue's uplink any more. This is a
/// two-phase measurement, so it drives the built scenario by hand.
pub fn rogue_aitf(seed: u64, shards: usize) -> RogueOutcome {
    let mut w = chain_scenario(3, Some(0), DefensePolicy::Aitf)
        .shards(shards)
        .build(seed);
    let leaf = w.net("1-0");
    w.world.sim.run_for(SimDuration::from_secs(10));
    let before = uplink_sent(&w.world, leaf);
    w.world.sim.run_for(SimDuration::from_secs(5));
    let after = uplink_sent(&w.world, leaf);
    let disconnected = w.world.router(w.net("1-1")).counters().disconnects_client > 0;
    RogueOutcome {
        source_cut: disconnected,
        uplink_carried_late: after - before,
        events: w.world.sim.dispatched_events(),
    }
}

/// Pushback with the same rogue: the chain stalls one hop above; the
/// rogue's uplink keeps carrying the full flood forever.
pub fn rogue_pushback(seed: u64, shards: usize) -> RogueOutcome {
    let mut w = chain_scenario(3, Some(0), DefensePolicy::Pushback)
        .shards(shards)
        .build(seed);
    let leaf = w.net("1-0");
    w.world.sim.run_for(SimDuration::from_secs(10));
    let edge_filtered = w.world.router(leaf).counters().filters_installed > 0;
    let before = uplink_sent(&w.world, leaf);
    w.world.sim.run_for(SimDuration::from_secs(5));
    let after = uplink_sent(&w.world, leaf);
    RogueOutcome {
        source_cut: edge_filtered,
        uplink_carried_late: after - before,
        events: w.world.sim.dispatched_events(),
    }
}

/// The E8 scenario spec: AITF vs pushback across chain depths.
pub fn spec(quick: bool) -> ScenarioSpec {
    let depths: &[u64] = if quick { &[2, 3] } else { &[2, 3, 4, 5, 6] };
    ScenarioSpec::new(
        "e8_vs_pushback",
        "E8 (§V): AITF vs pushback — involvement grows with path depth only for pushback",
        "§V",
    )
    .expectation(
        "AITF involves a constant number of nodes (the round's 2 gateways) \
         regardless of depth; pushback involves every router on the path.",
    )
    .points(
        depths
            .iter()
            .map(|&d| Params::new().with("depth_per_side", d)),
    )
    .runner(|p, ctx| {
        let d = p.usize("depth_per_side");
        let aitf = run_protocol(d, DefensePolicy::Aitf, ctx.seed, ctx.shards);
        let pb = run_protocol(d, DefensePolicy::Pushback, ctx.seed, ctx.shards);
        Outcome::new(
            Params::new()
                .with("aitf_nodes", aitf.metrics.u64("nodes"))
                .with("aitf_filters", aitf.metrics.u64("filters"))
                .with("pb_nodes", pb.metrics.u64("nodes"))
                .with("pb_filters", pb.metrics.u64("filters"))
                .with("aitf_leak", aitf.metrics.f64("leak"))
                .with("pb_leak", pb.metrics.f64("leak")),
        )
        .with_events(aitf.events + pb.events)
    })
}

/// The E8b scenario spec: one rogue hop, disconnection vs good will.
pub fn spec_rogue(_quick: bool) -> ScenarioSpec {
    ScenarioSpec::new(
        "e8b_rogue_hop",
        "E8b (§V): one rogue hop — disconnection vs good will",
        "§V",
    )
    .expectation(
        "with a rogue hop, AITF's disconnection still cuts the source; \
         pushback silently stalls and the flood keeps burning upstream \
         bandwidth.",
    )
    .points(["AITF", "pushback"].into_iter().map(|proto| {
        // Shared seed group: the expectation contrasts the two protocols
        // on the same world.
        Params::new()
            .with("protocol", proto)
            .with("_seed_group", 0u64)
    }))
    .runner(|p, ctx| {
        let o = match p.str("protocol") {
            "AITF" => rogue_aitf(ctx.seed, ctx.shards),
            _ => rogue_pushback(ctx.seed, ctx.shards),
        };
        Outcome::new(
            Params::new()
                .with("source_cut", o.source_cut)
                .with("rogue_uplink_pkts_last_5s", o.uplink_carried_late),
        )
        .with_events(o.events)
    })
}

/// Runs the comparison and prints both tables.
pub fn run(quick: bool) -> Table {
    let specs = [spec(quick), spec_rogue(quick)];
    let grouped = aitf_engine::Runner::default().quick(quick).run_all(&specs);
    let table = render_sweep(&specs[0], &grouped[0]);
    let _ = render_sweep(&specs[1], &grouped[1]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aitf_involvement_is_constant_pushback_grows() {
        let a3 = run_protocol(3, DefensePolicy::Aitf, 1, 1);
        let a5 = run_protocol(5, DefensePolicy::Aitf, 1, 1);
        let p3 = run_protocol(3, DefensePolicy::Pushback, 1, 1);
        let p5 = run_protocol(5, DefensePolicy::Pushback, 1, 1);
        assert_eq!(
            a3.metrics.u64("nodes"),
            a5.metrics.u64("nodes"),
            "{a3:?} vs {a5:?}"
        );
        assert!(
            p5.metrics.u64("nodes") > p3.metrics.u64("nodes"),
            "{p3:?} vs {p5:?}"
        );
        assert!(
            p5.metrics.u64("filters") >= 2 * a5.metrics.u64("filters"),
            "{p5:?} vs {a5:?}"
        );
    }

    #[test]
    fn both_protect_the_victim_in_the_cooperative_case() {
        let a = run_protocol(3, DefensePolicy::Aitf, 2, 1);
        let p = run_protocol(3, DefensePolicy::Pushback, 2, 1);
        assert!(a.metrics.f64("leak") < 0.1, "{a:?}");
        assert!(p.metrics.f64("leak") < 0.1, "{p:?}");
    }

    #[test]
    fn rogue_hop_distinguishes_the_protocols() {
        let ra = rogue_aitf(3, 2);
        let rp = rogue_pushback(3, 1);
        assert!(ra.source_cut, "{ra:?}");
        assert_eq!(ra.uplink_carried_late, 0, "{ra:?}");
        assert!(!rp.source_cut, "{rp:?}");
        assert!(rp.uplink_carried_late > 2000, "{rp:?}");
    }
}
