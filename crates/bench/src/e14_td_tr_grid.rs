//! E14 — the `Td × Tr` grid behind `r ≈ n(Td+Tr)/T`.
//!
//! E2 sweeps the formula's `n` and `T` with `Td` pinned at 100 ms; E14
//! completes the picture by sweeping the remaining two quantities — the
//! detection delay `Td` and the victim→gateway delay `Tr` — as a full 2-D
//! grid at fixed `n = 1`, `T`. Both knobs are first-class scenario axes
//! now ([`Scenario::td`] / [`Scenario::tr`]), so each grid point is the
//! paper's Figure 1 world with exactly one quantity moved at a time.
//!
//! Run in the formula's conservative mode (shadow assist and fast
//! re-detection off), the measured effective-bandwidth ratio must grow
//! along both axes and track `(Td + Tr)/T`.

use aitf_core::{AitfConfig, HostPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};

use crate::harness::{run_spec, Table};

/// The declarative E14 scenario: Figure 1 in conservative (formula) mode
/// with `Td` and `Tr` applied through the first-class sweep axes.
pub fn scenario(td: SimDuration, tr: SimDuration, t: SimDuration, periods: u64) -> Scenario {
    let cfg = AitfConfig {
        t_long: t,
        packet_triggered_reactivation: false,
        fast_redetect: false,
        grace: t * (periods + 2),
        ..AitfConfig::default()
    };
    let formula = (td.as_secs_f64() + tr.as_secs_f64()) / t.as_secs_f64();
    Scenario::new(TopologySpec::fig1(HostPolicy::Malicious))
        .config(cfg)
        .td(td)
        .tr(tr)
        .duration(t * periods)
        .traffic(TrafficSpec::flood(
            HostSel::Role(Role::Attacker),
            TargetSel::Victim,
            400,
            500,
        ))
        .probes(
            ProbeSet::new()
                .end(move |_, m| m.set("r_formula", formula))
                .leak_ratio("r_measured"),
        )
}

/// Measures one grid point.
pub fn run_one(
    td: SimDuration,
    tr: SimDuration,
    t: SimDuration,
    periods: u64,
    seed: u64,
) -> Outcome {
    scenario(td, tr, t, periods).run(seed)
}

/// The E14 scenario spec: the full `Td × Tr` grid at `n = 1`, `T` fixed.
pub fn spec(quick: bool) -> ScenarioSpec {
    let td_values: &[u64] = if quick { &[0, 100] } else { &[0, 50, 100, 200] };
    let tr_values: &[u64] = if quick { &[10, 100] } else { &[10, 50, 100] };
    let t_s: u64 = 10;
    let periods: u64 = if quick { 2 } else { 3 };
    let mut points = Vec::new();
    for &td in td_values {
        for &tr in tr_values {
            points.push(
                Params::new()
                    .with("td_ms", td)
                    .with("tr_ms", tr)
                    .with("t_s", t_s)
                    .with("_periods", periods),
            );
        }
    }
    ScenarioSpec::new(
        "e14_td_tr_grid",
        "E14 (§IV-A.1): Td x Tr grid on effective bandwidth, n = 1",
        "§IV-A.1",
    )
    .expectation(
        "r_measured grows along both grid axes and tracks the formula \
         (Td+Tr)/T — the two remaining quantities of r = n(Td+Tr)/T, \
         swept as first-class scenario axes.",
    )
    .points(points)
    .runner(|p, ctx| {
        scenario(
            SimDuration::from_millis(p.u64("td_ms")),
            SimDuration::from_millis(p.u64("tr_ms")),
            SimDuration::from_secs(p.u64("t_s")),
            p.u64("_periods"),
        )
        .shards(ctx.shards)
        .run(ctx.seed)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leak(td_ms: u64, tr_ms: u64, seed: u64) -> f64 {
        run_one(
            SimDuration::from_millis(td_ms),
            SimDuration::from_millis(tr_ms),
            SimDuration::from_secs(10),
            2,
            seed,
        )
        .metrics
        .f64("r_measured")
    }

    #[test]
    fn r_grows_along_the_td_axis() {
        let low = leak(0, 50, 41);
        let high = leak(200, 50, 41);
        assert!(
            high > low,
            "larger Td must leak more: td=0 -> {low}, td=200ms -> {high}"
        );
    }

    #[test]
    fn r_grows_along_the_tr_axis() {
        let near = leak(100, 10, 42);
        let far = leak(100, 100, 42);
        assert!(
            far > near,
            "larger Tr must leak more: tr=10ms -> {near}, tr=100ms -> {far}"
        );
    }

    #[test]
    fn r_tracks_the_formula_order_of_magnitude() {
        let r = leak(100, 50, 43);
        let formula = 0.150 / 10.0;
        assert!(r > 0.0, "some leak must exist");
        assert!(r < formula * 3.0, "r = {r}, formula = {formula}");
    }
}
