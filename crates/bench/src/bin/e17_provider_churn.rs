//! Binary wrapper for the `e17_provider_churn` experiment; see the
//! library module for the full description.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e17_provider_churn::run(quick);
}
