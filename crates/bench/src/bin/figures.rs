//! Emits the paper-style time series (goodput collapse and recovery,
//! attack bandwidth, filter occupancy) as gnuplot-ready columns.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    aitf_bench::figures::run(quick);
}
