//! Binary wrapper for the `e14_td_tr_grid` experiment; see the library
//! module for the full description.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e14_td_tr_grid::run(quick);
}
