//! Binary wrapper for the `e3_protection_capacity` experiment; see the library module for
//! the full description and the paper mapping.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e3_protection_capacity::run(quick);
}
