//! Binary wrapper for the `e4_victim_gw_resources` experiment; see the library module for
//! the full description and the paper mapping.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e4_victim_gw_resources::run(quick);
}
