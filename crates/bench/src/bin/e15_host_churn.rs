//! Binary wrapper for the `e15_host_churn` experiment; see the library
//! module for the full description.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e15_host_churn::run(quick);
}
