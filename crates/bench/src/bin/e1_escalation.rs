//! Binary wrapper for the `e1_escalation` experiment; see the library module for
//! the full description and the paper mapping.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e1_escalation::run(quick);
}
