//! Binary wrapper for the `e12_mixed_workload` experiment; see the
//! library module for the full description.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e12_mixed_workload::run(quick);
}
