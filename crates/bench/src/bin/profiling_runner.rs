//! Runs registered experiments under the instrumented (`trace`) build and
//! reports where the wall time goes.
//!
//! ```text
//! profiling_runner [--quick] [--filter SUBSTR]... [--threads N]
//!                  [--out DIR] [--seed N]
//! ```
//!
//! - `--quick`    reduced sweeps (the CI smoke size)
//! - `--filter`   select experiments (repeatable); defaults to the
//!   profiling set `e1 e10 e16`
//! - `--threads`  worker threads (default 1: per-subsystem wall buckets
//!   are cleanest without scheduler interleaving)
//! - `--out`      directory for `PROFILE_<experiment>.json` and
//!   `PROFILE_<experiment>.folded` (default: current directory)
//! - `--seed`     base seed (default 42)
//!
//! For each experiment it prints a per-subsystem breakdown (events, wall,
//! ns/event, share of loop wall) and writes flamegraph-ready folded-stack
//! lines — feed `PROFILE_<exp>.folded` straight to `flamegraph.pl` or
//! `inferno-flamegraph`.
//!
//! The binary must be built with the `trace` feature
//! (`cargo run --release -p aitf-bench --features trace --bin
//! profiling_runner`); without it there is nothing to measure and it exits
//! with an error instead of printing all-zero tables.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use aitf_engine::{Runner, DEFAULT_BASE_SEED};
use aitf_trace::{Subsystem, SubsystemProfile};

struct Args {
    quick: bool,
    filters: Vec<String>,
    threads: usize,
    out_dir: PathBuf,
    base_seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        filters: Vec::new(),
        threads: 1,
        out_dir: PathBuf::from("."),
        base_seed: DEFAULT_BASE_SEED,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--filter" => args.filters.push(value("--filter")),
            "--threads" => {
                args.threads = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| die("--threads needs an integer"))
            }
            "--out" => args.out_dir = PathBuf::from(value("--out")),
            "--seed" => {
                args.base_seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an integer"))
            }
            "--help" | "-h" => {
                println!(
                    "usage: profiling_runner [--quick] [--filter SUBSTR]... \
                     [--threads N] [--out DIR] [--seed N]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    if args.filters.is_empty() {
        // The standing profiling set: the canonical escalation scenario,
        // the scaling sweep, and the deployment-incentive sweep.
        args.filters = vec!["e1".into(), "e10".into(), "e16".into()];
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("profiling_runner: {msg}");
    std::process::exit(2);
}

/// `1234567` ns → `"1.235ms"` — compact wall rendering for the table.
fn fmt_nanos(nanos: u64) -> String {
    let ns = nanos as f64;
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

fn main() {
    if !cfg!(feature = "trace") {
        die("built without the `trace` feature — nothing to measure.\n\
             rebuild with: cargo run --release -p aitf-bench \
             --features trace --bin profiling_runner");
    }
    let args = parse_args();
    let registry = aitf_bench::registry(args.quick);
    let unmatched = registry.unmatched(&args.filters);
    if !unmatched.is_empty() {
        die(&format!(
            "no experiment matches {unmatched:?}; known ids: {}",
            registry
                .specs()
                .iter()
                .map(|s| s.id)
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    let specs = registry.select(&args.filters);

    println!(
        "=== profiling {} experiment(s), {} thread(s), base seed {} ===\n",
        specs.len(),
        args.threads,
        args.base_seed
    );
    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        die(&format!("creating {}: {e}", args.out_dir.display()));
    }

    for spec in &specs {
        let start = Instant::now();
        let records = Runner::new(args.threads)
            .quick(args.quick)
            .base_seed(args.base_seed)
            .run(spec);
        let wall = start.elapsed().as_secs_f64();

        // Aggregate subsystem buckets and folded stacks across all points.
        let mut merged = SubsystemProfile::default();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        let mut span_count = 0usize;
        let mut traced_points = 0usize;
        for rec in &records {
            let Some(report) = &rec.trace else { continue };
            traced_points += 1;
            merged.merge(&report.subsystems);
            span_count += report.spans.len();
            for line in report.folded() {
                // `path;to;frame WEIGHT` — sum weights across points.
                let Some((stack, w)) = line.rsplit_once(' ') else {
                    continue;
                };
                let w: u64 = w.parse().unwrap_or(0);
                *folded.entry(stack.to_string()).or_insert(0) += w;
            }
        }
        if traced_points == 0 {
            die(&format!(
                "{}: no run produced a trace payload — was the scenario \
                 built with the `trace` feature?",
                spec.id
            ));
        }

        let final_profile = merged.finalized();
        let loop_nanos = final_profile.loop_nanos().max(1);
        println!(
            "--- {} ({} point(s), {} span(s), {wall:.2}s wall) ---",
            spec.id,
            records.len(),
            span_count
        );
        println!(
            "{:<16} {:>12} {:>12} {:>10} {:>7}",
            "subsystem", "events", "wall", "ns/event", "share"
        );
        for (sub, bucket) in final_profile.rows() {
            let per_event = bucket.nanos.checked_div(bucket.events).unwrap_or(0);
            println!(
                "{:<16} {:>12} {:>12} {:>10} {:>6.1}%",
                sub.name(),
                bucket.events,
                fmt_nanos(bucket.nanos),
                per_event,
                100.0 * bucket.nanos as f64 / loop_nanos as f64,
            );
        }
        println!();

        // (c) PROFILE_<experiment>.json
        let mut json = String::new();
        json.push_str(&format!(
            "{{\"schema\":1,\"experiment\":\"{}\",\"quick\":{},\"base_seed\":{},\"threads\":{},\"points\":{},\"traced_points\":{},\"span_count\":{},\"wall_secs\":{:.6},\"subsystems\":{}}}\n",
            spec.id,
            args.quick,
            args.base_seed,
            args.threads,
            records.len(),
            traced_points,
            span_count,
            wall,
            final_profile.to_json(),
        ));
        let json_path = args.out_dir.join(format!("PROFILE_{}.json", spec.id));
        if let Err(e) = std::fs::write(&json_path, json) {
            die(&format!("writing {}: {e}", json_path.display()));
        }
        println!("wrote {}", json_path.display());

        // (b) flamegraph-ready folded stacks.
        let mut folded_out = String::new();
        for (stack, weight) in &folded {
            folded_out.push_str(&format!("{stack} {weight}\n"));
        }
        let folded_path = args.out_dir.join(format!("PROFILE_{}.folded", spec.id));
        if let Err(e) = std::fs::write(&folded_path, folded_out) {
            die(&format!("writing {}: {e}", folded_path.display()));
        }
        println!(
            "wrote {} ({} stack(s))\n",
            folded_path.display(),
            folded.len()
        );
    }
    let total_subsystems: usize = Subsystem::COUNT;
    println!(
        "=== done: {} experiment(s) profiled across {total_subsystems} subsystem classes ===",
        specs.len()
    );
}
