//! Binary wrapper for the `e20_flash_crowd` experiment; see the library
//! module for the full description.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e20_flash_crowd::run(quick);
}
