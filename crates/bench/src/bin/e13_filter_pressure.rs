//! Binary wrapper for the `e13_filter_pressure` experiment; see the
//! library module for the full description.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e13_filter_pressure::run(quick);
}
