//! Binary wrapper for the `e8_vs_pushback` experiment; see the library module for
//! the full description and the paper mapping.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e8_vs_pushback::run(quick);
}
