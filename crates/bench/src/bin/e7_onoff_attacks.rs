//! Binary wrapper for the `e7_onoff_attacks` experiment; see the library module for
//! the full description and the paper mapping.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e7_onoff_attacks::run(quick);
}
