//! Binary wrapper for the `e19_defense_bakeoff` experiment; see the
//! library module for the full description.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e19_defense_bakeoff::run(quick);
}
