//! Binary wrapper for the `e2_effective_bandwidth` experiment; see the library module for
//! the full description and the paper mapping.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e2_effective_bandwidth::run(quick);
}
