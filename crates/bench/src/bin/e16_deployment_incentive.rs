//! Binary wrapper for the `e16_deployment_incentive` experiment; see the
//! library module for the full description.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e16_deployment_incentive::run(quick);
}
