//! Binary wrapper for the `e10_scaling` experiment; see the library module for
//! the full description and the paper mapping.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e10_scaling::run(quick);
}
