//! Binary wrapper for the `e9_ingress_incentive` experiment; see the library module for
//! the full description and the paper mapping.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e9_ingress_incentive::run(quick);
}
