//! Driver for the experiment suite: selects scenarios from the registry,
//! fans every sweep point out across a thread pool, prints each table and
//! (optionally) writes one `BENCH_<experiment>.json` per experiment.
//!
//! ```text
//! all_experiments [--quick] [--filter SUBSTR]... [--threads N]
//!                 [--json DIR] [--seed N] [--shards K]
//! ```
//!
//! - `--quick`    reduced sweeps (the CI / smoke-test sizes)
//! - `--filter`   select experiments (repeatable): whole id or `_`-boundary
//!   prefix (`e1` = just e1_escalation), substring as fallback
//! - `--threads`  worker threads (default: all cores)
//! - `--json`     write structured run records under DIR
//! - `--seed`     base seed all per-point seeds derive from (default 42)
//! - `--shards`   event-loop shards per simulated world (default 1)
//!
//! Results are bit-identical at any `--threads` or `--shards` value: every
//! point's RNG seed derives only from `(seed, experiment id, point index)`,
//! and the sharded event loop's window protocol never consults thread
//! interleaving.

use std::path::PathBuf;
use std::time::Instant;

use aitf_engine::{available_threads, Runner, DEFAULT_BASE_SEED};

struct Args {
    quick: bool,
    filters: Vec<String>,
    threads: usize,
    json_dir: Option<PathBuf>,
    base_seed: u64,
    shards: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        filters: Vec::new(),
        threads: available_threads(),
        json_dir: None,
        base_seed: DEFAULT_BASE_SEED,
        shards: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--filter" => args.filters.push(value("--filter")),
            "--threads" => {
                args.threads = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| die("--threads needs an integer"))
            }
            "--json" => args.json_dir = Some(PathBuf::from(value("--json"))),
            "--seed" => {
                args.base_seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an integer"))
            }
            "--shards" => {
                args.shards = value("--shards")
                    .parse()
                    .unwrap_or_else(|_| die("--shards needs an integer"))
            }
            "--help" | "-h" => {
                println!(
                    "usage: all_experiments [--quick] [--filter SUBSTR]... \
                     [--threads N] [--json DIR] [--seed N] [--shards K]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("all_experiments: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let registry = aitf_bench::registry(args.quick);
    // Any filter matching nothing is an error — never silently run a
    // different selection than the one asked for.
    let unmatched = registry.unmatched(&args.filters);
    if !unmatched.is_empty() {
        die(&format!(
            "no experiment matches {unmatched:?}; known ids: {}",
            registry
                .specs()
                .iter()
                .map(|s| s.id)
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    let specs = registry.select(&args.filters);
    assert!(!specs.is_empty(), "matched filters cannot select nothing");

    println!(
        "=== AITF paper reproduction: {} experiment(s), {} thread(s), base seed {} ===\n",
        specs.len(),
        args.threads,
        args.base_seed
    );
    // detlint::allow(wall-clock): suite wall-time print for the operator — never recorded
    let start = Instant::now();
    // One flat job pool across all selected experiments: points from
    // different sweeps fill the same worker threads.
    let grouped = Runner::new(args.threads)
        .quick(args.quick)
        .base_seed(args.base_seed)
        .shards(args.shards)
        .run_all(&specs);
    let wall = start.elapsed().as_secs_f64();

    let mut total_points = 0usize;
    let mut total_events = 0u64;
    for (spec, records) in specs.iter().zip(&grouped) {
        aitf_bench::harness::render_sweep(spec, records);
        total_points += records.len();
        total_events += records.iter().map(|r| r.events).sum::<u64>();
        if let Some(dir) = &args.json_dir {
            match aitf_engine::json::write_document(
                dir,
                spec,
                records,
                args.base_seed,
                args.threads,
                args.quick,
            ) {
                Ok(path) => println!("wrote {}\n", path.display()),
                Err(e) => die(&format!("writing {}: {e}", spec.id)),
            }
        }
    }
    println!("=== {total_points} point(s), {total_events} simulator event(s), {wall:.2}s wall ===");
}
