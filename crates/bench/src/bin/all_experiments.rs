//! Runs the entire experiment suite (E1–E10) in order, printing every
//! table the paper's evaluation maps to. Pass `--quick` for the reduced
//! sweep used in CI.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("=== AITF paper reproduction: full experiment suite ===\n");
    let _ = aitf_bench::e1_escalation::run(quick);
    let _ = aitf_bench::e2_effective_bandwidth::run(quick);
    let _ = aitf_bench::e3_protection_capacity::run(quick);
    let _ = aitf_bench::e4_victim_gw_resources::run(quick);
    let _ = aitf_bench::e5_attacker_gw_resources::run(quick);
    let _ = aitf_bench::e6_handshake_security::run(quick);
    let _ = aitf_bench::e7_onoff_attacks::run(quick);
    let _ = aitf_bench::e8_vs_pushback::run(quick);
    let _ = aitf_bench::e9_ingress_incentive::run(quick);
    let _ = aitf_bench::e10_scaling::run(quick);
    let _ = aitf_bench::e11_detection::run(quick);
}
