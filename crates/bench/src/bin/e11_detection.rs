//! Binary wrapper for the `e11_detection` experiment; see the library
//! module for the full description.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = aitf_bench::e11_detection::run(quick);
}
