//! E2 — Section IV-A.1: effective bandwidth of an undesired flow.
//!
//! The paper's central effectiveness formula:
//!
//! ```text
//! r ≈ n (Td + Tr) / T
//! ```
//!
//! where `n` is the number of non-cooperating AITF nodes on the attack
//! path (counting the attacker itself), `Td` the detection time, `Tr` the
//! one-way victim→gateway delay and `T` the request horizon. The paper's
//! worked example: `n = 1`, `Tr = 50 ms`, `T = 1 min`, `Td ≈ 0` →
//! `r ≈ 0.00083`.
//!
//! The formula models a *conservative* deployment where each failed round
//! costs the victim a fresh detection: we measure that mode (shadow assist
//! off) against the formula, and also the default deployment (shadow
//! assist on) which does strictly better because reactivations are caught
//! at the gateway before the victim sees a packet.

use aitf_attack::FloodSource;
use aitf_core::{AitfConfig, HostPolicy, RouterPolicy};
use aitf_netsim::{LinkParams, SimDuration};

use crate::harness::{fmt_f, Table};

/// Parameters of one measurement point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Non-cooperating nodes on the attack path (1 = just the attacker).
    pub n: usize,
    /// Detection delay `Td`.
    pub td: SimDuration,
    /// Victim→gateway one-way delay `Tr`.
    pub tr: SimDuration,
    /// Request horizon `T`.
    pub t: SimDuration,
}

impl Point {
    /// The paper's predicted reduction factor `n(Td+Tr)/T`.
    pub fn formula(&self) -> f64 {
        self.n as f64 * (self.td.as_secs_f64() + self.tr.as_secs_f64()) / self.t.as_secs_f64()
    }
}

/// Measures the leak ratio for one point, building Figure 1 by hand so
/// the victim's tail circuit gets delay `Tr`. `assists` enables the
/// shadow-reactivation and fast-redetect optimisations (the default
/// deployment); disabling them reproduces the formula's conservative
/// model where every failed round costs the victim a fresh `Td + Tr`.
pub fn measure_with_tr(p: Point, assists: bool, periods: u64) -> f64 {
    let cfg = AitfConfig {
        t_long: p.t,
        detection_delay: p.td,
        packet_triggered_reactivation: assists,
        fast_redetect: assists,
        grace: p.t * (periods + 2),
        ..AitfConfig::default()
    };
    // Build Fig.1 by hand so the victim's tail circuit gets delay Tr.
    let mut b = aitf_core::WorldBuilder::new(21 + p.n as u64, cfg);
    let g_wan = b.network("G_wan", "10.103.0.0/16", None);
    let g_isp = b.network("G_isp", "10.102.0.0/16", Some(g_wan));
    let g_net = b.network("G_net", "10.1.0.0/16", Some(g_isp));
    let b_wan = b.network("B_wan", "10.203.0.0/16", None);
    let b_isp = b.network("B_isp", "10.202.0.0/16", Some(b_wan));
    let b_net = b.network("B_net", "10.9.0.0/16", Some(b_isp));
    b.peer(g_wan, b_wan, aitf_core::WorldBuilder::default_net_link());
    let victim = b.host_with(
        g_net,
        HostPolicy::Compliant,
        LinkParams::ethernet(10_000_000, p.tr),
    );
    let attacker = b.host_with(
        b_net,
        HostPolicy::Malicious,
        aitf_core::WorldBuilder::default_host_link(),
    );
    let mut world = b.build();
    for (i, net) in [b_net, b_isp].into_iter().enumerate() {
        if i < p.n.saturating_sub(1) {
            world
                .router_mut(net)
                .set_policy(RouterPolicy::non_cooperating());
        }
    }
    let target = world.host_addr(victim);
    world.add_app(attacker, Box::new(FloodSource::new(target, 400, 500)));
    world.sim.run_for(p.t * periods);
    let offered = world.host(attacker).counters().tx_bytes;
    let received = world.host(victim).counters().rx_attack_bytes;
    if offered == 0 {
        return 0.0;
    }
    received as f64 / offered as f64
}

/// Runs the sweep and prints the table plus the paper's worked example.
pub fn run(quick: bool) -> Table {
    let periods = if quick { 2 } else { 3 };
    let t_values: &[u64] = if quick { &[10, 30] } else { &[10, 30, 60] };
    let tr_values: &[u64] = if quick { &[50] } else { &[10, 50, 100] };
    let mut table = Table::new(
        "E2 (§IV-A.1): effective-bandwidth reduction r vs formula n(Td+Tr)/T",
        &[
            "n",
            "Td ms",
            "Tr ms",
            "T s",
            "r formula",
            "r measured",
            "r (assists on)",
        ],
    );
    for &n in &[1usize, 2, 3] {
        for &t in t_values {
            for &tr in tr_values {
                let p = Point {
                    n,
                    td: SimDuration::from_millis(100),
                    tr: SimDuration::from_millis(tr),
                    t: SimDuration::from_secs(t),
                };
                let measured = measure_with_tr(p, false, periods);
                let assisted = measure_with_tr(p, true, periods);
                table.row_owned(vec![
                    n.to_string(),
                    "100".to_string(),
                    tr.to_string(),
                    t.to_string(),
                    fmt_f(p.formula()),
                    fmt_f(measured),
                    fmt_f(assisted),
                ]);
            }
        }
    }
    table.print();

    // The paper's worked example: Td ≈ 0, Tr = 50 ms, T = 60 s, n = 1.
    let example = Point {
        n: 1,
        td: SimDuration::ZERO,
        tr: SimDuration::from_millis(50),
        t: SimDuration::from_secs(60),
    };
    let r = measure_with_tr(example, false, if quick { 1 } else { 3 });
    println!(
        "paper example (n=1, Tr=50ms, T=60s): r_formula = {:.5} (paper: 0.00083), \
         r_measured = {:.5}\n",
        example.formula(),
        r
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_r_tracks_formula_for_n1() {
        let p = Point {
            n: 1,
            td: SimDuration::from_millis(100),
            tr: SimDuration::from_millis(50),
            t: SimDuration::from_secs(10),
        };
        let r = measure_with_tr(p, false, 2);
        let formula = p.formula();
        // Same order of magnitude, never worse than 3x the bound.
        assert!(r > 0.0, "some leak must exist");
        assert!(r < formula * 3.0, "r = {r}, formula = {formula}");
    }

    #[test]
    fn assists_strictly_improve_on_the_formula_mode() {
        let p = Point {
            n: 2,
            td: SimDuration::from_millis(100),
            tr: SimDuration::from_millis(50),
            t: SimDuration::from_secs(10),
        };
        let plain = measure_with_tr(p, false, 2);
        let assisted = measure_with_tr(p, true, 2);
        assert!(
            assisted <= plain,
            "assists must not hurt: plain = {plain}, assisted = {assisted}"
        );
    }

    #[test]
    fn r_grows_with_n() {
        let mk = |n| Point {
            n,
            td: SimDuration::from_millis(100),
            tr: SimDuration::from_millis(50),
            t: SimDuration::from_secs(10),
        };
        let r1 = measure_with_tr(mk(1), false, 2);
        let r2 = measure_with_tr(mk(2), false, 2);
        assert!(
            r2 > r1,
            "more rogue nodes must leak more: r1 = {r1}, r2 = {r2}"
        );
    }

    #[test]
    fn r_shrinks_with_t() {
        let mk = |t| Point {
            n: 1,
            td: SimDuration::from_millis(100),
            tr: SimDuration::from_millis(50),
            t: SimDuration::from_secs(t),
        };
        let r_short = measure_with_tr(mk(5), false, 2);
        let r_long = measure_with_tr(mk(20), false, 2);
        assert!(
            r_long < r_short,
            "longer T must leak proportionally less: {r_short} vs {r_long}"
        );
    }
}
