//! E2 — Section IV-A.1: effective bandwidth of an undesired flow.
//!
//! The paper's central effectiveness formula:
//!
//! ```text
//! r ≈ n (Td + Tr) / T
//! ```
//!
//! where `n` is the number of non-cooperating AITF nodes on the attack
//! path (counting the attacker itself), `Td` the detection time, `Tr` the
//! one-way victim→gateway delay and `T` the request horizon. The paper's
//! worked example: `n = 1`, `Tr = 50 ms`, `T = 1 min`, `Td ≈ 0` →
//! `r ≈ 0.00083`.
//!
//! The formula models a *conservative* deployment where each failed round
//! costs the victim a fresh detection: we measure that mode (shadow assist
//! off) against the formula, and also the default deployment (shadow
//! assist on) which does strictly better because reactivations are caught
//! at the gateway before the victim sees a packet.

use aitf_core::{AitfConfig, HostPolicy, RouterPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::{LinkParams, SimDuration};
use aitf_scenario::{HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};

use crate::harness::{run_spec, Table};

/// Parameters of one measurement point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Non-cooperating nodes on the attack path (1 = just the attacker).
    pub n: usize,
    /// Detection delay `Td`.
    pub td: SimDuration,
    /// Victim→gateway one-way delay `Tr`.
    pub tr: SimDuration,
    /// Request horizon `T`.
    pub t: SimDuration,
}

impl Point {
    /// The paper's predicted reduction factor `n(Td+Tr)/T`.
    pub fn formula(&self) -> f64 {
        self.n as f64 * (self.td.as_secs_f64() + self.tr.as_secs_f64()) / self.t.as_secs_f64()
    }
}

/// The declarative E2 scenario: Figure 1 with the victim's tail circuit
/// delayed by `Tr` and `n - 1` non-cooperating attacker-side gateways.
/// `assists` enables the shadow-reactivation and fast-redetect
/// optimisations (the default deployment); disabling them reproduces the
/// formula's conservative model where every failed round costs the victim
/// a fresh `Td + Tr`.
pub fn scenario(p: Point, assists: bool, periods: u64) -> Scenario {
    let cfg = AitfConfig {
        t_long: p.t,
        detection_delay: p.td,
        packet_triggered_reactivation: assists,
        fast_redetect: assists,
        grace: p.t * (periods + 2),
        ..AitfConfig::default()
    };
    let mut topo = TopologySpec::fig1_with_victim_link(
        HostPolicy::Malicious,
        LinkParams::ethernet(10_000_000, p.tr),
    );
    for net in ["B_net", "B_isp"].iter().take(p.n.saturating_sub(1)) {
        topo.set_net_policy(net, RouterPolicy::non_cooperating());
    }
    let formula = p.formula();
    Scenario::new(topo)
        .config(cfg)
        .duration(p.t * periods)
        .traffic(TrafficSpec::flood(
            HostSel::Role(Role::Attacker),
            TargetSel::Victim,
            400,
            500,
        ))
        .probes(
            ProbeSet::new()
                .end(move |_, m| m.set("r_formula", formula))
                .leak_ratio("r_measured"),
        )
}

/// Measures one point; returns the full outcome (metrics `r_formula`,
/// `r_measured`, plus the simulator event count).
pub fn measure_with_tr(p: Point, assists: bool, periods: u64, seed: u64) -> Outcome {
    scenario(p, assists, periods).run(seed)
}

/// The E2 scenario spec: `(n, T, Tr, assists)` grid, `Td` fixed at 100 ms.
/// The final point is the paper's worked example (`Td ≈ 0, Tr = 50 ms,
/// T = 60 s, n = 1` → `r ≈ 0.00083`).
pub fn spec(quick: bool) -> ScenarioSpec {
    let periods: u64 = if quick { 2 } else { 3 };
    let t_values: &[u64] = if quick { &[10, 30] } else { &[10, 30, 60] };
    let tr_values: &[u64] = if quick { &[50] } else { &[10, 50, 100] };
    let mut points = Vec::new();
    let mut group = 0u64;
    for n in [1u64, 2, 3] {
        for &t in t_values {
            for &tr in tr_values {
                // The assists-on/off pair shares a seed group so the two
                // rows differ only in the knob, never in RNG noise — the
                // expectation compares them directly.
                for assists in [false, true] {
                    points.push(
                        Params::new()
                            .with("n", n)
                            .with("td_ms", 100u64)
                            .with("tr_ms", tr)
                            .with("t_s", t)
                            .with("assists", assists)
                            .with("_periods", periods)
                            .with("_seed_group", group),
                    );
                }
                group += 1;
            }
        }
    }
    // The paper's worked example rides along as the last sweep point.
    points.push(
        Params::new()
            .with("n", 1u64)
            .with("td_ms", 0u64)
            .with("tr_ms", 50u64)
            .with("t_s", 60u64)
            .with("assists", false)
            .with("_periods", if quick { 1u64 } else { 3 })
            .with("_seed_group", group),
    );
    ScenarioSpec::new(
        "e2_effective_bandwidth",
        "E2 (§IV-A.1): effective-bandwidth reduction r vs formula n(Td+Tr)/T",
        "§IV-A.1",
    )
    .expectation(
        "measured r tracks the formula n(Td+Tr)/T; the assisted deployment \
         does strictly better. Final row is the paper's worked example \
         (formula r = 0.00083).",
    )
    .points(points)
    .runner(|p, ctx| {
        let point = Point {
            n: p.usize("n"),
            td: SimDuration::from_millis(p.u64("td_ms")),
            tr: SimDuration::from_millis(p.u64("tr_ms")),
            t: SimDuration::from_secs(p.u64("t_s")),
        };
        scenario(point, p.bool("assists"), p.u64("_periods"))
            .shards(ctx.shards)
            .run(ctx.seed)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leak(p: Point, assists: bool, periods: u64, seed: u64) -> f64 {
        measure_with_tr(p, assists, periods, seed)
            .metrics
            .f64("r_measured")
    }

    #[test]
    fn measured_r_tracks_formula_for_n1() {
        let p = Point {
            n: 1,
            td: SimDuration::from_millis(100),
            tr: SimDuration::from_millis(50),
            t: SimDuration::from_secs(10),
        };
        let r = leak(p, false, 2, 22);
        let formula = p.formula();
        // Same order of magnitude, never worse than 3x the bound.
        assert!(r > 0.0, "some leak must exist");
        assert!(r < formula * 3.0, "r = {r}, formula = {formula}");
    }

    #[test]
    fn assists_strictly_improve_on_the_formula_mode() {
        let p = Point {
            n: 2,
            td: SimDuration::from_millis(100),
            tr: SimDuration::from_millis(50),
            t: SimDuration::from_secs(10),
        };
        let plain = leak(p, false, 2, 23);
        let assisted = leak(p, true, 2, 23);
        assert!(
            assisted <= plain,
            "assists must not hurt: plain = {plain}, assisted = {assisted}"
        );
    }

    #[test]
    fn r_grows_with_n() {
        let mk = |n| Point {
            n,
            td: SimDuration::from_millis(100),
            tr: SimDuration::from_millis(50),
            t: SimDuration::from_secs(10),
        };
        let r1 = leak(mk(1), false, 2, 22);
        let r2 = leak(mk(2), false, 2, 23);
        assert!(
            r2 > r1,
            "more rogue nodes must leak more: r1 = {r1}, r2 = {r2}"
        );
    }

    #[test]
    fn r_shrinks_with_t() {
        let mk = |t| Point {
            n: 1,
            td: SimDuration::from_millis(100),
            tr: SimDuration::from_millis(50),
            t: SimDuration::from_secs(t),
        };
        let r_short = leak(mk(5), false, 2, 22);
        let r_long = leak(mk(20), false, 2, 22);
        assert!(
            r_long < r_short,
            "longer T must leak proportionally less: {r_short} vs {r_long}"
        );
    }
}
