//! E13 — filter-table pressure: leak ratio vs per-router capacity.
//!
//! The paper sizes the victim gateway's wire-speed table at `nv = R1·Ttmp`
//! (§IV-B) precisely so that it never runs out during an attack's onset.
//! E13 probes what happens when it *does*: a star of `ARMY` zombie
//! networks floods simultaneously, so the victim's gateway needs `ARMY`
//! concurrent temporary filters for the first `Ttmp`, and we sweep the
//! per-router `filter_capacity` (shadow capacity scaled alongside) from
//! far below that demand to above it, under both full-table policies:
//!
//! - **reject** ([`EvictionPolicy::Reject`]) — over-demand requests are
//!   refused at the gateway and the victim must retry after the damping
//!   cooldown, so blocking the army takes ~`ARMY/capacity` retry rounds;
//! - **evict** ([`EvictionPolicy::EvictSoonestExpiring`]) — requests
//!   always land, at the price of early-evicted filters leaking until the
//!   attacker-side long filter takes over.
//!
//! Either way the victim eats extra `(Td + Tr)`-shaped leak windows per
//! retry round — the same quantity the `r ≈ n(Td+Tr)/T` formula charges
//! per non-cooperating node — so the leak ratio must degrade
//! monotonically once capacity drops below the army size, and flatten at
//! or above it.

use aitf_core::{AitfConfig, EvictionPolicy, HostPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{
    HostSel, ProbeSet, Role, Scenario, Side, TargetSel, TopologySpec, TrafficSpec,
};

use crate::harness::{run_spec, Table};

/// Zombie networks (one host each) — the victim gateway's concurrent
/// temporary-filter demand during the onset.
pub const ARMY: usize = 12;

/// Shadow capacity rides the sweep at this multiple of the filter
/// capacity (the shadow is DRAM: §IV-B sizes it `T/Ttmp` times larger).
pub const SHADOW_FACTOR: usize = 4;

/// The declarative E13 scenario: every zombie floods from `t = 0` (no
/// stagger — simultaneous onset maximises concurrent filter demand).
pub fn scenario(capacity: usize, policy: EvictionPolicy, duration: SimDuration) -> Scenario {
    let cfg = AitfConfig {
        // Disconnection would mask the capacity effect (a disconnected
        // zombie stops leaking no matter how small the table is).
        grace: SimDuration::from_secs(3600),
        ..AitfConfig::default()
    };
    Scenario::new(TopologySpec::star(
        ARMY,
        1,
        HostPolicy::Malicious,
        10_000_000,
    ))
    .config(cfg)
    .filter_capacity(capacity)
    .shadow_capacity(capacity * SHADOW_FACTOR)
    .eviction(policy)
    .duration(duration)
    .traffic(TrafficSpec::flood(
        HostSel::Role(Role::Attacker),
        TargetSel::Victim,
        400,
        500,
    ))
    .probes(
        ProbeSet::new()
            .leak_ratio("leak_r")
            .end(|w, m| {
                let vgw = w.world.router(w.net("victim_net"));
                m.set("vgw_rejections", vgw.counters().requests_unsatisfiable);
                m.set("vgw_evictions", vgw.filters().stats().evictions);
            })
            .peak_filters("vgw_peak", "victim_net")
            .filters_installed_on("blocked_flows", Side::Attacker),
    )
}

/// Runs one capacity point.
pub fn run_one(
    capacity: usize,
    policy: EvictionPolicy,
    duration: SimDuration,
    seed: u64,
) -> Outcome {
    scenario(capacity, policy, duration).run(seed)
}

/// The E13 scenario spec: capacity × full-table-policy grid. Rows pair a
/// seed group per capacity so the reject/evict comparison is free of RNG
/// noise.
pub fn spec(quick: bool) -> ScenarioSpec {
    let capacities: &[u64] = if quick {
        &[2, 6, 24]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let duration_s: u64 = if quick { 6 } else { 10 };
    let mut points = Vec::new();
    for (group, &cap) in capacities.iter().enumerate() {
        for policy in ["reject", "evict"] {
            points.push(
                Params::new()
                    .with("filter_cap", cap)
                    .with("shadow_cap", cap * SHADOW_FACTOR as u64)
                    .with("policy", policy)
                    .with("demand_filters", ARMY as u64)
                    .with("duration_s", duration_s)
                    .with("_seed_group", group as u64),
            );
        }
    }
    ScenarioSpec::new(
        "e13_filter_pressure",
        "E13 (filter pressure): leak ratio + evictions vs per-router capacity",
        "§IV-B sizing, stressed",
    )
    .expectation(
        "leak_r degrades monotonically once filter_cap drops below the \
         army's concurrent demand (12 flows) and flattens at or above it; \
         the reject policy shows gateway rejections, the evict policy \
         shows evictions instead; every flow is eventually blocked at \
         capacities >= 1.",
    )
    .points(points)
    .runner(|p, ctx| {
        let policy = match p.str("policy") {
            "reject" => EvictionPolicy::Reject,
            "evict" => EvictionPolicy::EvictSoonestExpiring,
            other => panic!("unknown policy {other:?}"),
        };
        scenario(
            p.usize("filter_cap"),
            policy,
            SimDuration::from_secs(p.u64("duration_s")),
        )
        .shards(ctx.shards)
        .run(ctx.seed)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leak(cap: usize, policy: EvictionPolicy, seed: u64) -> f64 {
        run_one(cap, policy, SimDuration::from_secs(6), seed)
            .metrics
            .f64("leak_r")
    }

    #[test]
    fn leak_degrades_monotonically_below_demand_and_flattens_above() {
        // Same seed across capacities: the only variable is the table.
        let l2 = leak(2, EvictionPolicy::Reject, 31);
        let l6 = leak(6, EvictionPolicy::Reject, 31);
        let l12 = leak(ARMY, EvictionPolicy::Reject, 31);
        let l24 = leak(2 * ARMY, EvictionPolicy::Reject, 31);
        assert!(
            l2 > l6 && l6 > l12,
            "leak must degrade as capacity drops below demand: {l2} / {l6} / {l12}"
        );
        // At or above the army size the table never fills: flat.
        assert!(
            (l12 - l24).abs() < 0.1 * l12.max(1e-9),
            "leak must flatten above demand: {l12} vs {l24}"
        );
    }

    #[test]
    fn starved_gateway_rejects_and_eviction_policy_evicts_instead() {
        let rejecting = run_one(2, EvictionPolicy::Reject, SimDuration::from_secs(6), 32);
        assert!(rejecting.metrics.u64("vgw_rejections") > 0, "{rejecting:?}");
        assert_eq!(rejecting.metrics.u64("vgw_evictions"), 0, "{rejecting:?}");
        let evicting = run_one(
            2,
            EvictionPolicy::EvictSoonestExpiring,
            SimDuration::from_secs(6),
            32,
        );
        assert!(evicting.metrics.u64("vgw_evictions") > 0, "{evicting:?}");
        // Peak occupancy never exceeds the configured capacity.
        assert!(evicting.metrics.u64("vgw_peak") <= 2, "{evicting:?}");
    }

    #[test]
    fn every_flow_is_blocked_even_at_tiny_capacity() {
        // Attacker-side gateways see one flow each: even a starved victim
        // gateway eventually pushes every request through via retries.
        let o = run_one(2, EvictionPolicy::Reject, SimDuration::from_secs(6), 33);
        assert_eq!(o.metrics.u64("blocked_flows"), ARMY as u64, "{o:?}");
    }
}
