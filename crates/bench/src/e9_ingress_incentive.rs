//! E9 — Section III-A: the ingress-filtering incentive.
//!
//! *"If a provider pro-actively prevents spoofed flows from exiting its
//! network, it lowers the probability of an attack being launched from its
//! own network, thus reducing the number of expected filtering requests it
//! will later have to satisfy."*
//!
//! A zombie spoofs sources from outside its network's prefix. With ingress
//! filtering at its gateway the flood dies at the first hop; without it,
//! the spoofed flows reach the victim, generate filtering requests, and
//! come back as work (filters, handshakes, notices) for that same
//! provider.

use aitf_attack::SpoofingFlood;
use aitf_core::{AitfConfig, Contract, HostPolicy, RouterPolicy, WorldBuilder};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;

use crate::harness::{run_spec, Table};

/// Outcome of one mode.
#[derive(Debug)]
pub struct IngressOutcome {
    /// Mode label.
    pub mode: &'static str,
    /// Spoofed packets dropped at the zombie's gateway.
    pub spoofed_dropped: u64,
    /// Attack packets that reached the victim.
    pub victim_attack_pkts: u64,
    /// Filtering requests the zombie's provider had to process.
    pub provider_requests: u64,
    /// Filters the zombie's provider had to install.
    pub provider_filters: u64,
    /// Simulator events dispatched during the run.
    pub events: u64,
}

/// Runs one mode.
pub fn run_one(ingress_filtering: bool, seed: u64) -> IngressOutcome {
    let cfg = AitfConfig {
        peer_contract: Contract::new(100.0, 100),
        detection_delay: SimDuration::from_millis(10),
        grace: SimDuration::from_secs(3600),
        ..AitfConfig::default()
    };
    let mut b = WorldBuilder::new(seed, cfg);
    let wan = b.network("wan", "10.100.0.0/16", None);
    let v_net = b.network("v_net", "10.1.0.0/16", Some(wan));
    let b_net = b.network("b_net", "10.9.0.0/16", Some(wan));
    // Ingress filtering is a deployment decision: when it is off, it is
    // off for the zombie's whole provider chain (otherwise the provider
    // one level up catches the spoofs instead).
    for net in [wan, v_net, b_net] {
        b.set_router_policy(
            net,
            RouterPolicy {
                ingress_filtering,
                ..RouterPolicy::default()
            },
        );
    }
    let victim = b.host(v_net);
    let zombie = b.host_with(
        b_net,
        HostPolicy::Malicious,
        WorldBuilder::default_host_link(),
    );
    let mut w = b.build();
    let target = w.host_addr(victim);
    // Spoof pool OUTSIDE b_net's prefix — exactly what ingress filtering
    // is meant to stop.
    let pool: aitf_packet::Prefix = "172.16.0.0/24".parse().expect("valid prefix");
    w.add_app(
        zombie,
        Box::new(SpoofingFlood::new(target, 200, 200, pool, 64)),
    );
    w.sim.run_for(SimDuration::from_secs(10));

    let gw = w.router(aitf_core::NetId(2)).counters();
    IngressOutcome {
        mode: if ingress_filtering {
            "ingress filtering ON"
        } else {
            "ingress filtering OFF"
        },
        spoofed_dropped: gw.spoofed_dropped,
        victim_attack_pkts: w.host(victim).counters().rx_attack_pkts,
        provider_requests: gw.requests_received,
        provider_filters: gw.filters_installed,
        events: w.sim.dispatched_events(),
    }
}

/// The E9 scenario spec: ingress filtering on / off.
pub fn spec(_quick: bool) -> ScenarioSpec {
    ScenarioSpec::new(
        "e9_ingress_incentive",
        "E9 (§III-A): ingress filtering pays for itself",
        "§III-A",
    )
    .expectation(
        "with ingress filtering the provider drops the spoofs at its own \
         edge and processes ~0 filtering requests; without it, the same \
         provider ends up servicing every request for flows it let out — \
         the §III-A economic incentive.",
    )
    .points([true, false].into_iter().map(|ingress| {
        Params::new()
            .with(
                "mode",
                if ingress {
                    "ingress filtering ON"
                } else {
                    "ingress filtering OFF"
                },
            )
            .with("ingress_filtering", ingress)
            // Shared seed group: the expectation contrasts the provider's
            // request load across the on/off pair.
            .with("_seed_group", 0u64)
    }))
    .runner(|p, ctx| {
        let o = run_one(p.bool("ingress_filtering"), ctx.seed);
        Outcome::new(
            Params::new()
                .with("spoofs_dropped", o.spoofed_dropped)
                .with("victim_attack_pkts", o.victim_attack_pkts)
                .with("provider_requests", o.provider_requests)
                .with("provider_filters", o.provider_filters),
        )
        .with_events(o.events)
    })
}

/// Runs both modes and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingress_on_stops_spoofs_at_the_edge() {
        let o = run_one(true, 2);
        assert!(o.spoofed_dropped > 1000, "{o:?}");
        assert_eq!(o.victim_attack_pkts, 0, "{o:?}");
        assert_eq!(o.provider_requests, 0, "{o:?}");
    }

    #[test]
    fn ingress_off_turns_into_filtering_work() {
        let o = run_one(false, 2);
        assert_eq!(o.spoofed_dropped, 0, "{o:?}");
        assert!(o.victim_attack_pkts > 0, "{o:?}");
        assert!(o.provider_requests > 10, "{o:?}");
        assert!(o.provider_filters > 10, "{o:?}");
    }
}
