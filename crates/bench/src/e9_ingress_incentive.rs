//! E9 — Section III-A: the ingress-filtering incentive.
//!
//! *"If a provider pro-actively prevents spoofed flows from exiting its
//! network, it lowers the probability of an attack being launched from its
//! own network, thus reducing the number of expected filtering requests it
//! will later have to satisfy."*
//!
//! A zombie spoofs sources from outside its network's prefix. With ingress
//! filtering at its gateway the flood dies at the first hop; without it,
//! the spoofed flows reach the victim, generate filtering requests, and
//! come back as work (filters, handshakes, notices) for that same
//! provider.

use aitf_core::{AitfConfig, Contract, HostPolicy, RouterPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};

use crate::harness::{run_spec, Table};

/// The declarative E9 scenario: one spoofing zombie, ingress filtering on
/// or off for the whole deployment.
pub fn scenario(ingress_filtering: bool) -> Scenario {
    let cfg = AitfConfig {
        peer_contract: Contract::new(100.0, 100),
        detection_delay: SimDuration::from_millis(10),
        grace: SimDuration::from_secs(3600),
        ..AitfConfig::default()
    };
    let mut topo = TopologySpec::new();
    let wan = topo.net("wan", "10.100.0.0/16", None);
    let v_net = topo.net("v_net", "10.1.0.0/16", Some(wan));
    let b_net = topo.net("b_net", "10.9.0.0/16", Some(wan));
    // Ingress filtering is a deployment decision: when it is off, it is
    // off for the zombie's whole provider chain (otherwise the provider
    // one level up catches the spoofs instead).
    topo.set_all_net_policies(RouterPolicy {
        ingress_filtering,
        ..RouterPolicy::default()
    });
    topo.host(v_net, Role::Victim);
    topo.host_with(
        b_net,
        Role::Attacker,
        HostPolicy::Malicious,
        aitf_core::WorldBuilder::default_host_link(),
    );
    // Spoof pool OUTSIDE b_net's prefix — exactly what ingress filtering
    // is meant to stop.
    let pool: aitf_packet::Prefix = "172.16.0.0/24".parse().expect("valid prefix");
    Scenario::new(topo)
        .config(cfg)
        .duration(SimDuration::from_secs(10))
        .traffic(TrafficSpec::spoof(
            HostSel::Role(Role::Attacker),
            TargetSel::Victim,
            200,
            200,
            pool,
            64,
        ))
        .probes(ProbeSet::new().end(|w, m| {
            let gw = w.world.router(w.net("b_net")).counters();
            m.set("spoofs_dropped", gw.spoofed_dropped);
            m.set(
                "victim_attack_pkts",
                w.world.host(w.victim()).counters().rx_attack_pkts,
            );
            m.set("provider_requests", gw.requests_received);
            m.set("provider_filters", gw.filters_installed);
        }))
}

/// Runs one mode.
pub fn run_one(ingress_filtering: bool, seed: u64) -> Outcome {
    scenario(ingress_filtering).run(seed)
}

/// The E9 scenario spec: ingress filtering on / off.
pub fn spec(_quick: bool) -> ScenarioSpec {
    ScenarioSpec::new(
        "e9_ingress_incentive",
        "E9 (§III-A): ingress filtering pays for itself",
        "§III-A",
    )
    .expectation(
        "with ingress filtering the provider drops the spoofs at its own \
         edge and processes ~0 filtering requests; without it, the same \
         provider ends up servicing every request for flows it let out — \
         the §III-A economic incentive.",
    )
    .points([true, false].into_iter().map(|ingress| {
        Params::new()
            .with(
                "mode",
                if ingress {
                    "ingress filtering ON"
                } else {
                    "ingress filtering OFF"
                },
            )
            .with("ingress_filtering", ingress)
            // Shared seed group: the expectation contrasts the provider's
            // request load across the on/off pair.
            .with("_seed_group", 0u64)
    }))
    .runner(|p, ctx| {
        scenario(p.bool("ingress_filtering"))
            .shards(ctx.shards)
            .run(ctx.seed)
    })
}

/// Runs both modes and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingress_on_stops_spoofs_at_the_edge() {
        let o = run_one(true, 2);
        assert!(o.metrics.u64("spoofs_dropped") > 1000, "{o:?}");
        assert_eq!(o.metrics.u64("victim_attack_pkts"), 0, "{o:?}");
        assert_eq!(o.metrics.u64("provider_requests"), 0, "{o:?}");
    }

    #[test]
    fn ingress_off_turns_into_filtering_work() {
        let o = run_one(false, 2);
        assert_eq!(o.metrics.u64("spoofs_dropped"), 0, "{o:?}");
        assert!(o.metrics.u64("victim_attack_pkts") > 0, "{o:?}");
        assert!(o.metrics.u64("provider_requests") > 10, "{o:?}");
        assert!(o.metrics.u64("provider_filters") > 10, "{o:?}");
    }
}
