//! E19 — the defense bake-off: four policies, one world, one seed.
//!
//! The hook-pipeline router (`aitf-defense`) makes the defense a
//! configuration axis, so the paper's qualitative §V comparison becomes a
//! quantitative N-way table: AITF, hop-by-hop pushback, per-prefix
//! ingress rate-limiting, and capability-style path stamping all run the
//! same star world, the same flood, the same legitimate client pool and
//! the **same derived seed** (one `_seed_group`), differing only in the
//! `DefensePolicy` their routers execute.
//!
//! Four columns rank them:
//!
//! - `leak_r` — attack bytes delivered / offered (lower is better);
//! - `legit_frac` — legitimate bytes delivered / offered (higher is
//!   better; this is where the blunt defenses pay: rate-limiting polices
//!   the shared /16, path stamping revokes a whole origin router);
//! - `quell_s` — time until the victim's attack bandwidth falls (and
//!   stays, for the first observed bin) under `QUELL_MBPS`; 0 when it
//!   never exceeded it, −1 when it never recovers;
//! - `footprint` — peak per-router defense state left at the end (filter
//!   entries + path-stamp blocks + rate-limiter buckets), summed over
//!   all routers.
//!
//! Expectation: AITF and pushback both quell the flood in a cooperative
//! world (pushback's failure mode needs a rogue hop — that is E8b's
//! story), but AITF keeps `legit_frac` high where the two local defenses
//! sacrifice the attacker-side legitimate clients.

use aitf_core::{AitfConfig, DefensePolicy, HostPolicy, NetId};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};

use crate::harness::{run_spec, Table};

/// Zombie networks around the hub (quick mode halves this).
const NETS_FULL: usize = 8;
const NETS_QUICK: usize = 4;

/// Per-zombie flood rate (packets/second) and packet size: with 4+ nets
/// the aggregate comfortably exceeds the victim's 10 Mbit/s tail.
const FLOOD_PPS: u64 = 1000;
const FLOOD_SIZE: u32 = 500;

/// Legitimate client rate (packets/second) and packet size
/// (≈ 0.8 Mbit/s per client).
const LEGIT_PPS: u64 = 100;
const LEGIT_SIZE: u32 = 1000;

/// Attack bandwidth at the victim under which the flood counts as
/// quelled.
const QUELL_MBPS: f64 = 0.5;

/// The shared bake-off world: an `n_nets`-spoke star, each spoke holding
/// one flooding zombie and one legitimate client — so a defense that
/// punishes the zombie's whole network (prefix policing, origin
/// revocation) visibly taxes `legit_frac`.
pub fn scenario(n_nets: usize, duration: SimDuration, policy: DefensePolicy) -> Scenario {
    let mut topo = TopologySpec::star(n_nets, 2, HostPolicy::Malicious, 10_000_000);
    // Second host of every spoke becomes the legitimate client.
    let zombies: Vec<usize> = (0..topo.hosts.len())
        .filter(|&i| topo.hosts[i].role == Role::Attacker)
        .collect();
    for pair in zombies.chunks(2) {
        let &i = pair.last().expect("two hosts per spoke");
        topo.hosts[i].policy = HostPolicy::Compliant;
        topo.hosts[i].role = Role::Legit;
    }
    let cfg = AitfConfig {
        t_long: SimDuration::from_secs(30),
        ..AitfConfig::default()
    };
    Scenario::new(topo)
        .config(cfg)
        .defense(policy)
        .duration(duration)
        .traffic(TrafficSpec::legit(
            HostSel::Role(Role::Legit),
            TargetSel::Victim,
            LEGIT_PPS,
            LEGIT_SIZE,
        ))
        .traffic(
            TrafficSpec::flood(
                HostSel::Role(Role::Attacker),
                TargetSel::Victim,
                FLOOD_PPS,
                FLOOD_SIZE,
            )
            .staggered(SimDuration::from_millis(10)),
        )
        .probes(
            ProbeSet::new()
                .leak_ratio("leak_r")
                .legit_delivery("legit_frac")
                .end(|w, m| {
                    let footprint: usize = (0..w.world.net_count())
                        .map(|i| w.world.router(NetId(i)).defense_footprint())
                        .sum();
                    m.set("footprint", footprint as u64);
                })
                .bin(SimDuration::from_millis(100))
                .sampled_victim_mbps("_series_attack_mbps", false, |w| {
                    w.world.host(w.victim()).counters().rx_attack_bytes
                })
                .summarize(|store, m| {
                    let series = store.series("_series_attack_mbps");
                    let mut spiked = false;
                    let mut quell = 0.0;
                    for (&t, &v) in store.time_s.iter().zip(series) {
                        if v > QUELL_MBPS {
                            spiked = true;
                            quell = -1.0;
                        } else if spiked {
                            quell = t;
                            break;
                        }
                    }
                    m.set("quell_s", quell);
                }),
        )
}

/// Runs one policy on the bake-off world.
pub fn run_one(
    policy: DefensePolicy,
    n_nets: usize,
    duration: SimDuration,
    seed: u64,
    shards: usize,
) -> Outcome {
    scenario(n_nets, duration, policy).shards(shards).run(seed)
}

/// The E19 scenario spec: one point per [`DefensePolicy::BAKEOFF`]
/// entry, all sharing one seed group so the rows differ only in the
/// policy.
pub fn spec(quick: bool) -> ScenarioSpec {
    let (n_nets, secs) = if quick {
        (NETS_QUICK, 6)
    } else {
        (NETS_FULL, 10)
    };
    ScenarioSpec::new(
        "e19_defense_bakeoff",
        "E19 (defense bake-off): four policies ranked on one world, one seed",
        "§V, generalized",
    )
    .expectation(
        "AITF and pushback both quell the cooperative-world flood with \
         per-flow filters and near-full legitimate delivery; ingress \
         rate-limiting and path stamping also cap the attack but tax the \
         attacker-side legitimate clients (shared prefix / revoked \
         origin), so their legit_frac drops — the bake-off quantifies \
         the collateral-damage axis the paper argues qualitatively.",
    )
    .points(DefensePolicy::BAKEOFF.iter().map(|&p| {
        Params::new()
            .with("defense", p.name())
            .with("_seed_group", 0u64)
    }))
    .runner(move |p, ctx| {
        let policy = DefensePolicy::from_name(p.str("defense")).expect("bake-off policy name");
        run_one(
            policy,
            n_nets,
            SimDuration::from_secs(secs),
            ctx.seed,
            ctx.shards,
        )
    })
}

/// Runs the bake-off and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(policy: DefensePolicy) -> Outcome {
        run_one(policy, NETS_QUICK, SimDuration::from_secs(6), 7, 1)
    }

    #[test]
    fn every_policy_caps_the_cooperative_flood() {
        for policy in DefensePolicy::BAKEOFF {
            let o = point(policy);
            assert!(
                o.metrics.f64("leak_r") < 0.25,
                "{} must cap the flood: {o:?}",
                policy.name()
            );
            assert!(o.events > 0);
        }
    }

    #[test]
    fn filtering_policies_quell_but_rate_limiting_only_caps() {
        // Per-flow/per-origin blocking drives the attack bandwidth to
        // (near) zero; the token bucket admits its contract forever, so
        // the residual trickle never falls under QUELL_MBPS.
        for policy in [
            DefensePolicy::Aitf,
            DefensePolicy::Pushback,
            DefensePolicy::PathStamp,
        ] {
            let o = point(policy);
            assert!(
                o.metrics.f64("quell_s") >= 0.0,
                "{} must quell within the run: {o:?}",
                policy.name()
            );
        }
        let rl = point(DefensePolicy::ingress_ratelimit());
        assert_eq!(
            rl.metrics.f64("quell_s"),
            -1.0,
            "the admitted trickle never quells: {rl:?}"
        );
    }

    #[test]
    fn aitf_keeps_legit_delivery_where_blunt_defenses_pay() {
        let aitf = point(DefensePolicy::Aitf);
        let ratelimit = point(DefensePolicy::ingress_ratelimit());
        let stamp = point(DefensePolicy::PathStamp);
        assert!(
            aitf.metrics.f64("legit_frac") > 0.9,
            "per-flow filters spare the legitimate clients: {aitf:?}"
        );
        for (name, o) in [("ingress_ratelimit", &ratelimit), ("path_stamp", &stamp)] {
            assert!(
                o.metrics.f64("legit_frac") < aitf.metrics.f64("legit_frac"),
                "{name} must show collateral damage vs AITF: {o:?} vs {aitf:?}"
            );
        }
    }

    #[test]
    fn footprints_are_nonzero_and_policy_shaped() {
        for policy in DefensePolicy::BAKEOFF {
            let o = point(policy);
            assert!(
                o.metrics.u64("footprint") > 0,
                "{} leaves defense state behind: {o:?}",
                policy.name()
            );
        }
    }

    #[test]
    fn bakeoff_rows_share_one_seed() {
        let s = spec(true);
        assert_eq!(s.points.len(), 4);
        let seeds: Vec<u64> = (0..4).map(|i| s.seed_for(42, i)).collect();
        assert!(seeds.windows(2).all(|w| w[0] == w[1]), "{seeds:?}");
    }
}
