//! E7 — Section II-B footnote 2 / Section IV-A.1: on-off attacks and the
//! shadow cache.
//!
//! When the attacker's gateway does not cooperate, an attacker can play
//! "on-off games": stop long enough for the victim's gateway to drop its
//! temporary filter, then resume. The DRAM shadow (kept for the full `T`)
//! is the paper's answer: a reappearing logged flow is recognised at the
//! first packet, the filter reinstalls and the request escalates.
//!
//! We pit an on-off attacker (off-period tuned past `Ttmp`) against a
//! non-cooperating attacker gateway, with the shadow assist on and off
//! (ablation, footnote 3: keeping real filters for `T` instead "would
//! defeat the whole purpose").

use aitf_core::{AitfConfig, HostPolicy, RouterPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};

use crate::harness::{run_spec, Table};

/// The declarative E7 scenario. `shadow_assist` toggles packet-triggered
/// reactivation and fast re-detection together.
pub fn scenario(shadow_assist: bool) -> Scenario {
    let t_tmp = SimDuration::from_secs(1);
    let cfg = AitfConfig {
        t_long: SimDuration::from_secs(30),
        t_tmp,
        packet_triggered_reactivation: shadow_assist,
        fast_redetect: shadow_assist,
        detection_delay: SimDuration::from_millis(50),
        grace: SimDuration::from_secs(3600),
        ..AitfConfig::default()
    };
    let mut topo = TopologySpec::fig1(HostPolicy::Malicious);
    // The attacker's own gateway plays dumb, so the on-off game is worth
    // playing at all.
    topo.set_net_policy("B_net", RouterPolicy::non_cooperating());
    Scenario::new(topo)
        .config(cfg)
        .duration(SimDuration::from_secs(30))
        // On for 200 ms at 1000 pps, then silent for 1.5 × Ttmp.
        .traffic(TrafficSpec::onoff(
            HostSel::Role(Role::Attacker),
            TargetSel::Victim,
            1000,
            500,
            SimDuration::from_millis(200),
            SimDuration::from_millis(1500),
        ))
        .probes(ProbeSet::new().leak_ratio("leak_r").end(|w, m| {
            let gw = w.world.router(w.net("G_net"));
            m.set("reactivations", gw.counters().reactivations);
            let attacker = w.first_with(Role::Attacker);
            let flow = aitf_packet::FlowLabel::src_dst(
                w.world.host_addr(attacker),
                w.world.host_addr(w.victim()),
            );
            m.set("max_round", gw.shadow().get(&flow).map_or(0, |e| e.round));
            m.set(
                "escalated_block",
                w.world.router(w.net("B_isp")).counters().filters_installed > 0,
            );
        }))
}

/// Runs one mode.
pub fn run_one(shadow_assist: bool, seed: u64) -> Outcome {
    scenario(shadow_assist).run(seed)
}

/// The E7 scenario spec: shadow assist on / off.
pub fn spec(_quick: bool) -> ScenarioSpec {
    ScenarioSpec::new(
        "e7_onoff_attacks",
        "E7 (§II-B fn.2): on-off attacker vs the DRAM shadow cache",
        "§II-B fn.2",
    )
    .expectation(
        "with the shadow the reappearing flow is caught at the gateway \
         (reactivations > 0), escalates past the rogue gateway and leaks \
         less than without the assist.",
    )
    .points([true, false].into_iter().map(|assist| {
        Params::new()
            .with(
                "mode",
                if assist {
                    "shadow assist ON"
                } else {
                    "shadow assist OFF"
                },
            )
            .with("shadow_assist", assist)
            // Shared seed group: the expectation compares leak across the
            // on/off pair, so both must run the same world.
            .with("_seed_group", 0u64)
    }))
    .runner(|p, ctx| {
        scenario(p.bool("shadow_assist"))
            .shards(ctx.shards)
            .run(ctx.seed)
    })
}

/// Runs both modes and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_catches_onoff_and_escalates() {
        let o = run_one(true, 3);
        assert!(o.metrics.u64("reactivations") > 0, "{o:?}");
        assert!(o.metrics.u64("max_round") >= 2, "{o:?}");
        assert!(o.metrics.bool("escalated_block"), "{o:?}");
    }

    #[test]
    fn shadow_assist_reduces_leak() {
        let with = run_one(true, 4);
        let without = run_one(false, 4);
        assert!(
            with.metrics.f64("leak_r") <= without.metrics.f64("leak_r"),
            "shadow must not make things worse: {with:?} vs {without:?}"
        );
    }
}
