//! E7 — Section II-B footnote 2 / Section IV-A.1: on-off attacks and the
//! shadow cache.
//!
//! When the attacker's gateway does not cooperate, an attacker can play
//! "on-off games": stop long enough for the victim's gateway to drop its
//! temporary filter, then resume. The DRAM shadow (kept for the full `T`)
//! is the paper's answer: a reappearing logged flow is recognised at the
//! first packet, the filter reinstalls and the request escalates.
//!
//! We pit an on-off attacker (off-period tuned past `Ttmp`) against a
//! non-cooperating attacker gateway, with the shadow assist on and off
//! (ablation, footnote 3: keeping real filters for `T` instead "would
//! defeat the whole purpose").

use aitf_attack::scenarios::fig1;
use aitf_attack::OnOffSource;
use aitf_core::{AitfConfig, HostPolicy, RouterPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;

use crate::harness::{run_spec, Table};

/// Outcome of one mode.
#[derive(Debug)]
pub struct OnOffOutcome {
    /// Mode label.
    pub mode: &'static str,
    /// Leak ratio at the victim.
    pub leak: f64,
    /// Shadow reactivations at the victim's gateway.
    pub reactivations: u64,
    /// Highest escalation round recorded.
    pub max_round: u8,
    /// Did a cooperating upstream gateway end up holding the long filter?
    pub escalated_block: bool,
    /// Simulator events dispatched during the run.
    pub events: u64,
}

/// Runs one mode. `shadow_assist` toggles packet-triggered reactivation
/// and fast re-detection together.
pub fn run_one(shadow_assist: bool, seed: u64) -> OnOffOutcome {
    let t_tmp = SimDuration::from_secs(1);
    let cfg = AitfConfig {
        t_long: SimDuration::from_secs(30),
        t_tmp,
        packet_triggered_reactivation: shadow_assist,
        fast_redetect: shadow_assist,
        detection_delay: SimDuration::from_millis(50),
        grace: SimDuration::from_secs(3600),
        ..AitfConfig::default()
    };
    let mut f = fig1(cfg, seed, HostPolicy::Malicious);
    // The attacker's own gateway plays dumb, so the on-off game is worth
    // playing at all.
    f.world
        .router_mut(f.b_net)
        .set_policy(RouterPolicy::non_cooperating());
    let target = f.world.host_addr(f.victim);
    // On for 200 ms at 1000 pps, then silent for 1.5 × Ttmp.
    f.world.add_app(
        f.attacker,
        Box::new(OnOffSource::new(
            target,
            1000,
            500,
            SimDuration::from_millis(200),
            SimDuration::from_millis(1500),
        )),
    );
    f.world.sim.run_for(SimDuration::from_secs(30));

    let offered = f.world.host(f.attacker).counters().tx_bytes;
    let received = f.world.host(f.victim).counters().rx_attack_bytes;
    let leak = if offered == 0 {
        0.0
    } else {
        received as f64 / offered as f64
    };
    let events = f.world.sim.dispatched_events();
    let gw = f.world.router(f.g_net);
    let flow =
        aitf_packet::FlowLabel::src_dst(f.world.host_addr(f.attacker), f.world.host_addr(f.victim));
    let max_round = gw.shadow().get(&flow).map_or(0, |e| e.round);
    let escalated_block = f.world.router(f.b_isp).counters().filters_installed > 0;
    OnOffOutcome {
        mode: if shadow_assist {
            "shadow assist ON"
        } else {
            "shadow assist OFF"
        },
        leak,
        reactivations: gw.counters().reactivations,
        max_round,
        escalated_block,
        events,
    }
}

/// The E7 scenario spec: shadow assist on / off.
pub fn spec(_quick: bool) -> ScenarioSpec {
    ScenarioSpec::new(
        "e7_onoff_attacks",
        "E7 (§II-B fn.2): on-off attacker vs the DRAM shadow cache",
        "§II-B fn.2",
    )
    .expectation(
        "with the shadow the reappearing flow is caught at the gateway \
         (reactivations > 0), escalates past the rogue gateway and leaks \
         less than without the assist.",
    )
    .points([true, false].into_iter().map(|assist| {
        Params::new()
            .with(
                "mode",
                if assist {
                    "shadow assist ON"
                } else {
                    "shadow assist OFF"
                },
            )
            .with("shadow_assist", assist)
            // Shared seed group: the expectation compares leak across the
            // on/off pair, so both must run the same world.
            .with("_seed_group", 0u64)
    }))
    .runner(|p, ctx| {
        let o = run_one(p.bool("shadow_assist"), ctx.seed);
        Outcome::new(
            Params::new()
                .with("leak_r", o.leak)
                .with("reactivations", o.reactivations)
                .with("max_round", o.max_round)
                .with("escalated_block", o.escalated_block),
        )
        .with_events(o.events)
    })
}

/// Runs both modes and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_catches_onoff_and_escalates() {
        let o = run_one(true, 3);
        assert!(o.reactivations > 0, "{o:?}");
        assert!(o.max_round >= 2, "{o:?}");
        assert!(o.escalated_block, "{o:?}");
    }

    #[test]
    fn shadow_assist_reduces_leak() {
        let with = run_one(true, 4);
        let without = run_one(false, 4);
        assert!(
            with.leak <= without.leak,
            "shadow must not make things worse: {with:?} vs {without:?}"
        );
    }
}
