//! E7 — Section II-B footnote 2 / Section IV-A.1: on-off attacks and the
//! shadow cache.
//!
//! When the attacker's gateway does not cooperate, an attacker can play
//! "on-off games": stop long enough for the victim's gateway to drop its
//! temporary filter, then resume. The DRAM shadow (kept for the full `T`)
//! is the paper's answer: a reappearing logged flow is recognised at the
//! first packet, the filter reinstalls and the request escalates.
//!
//! We pit an on-off attacker (off-period tuned past `Ttmp`) against a
//! non-cooperating attacker gateway, with the shadow assist on and off
//! (ablation, footnote 3: keeping real filters for `T` instead "would
//! defeat the whole purpose").

use aitf_attack::scenarios::fig1;
use aitf_attack::OnOffSource;
use aitf_core::{AitfConfig, HostPolicy, RouterPolicy};
use aitf_netsim::SimDuration;

use crate::harness::{fmt_f, Table};

/// Outcome of one mode.
#[derive(Debug)]
pub struct OnOffOutcome {
    /// Mode label.
    pub mode: &'static str,
    /// Leak ratio at the victim.
    pub leak: f64,
    /// Shadow reactivations at the victim's gateway.
    pub reactivations: u64,
    /// Highest escalation round recorded.
    pub max_round: u8,
    /// Did a cooperating upstream gateway end up holding the long filter?
    pub escalated_block: bool,
}

/// Runs one mode. `shadow_assist` toggles packet-triggered reactivation
/// and fast re-detection together.
pub fn run_one(shadow_assist: bool, seed: u64) -> OnOffOutcome {
    let t_tmp = SimDuration::from_secs(1);
    let cfg = AitfConfig {
        t_long: SimDuration::from_secs(30),
        t_tmp,
        packet_triggered_reactivation: shadow_assist,
        fast_redetect: shadow_assist,
        detection_delay: SimDuration::from_millis(50),
        grace: SimDuration::from_secs(3600),
        ..AitfConfig::default()
    };
    let mut f = fig1(cfg, seed, HostPolicy::Malicious);
    // The attacker's own gateway plays dumb, so the on-off game is worth
    // playing at all.
    f.world
        .router_mut(f.b_net)
        .set_policy(RouterPolicy::non_cooperating());
    let target = f.world.host_addr(f.victim);
    // On for 200 ms at 1000 pps, then silent for 1.5 × Ttmp.
    f.world.add_app(
        f.attacker,
        Box::new(OnOffSource::new(
            target,
            1000,
            500,
            SimDuration::from_millis(200),
            SimDuration::from_millis(1500),
        )),
    );
    f.world.sim.run_for(SimDuration::from_secs(30));

    let offered = f.world.host(f.attacker).counters().tx_bytes;
    let received = f.world.host(f.victim).counters().rx_attack_bytes;
    let leak = if offered == 0 {
        0.0
    } else {
        received as f64 / offered as f64
    };
    let gw = f.world.router(f.g_net);
    let flow =
        aitf_packet::FlowLabel::src_dst(f.world.host_addr(f.attacker), f.world.host_addr(f.victim));
    let max_round = gw.shadow().get(&flow).map_or(0, |e| e.round);
    let escalated_block = f.world.router(f.b_isp).counters().filters_installed > 0;
    OnOffOutcome {
        mode: if shadow_assist {
            "shadow assist ON"
        } else {
            "shadow assist OFF"
        },
        leak,
        reactivations: gw.counters().reactivations,
        max_round,
        escalated_block,
    }
}

/// Runs both modes and prints the table.
pub fn run(_quick: bool) -> Table {
    let mut table = Table::new(
        "E7 (§II-B fn.2): on-off attacker vs the DRAM shadow cache",
        &[
            "mode",
            "leak r",
            "reactivations",
            "max round",
            "escalated block",
        ],
    );
    for shadow in [true, false] {
        let o = run_one(shadow, 13);
        table.row_owned(vec![
            o.mode.to_string(),
            fmt_f(o.leak),
            o.reactivations.to_string(),
            o.max_round.to_string(),
            o.escalated_block.to_string(),
        ]);
    }
    table.print();
    println!(
        "paper expectation: with the shadow the reappearing flow is caught \
         at the gateway (reactivations > 0), escalates past the rogue \
         gateway and leaks less than without the assist.\n"
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_catches_onoff_and_escalates() {
        let o = run_one(true, 3);
        assert!(o.reactivations > 0, "{o:?}");
        assert!(o.max_round >= 2, "{o:?}");
        assert!(o.escalated_block, "{o:?}");
    }

    #[test]
    fn shadow_assist_reduces_leak() {
        let with = run_one(true, 4);
        let without = run_one(false, 4);
        assert!(
            with.leak <= without.leak,
            "shadow must not make things worse: {with:?} vs {without:?}"
        );
    }
}
