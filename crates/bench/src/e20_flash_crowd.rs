//! E20 — flash crowd vs DDoS on an Internet-shaped world.
//!
//! The hardest discrimination problem a filtering defense faces is the
//! one the paper's threat model sets up but the star worlds cannot pose:
//! a **flash crowd** (many genuinely-interested low-rate sources) and a
//! **zombie army** (a spoofed flood whose per-source rate is *also* low,
//! because the spoofed pool spreads the aggregate) hitting the same
//! victim at the same time, from a power-law provider graph shaped like
//! the real Internet rather than a star.
//!
//! The world is a ≥100k-network [`TopologySpec::power_law`] graph
//! (preferential attachment, capped provider depth, peering shortcuts)
//! built under hierarchical routing, so construction and routing state
//! stay O(n·depth). The flash crowd is heavy-tailed
//! ([`TrafficSpec::legit_pareto`]: Pareto per-host rates, Poisson
//! arrivals) and scattered over one half of the edge networks; the
//! zombies sit in the other half, each spraying a spoofed source pool.
//! Every [`DefensePolicy::BAKEOFF`] policy runs the identical world and
//! seed, so the rows rank pure discrimination:
//!
//! - `leak_r` / `legit_frac` — how much attack leaks through vs how much
//!   of the crowd survives (the collateral-damage axis);
//! - `hh_attack_frac` — attack share of the victim's heavy-hitter
//!   traffic, measured by the constant-memory streaming probe
//!   ([`ProbeSet::streaming_victim`]): count-min sketches + top-k +
//!   a size reservoir, O(1) per delivered packet;
//! - `probe_bytes` — the probe's memory, pinned flat by CI however large
//!   the world (the metric behind the peak-RSS gate).
//!
//! Expectation: AITF blocks the spoofed flows near their origins and
//! keeps most of the crowd; ingress rate-limiting and path stamping cap
//! the flood but tax crowd members sharing prefixes/origins with
//! zombies, so their `legit_frac` drops.

use aitf_core::{AitfConfig, Contract, DefensePolicy, HostPolicy, NetId};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{
    HostSel, PowerLawSpec, ProbeSet, Role, Scenario, StreamProbeConfig, TargetSel, TopologySpec,
    TrafficSpec,
};

use crate::harness::{run_spec, Table};

/// Edge networks in the power-law graph (quick mode keeps the issue's
/// 100k-net floor; full mode doubles it).
const NETS_QUICK: usize = 100_000;
const NETS_FULL: usize = 200_000;

/// Flash-crowd size (hosts) and its Pareto rate mix: base 1 pps, capped
/// at 30, shape 1.2 — mean ≈ 6 pps of 1000-byte requests per member, a
/// few elephants near the cap.
const CROWD_QUICK: usize = 400;
const CROWD_FULL: usize = 1200;
const CROWD_BASE_PPS: u64 = 1;
const CROWD_CAP_PPS: u64 = 30;
const CROWD_ALPHA: f64 = 1.2;
const CROWD_SIZE: u32 = 1000;

/// Zombie hosts and their spoofed flood: each sprays `SPOOF_PPS` over a
/// shared `SPOOF_POOL_SIZE`-address pool, so per spoofed *source* the
/// rate is crowd-like — the discrimination challenge.
const ZOMBIES_QUICK: usize = 32;
const ZOMBIES_FULL: usize = 96;
const SPOOF_PPS: u64 = 250;
const SPOOF_SIZE: u32 = 500;
const SPOOF_POOL_SIZE: u32 = 50;

/// Topology seed — part of the world's identity, independent of the run
/// seed.
const TOPO_SEED: u64 = 20;

fn config() -> AitfConfig {
    AitfConfig {
        t_long: SimDuration::from_secs(30),
        detection_delay: SimDuration::from_millis(10),
        grace: SimDuration::from_secs(3600),
        filter_capacity: 4096,
        // Internet-sized request budgets, as in E18: the scale question
        // here is discrimination, not gateway throttling (E3/E4).
        client_contract: Contract::new(1000.0, 1000),
        peer_contract: Contract::new(100.0, 500),
        ..AitfConfig::default()
    }
}

/// The shared world: crowd scattered over the first half of the
/// generated edge networks, zombies over the second half.
fn topology(n_nets: usize, crowd: usize, zombies: usize) -> TopologySpec {
    let mut topo = TopologySpec::power_law(&PowerLawSpec {
        n_nets,
        skew: 0.8,
        max_depth: 5,
        peering_fraction: 0.002,
        victim_tail_bps: 10_000_000,
        seed: TOPO_SEED,
    });
    // Generated nets start at index 2 (after `core` and `victim_net`).
    let total = topo.nets.len();
    let half = 2 + (total - 2) / 2;
    // The zombie half does not ingress-filter — most real networks don't
    // (the paper's §III-A incentive argument, measured in E9), and with
    // filtering on, the spoofed pool would die at the zombies' own
    // gateways and there would be no discrimination problem to solve.
    for net in &mut topo.nets[half..] {
        net.policy.ingress_filtering = false;
    }
    let host_link = aitf_core::WorldBuilder::default_host_link();
    topo.scatter_hosts(
        2..half,
        crowd,
        Role::Legit,
        HostPolicy::Compliant,
        host_link,
        0xE20_0001,
    );
    topo.scatter_hosts(
        half..total,
        zombies,
        Role::Attacker,
        HostPolicy::Malicious,
        host_link,
        0xE20_0002,
    );
    topo
}

/// One policy's scenario on the shared world.
pub fn scenario(
    n_nets: usize,
    crowd: usize,
    zombies: usize,
    duration: SimDuration,
    policy: DefensePolicy,
) -> Scenario {
    let pool: aitf_packet::Prefix = "172.16.0.0/16".parse().expect("valid prefix");
    Scenario::new(topology(n_nets, crowd, zombies))
        .config(config())
        .defense(policy)
        .duration(duration)
        // The crowd's Poisson arrivals desynchronize its sources; the
        // zombies are staggered off their shared 4 ms period lattice (137
        // µs is coprime to it) so no two of them ever share a timestamp —
        // same-timestamp events from different shards have no guaranteed
        // relative order, and per-flow state (the route-record cache)
        // must not depend on one.
        .traffic(TrafficSpec::legit_pareto(
            HostSel::Role(Role::Legit),
            TargetSel::Victim,
            CROWD_BASE_PPS,
            CROWD_CAP_PPS,
            CROWD_ALPHA,
            CROWD_SIZE,
            TOPO_SEED,
        ))
        .traffic(
            TrafficSpec::spoof(
                HostSel::Role(Role::Attacker),
                TargetSel::Victim,
                SPOOF_PPS,
                SPOOF_SIZE,
                pool,
                SPOOF_POOL_SIZE,
            )
            .staggered(SimDuration::from_micros(137)),
        )
        .probes(
            ProbeSet::new()
                .leak_ratio("leak_r")
                .legit_delivery("legit_frac")
                .streaming_victim(StreamProbeConfig {
                    top_k: 10,
                    ..StreamProbeConfig::default()
                })
                .end(|w, m| {
                    let footprint: usize = (0..w.world.net_count())
                        .map(|i| w.world.router(NetId(i)).defense_footprint())
                        .sum();
                    m.set("footprint", footprint as u64);
                }),
        )
}

/// Runs one policy point.
pub fn run_one(
    policy: DefensePolicy,
    n_nets: usize,
    crowd: usize,
    zombies: usize,
    duration: SimDuration,
    seed: u64,
    shards: usize,
) -> Outcome {
    scenario(n_nets, crowd, zombies, duration, policy)
        .shards(shards)
        .run(seed)
}

/// The E20 scenario spec: one point per [`DefensePolicy::BAKEOFF`]
/// entry, all sharing one seed group — the rows differ only in the
/// defense, exactly like E19's bake-off, on a world 10,000× larger.
pub fn spec(quick: bool) -> ScenarioSpec {
    let (n_nets, crowd, zombies, secs) = if quick {
        (NETS_QUICK, CROWD_QUICK, ZOMBIES_QUICK, 3)
    } else {
        (NETS_FULL, CROWD_FULL, ZOMBIES_FULL, 6)
    };
    ScenarioSpec::new(
        "e20_flash_crowd",
        "E20 (flash crowd vs DDoS): discrimination on a 100k-net power-law world",
        "§I threat model + §III-C at Internet shape",
    )
    .expectation(
        "AITF filters the spoofed flows at their origin providers and \
         delivers most of the flash crowd; rate-limiting and path \
         stamping cap the flood but tax crowd members behind shared \
         prefixes/origins, dropping their legit_frac. The streaming \
         probe's hh_attack_frac shows the victim's heavy hitters are the \
         spoofed sources, at O(1) memory per delivered packet.",
    )
    .points(DefensePolicy::BAKEOFF.iter().map(|&p| {
        Params::new()
            .with("defense", p.name())
            .with("_seed_group", 0u64)
    }))
    .runner(move |p, ctx| {
        let policy = DefensePolicy::from_name(p.str("defense")).expect("bake-off policy name");
        run_one(
            policy,
            n_nets,
            crowd,
            zombies,
            SimDuration::from_secs(secs),
            ctx.seed,
            ctx.shards,
        )
    })
}

/// Runs the bake-off and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shrunken stand-in (same generators, 600 nets) so the unit suite
    /// checks discrimination and the sharded path without paying for the
    /// 100k-net build.
    fn small(policy: DefensePolicy, seed: u64, shards: usize) -> Outcome {
        run_one(policy, 600, 60, 8, SimDuration::from_secs(3), seed, shards)
    }

    #[test]
    fn aitf_discriminates_crowd_from_zombies() {
        let o = small(DefensePolicy::Aitf, 7, 1);
        assert!(o.metrics.f64("leak_r") < 0.25, "{o:?}");
        assert!(o.metrics.f64("legit_frac") > 0.5, "{o:?}");
        assert!(o.events > 0);
    }

    #[test]
    fn heavy_hitters_discriminate_the_spoofed_pool() {
        // Under a defense that never filters per-flow at the source
        // (ingress rate-limiting), the victim keeps receiving attack
        // packets all run, so spoofed sources place among the streaming
        // probe's heavy hitters — and the paired sketches classify them
        // exactly: pool sources are pure attack, crowd sources pure
        // legit.
        let o = run_one(
            DefensePolicy::ingress_ratelimit(),
            600,
            60,
            24,
            SimDuration::from_secs(3),
            7,
            1,
        );
        assert!(o.metrics.f64("hh_attack_frac") > 0.3, "{o:?}");
        let srcs = o.metrics.u64_list("hh_srcs");
        let pkts = o.metrics.u64_list("hh_pkts");
        let attack = o.metrics.u64_list("hh_attack_pkts");
        assert!(!srcs.is_empty());
        // Spoofed sources come from 172.16.0.0/16.
        let pool_base = u32::from_be_bytes([172, 16, 0, 0]) as u64;
        let in_pool = |s: u64| (pool_base..pool_base + (1 << 16)).contains(&s);
        assert!(
            srcs.iter().copied().filter(|&s| in_pool(s)).count() >= 3,
            "{srcs:?}"
        );
        for ((&s, &p), &a) in srcs.iter().zip(pkts.iter()).zip(attack.iter()) {
            if in_pool(s) {
                assert_eq!(a, p, "pool source {s} should be pure attack: {o:?}");
            } else {
                assert_eq!(a, 0, "crowd source {s} should be pure legit: {o:?}");
            }
        }
    }

    #[test]
    fn probe_memory_is_flat_across_world_sizes() {
        // The streaming probe's whole point: its footprint depends only
        // on its config, not on the world or the traffic.
        let small_world = small(DefensePolicy::Aitf, 3, 1);
        let larger = run_one(
            DefensePolicy::Aitf,
            1200,
            120,
            16,
            SimDuration::from_secs(3),
            3,
            1,
        );
        assert_eq!(
            small_world.metrics.u64("probe_bytes"),
            larger.metrics.u64("probe_bytes")
        );
        assert!(small_world.metrics.u64("probe_bytes") > 0);
    }

    #[test]
    fn sharded_run_is_bit_identical() {
        let single = small(DefensePolicy::Aitf, 7, 1);
        for shards in [2, 4] {
            let sharded = small(DefensePolicy::Aitf, 7, shards);
            assert_eq!(single.metrics, sharded.metrics, "shards = {shards}");
            assert_eq!(single.events, sharded.events, "shards = {shards}");
        }
    }

    #[test]
    fn bakeoff_rows_share_one_seed_and_the_quick_world_hits_100k_nets() {
        let s = spec(true);
        assert_eq!(s.points.len(), 4);
        let seeds: Vec<u64> = (0..4).map(|i| s.seed_for(42, i)).collect();
        assert!(seeds.windows(2).all(|w| w[0] == w[1]), "{seeds:?}");
        const { assert!(NETS_QUICK >= 100_000) };
    }
}
