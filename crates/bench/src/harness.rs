//! Table formatting and rendering helpers shared by all experiments.
//! (Measurement helpers — leak ratios, binned sampling — live in
//! `aitf_scenario::probe` now.)

use aitf_engine::{tabulate, RunRecord, Runner, ScenarioSpec};

/// A printable results table with aligned columns.
///
/// # Examples
///
/// ```
/// use aitf_bench::Table;
///
/// let mut t = Table::new("demo", &["x", "y"]);
/// t.row(&["1", "2.0"]);
/// let s = t.render();
/// assert!(s.contains("demo"));
/// assert!(s.contains("1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, column) for tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Builds a [`Table`] from engine run records: parameter columns first,
/// then metric columns (the engine's [`tabulate`] projection).
pub fn table_from_records(title: &str, records: &[RunRecord]) -> Table {
    let (headers, rows) = tabulate(records);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &header_refs);
    for row in rows {
        table.row_owned(row);
    }
    table
}

/// Runs a spec through the engine with the default thread count, prints
/// its table and expectation prose, and returns the table — the shared
/// body of every experiment's `run(quick)` entry point.
pub fn run_spec(spec: &ScenarioSpec, quick: bool) -> Table {
    let records = Runner::default().quick(quick).run(spec);
    render_sweep(spec, &records)
}

/// Prints a finished sweep (table + expectation) and returns the table.
pub fn render_sweep(spec: &ScenarioSpec, records: &[RunRecord]) -> Table {
    let table = table_from_records(&spec.title, records);
    table.print();
    if !spec.expectation.is_empty() {
        println!("paper expectation: {}\n", spec.expectation);
    }
    table
}

/// Formats a float compactly (6 significant-ish digits, no noise) — the
/// same rules engine tables and JSON use, re-exported so hand-built tables
/// match engine-rendered ones.
pub use aitf_engine::params::fmt_compact as fmt_f;

/// Prints a series in a gnuplot-friendly two-column layout.
pub fn print_series(name: &str, points: &[(f64, f64)]) {
    println!("# series: {name}");
    for (x, y) in points {
        println!("{x:.3} {y:.6}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("t", &["aa", "b"]);
        t.row(&["1", "22222"]);
        t.row(&["333", "4"]);
        let s = t.render();
        assert!(s.contains("## t"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, two rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(0, 1), "22222");
    }

    #[test]
    fn zero_column_table_renders_without_panicking() {
        // A spec with no points tabulates to zero headers; render must not
        // underflow the rule-width arithmetic.
        let t = table_from_records("empty", &[]);
        assert!(t.is_empty());
        assert!(t.render().contains("## empty"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn fmt_f_ranges() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(0.00083), "0.00083");
        assert_eq!(fmt_f(1.5), "1.50");
        assert_eq!(fmt_f(1234.0), "1234");
    }
}
