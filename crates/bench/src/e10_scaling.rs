//! E10 — Section III-C: AITF scales with Internet size.
//!
//! *"AITF pushes filtering of undesired traffic to the provider(s) of the
//! attacker(s). Thus, the amount of filtering requests a provider is asked
//! to satisfy grows proportionally to the number of the provider's
//! (misbehaving) clients"* — not with the size of the Internet.
//!
//! We grow a star of attacker networks (one zombie each) around a hub and
//! measure, per attacker-side provider, the requests it satisfies: the
//! per-provider load must stay flat at ~1 while the total number of
//! networks grows, and the hub (the "core") must hold **zero** filters —
//! unlike pushback, where the hub absorbs a filter per flow whenever the
//! edge chain stalls.

use aitf_core::{AitfConfig, DefensePolicy, HostPolicy, RoutingMode};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{
    HostSel, ProbeSet, Role, Scenario, Side, TargetSel, TopologySpec, TrafficSpec,
};

use crate::harness::{run_spec, Table};

fn config() -> AitfConfig {
    AitfConfig {
        t_long: SimDuration::from_secs(30),
        detection_delay: SimDuration::from_millis(10),
        grace: SimDuration::from_secs(3600),
        ..AitfConfig::default()
    }
}

/// The shared shape of both backends' runs: an `n_nets`-spoke star (one
/// zombie per network) with a staggered 100 pps flood army.
///
/// Historical scales (≤ 256 spokes) keep their exact shape: all-pairs
/// routing and a 20 ms stagger, bit-identical to every recorded run.
/// The internet-scale points switch to [`RoutingMode::Hierarchical`]
/// (all-pairs tables are O(n²); 4096-spoke tables would dominate the
/// build) and split a fixed 2 s ramp across the army so the last zombie
/// still starts well inside the 10 s horizon.
fn base_scenario(n_nets: usize, cfg: AitfConfig) -> Scenario {
    let mut topo = TopologySpec::star(n_nets, 1, HostPolicy::Malicious, 10_000_000);
    if n_nets > 256 {
        topo.routing = RoutingMode::Hierarchical;
    }
    let stagger = if n_nets <= 256 {
        SimDuration::from_millis(20)
    } else {
        SimDuration::from_micros(2_000_000 / n_nets as u64)
    };
    Scenario::new(topo)
        .config(cfg)
        .duration(SimDuration::from_secs(10))
        .traffic(
            TrafficSpec::flood(HostSel::Role(Role::Attacker), TargetSel::Victim, 100, 300)
                .staggered(stagger),
        )
}

/// Runs one scale point under AITF; metrics `filters_per_provider`,
/// `max_provider`, `hub_filters_aitf`, `victim_gw_peak`.
pub fn run_one(n_nets: usize, seed: u64, shards: usize) -> Outcome {
    base_scenario(n_nets, config())
        .shards(shards)
        .probes(
            ProbeSet::new()
                .end(move |w, m| {
                    let mut total = 0u64;
                    let mut max = 0u64;
                    for net in w.nets_on(Side::Attacker) {
                        let f = w.world.router(net).counters().filters_installed;
                        total += f;
                        max = max.max(f);
                    }
                    m.set("filters_per_provider", total as f64 / n_nets as f64);
                    m.set("max_provider", max);
                    m.set(
                        "hub_filters_aitf",
                        w.world.router(w.net("hub")).filters().stats().installs as usize,
                    );
                })
                .peak_filters("victim_gw_peak", "victim_net"),
        )
        .run(seed)
}

/// Hub filter load under pushback at the same scale (for contrast);
/// returns `(hub_filters, simulator_events)`.
pub fn hub_filters_pushback(n_nets: usize, seed: u64, shards: usize) -> (u64, u64) {
    let cfg = AitfConfig {
        t_long: SimDuration::from_secs(30),
        detection_delay: SimDuration::from_millis(10),
        ..AitfConfig::default()
    };
    let outcome = base_scenario(n_nets, cfg)
        .defense(DefensePolicy::Pushback)
        .shards(shards)
        .probes(ProbeSet::new().end(|w, m| {
            let hub = w.world.router(w.net("hub")).counters().filters_installed;
            m.set("hub_filters", hub);
        }))
        .run(seed);
    (outcome.metrics.u64("hub_filters"), outcome.events)
}

/// The E10 scenario spec: attacker-network count swept upward. Full mode
/// runs past the historical 256-net ceiling to 4096 networks — the
/// checked [`aitf_scenario::PrefixAlloc`] and hierarchical routing make
/// armies at that scale routine to build.
pub fn spec(quick: bool) -> ScenarioSpec {
    let scales: &[u64] = if quick {
        &[8, 16]
    } else {
        &[8, 16, 32, 64, 128, 256, 1024, 4096]
    };
    ScenarioSpec::new(
        "e10_scaling",
        "E10 (§III-C): per-provider load stays flat as the world grows",
        "§III-C",
    )
    .expectation(
        "each attacker-side provider satisfies ~1 request (its own one \
         misbehaving client) no matter how many networks exist; the AITF \
         hub/core carries zero filters while the pushback hub's filter load \
         grows with the attack size — the §I 'filtering bottleneck'.",
    )
    .points(
        scales
            .iter()
            .map(|&n| Params::new().with("attacker_nets", n)),
    )
    .runner(|p, ctx| {
        let n = p.usize("attacker_nets");
        let o = run_one(n, ctx.seed, ctx.shards);
        // The pushback contrast world's events stay out of the record, as
        // they always have: the telemetry tracks the AITF run.
        let (hub_pb, _pb_events) = hub_filters_pushback(n, ctx.seed, ctx.shards);
        let mut out = Outcome::new(
            Params::new()
                .with(
                    "filters_per_provider",
                    o.metrics.f64("filters_per_provider"),
                )
                .with("max_provider", o.metrics.u64("max_provider"))
                .with("hub_filters_aitf", o.metrics.u64("hub_filters_aitf"))
                .with("hub_filters_pushback", hub_pb)
                .with("victim_gw_peak", o.metrics.u64("victim_gw_peak")),
        )
        .with_events(o.events);
        // Keep the AITF run's trace payload too (pushback contrast stays
        // out, matching the event accounting above).
        out.trace = o.trace;
        out
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_provider_load_is_flat() {
        let small = run_one(8, 1, 1);
        let large = run_one(24, 1, 4);
        for o in [&small, &large] {
            assert!(
                (o.metrics.f64("filters_per_provider") - 1.0).abs() < 0.5,
                "{o:?}"
            );
            assert_eq!(o.metrics.u64("hub_filters_aitf"), 0, "{o:?}");
        }
    }

    #[test]
    fn pushback_hub_load_grows_with_attack_size() {
        let (small, _) = hub_filters_pushback(8, 2, 1);
        let (large, _) = hub_filters_pushback(24, 2, 2);
        assert!(large > small, "hub pushback filters: {small} -> {large}");
        assert!(large >= 20, "hub must carry ~one filter per flow: {large}");
    }

    #[test]
    fn full_mode_sweeps_past_256_nets_to_4096() {
        let full = spec(false);
        let scales: Vec<u64> = full.points.iter().map(|p| p.u64("attacker_nets")).collect();
        assert!(
            scales.contains(&1024) && scales.contains(&4096),
            "{scales:?}"
        );
        // Quick mode stays CI-sized.
        assert!(spec(true)
            .points
            .iter()
            .all(|p| p.u64("attacker_nets") <= 16));
    }

    #[test]
    fn star_world_at_4096_nets_builds_hierarchically() {
        // The full sweep's largest point, as a build-only regression test:
        // 4096 spoke networks + hub + victim net, prefixes drawn from the
        // checked PrefixAlloc, hierarchical routing state computed in
        // O(n·depth) (all-pairs tables would be 16M entries).
        use aitf_core::AitfConfig;
        use aitf_scenario::TopologySpec;
        let mut topo = TopologySpec::star(4096, 1, HostPolicy::Malicious, 10_000_000);
        topo.routing = RoutingMode::Hierarchical;
        let b = topo.build(3, AitfConfig::default());
        assert_eq!(b.world.net_count(), 4098);
        assert_eq!(b.world.host_count(), 4097);
    }

    #[test]
    fn internet_scale_point_keeps_per_provider_load_flat() {
        // One shrunken internet-scale point through the real runner path
        // (hierarchical routing + ramp-split stagger): 300 spokes, the
        // smallest n past the historical shape's threshold.
        let o = run_one(300, 1, 4);
        assert!(
            (o.metrics.f64("filters_per_provider") - 1.0).abs() < 0.5,
            "{o:?}"
        );
        assert_eq!(o.metrics.u64("hub_filters_aitf"), 0, "{o:?}");
    }
}
