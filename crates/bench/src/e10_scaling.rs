//! E10 — Section III-C: AITF scales with Internet size.
//!
//! *"AITF pushes filtering of undesired traffic to the provider(s) of the
//! attacker(s). Thus, the amount of filtering requests a provider is asked
//! to satisfy grows proportionally to the number of the provider's
//! (misbehaving) clients"* — not with the size of the Internet.
//!
//! We grow a star of attacker networks (one zombie each) around a hub and
//! measure, per attacker-side provider, the requests it satisfies: the
//! per-provider load must stay flat at ~1 while the total number of
//! networks grows, and the hub (the "core") must hold **zero** filters —
//! unlike pushback, where the hub absorbs a filter per flow whenever the
//! edge chain stalls.

use aitf_attack::army::{arm_floods, ZombieArmySpec};
use aitf_attack::scenarios::star;
use aitf_baseline::PushbackRouter;
use aitf_core::{AitfConfig, HostPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;

use crate::harness::{run_spec, Table};

/// Result of one scale point.
#[derive(Debug)]
pub struct ScalePoint {
    /// Number of attacker networks (each with one zombie).
    pub n_nets: usize,
    /// Mean filters installed per attacker-side gateway.
    pub per_provider_filters: f64,
    /// Maximum filters installed at any single attacker-side gateway.
    pub max_provider_filters: u64,
    /// Filters held by the hub (core) router under AITF.
    pub hub_filters: usize,
    /// Peak filters at the victim's gateway.
    pub victim_gw_peak: usize,
    /// Simulator events dispatched during the run.
    pub events: u64,
}

/// Runs one scale point under AITF.
pub fn run_one(n_nets: usize, seed: u64) -> ScalePoint {
    let cfg = AitfConfig {
        t_long: SimDuration::from_secs(30),
        detection_delay: SimDuration::from_millis(10),
        grace: SimDuration::from_secs(3600),
        ..AitfConfig::default()
    };
    let mut s = star(cfg, seed, n_nets, 1, HostPolicy::Malicious, 10_000_000);
    let target = s.world.host_addr(s.victim);
    let spec = ZombieArmySpec {
        pps: 100,
        size: 300,
        stagger: SimDuration::from_millis(20),
    };
    arm_floods(&mut s.world, &s.zombies, target, &spec);
    s.world.sim.run_for(SimDuration::from_secs(10));

    let mut total = 0u64;
    let mut max = 0u64;
    for &net in &s.attacker_nets {
        let f = s.world.router(net).counters().filters_installed;
        total += f;
        max = max.max(f);
    }
    ScalePoint {
        n_nets,
        per_provider_filters: total as f64 / n_nets as f64,
        max_provider_filters: max,
        hub_filters: s.world.router(s.hub).filters().stats().installs as usize,
        victim_gw_peak: s
            .world
            .router(s.victim_net)
            .filters()
            .stats()
            .peak_occupancy,
        events: s.world.sim.dispatched_events(),
    }
}

/// Hub filter load under pushback at the same scale (for contrast).
pub fn hub_filters_pushback(n_nets: usize, seed: u64) -> u64 {
    let cfg = AitfConfig {
        t_long: SimDuration::from_secs(30),
        detection_delay: SimDuration::from_millis(10),
        ..AitfConfig::default()
    };
    // Rebuild the same star shape by hand on a pushback world.
    let mut alloc = aitf_attack::scenarios::PrefixAlloc::new();
    let mut b = aitf_core::WorldBuilder::new(seed, cfg);
    let hub_prefix = alloc.next_slash16();
    let hub = b.network("hub", &hub_prefix.to_string(), None);
    let vp = alloc.next_slash16();
    let v_net = b.network("v_net", &vp.to_string(), Some(hub));
    let victim = b.host(v_net);
    let mut zombies = Vec::new();
    for i in 0..n_nets {
        let p = alloc.next_slash16();
        let net = b.network(&format!("z{i}"), &p.to_string(), Some(hub));
        zombies.push(b.host_with(
            net,
            HostPolicy::Malicious,
            aitf_core::WorldBuilder::default_host_link(),
        ));
    }
    let mut w = aitf_baseline::build_pushback_world(b);
    let target = w.host_addr(victim);
    let spec = ZombieArmySpec {
        pps: 100,
        size: 300,
        stagger: SimDuration::from_millis(20),
    };
    arm_floods(&mut w, &zombies, target, &spec);
    w.sim.run_for(SimDuration::from_secs(10));
    w.sim
        .node_ref::<PushbackRouter>(w.router_node(hub))
        .expect("pushback hub")
        .counters()
        .filters_installed
}

/// The E10 scenario spec: attacker-network count swept upward.
pub fn spec(quick: bool) -> ScenarioSpec {
    let scales: &[u64] = if quick { &[8, 16] } else { &[8, 16, 32, 64] };
    ScenarioSpec::new(
        "e10_scaling",
        "E10 (§III-C): per-provider load stays flat as the world grows",
        "§III-C",
    )
    .expectation(
        "each attacker-side provider satisfies ~1 request (its own one \
         misbehaving client) no matter how many networks exist; the AITF \
         hub/core carries zero filters while the pushback hub's filter load \
         grows with the attack size — the §I 'filtering bottleneck'.",
    )
    .points(
        scales
            .iter()
            .map(|&n| Params::new().with("attacker_nets", n)),
    )
    .runner(|p, ctx| {
        let n = p.usize("attacker_nets");
        let o = run_one(n, ctx.seed);
        let hub_pb = hub_filters_pushback(n, ctx.seed);
        Outcome::new(
            Params::new()
                .with("filters_per_provider", o.per_provider_filters)
                .with("max_provider", o.max_provider_filters)
                .with("hub_filters_aitf", o.hub_filters)
                .with("hub_filters_pushback", hub_pb)
                .with("victim_gw_peak", o.victim_gw_peak),
        )
        .with_events(o.events)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_provider_load_is_flat() {
        let small = run_one(8, 1);
        let large = run_one(24, 1);
        assert!((small.per_provider_filters - 1.0).abs() < 0.5, "{small:?}");
        assert!((large.per_provider_filters - 1.0).abs() < 0.5, "{large:?}");
        assert_eq!(small.hub_filters, 0, "{small:?}");
        assert_eq!(large.hub_filters, 0, "{large:?}");
    }

    #[test]
    fn pushback_hub_load_grows_with_attack_size() {
        let small = hub_filters_pushback(8, 2);
        let large = hub_filters_pushback(24, 2);
        assert!(large > small, "hub pushback filters: {small} -> {large}");
        assert!(large >= 20, "hub must carry ~one filter per flow: {large}");
    }
}
