//! E18 — scale: a 100k-host provider tree under a zombie army.
//!
//! The paper argues AITF's costs track the *attacker's own provider*, not
//! the size of the Internet (§III-C). E10 shows the per-provider load
//! staying flat as the world grows; E18 pushes the world itself to
//! Internet-shaped size — a two-level provider tree with **105,800
//! end-hosts** across 529 leaf networks — and runs a staggered zombie army
//! through the full protocol. The experiment doubles as the harness's
//! scale benchmark: it is the row that exercises the sharded
//! conservative-lookahead event loop (`Scenario::shards`) on a topology
//! large enough for partitioning to matter, and `tools/bench_compare`
//! ratchets its event count and tracks its `events_per_sec`.
//!
//! Paper expectation at this scale: nothing new — every flow is blocked at
//! its own leaf provider, the hub/core holds zero filters, and the leak
//! ratio collapses — which is exactly the point: AITF at 100× the usual
//! world size behaves like AITF at E10's size.

use aitf_core::{AitfConfig, Contract, HostPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{
    HostSel, ProbeSet, Role, Scenario, Side, TargetSel, TopologySpec, TrafficSpec,
};

use crate::harness::{run_spec, Table};

/// Branching factor of the two-level tree: 23 mid providers × 23 leaf
/// networks × 200 hosts = 105,800 end-hosts in 529 leaf networks.
const BRANCHING: usize = 23;
/// Hosts per leaf network.
const HOSTS_PER_LEAF: usize = 200;

fn config() -> AitfConfig {
    AitfConfig {
        t_long: SimDuration::from_secs(30),
        detection_delay: SimDuration::from_millis(10),
        // Disconnection churn is E1/E8 material; here the filters do the
        // work and the grace period keeps every zombie connected.
        grace: SimDuration::from_secs(3600),
        // Room for the whole army at the victim's gateway.
        filter_capacity: 4096,
        // Contracts provisioned for an Internet-sized army: the default
        // R1 = 100 req/s would throttle the victim's gateway below the
        // army size and push filtering onto the hub — E3/E4 territory,
        // not the scale question this row asks.
        client_contract: Contract::new(1000.0, 1000),
        peer_contract: Contract::new(100.0, 500),
        ..AitfConfig::default()
    }
}

/// The declarative E18 scenario: the 105,800-host tree with the first
/// `zombies` attacker hosts flooding the victim at 50 pps each, starting
/// 1 ms apart.
pub fn scenario(zombies: usize, duration: SimDuration) -> Scenario {
    Scenario::new(TopologySpec::tree(
        2,
        BRANCHING,
        HOSTS_PER_LEAF,
        HostPolicy::Malicious,
        10_000_000,
    ))
    .config(config())
    .duration(duration)
    .traffic(
        TrafficSpec::flood(
            HostSel::RoleFirst(Role::Attacker, zombies),
            TargetSel::Victim,
            50,
            500,
        )
        .staggered(SimDuration::from_millis(1)),
    )
    .probes(
        ProbeSet::new()
            .end(|w, m| {
                m.set("hosts", w.world.host_count() as u64);
                let mut leaf_filters = 0u64;
                for net in w.nets_on(Side::Attacker) {
                    leaf_filters += w.world.router(net).counters().filters_installed;
                }
                m.set("leaf_filters", leaf_filters);
                m.set(
                    "hub_filters",
                    w.world.router(w.net("hub")).filters().stats().installs,
                );
            })
            .peak_filters("victim_gw_peak", "victim_net")
            .leak_ratio("leak_r"),
    )
}

/// Runs one army size (the in-file test convenience; the spec runner goes
/// through [`scenario`] directly so it can thread the shard count).
pub fn run_one(zombies: usize, duration: SimDuration, seed: u64, shards: usize) -> Outcome {
    scenario(zombies, duration).shards(shards).run(seed)
}

/// The E18 scenario spec: one Internet-sized point (quick keeps the army
/// and the clock CI-sized; the world is full-sized either way).
pub fn spec(quick: bool) -> ScenarioSpec {
    let (zombies, duration_s): (u64, u64) = if quick { (500, 2) } else { (2000, 5) };
    ScenarioSpec::new(
        "e18_megatree",
        "E18 (§III-C at scale): 105,800-host tree — AITF behaves like at E10 size",
        "§III-C",
    )
    .expectation(
        "every flow is blocked at its own leaf provider, the hub holds \
         zero filters and the leak collapses — the same picture as E10, \
         on a world 100× larger.",
    )
    .point(
        Params::new()
            .with("zombies", zombies)
            .with("duration_s", duration_s),
    )
    .runner(|p, ctx| {
        scenario(
            p.usize("zombies"),
            SimDuration::from_secs(p.u64("duration_s")),
        )
        .shards(ctx.shards)
        .run(ctx.seed)
    })
}

/// Runs the experiment and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shrunken stand-in (same generator, branching 4 × 10 hosts) so the
    /// unit suite checks the probes and the sharded path without paying
    /// for the full 105k-host build.
    fn small(zombies: usize, seed: u64, shards: usize) -> Outcome {
        Scenario::new(TopologySpec::tree(
            2,
            4,
            10,
            HostPolicy::Malicious,
            10_000_000,
        ))
        .config(config())
        .duration(SimDuration::from_secs(2))
        .traffic(
            TrafficSpec::flood(
                HostSel::RoleFirst(Role::Attacker, zombies),
                TargetSel::Victim,
                50,
                500,
            )
            .staggered(SimDuration::from_millis(1)),
        )
        .probes(
            ProbeSet::new()
                .end(|w, m| {
                    let mut leaf_filters = 0u64;
                    for net in w.nets_on(Side::Attacker) {
                        leaf_filters += w.world.router(net).counters().filters_installed;
                    }
                    m.set("leaf_filters", leaf_filters);
                    m.set(
                        "hub_filters",
                        w.world.router(w.net("hub")).filters().stats().installs,
                    );
                })
                .leak_ratio("leak_r"),
        )
        .shards(shards)
        .run(seed)
    }

    #[test]
    fn army_is_blocked_at_the_leaves_hub_stays_clean() {
        let o = small(20, 7, 1);
        assert!(o.metrics.u64("leaf_filters") >= 20, "{o:?}");
        assert_eq!(o.metrics.u64("hub_filters"), 0, "{o:?}");
        assert!(o.metrics.f64("leak_r") < 0.25, "{o:?}");
    }

    #[test]
    fn sharded_run_is_bit_identical() {
        let single = small(20, 7, 1);
        for shards in [2, 4] {
            let sharded = small(20, 7, shards);
            assert_eq!(single.metrics, sharded.metrics, "shards = {shards}");
            assert_eq!(single.events, sharded.events, "shards = {shards}");
        }
    }

    #[test]
    fn spec_points_are_ci_sized_in_quick_mode() {
        assert!(spec(true).points[0].u64("zombies") <= 500);
        assert!(spec(false).points[0].u64("zombies") > 500);
    }
}
