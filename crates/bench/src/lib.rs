//! Experiment harness: regenerates every table and figure of the AITF
//! paper's evaluation (Section IV plus the Figure 1 / Section II-D
//! scenario and the Section V pushback comparison).
//!
//! Each experiment is a library module with a `run(quick)` entry point and
//! a thin binary wrapper in `src/bin/`. `quick = true` shrinks durations
//! and sweeps so the whole suite doubles as an integration test; the
//! binaries run the full-size versions. Every experiment prints
//! *paper-expected* and *measured* values side by side; EXPERIMENTS.md
//! records the outcomes.
//!
//! | experiment | paper source | claim |
//! |------------|--------------|-------|
//! | [`e1_escalation`] | Fig. 1, §II-D | rounds push filtering to the attacker's side, then disconnect |
//! | [`e2_effective_bandwidth`] | §IV-A.1 | `r ≈ n(Td+Tr)/T` |
//! | [`e3_protection_capacity`] | §IV-A.2 | `Nv = R1·T` |
//! | [`e4_victim_gw_resources`] | §IV-B | `nv = R1·Ttmp`, `mv = R1·T` |
//! | [`e5_attacker_gw_resources`] | §IV-C/D | `na = R2·T` |
//! | [`e6_handshake_security`] | §II-E, §III-B | forgery fails off-path, succeeds only on-path |
//! | [`e7_onoff_attacks`] | §II-B fn.2 | the shadow cache defeats on-off games |
//! | [`e8_vs_pushback`] | §V | 4 nodes/round vs hop-by-hop; disconnection vs good will |
//! | [`e9_ingress_incentive`] | §III-A | ingress filtering pays for itself |
//! | [`e10_scaling`] | §III-C | per-provider load follows its own clients |
//! | [`e11_detection`] | §V (detection boundary) | a real rate detector reproduces the assumed `Td` |
//! | [`e12_mixed_workload`] | §I threat model | mixed legit/attack host ratios at constant load |
//! | [`e13_filter_pressure`] | §IV-B sizing, stressed | leak degrades once capacity drops below filter demand |
//! | [`e14_td_tr_grid`] | §IV-A.1 | the full `Td × Tr` grid tracks `(Td+Tr)/T` |
//! | [`e15_host_churn`] | §III-C under churn | leak recovers after every mid-attack host wave |
//! | [`e16_deployment_incentive`] | §III, §IV-B | every additional AITF provider pays off for the victim |
//! | [`e17_provider_churn`] | §III under network churn | leak recovers as providers leave/rejoin AITF mid-attack |
//! | [`e18_megatree`] | §III-C at scale | a 105,800-host tree behaves like E10's world, 100× larger |
//! | [`e19_defense_bakeoff`] | §V, generalized | four defense policies ranked on one world, one seed |
//! | [`e20_flash_crowd`] | §I threat model, Internet shape | flash crowd vs spoofed DDoS discrimination on a 100k-net power-law world |

pub mod e10_scaling;
pub mod e11_detection;
pub mod e12_mixed_workload;
pub mod e13_filter_pressure;
pub mod e14_td_tr_grid;
pub mod e15_host_churn;
pub mod e16_deployment_incentive;
pub mod e17_provider_churn;
pub mod e18_megatree;
pub mod e19_defense_bakeoff;
pub mod e1_escalation;
pub mod e20_flash_crowd;
pub mod e2_effective_bandwidth;
pub mod e3_protection_capacity;
pub mod e4_victim_gw_resources;
pub mod e5_attacker_gw_resources;
pub mod e6_handshake_security;
pub mod e7_onoff_attacks;
pub mod e8_vs_pushback;
pub mod e9_ingress_incentive;
pub mod figures;
pub mod harness;

pub use harness::Table;

/// Builds the full experiment registry, in paper order. Every experiment
/// registers its [`aitf_engine::ScenarioSpec`] here; the `all_experiments`
/// driver selects from it with `--filter`.
pub fn registry(quick: bool) -> aitf_engine::Registry {
    let mut r = aitf_engine::Registry::new();
    r.register(e1_escalation::spec(quick));
    r.register(e2_effective_bandwidth::spec(quick));
    r.register(e3_protection_capacity::spec(quick));
    r.register(e4_victim_gw_resources::spec(quick));
    r.register(e5_attacker_gw_resources::spec(quick));
    r.register(e6_handshake_security::spec(quick));
    r.register(e7_onoff_attacks::spec(quick));
    r.register(e8_vs_pushback::spec(quick));
    r.register(e8_vs_pushback::spec_rogue(quick));
    r.register(e9_ingress_incentive::spec(quick));
    r.register(e10_scaling::spec(quick));
    r.register(e11_detection::spec(quick));
    r.register(e12_mixed_workload::spec(quick));
    r.register(e13_filter_pressure::spec(quick));
    r.register(e14_td_tr_grid::spec(quick));
    r.register(e15_host_churn::spec(quick));
    r.register(e16_deployment_incentive::spec(quick));
    r.register(e17_provider_churn::spec(quick));
    r.register(e18_megatree::spec(quick));
    r.register(e19_defense_bakeoff::spec(quick));
    r.register(e20_flash_crowd::spec(quick));
    r.register(figures::spec(quick));
    r
}
