//! E12 — mixed legitimate/attack workloads over a provider tree.
//!
//! The paper's sweeps keep legitimate and attack traffic in separate
//! experiments; real deployments see both at once. E12 is the first
//! experiment written *purely* against the declarative `aitf-scenario`
//! API: a two-level provider [`TopologySpec::tree`] whose leaf hosts are
//! split between zombies and legitimate clients by a swept ratio, with
//! the **aggregate** attack rate held constant (the engine splits it
//! per-host), so the sweep isolates how the attacker's dispersion across
//! sources — not the offered load — changes the outcome.
//!
//! Expectations: AITF blocks every zombie regardless of the split, the
//! leak stays small, time-to-block stays flat (per-source detection works
//! per flow), and once the zombies are quenched the victim's tail circuit
//! belongs to the legitimate pool — absolute legitimate goodput grows
//! with the client count until the tail itself saturates (at which point
//! the *fraction* delivered dips below 1 for capacity, not attack,
//! reasons).

use aitf_core::HostPolicy;
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{
    HostSel, ProbeSet, Role, Scenario, Side, TargetSel, TopologySpec, TrafficSpec,
};

use crate::harness::{run_spec, Table};

/// Tree shape: 2 levels, 3-way branching, 2 hosts per leaf → 9 leaf
/// networks, 18 hosts behind 3 intermediate providers.
const LEVELS: usize = 2;
const BRANCHING: usize = 3;
const HOSTS_PER_LEAF: usize = 2;

/// Total attack load offered, split across however many zombies the
/// ratio yields: 6400 pps × 500 B = 25.6 Mbit/s against the victim's
/// 10 Mbit/s tail circuit.
const ATTACK_TOTAL_PPS: u64 = 6400;

/// The declarative E12 scenario: `attack_hosts` of the tree's leaf hosts
/// flood (sharing `ATTACK_TOTAL_PPS`), the rest run legitimate clients.
pub fn scenario(attack_hosts: usize, duration: SimDuration) -> Scenario {
    let mut topo = TopologySpec::tree(
        LEVELS,
        BRANCHING,
        HOSTS_PER_LEAF,
        HostPolicy::Malicious,
        10_000_000,
    );
    // Split the leaf hosts: the first `attack_hosts` stay zombies, the
    // rest become compliant legitimate clients. (Host 0 is the victim.)
    let leaf_hosts: Vec<usize> = (0..topo.hosts.len())
        .filter(|&i| topo.hosts[i].role == Role::Attacker)
        .collect();
    assert!(
        (1..leaf_hosts.len()).contains(&attack_hosts),
        "the mix needs at least one attacker and one legitimate host"
    );
    for &i in &leaf_hosts[attack_hosts..] {
        topo.hosts[i].policy = HostPolicy::Compliant;
        topo.hosts[i].role = Role::Legit;
    }
    let bin = SimDuration::from_millis(100);
    Scenario::new(topo)
        .duration(duration)
        .traffic(
            // Legitimate pool: 100 pps × 1000 B ≈ 0.8 Mbit/s per client.
            TrafficSpec::legit(HostSel::Role(Role::Legit), TargetSel::Victim, 100, 1000),
        )
        .traffic(
            TrafficSpec::flood_aggregate(
                HostSel::Role(Role::Attacker),
                TargetSel::Victim,
                ATTACK_TOTAL_PPS,
                500,
            )
            .staggered(SimDuration::from_millis(10)),
        )
        .probes(
            ProbeSet::new()
                .leak_ratio("leak_r")
                .legit_delivery("legit_frac")
                .filters_installed_on("blocked_flows", Side::Attacker)
                .bin(bin)
                .sampled_filter_occupancy("_tb_filters", "victim_net", false)
                .time_to_block("time_to_block_s", "_tb_filters", 0.0),
        )
}

/// Runs one mix point.
pub fn run_one(attack_hosts: usize, duration: SimDuration, seed: u64) -> Outcome {
    scenario(attack_hosts, duration).run(seed)
}

/// The E12 scenario spec: attack:legit host-ratio sweep at constant
/// aggregate attack load.
pub fn spec(quick: bool) -> ScenarioSpec {
    let total_hosts = BRANCHING.pow(LEVELS as u32) * HOSTS_PER_LEAF;
    let duration_s: u64 = if quick { 5 } else { 10 };
    let fractions: &[f64] = if quick {
        &[0.25, 0.75]
    } else {
        &[0.125, 0.25, 0.5, 0.75]
    };
    ScenarioSpec::new(
        "e12_mixed_workload",
        "E12 (mixed workload): attack:legit host ratio at constant attack load",
        "§I threat model, mixed",
    )
    .expectation(
        "every zombie flow is blocked at its own provider regardless of \
         the split (blocked_flows = attack_hosts), leak stays small and \
         time-to-block flat; absolute legitimate goodput grows with the \
         client count until the victim's tail circuit saturates.",
    )
    .points(fractions.iter().map(move |&frac| {
        let attack_hosts = ((total_hosts as f64) * frac).round().max(1.0) as u64;
        Params::new()
            .with("attack_hosts", attack_hosts)
            .with("legit_hosts", total_hosts as u64 - attack_hosts)
            .with("attack_frac", frac)
            .with("duration_s", duration_s)
    }))
    .runner(|p, ctx| {
        scenario(
            p.usize("attack_hosts"),
            SimDuration::from_secs(p.u64("duration_s")),
        )
        .shards(ctx.shards)
        .run(ctx.seed)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_zombie_is_blocked_at_any_mix() {
        for attack_hosts in [4usize, 13] {
            let o = run_one(attack_hosts, SimDuration::from_secs(5), 7);
            assert_eq!(
                o.metrics.u64("blocked_flows"),
                attack_hosts as u64,
                "mix {attack_hosts}: {o:?}"
            );
            assert!(o.metrics.f64("leak_r") < 0.2, "{o:?}");
            assert!(o.metrics.f64("time_to_block_s") >= 0.0, "{o:?}");
        }
    }

    #[test]
    fn legit_goodput_scales_with_the_client_pool() {
        // 13 attackers -> 5 clients (4 Mbit/s offered, under the tail);
        // 4 attackers -> 14 clients (11.2 Mbit/s, tail-saturating).
        let many_attackers = run_one(13, SimDuration::from_secs(5), 8);
        let few_attackers = run_one(4, SimDuration::from_secs(5), 8);
        // Under-subscribed pool: nearly everything arrives.
        assert!(
            many_attackers.metrics.f64("legit_frac") > 0.9,
            "{many_attackers:?}"
        );
        // Over-subscribed pool: the fraction dips (tail capacity, not the
        // attack), but absolute goodput — fraction × client count — must
        // still beat the small pool's.
        assert!(
            few_attackers.metrics.f64("legit_frac") > 0.7,
            "{few_attackers:?}"
        );
        let abs_few = few_attackers.metrics.f64("legit_frac") * 14.0;
        let abs_many = many_attackers.metrics.f64("legit_frac") * 5.0;
        assert!(
            abs_few > abs_many * 1.5,
            "more clients must mean more delivered bytes: {abs_few} vs {abs_many}"
        );
    }

    #[test]
    fn aggregate_attack_rate_is_independent_of_the_split() {
        // Offered attack bytes should match ATTACK_TOTAL_PPS × size ×
        // duration regardless of how many hosts share the rate.
        let o4 = scenario(4, SimDuration::from_secs(3)).build(9);
        let o13 = scenario(13, SimDuration::from_secs(3)).build(9);
        for (mut w, label) in [(o4, "4 hosts"), (o13, "13 hosts")] {
            w.world.sim.run_for(SimDuration::from_secs(3));
            let offered: u64 = w
                .hosts_with(Role::Attacker)
                .iter()
                .map(|&h| w.world.host(h).counters().tx_pkts)
                .sum();
            let expected = ATTACK_TOTAL_PPS * 3;
            let tolerance = expected / 10;
            assert!(
                offered.abs_diff(expected) <= tolerance,
                "{label}: offered {offered} pkts, expected ≈ {expected}"
            );
        }
    }
}
