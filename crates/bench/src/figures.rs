//! Figure-style time series.
//!
//! Where the E-experiments print tables, this module regenerates the
//! *shapes* a systems paper plots: legitimate goodput collapsing under the
//! flood and recovering once AITF kicks in, the victim's effective attack
//! bandwidth over time, and filter occupancy at the two gateways.
//!
//! The runs live on the engine like every other experiment: [`spec`]
//! registers a `figures` sweep whose records carry the per-bin series as
//! `_series_*` JSON fields (`Value::F64List`), so
//! `all_experiments --json` emits machine-readable plot data in
//! `BENCH_figures.json`. The [`run`] entry point additionally prints the
//! classic gnuplot-ready two-column text.

use aitf_core::{HostPolicy, RouterPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};

use crate::harness::print_series;

/// The declarative timeline scenario: an 8×2 zombie star whose last spoke
/// host is a legitimate client, zombies joining staggered from `t = 2 s`.
/// With `defended = false` every router is a legacy (non-AITF) router and
/// the collapse is permanent.
pub fn scenario(defended: bool) -> Scenario {
    let mut topo = TopologySpec::star(8, 2, HostPolicy::Malicious, 10_000_000);
    if !defended {
        topo.set_all_net_policies(RouterPolicy::legacy());
    }
    // The last zombie slot becomes the legitimate client.
    let last = topo.hosts.len() - 1;
    topo.hosts[last].policy = HostPolicy::Compliant;
    topo.hosts[last].role = Role::Legit;

    let bin = SimDuration::from_millis(250);
    Scenario::new(topo)
        .duration(SimDuration::from_secs(12))
        .traffic(TrafficSpec::legit(
            HostSel::Role(Role::Legit),
            TargetSel::Victim,
            800,
            1000,
        ))
        .traffic(
            TrafficSpec::flood(HostSel::Role(Role::Attacker), TargetSel::Victim, 400, 500)
                .starting_after(SimDuration::from_secs(2))
                .staggered(SimDuration::from_millis(30)),
        )
        .probes(
            ProbeSet::new()
                .bin(bin)
                .summarize(|s, m| {
                    // Empty-window means are NaN; -1 is the repo's "no
                    // data" metric sentinel (cf. time_to_block).
                    let mean = |name, from, to| {
                        let v = s.window_mean(name, from, to);
                        if v.is_nan() {
                            -1.0
                        } else {
                            v
                        }
                    };
                    m.set(
                        "goodput_before_mbps",
                        mean("_series_goodput_mbps", 0.5, 2.0),
                    );
                    m.set(
                        "goodput_during_mbps",
                        mean("_series_goodput_mbps", 2.3, 3.0),
                    );
                    m.set(
                        "goodput_after_mbps",
                        mean("_series_goodput_mbps", 6.0, 12.0),
                    );
                    m.set(
                        "attack_bw_after_mbps",
                        mean("_series_attack_bw_mbps", 6.0, 12.0),
                    );
                })
                .sampled_victim_mbps("_series_goodput_mbps", true, |w| {
                    w.world.host(w.victim()).counters().rx_legit_bytes
                })
                .sampled_victim_mbps("_series_attack_bw_mbps", true, |w| {
                    w.world.host(w.victim()).counters().rx_attack_bytes
                })
                .sampled_filter_occupancy("_series_victim_gw_filters", "victim_net", true),
        )
}

/// Runs one timeline (summary means + full `_series_*` vectors).
pub fn attack_timeline(defended: bool, seed: u64) -> Outcome {
    scenario(defended).run(seed)
}

/// The engine spec for the timeline pair: one defended run, one
/// undefended, sharing a seed (`_seed_group`) so the only difference
/// between the rows is AITF itself. Summary means make the table; the
/// full per-bin series travel as `_series_*` JSON arrays.
pub fn spec(_quick: bool) -> ScenarioSpec {
    ScenarioSpec::new(
        "figures",
        "figure series: flood collapse and AITF recovery",
        "§II-D / Fig. 1",
    )
    .expectation(
        "goodput collapses at t=2s in both runs; with AITF it recovers \
         within ~1 s while the undefended run stays on the floor; attack \
         bandwidth under AITF returns to ~0. Full per-bin series ride in \
         the _series_* JSON fields.",
    )
    .points([true, false].into_iter().map(|defended| {
        Params::new()
            .with("defended", defended)
            .with("_seed_group", 0u64)
    }))
    .runner(|params, ctx| {
        scenario(params.bool("defended"))
            .shards(ctx.shards)
            .run(ctx.seed)
    })
}

/// Prints the engine table for the timeline pair, then both timelines
/// (defended and undefended) as gnuplot series — extracted from the same
/// records the table came from, so table and series always agree and the
/// pair is simulated exactly once.
pub fn run(quick: bool) {
    let spec = spec(quick);
    let records = aitf_engine::Runner::default().quick(quick).run(&spec);
    crate::harness::render_sweep(&spec, &records);
    println!("=== figure series: goodput and attack bandwidth over time ===\n");
    let series = |r: &aitf_engine::RunRecord, name: &str| -> Vec<(f64, f64)> {
        r.metrics
            .f64_list("_series_time_s")
            .iter()
            .copied()
            .zip(r.metrics.f64_list(name).iter().copied())
            .collect()
    };
    // Select by the knob, not by point order, so reordering spec points
    // can never swap the printed labels.
    let by_knob = |want: bool| {
        records
            .iter()
            .find(|r| r.params.bool("defended") == want)
            .expect("spec declares both defended and undefended points")
    };
    let (defended, undefended) = (by_knob(true), by_knob(false));
    print_series(
        "goodput_undefended_mbps",
        &series(undefended, "_series_goodput_mbps"),
    );
    print_series(
        "attack_bw_undefended_mbps",
        &series(undefended, "_series_attack_bw_mbps"),
    );
    print_series(
        "goodput_aitf_mbps",
        &series(defended, "_series_goodput_mbps"),
    );
    print_series(
        "attack_bw_aitf_mbps",
        &series(defended, "_series_attack_bw_mbps"),
    );
    print_series(
        "victim_gw_filters",
        &series(defended, "_series_victim_gw_filters"),
    );
    println!(
        "expected shape: goodput collapses at t=2s in both runs; with AITF \
         it recovers within ~1 s while the undefended run stays flat on the \
         floor; attack bandwidth under AITF returns to ~0."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aitf_timeline_shows_dip_and_recovery() {
        let o = attack_timeline(true, 3);
        let before = o.metrics.f64("goodput_before_mbps");
        let during = o.metrics.f64("goodput_during_mbps");
        let after = o.metrics.f64("goodput_after_mbps");
        assert!(before > 5.0, "healthy goodput before the attack: {before}");
        // AITF responds within ~Td per zombie, so the dip is brief and
        // partial — but it must be visible.
        assert!(during < before * 0.97, "dip visible: {before} -> {during}");
        assert!(
            after > before * 0.9,
            "recovery under AITF: before {before}, after {after}"
        );
    }

    #[test]
    fn undefended_timeline_never_recovers() {
        let defended = attack_timeline(true, 3);
        let o = attack_timeline(false, 3);
        let before = o.metrics.f64("goodput_before_mbps");
        let after = o.metrics.f64("goodput_after_mbps");
        // Persistent loss (drop-tail is not proportionally fair, so the
        // collapse is partial; what matters is that it never recovers).
        assert!(
            after < before * 0.85,
            "no defense, no recovery: before {before}, after {after}"
        );
        // The flood keeps occupying the circuit forever...
        let attack_after = o.metrics.f64("attack_bw_after_mbps");
        assert!(
            attack_after > 3.0,
            "flood occupies the circuit: {attack_after}"
        );
        // ...while AITF returns it to (almost) zero.
        let attack_defended = defended.metrics.f64("attack_bw_after_mbps");
        assert!(
            attack_defended < attack_after * 0.05,
            "AITF must clear the circuit: {attack_defended} vs {attack_after}"
        );
        // And the defended goodput clearly beats the undefended one.
        let after_defended = defended.metrics.f64("goodput_after_mbps");
        assert!(
            after_defended > after + 1.0,
            "defended {after_defended} vs undefended {after}"
        );
    }
}
