//! Figure-style time series.
//!
//! Where the E-experiments print tables, this module regenerates the
//! *shapes* a systems paper plots: legitimate goodput collapsing under the
//! flood and recovering once AITF kicks in, the victim's effective attack
//! bandwidth over time, and filter occupancy at the two gateways.
//!
//! The runs live on the engine like every other experiment: [`spec`]
//! registers a `figures` sweep whose records carry the per-bin series as
//! `_series_*` JSON fields (`Value::F64List`), so
//! `all_experiments --json` emits machine-readable plot data in
//! `BENCH_figures.json`. The [`run`] entry point additionally prints the
//! classic gnuplot-ready two-column text.

use aitf_attack::army::ZombieArmySpec;
use aitf_attack::scenarios::star;
use aitf_attack::LegitClient;
use aitf_core::{AitfConfig, HostPolicy, NetId, RouterPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;

use crate::harness::print_series;

/// One sampled trace of the attack timeline.
#[derive(Debug)]
pub struct AttackTrace {
    /// `(seconds, Mbit/s)` legitimate goodput per bin.
    pub goodput: Vec<(f64, f64)>,
    /// `(seconds, Mbit/s)` attack bytes delivered per bin.
    pub attack_bw: Vec<(f64, f64)>,
    /// `(seconds, filters)` live filters at the victim's gateway.
    pub victim_gw_filters: Vec<(f64, f64)>,
    /// Simulator events the run dispatched.
    pub events: u64,
}

/// Runs the flood-recovery timeline: zombies fire at `t = 2 s`; the series
/// shows the collapse and the AITF recovery (or, with `defended = false`,
/// no recovery at all).
pub fn attack_timeline(defended: bool, seed: u64) -> AttackTrace {
    let cfg = AitfConfig::default();
    let mut s = star(cfg, seed, 8, 2, HostPolicy::Malicious, 10_000_000);
    if !defended {
        let nets: Vec<NetId> = (0..s.world.net_count()).map(NetId).collect();
        for net in nets {
            s.world.router_mut(net).set_policy(RouterPolicy::legacy());
        }
    }
    let server = s.world.host_addr(s.victim);
    // A legitimate client from the first zombie network.
    let client = s.zombies.pop().expect("zombie slot");
    s.world.host_mut(client).set_policy(HostPolicy::Compliant);
    s.world
        .add_app(client, Box::new(LegitClient::new(server, 800, 1000)));
    let spec = ZombieArmySpec {
        pps: 400,
        size: 500,
        stagger: SimDuration::from_millis(30),
    };
    // Zombies join from t = 2 s.
    for (i, &z) in s.zombies.clone().iter().enumerate() {
        let flood = aitf_attack::FloodSource::new(server, spec.pps, spec.size)
            .starting_after(SimDuration::from_secs(2) + spec.stagger * i as u64);
        s.world.add_app(z, Box::new(flood));
    }

    let bin = SimDuration::from_millis(250);
    let total = SimDuration::from_secs(12);
    let mut goodput = Vec::new();
    let mut attack_bw = Vec::new();
    let mut victim_gw_filters = Vec::new();
    let mut last_legit = 0u64;
    let mut last_attack = 0u64;
    let mut elapsed = SimDuration::ZERO;
    while elapsed < total {
        s.world.sim.run_for(bin);
        elapsed = elapsed + bin;
        let t = s.world.sim.now().as_secs_f64();
        let c = s.world.host(s.victim).counters();
        let legit_bits = (c.rx_legit_bytes - last_legit) as f64 * 8.0;
        let attack_bits = (c.rx_attack_bytes - last_attack) as f64 * 8.0;
        last_legit = c.rx_legit_bytes;
        last_attack = c.rx_attack_bytes;
        let secs = bin.as_secs_f64();
        goodput.push((t, legit_bits / secs / 1e6));
        attack_bw.push((t, attack_bits / secs / 1e6));
        victim_gw_filters.push((t, s.world.router(s.victim_net).filters().len() as f64));
    }
    AttackTrace {
        goodput,
        attack_bw,
        victim_gw_filters,
        events: s.world.sim.dispatched_events(),
    }
}

/// Mean of the series values within `[from, to)` seconds.
fn window_mean(points: &[(f64, f64)], from: f64, to: f64) -> f64 {
    let vals: Vec<f64> = points
        .iter()
        .filter(|(t, _)| *t >= from && *t < to)
        .map(|&(_, v)| v)
        .collect();
    vals.iter().sum::<f64>() / vals.len().max(1) as f64
}

/// The engine spec for the timeline pair: one defended run, one
/// undefended, sharing a seed (`_seed_group`) so the only difference
/// between the rows is AITF itself. Summary means make the table; the
/// full per-bin series travel as `_series_*` JSON arrays.
pub fn spec(_quick: bool) -> ScenarioSpec {
    ScenarioSpec::new(
        "figures",
        "figure series: flood collapse and AITF recovery",
        "§II-D / Fig. 1",
    )
    .expectation(
        "goodput collapses at t=2s in both runs; with AITF it recovers \
         within ~1 s while the undefended run stays on the floor; attack \
         bandwidth under AITF returns to ~0. Full per-bin series ride in \
         the _series_* JSON fields.",
    )
    .points([true, false].into_iter().map(|defended| {
        Params::new()
            .with("defended", defended)
            .with("_seed_group", 0u64)
    }))
    .runner(|params, ctx| {
        let tr = attack_timeline(params.bool("defended"), ctx.seed);
        let series = |points: &[(f64, f64)]| points.iter().map(|&(_, v)| v).collect::<Vec<f64>>();
        let time: Vec<f64> = tr.goodput.iter().map(|&(t, _)| t).collect();
        Outcome::new(
            Params::new()
                .with("goodput_before_mbps", window_mean(&tr.goodput, 0.5, 2.0))
                .with("goodput_during_mbps", window_mean(&tr.goodput, 2.3, 3.0))
                .with("goodput_after_mbps", window_mean(&tr.goodput, 6.0, 12.0))
                .with(
                    "attack_bw_after_mbps",
                    window_mean(&tr.attack_bw, 6.0, 12.0),
                )
                .with("_series_time_s", time)
                .with("_series_goodput_mbps", series(&tr.goodput))
                .with("_series_attack_bw_mbps", series(&tr.attack_bw))
                .with("_series_victim_gw_filters", series(&tr.victim_gw_filters)),
        )
        .with_events(tr.events)
    })
}

/// Prints the engine table for the timeline pair, then both timelines
/// (defended and undefended) as gnuplot series — extracted from the same
/// records the table came from, so table and series always agree and the
/// pair is simulated exactly once.
pub fn run(quick: bool) {
    let spec = spec(quick);
    let records = aitf_engine::Runner::default().quick(quick).run(&spec);
    crate::harness::render_sweep(&spec, &records);
    println!("=== figure series: goodput and attack bandwidth over time ===\n");
    let series = |r: &aitf_engine::RunRecord, name: &str| -> Vec<(f64, f64)> {
        r.metrics
            .f64_list("_series_time_s")
            .iter()
            .copied()
            .zip(r.metrics.f64_list(name).iter().copied())
            .collect()
    };
    // Select by the knob, not by point order, so reordering spec points
    // can never swap the printed labels.
    let by_knob = |want: bool| {
        records
            .iter()
            .find(|r| r.params.bool("defended") == want)
            .expect("spec declares both defended and undefended points")
    };
    let (defended, undefended) = (by_knob(true), by_knob(false));
    print_series(
        "goodput_undefended_mbps",
        &series(undefended, "_series_goodput_mbps"),
    );
    print_series(
        "attack_bw_undefended_mbps",
        &series(undefended, "_series_attack_bw_mbps"),
    );
    print_series(
        "goodput_aitf_mbps",
        &series(defended, "_series_goodput_mbps"),
    );
    print_series(
        "attack_bw_aitf_mbps",
        &series(defended, "_series_attack_bw_mbps"),
    );
    print_series(
        "victim_gw_filters",
        &series(defended, "_series_victim_gw_filters"),
    );
    println!(
        "expected shape: goodput collapses at t=2s in both runs; with AITF \
         it recovers within ~1 s while the undefended run stays flat on the \
         floor; attack bandwidth under AITF returns to ~0."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    use super::window_mean as mean;

    #[test]
    fn aitf_timeline_shows_dip_and_recovery() {
        let tr = attack_timeline(true, 3);
        let before = mean(&tr.goodput, 0.5, 2.0);
        let during = mean(&tr.goodput, 2.3, 3.0);
        let after = mean(&tr.goodput, 6.0, 12.0);
        assert!(before > 5.0, "healthy goodput before the attack: {before}");
        // AITF responds within ~Td per zombie, so the dip is brief and
        // partial — but it must be visible.
        assert!(during < before * 0.97, "dip visible: {before} -> {during}");
        assert!(
            after > before * 0.9,
            "recovery under AITF: before {before}, after {after}"
        );
    }

    #[test]
    fn undefended_timeline_never_recovers() {
        let defended = attack_timeline(true, 3);
        let tr = attack_timeline(false, 3);
        let before = mean(&tr.goodput, 0.5, 2.0);
        let after = mean(&tr.goodput, 6.0, 12.0);
        // Persistent loss (drop-tail is not proportionally fair, so the
        // collapse is partial; what matters is that it never recovers).
        assert!(
            after < before * 0.85,
            "no defense, no recovery: before {before}, after {after}"
        );
        // The flood keeps occupying the circuit forever...
        let attack_after = mean(&tr.attack_bw, 6.0, 12.0);
        assert!(
            attack_after > 3.0,
            "flood occupies the circuit: {attack_after}"
        );
        // ...while AITF returns it to (almost) zero.
        let attack_defended = mean(&defended.attack_bw, 6.0, 12.0);
        assert!(
            attack_defended < attack_after * 0.05,
            "AITF must clear the circuit: {attack_defended} vs {attack_after}"
        );
        // And the defended goodput clearly beats the undefended one.
        let after_defended = mean(&defended.goodput, 6.0, 12.0);
        assert!(
            after_defended > after + 1.0,
            "defended {after_defended} vs undefended {after}"
        );
    }
}
