//! E16 — §III: the partial-deployment incentive, swept.
//!
//! The paper's deployment argument is that AITF pays off *before* everyone
//! runs it: the victim's provider adopts first and immediately protects
//! its client, and every additional adopting provider moves filtering
//! closer to the attackers — off the victim gateway's scarce wire-speed
//! table and onto the attacker-side edges. E9 showed the §III-A incentive
//! for a single router; E16 generalizes it to the whole deployment axis.
//!
//! Setup: the two-level provider tree (E12/E15's shape — 18 zombies
//! behind 9 leaf networks and 3 intermediate providers). The victim's
//! network always runs AITF; a seed-derived, **nested** fraction of the
//! remaining 13 networks joins it ([`DeploymentSpec::fraction`] — for a
//! fixed seed, the deployed set at a lower fraction is a subset of the
//! deployed set at any higher one, so the sweep isolates the deployment
//! axis). The victim gateway's filter table is deliberately small (6
//! entries against 18 attack flows): at low deployment it must hold every
//! long-term filter itself and overflows; as deployment grows, round-1
//! requests land on the zombies' own providers and the victim side only
//! ever needs its short-lived temporary filters (§IV-B's `nv = R1·Ttmp`
//! sizing argument, made visible as a deployment incentive).
//!
//! Expectation: leak ratio and attack bandwidth at the victim improve
//! monotonically with the deployment fraction, and — because escalation
//! is deployment-aware — no filtering request is ever wasted on a legacy
//! provider (`requests_ignored = 0` at every fraction).

use aitf_core::{AitfConfig, HostPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};

use crate::harness::{run_spec, Table};

/// Tree shape (E12/E15's): 2 levels, 3-way branching, 2 hosts per leaf.
const LEVELS: usize = 2;
const BRANCHING: usize = 3;
const HOSTS_PER_LEAF: usize = 2;

/// Per-router wire-speed filter capacity: well below the 18-flow army, so
/// a victim gateway forced to hold every long filter itself overflows.
const FILTER_CAPACITY: usize = 6;

/// Per-host flood rate (packets/second) and packet size: 18 × 200 pps ×
/// 500 B = 14.4 Mbit/s against the victim's 10 Mbit/s tail.
const FLOOD_PPS: u64 = 200;
const FLOOD_SIZE: u32 = 500;

/// Zombies open fire one after another. The stagger keeps the victim
/// gateway's *temporary*-filter churn within its table (≈ `Ttmp` /
/// stagger ≈ 5 concurrent temp filters against 6 slots — the §IV-B
/// `nv = R1·Ttmp` regime), so what the capacity squeeze exposes is
/// exactly the *long-term* demand that deployment migrates off the
/// victim's gateway.
const STAGGER: SimDuration = SimDuration::from_millis(200);

/// The declarative E16 scenario at one deployment fraction.
pub fn scenario(aitf_fraction: f64, duration: SimDuration) -> Scenario {
    let cfg = AitfConfig {
        // As in E10/E13/E15: disconnection would conflate "the flow was
        // filtered" with "the client was unplugged"; keep the axis pure.
        grace: SimDuration::from_secs(3600),
        filter_capacity: FILTER_CAPACITY,
        ..AitfConfig::default()
    };
    Scenario::new(TopologySpec::tree(
        LEVELS,
        BRANCHING,
        HOSTS_PER_LEAF,
        HostPolicy::Malicious,
        10_000_000,
    ))
    .config(cfg)
    .aitf_fraction(aitf_fraction)
    .duration(duration)
    .traffic(
        TrafficSpec::flood(
            HostSel::Role(Role::Attacker),
            TargetSel::Victim,
            FLOOD_PPS,
            FLOOD_SIZE,
        )
        .staggered(STAGGER),
    )
    .probes(
        ProbeSet::new()
            .end(|w, m| {
                let aitf_nets = (0..w.world.net_count())
                    .filter(|&i| w.world.router_policy(aitf_core::NetId(i)).aitf_enabled)
                    .count();
                m.set("aitf_nets", aitf_nets as u64);
            })
            .leak_ratio("leak_r")
            .end(move |w, m| {
                let bytes = w.world.host(w.victim()).counters().rx_attack_bytes;
                let secs = w.world.sim.now().as_secs_f64();
                m.set("victim_attack_mbps", bytes as f64 * 8.0 / secs / 1e6);
            })
            .end(|w, m| {
                // Deployment-aware escalation never knocks on legacy
                // doors: requests wasted on non-participants, summed over
                // the whole world.
                let ignored: u64 = (0..w.world.net_count())
                    .map(|i| {
                        w.world
                            .router(aitf_core::NetId(i))
                            .counters()
                            .requests_ignored
                    })
                    .sum();
                m.set("requests_ignored", ignored);
                let vgw = w.world.router(w.net("victim_net")).counters();
                m.set("vgw_unsatisfiable", vgw.requests_unsatisfiable);
                m.set("vgw_local_fallbacks", vgw.local_filter_fallbacks);
            }),
    )
}

/// Runs one deployment fraction.
pub fn run_one(aitf_fraction: f64, duration: SimDuration, seed: u64) -> Outcome {
    scenario(aitf_fraction, duration).run(seed)
}

/// The E16 scenario spec: the deployment fraction swept, all points on a
/// shared seed so the nested assignment makes the sweep monotone by
/// construction.
pub fn spec(quick: bool) -> ScenarioSpec {
    let fractions: &[f64] = if quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 1.0]
    };
    let duration_s: u64 = if quick { 6 } else { 12 };
    ScenarioSpec::new(
        "e16_deployment_incentive",
        "E16 (§III): every additional AITF provider pays off for the victim",
        "§III, §IV-B",
    )
    .expectation(
        "leak_r and victim_attack_mbps fall monotonically as the AITF \
         deployment fraction grows (nested seed-derived assignment): at \
         low deployment the victim's undersized gateway table overflows \
         (vgw_unsatisfiable > 0) and flows leak; at full deployment every \
         flow is blocked at its own provider. Deployment-aware escalation \
         wastes nothing on legacy hops: requests_ignored = 0 throughout.",
    )
    .points(fractions.iter().map(|&f| {
        Params::new()
            .with("aitf_fraction", f)
            .with("duration_s", duration_s)
            // Shared seed group: the monotone claim compares fractions on
            // one nested deployment assignment.
            .with("_seed_group", 0u64)
    }))
    .runner(|p, ctx| {
        scenario(
            p.f64("aitf_fraction"),
            SimDuration::from_secs(p.u64("duration_s")),
        )
        .shards(ctx.shards)
        .run(ctx.seed)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leak_improves_monotonically_with_deployment() {
        let d = SimDuration::from_secs(6);
        let outcomes: Vec<Outcome> = [0.0, 0.5, 1.0].iter().map(|&f| run_one(f, d, 42)).collect();
        for pair in outcomes.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            assert!(
                hi.metrics.f64("leak_r") <= lo.metrics.f64("leak_r") + 1e-9,
                "leak must not worsen with more deployment: {lo:?} -> {hi:?}"
            );
            assert!(
                hi.metrics.f64("victim_attack_mbps") <= lo.metrics.f64("victim_attack_mbps") + 1e-9,
                "victim bandwidth must not worsen with more deployment: {lo:?} -> {hi:?}"
            );
        }
        // The axis must actually matter: zero deployment leaks badly
        // (the undersized victim gateway cannot hold 18 long filters),
        // full deployment blocks nearly everything.
        let zero = &outcomes[0];
        let full = &outcomes[outcomes.len() - 1];
        assert!(zero.metrics.f64("leak_r") > 0.3, "{zero:?}");
        assert!(zero.metrics.u64("vgw_unsatisfiable") > 0, "{zero:?}");
        assert!(zero.metrics.u64("vgw_local_fallbacks") > 0, "{zero:?}");
        assert!(full.metrics.f64("leak_r") < 0.1, "{full:?}");
    }

    #[test]
    fn no_request_is_ever_wasted_on_a_legacy_provider() {
        for f in [0.0, 0.5] {
            let o = run_one(f, SimDuration::from_secs(6), 42);
            assert_eq!(
                o.metrics.u64("requests_ignored"),
                0,
                "deployment-aware escalation must skip legacy hops: {o:?}"
            );
        }
    }

    #[test]
    fn aitf_net_count_tracks_the_fraction() {
        let d = SimDuration::from_secs(6);
        // 14 nets total, victim_net always deployed, 13 eligible.
        assert_eq!(run_one(0.0, d, 42).metrics.u64("aitf_nets"), 1);
        assert_eq!(run_one(1.0, d, 42).metrics.u64("aitf_nets"), 14);
    }
}
