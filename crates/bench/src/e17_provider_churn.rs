//! E17 — network churn: providers joining/leaving AITF mid-attack.
//!
//! E15 churned the *hosts*; E17 churns the *networks*. Over the two-level
//! provider tree, all 18 zombies flood from `t = 0` and are blocked at
//! their own leaf providers in round 1. Then the deployment itself starts
//! moving: at each wave boundary one subtree's leaf providers drop out of
//! AITF ([`ChurnAction::SetRouterPolicy`] → legacy), which instantly
//! reopens their zombies' flows — the leaves' wire-speed filters go
//! dormant with the protocol. The victim gateway's shadow catches each
//! reappearing flow, and because the policy flip is broadcast to every
//! router's deployment view, the round-2 re-escalation routes *around*
//! the now-legacy leaf to the nearest participating node — the
//! mid-tree provider — which re-blocks the flow. At the next boundary the
//! dropped-out providers rejoin (their dormant filters resume matching)
//! while a different subtree drops out.
//!
//! Expectation: the victim's attack bandwidth spikes at every wave
//! boundary and collapses again within the wave (`wN_settled_mbps <<
//! wN_spike_mbps`), with a re-escalation latency (`wN_reblock_s`) of a
//! few control-plane round trips; re-escalations are never wasted on the
//! dropped-out providers themselves (`escalations_dropped = 0`, and the
//! round-2 filters land on the mid-tree providers).

use aitf_core::{AitfConfig, HostPolicy, RouterPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{
    ChurnAction, HostSel, NetSel, ProbeSet, Role, Scenario, Side, TargetSel, TopologySpec,
    TrafficSpec,
};

use crate::harness::{run_spec, Table};

/// Tree shape (E12/E15/E16's): 2 levels, 3-way branching, 2 hosts per
/// leaf → 9 leaf networks under 3 mid-tree providers.
const LEVELS: usize = 2;
const BRANCHING: usize = 3;
const HOSTS_PER_LEAF: usize = 2;

/// Waves: the initial full-deployment block-down, then one provider
/// subtree dropping out per boundary.
pub const WAVES: usize = 3;

/// Per-host flood rate (packets/second) and packet size.
const FLOOD_PPS: u64 = 200;
const FLOOD_SIZE: u32 = 500;

/// The attack bandwidth (Mbit/s) under which a wave counts as re-blocked.
const RECOVERED_MBPS: f64 = 0.5;

/// The leaf networks of mid-tree provider `subtree` (0-based).
fn subtree_leaves(subtree: usize) -> NetSel {
    NetSel::Names(
        (0..BRANCHING)
            .map(|i| format!("zombie_net_{}", subtree * BRANCHING + i))
            .collect(),
    )
}

/// The declarative E17 scenario: one provider subtree leaves AITF at each
/// wave boundary while the previous one rejoins.
pub fn scenario(wave: SimDuration) -> Scenario {
    let cfg = AitfConfig {
        // As in E15/E16: keep the churn dynamics pure of disconnections.
        grace: SimDuration::from_secs(3600),
        // The conservative detection model (E2/E7's formula regime): no
        // shadow-assisted reactivation, no instant re-detection. With the
        // fast paths on, a reappearing flow is re-blocked within one
        // packet and the provider-churn spike is a single packet per
        // flow — measurable but invisible at any plotting resolution.
        // Conservatively, every wave costs a fresh `Td + Tr`, which is
        // exactly the per-wave price the experiment quantifies.
        packet_triggered_reactivation: false,
        fast_redetect: false,
        ..AitfConfig::default()
    };
    let mut s = Scenario::new(TopologySpec::tree(
        LEVELS,
        BRANCHING,
        HOSTS_PER_LEAF,
        HostPolicy::Malicious,
        10_000_000,
    ))
    .config(cfg)
    .duration(wave * WAVES as u64)
    .traffic(TrafficSpec::flood(
        HostSel::Role(Role::Attacker),
        TargetSel::Victim,
        FLOOD_PPS,
        FLOOD_SIZE,
    ));
    for k in 1..WAVES {
        let at = wave * k as u64;
        if k >= 2 {
            // The previously dropped-out subtree rejoins AITF; its
            // dormant wire-speed filters resume matching instantly.
            s = s.event(
                at,
                ChurnAction::SetRouterPolicy(subtree_leaves(k - 2), RouterPolicy::default()),
            );
        }
        s = s.event(
            at,
            ChurnAction::SetRouterPolicy(subtree_leaves(k - 1), RouterPolicy::legacy()),
        );
    }
    let wave_s = wave.as_secs_f64();
    s.probes(
        ProbeSet::new()
            .leak_ratio("leak_r")
            .filters_installed_on("leaf_blocks", Side::Attacker)
            .end(|w, m| {
                let mid_reblocks: u64 = (0..BRANCHING)
                    .map(|i| {
                        w.world
                            .router(w.net(&format!("ad_{i}")))
                            .counters()
                            .filters_installed
                    })
                    .sum();
                m.set("mid_reblocks", mid_reblocks);
                let mut ignored = 0u64;
                let mut dropped = 0u64;
                for i in 0..w.world.net_count() {
                    let c = w.world.router(aitf_core::NetId(i)).counters();
                    ignored += c.requests_ignored;
                    dropped += c.escalations_dropped;
                }
                m.set("requests_ignored", ignored);
                m.set("escalations_dropped", dropped);
            })
            .bin(SimDuration::from_millis(100))
            .sampled_victim_mbps("_series_attack_mbps", true, |w| {
                w.world.host(w.victim()).counters().rx_attack_bytes
            })
            .summarize(move |store, m| {
                // Per wave: the spike (peak bin over the wave's first
                // 40%) vs the settled mean (last 40%), plus the re-block
                // latency — time from the wave boundary until the spike
                // falls back under RECOVERED_MBPS (−1 when it never
                // does, or never spiked).
                for (k, &(spike_name, settled_name, reblock_name)) in
                    WAVE_METRICS.iter().enumerate()
                {
                    let start = k as f64 * wave_s;
                    let end = start + wave_s;
                    let series = store.series("_series_attack_mbps");
                    let spike = store
                        .time_s
                        .iter()
                        .zip(series)
                        .filter(|&(&t, _)| t > start && t < start + 0.4 * wave_s)
                        .map(|(_, &v)| v)
                        .fold(0.0f64, f64::max);
                    m.set(spike_name, spike);
                    // NaN (empty window) → -1, the "no data" sentinel.
                    let settled = store.window_mean("_series_attack_mbps", end - 0.4 * wave_s, end);
                    m.set(settled_name, if settled.is_nan() { -1.0 } else { settled });
                    let mut spiked = false;
                    let mut reblock = -1.0;
                    for (&t, &v) in store.time_s.iter().zip(series) {
                        if t <= start || t > end {
                            continue;
                        }
                        if v > RECOVERED_MBPS {
                            spiked = true;
                        } else if spiked {
                            reblock = t - start;
                            break;
                        }
                    }
                    m.set(reblock_name, reblock);
                }
            }),
    )
}

/// Metric names per wave (static, because metric keys are `&'static`).
const WAVE_METRICS: [(&str, &str, &str); WAVES] = [
    ("w1_spike_mbps", "w1_settled_mbps", "w1_reblock_s"),
    ("w2_spike_mbps", "w2_settled_mbps", "w2_reblock_s"),
    ("w3_spike_mbps", "w3_settled_mbps", "w3_reblock_s"),
];

/// Runs one churn-period point.
pub fn run_one(wave: SimDuration, seed: u64) -> Outcome {
    scenario(wave).run(seed)
}

/// The E17 scenario spec: the provider-churn period swept.
pub fn spec(quick: bool) -> ScenarioSpec {
    let wave_ms: &[u64] = if quick { &[2000] } else { &[2000, 4000] };
    ScenarioSpec::new(
        "e17_provider_churn",
        "E17 (network churn): leak recovery as providers leave/rejoin AITF mid-attack",
        "§III under network churn",
    )
    .expectation(
        "attack bandwidth spikes when a provider subtree drops out of \
         AITF (its filters go dormant) and collapses again within the \
         wave: the deployment-view broadcast routes the round-2 \
         re-escalation around the legacy leaves to their mid-tree \
         provider (mid_reblocks > 0, escalations_dropped = 0), so \
         wN_settled_mbps << wN_spike_mbps and wN_reblock_s stays a few \
         control-plane round trips.",
    )
    .points(wave_ms.iter().map(|&w| {
        Params::new()
            .with("wave_ms", w)
            .with("waves", WAVES as u64)
            .with("leaves_per_wave", BRANCHING as u64)
    }))
    .runner(|p, ctx| {
        scenario(SimDuration::from_millis(p.u64("wave_ms")))
            .shards(ctx.shards)
            .run(ctx.seed)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_provider_wave_recovers() {
        let o = run_one(SimDuration::from_secs(2), 61);
        for (spike_name, settled_name, reblock_name) in WAVE_METRICS {
            let spike = o.metrics.f64(spike_name);
            let settled = o.metrics.f64(settled_name);
            let reblock = o.metrics.f64(reblock_name);
            assert!(
                spike > 1.0,
                "each wave must actually hit the victim: {spike_name} = {spike} ({o:?})"
            );
            assert!(
                settled < spike * 0.5,
                "each wave must recover: {settled_name} = {settled} vs {spike_name} = {spike}"
            );
            assert!(
                (0.0..1.0).contains(&reblock),
                "re-escalation must land within a second: {reblock_name} = {reblock} ({o:?})"
            );
        }
    }

    #[test]
    fn reescalation_lands_on_the_mid_tree_providers() {
        let o = run_one(SimDuration::from_secs(2), 62);
        // Round 1 blocks all 18 flows at their leaves; each dropped-out
        // subtree's 6 flows re-block at its mid-tree provider.
        assert!(o.metrics.u64("leaf_blocks") >= 18, "{o:?}");
        assert!(o.metrics.u64("mid_reblocks") >= 12, "{o:?}");
        assert_eq!(o.metrics.u64("escalations_dropped"), 0, "{o:?}");
        assert!(o.metrics.f64("leak_r") < 0.25, "{o:?}");
    }
}
