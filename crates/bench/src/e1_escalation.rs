//! E1 — Figure 1 / Section II-D: the escalation rounds.
//!
//! Reproduces the worked example of the paper: `B_host` floods `G_host`
//! across two three-level provider hierarchies. We sweep how many
//! attacker-side gateways refuse to cooperate (0–3) and report where the
//! filtering ends up:
//!
//! - 0 rogue gateways → round 1, blocked at `B_gw1` (the attacker's
//!   gateway), attacker disconnected if it will not stop;
//! - 1 rogue → round 2, blocked at `B_gw2`, which disconnects `B_net`;
//! - 2 rogues → round 3, blocked at `B_gw3`, which disconnects `B_isp`;
//! - 3 rogues → the worst case: `G_gw3` disconnects from `B_gw3`.

use aitf_core::{HostPolicy, RouterPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{
    HostSel, ProbeSet, Role, Scenario, Side, TargetSel, TopologySpec, TrafficSpec,
};

use crate::harness::{run_spec, Table};

/// The attacker-side gateways, leaf first, with their display labels.
const B_SIDE: [(&str, &str); 3] = [
    ("B_gw1 (B_net)", "B_net"),
    ("B_gw2 (B_isp)", "B_isp"),
    ("B_gw3 (B_wan)", "B_wan"),
];

/// The declarative E1 scenario: Figure 1 with `rogues` non-cooperating
/// attacker-side gateways and a 1000 pps flood.
pub fn scenario(rogues: usize, duration: SimDuration) -> Scenario {
    let mut topo = TopologySpec::fig1(HostPolicy::Malicious);
    for (_, net) in B_SIDE.iter().take(rogues) {
        topo.set_net_policy(net, RouterPolicy::non_cooperating());
    }
    Scenario::new(topo)
        .duration(duration)
        .traffic(TrafficSpec::flood(
            HostSel::Role(Role::Attacker),
            TargetSel::Victim,
            1000,
            500,
        ))
        .probes(
            ProbeSet::new()
                .end(|w, m| {
                    // Find the attacker-side network holding a long filter.
                    let mut blocker = "none (peer disconnected)".to_string();
                    for (label, net) in B_SIDE {
                        if w.world.router(w.net(net)).counters().filters_installed > 0 {
                            blocker = label.to_string();
                            break;
                        }
                    }
                    m.set("blocker", blocker);
                    let client_disconnects: u64 = w
                        .nets_on(Side::Attacker)
                        .iter()
                        .map(|&n| w.world.router(n).counters().disconnects_client)
                        .sum();
                    m.set("client_disconnects", client_disconnects);
                    m.set(
                        "peer_disconnects",
                        w.world.router(w.net("G_wan")).counters().disconnects_peer,
                    );
                })
                .leak_ratio("victim_leak_r"),
        )
}

/// Runs one sweep point with `rogues` non-cooperating attacker-side
/// gateways.
pub fn run_one(rogues: usize, duration: SimDuration, seed: u64) -> Outcome {
    scenario(rogues, duration).run(seed)
}

/// The E1 scenario spec: rogue-gateway count 0–3.
pub fn spec(quick: bool) -> ScenarioSpec {
    let duration_s: u64 = if quick { 10 } else { 30 };
    ScenarioSpec::new(
        "e1_escalation",
        "E1 (Fig.1, §II-D): escalation pushes filtering to the attacker side",
        "Fig. 1, §II-D",
    )
    .expectation(
        "blocker walks B_gw1 -> B_gw2 -> B_gw3 -> peer disconnect as rogue \
         count grows; leak stays tiny throughout.",
    )
    .points((0..=3u64).map(|rogues| {
        Params::new()
            .with("rogue_gws", rogues)
            .with("duration_s", duration_s)
    }))
    .runner(|p, ctx| {
        scenario(
            p.usize("rogue_gws"),
            SimDuration::from_secs(p.u64("duration_s")),
        )
        .shards(ctx.shards)
        .run(ctx.seed)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_walks_up_the_attacker_side() {
        let d = SimDuration::from_secs(10);
        let o0 = run_one(0, d, 42);
        assert!(o0.metrics.str("blocker").contains("B_gw1"), "{o0:?}");
        let o1 = run_one(1, d, 43);
        assert!(o1.metrics.str("blocker").contains("B_gw2"), "{o1:?}");
        let o2 = run_one(2, d, 44);
        assert!(o2.metrics.str("blocker").contains("B_gw3"), "{o2:?}");
        let o3 = run_one(3, d, 45);
        assert_eq!(o3.metrics.u64("peer_disconnects"), 1, "{o3:?}");
        // Every scenario keeps the leak small.
        for o in [o0, o1, o2, o3] {
            assert!(
                o.metrics.f64("victim_leak_r") < 0.12,
                "leak too high: {o:?}"
            );
        }
    }
}
