//! E1 — Figure 1 / Section II-D: the escalation rounds.
//!
//! Reproduces the worked example of the paper: `B_host` floods `G_host`
//! across two three-level provider hierarchies. We sweep how many
//! attacker-side gateways refuse to cooperate (0–3) and report where the
//! filtering ends up:
//!
//! - 0 rogue gateways → round 1, blocked at `B_gw1` (the attacker's
//!   gateway), attacker disconnected if it will not stop;
//! - 1 rogue → round 2, blocked at `B_gw2`, which disconnects `B_net`;
//! - 2 rogues → round 3, blocked at `B_gw3`, which disconnects `B_isp`;
//! - 3 rogues → the worst case: `G_gw3` disconnects from `B_gw3`.

use aitf_attack::scenarios::{fig1, Fig1World};
use aitf_attack::FloodSource;
use aitf_core::{AitfConfig, HostPolicy, NetId, RouterPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;

use crate::harness::{leak_ratio, run_spec, Table};

/// One sweep point's outcome.
#[derive(Debug)]
pub struct EscalationOutcome {
    /// How many attacker-side gateways were rogue.
    pub rogues: usize,
    /// Network that ended up holding the long-term filter (name).
    pub blocker: String,
    /// Client disconnections on the attacker side.
    pub client_disconnects: u64,
    /// Peer disconnections at the top (worst case).
    pub peer_disconnects: u64,
    /// Measured leak ratio at the victim.
    pub leak: f64,
    /// Simulator events dispatched during the run.
    pub events: u64,
}

/// Runs one sweep point with `rogues` non-cooperating attacker-side
/// gateways.
pub fn run_one(rogues: usize, duration: SimDuration, seed: u64) -> EscalationOutcome {
    let cfg = AitfConfig::default();
    let mut f: Fig1World = fig1(cfg, seed, HostPolicy::Malicious);
    let b_side = [f.b_net, f.b_isp, f.b_wan];
    for &net in b_side.iter().take(rogues) {
        f.world
            .router_mut(net)
            .set_policy(RouterPolicy::non_cooperating());
    }
    let target = f.world.host_addr(f.victim);
    f.world
        .add_app(f.attacker, Box::new(FloodSource::new(target, 1000, 500)));
    f.world.sim.run_for(duration);

    // Find the attacker-side network holding a long filter (if any).
    let names: [(&str, NetId); 3] = [
        ("B_gw1 (B_net)", f.b_net),
        ("B_gw2 (B_isp)", f.b_isp),
        ("B_gw3 (B_wan)", f.b_wan),
    ];
    let mut blocker = "none (peer disconnected)".to_string();
    for (name, net) in names {
        if f.world.router(net).counters().filters_installed > 0 {
            blocker = name.to_string();
            break;
        }
    }
    let client_disconnects: u64 = b_side
        .iter()
        .map(|&n| f.world.router(n).counters().disconnects_client)
        .sum();
    let peer_disconnects = f.world.router(f.g_wan).counters().disconnects_peer;
    let leak = leak_ratio(&f.world, f.victim, &[f.attacker]);
    EscalationOutcome {
        rogues,
        blocker,
        client_disconnects,
        peer_disconnects,
        leak,
        events: f.world.sim.dispatched_events(),
    }
}

/// The E1 scenario spec: rogue-gateway count 0–3.
pub fn spec(quick: bool) -> ScenarioSpec {
    let duration_s: u64 = if quick { 10 } else { 30 };
    ScenarioSpec::new(
        "e1_escalation",
        "E1 (Fig.1, §II-D): escalation pushes filtering to the attacker side",
        "Fig. 1, §II-D",
    )
    .expectation(
        "blocker walks B_gw1 -> B_gw2 -> B_gw3 -> peer disconnect as rogue \
         count grows; leak stays tiny throughout.",
    )
    .points((0..=3u64).map(|rogues| {
        Params::new()
            .with("rogue_gws", rogues)
            .with("duration_s", duration_s)
    }))
    .runner(|p, ctx| {
        let o = run_one(
            p.usize("rogue_gws"),
            SimDuration::from_secs(p.u64("duration_s")),
            ctx.seed,
        );
        Outcome::new(
            Params::new()
                .with("blocker", o.blocker)
                .with("client_disconnects", o.client_disconnects)
                .with("peer_disconnects", o.peer_disconnects)
                .with("victim_leak_r", o.leak),
        )
        .with_events(o.events)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_walks_up_the_attacker_side() {
        let d = SimDuration::from_secs(10);
        let o0 = run_one(0, d, 42);
        assert!(o0.blocker.contains("B_gw1"), "{:?}", o0);
        let o1 = run_one(1, d, 43);
        assert!(o1.blocker.contains("B_gw2"), "{:?}", o1);
        let o2 = run_one(2, d, 44);
        assert!(o2.blocker.contains("B_gw3"), "{:?}", o2);
        let o3 = run_one(3, d, 45);
        assert_eq!(o3.peer_disconnects, 1, "{:?}", o3);
        // Every scenario keeps the leak small.
        for o in [o0, o1, o2, o3] {
            assert!(o.leak < 0.12, "leak too high: {:?}", o);
        }
    }
}
