//! E1 — Figure 1 / Section II-D: the escalation rounds.
//!
//! Reproduces the worked example of the paper: `B_host` floods `G_host`
//! across two three-level provider hierarchies. We sweep how many
//! attacker-side gateways refuse to cooperate (0–3) and report where the
//! filtering ends up:
//!
//! - 0 rogue gateways → round 1, blocked at `B_gw1` (the attacker's
//!   gateway), attacker disconnected if it will not stop;
//! - 1 rogue → round 2, blocked at `B_gw2`, which disconnects `B_net`;
//! - 2 rogues → round 3, blocked at `B_gw3`, which disconnects `B_isp`;
//! - 3 rogues → the worst case: `G_gw3` disconnects from `B_gw3`.

use aitf_attack::scenarios::{fig1, Fig1World};
use aitf_attack::FloodSource;
use aitf_core::{AitfConfig, HostPolicy, NetId, RouterPolicy};
use aitf_netsim::SimDuration;

use crate::harness::{fmt_f, leak_ratio, Table};

/// One sweep point's outcome.
#[derive(Debug)]
pub struct Outcome {
    /// How many attacker-side gateways were rogue.
    pub rogues: usize,
    /// Network that ended up holding the long-term filter (name).
    pub blocker: String,
    /// Client disconnections on the attacker side.
    pub client_disconnects: u64,
    /// Peer disconnections at the top (worst case).
    pub peer_disconnects: u64,
    /// Measured leak ratio at the victim.
    pub leak: f64,
}

fn run_one(rogues: usize, duration: SimDuration) -> Outcome {
    let cfg = AitfConfig::default();
    let mut f: Fig1World = fig1(cfg, 42 + rogues as u64, HostPolicy::Malicious);
    let b_side = [f.b_net, f.b_isp, f.b_wan];
    for &net in b_side.iter().take(rogues) {
        f.world
            .router_mut(net)
            .set_policy(RouterPolicy::non_cooperating());
    }
    let target = f.world.host_addr(f.victim);
    f.world
        .add_app(f.attacker, Box::new(FloodSource::new(target, 1000, 500)));
    f.world.sim.run_for(duration);

    // Find the attacker-side network holding a long filter (if any).
    let names: [(&str, NetId); 3] = [
        ("B_gw1 (B_net)", f.b_net),
        ("B_gw2 (B_isp)", f.b_isp),
        ("B_gw3 (B_wan)", f.b_wan),
    ];
    let mut blocker = "none (peer disconnected)".to_string();
    for (name, net) in names {
        if f.world.router(net).counters().filters_installed > 0 {
            blocker = name.to_string();
            break;
        }
    }
    let client_disconnects: u64 = b_side
        .iter()
        .map(|&n| f.world.router(n).counters().disconnects_client)
        .sum();
    let peer_disconnects = f.world.router(f.g_wan).counters().disconnects_peer;
    let leak = leak_ratio(&f.world, f.victim, &[f.attacker]);
    Outcome {
        rogues,
        blocker,
        client_disconnects,
        peer_disconnects,
        leak,
    }
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    let duration = if quick {
        SimDuration::from_secs(10)
    } else {
        SimDuration::from_secs(30)
    };
    let mut table = Table::new(
        "E1 (Fig.1, §II-D): escalation pushes filtering to the attacker side",
        &[
            "rogue gws",
            "blocker",
            "client disconnects",
            "peer disconnects",
            "victim leak r",
        ],
    );
    let mut outcomes = Vec::new();
    for rogues in 0..=3 {
        let o = run_one(rogues, duration);
        table.row_owned(vec![
            o.rogues.to_string(),
            o.blocker.clone(),
            o.client_disconnects.to_string(),
            o.peer_disconnects.to_string(),
            fmt_f(o.leak),
        ]);
        outcomes.push(o);
    }
    table.print();
    println!(
        "paper expectation: blocker walks B_gw1 -> B_gw2 -> B_gw3 -> peer \
         disconnect as rogue count grows; leak stays tiny throughout.\n"
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_walks_up_the_attacker_side() {
        let d = SimDuration::from_secs(10);
        let o0 = run_one(0, d);
        assert!(o0.blocker.contains("B_gw1"), "{:?}", o0);
        let o1 = run_one(1, d);
        assert!(o1.blocker.contains("B_gw2"), "{:?}", o1);
        let o2 = run_one(2, d);
        assert!(o2.blocker.contains("B_gw3"), "{:?}", o2);
        let o3 = run_one(3, d);
        assert_eq!(o3.peer_disconnects, 1, "{:?}", o3);
        // Every scenario keeps the leak small.
        for o in [o0, o1, o2, o3] {
            assert!(o.leak < 0.12, "leak too high: {:?}", o);
        }
    }
}
