//! E15 — host churn mid-attack: leak-ratio recovery across waves.
//!
//! The paper's sweeps hold the zombie army fixed for the whole run; a
//! real botnet churns — machines are cleaned up, fresh ones are
//! recruited, and each *new* host is a brand-new set of undesired flows
//! the victim must pay a fresh `Td + Tr` for. E15 is the first dynamic-
//! world experiment: over the two-level provider tree (E12's shape), the
//! 18 leaf zombies are split into three waves of six. Wave 1 floods from
//! `t = 0`; at each wave boundary the active wave retires
//! ([`ChurnAction::Detach`]) and the next one joins
//! ([`ChurnAction::Attach`] + [`ChurnAction::StartTraffic`]) — an army
//! whose *identity* rotates while its offered load stays constant.
//!
//! Expectation: the victim's attack bandwidth spikes at every wave
//! boundary (new flows, fresh detections) and collapses again within the
//! wave as AITF blocks each new flow at its own provider — leak-ratio
//! *recovery* after every churn event. Every one of the 18 zombies ends
//! the run blocked at its own leaf gateway, and per-provider load stays
//! proportional to that provider's own misbehaving clients (§III-C),
//! churn or no churn.

use aitf_core::{AitfConfig, HostPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{
    ChurnAction, HostSel, ProbeSet, Role, Scenario, Side, TargetSel, TopologySpec, TrafficSpec,
};

use crate::harness::{run_spec, Table};

/// Tree shape (E12's): 2 levels, 3-way branching, 2 hosts per leaf →
/// 18 zombie hosts behind 9 leaf networks and 3 intermediate providers.
const LEVELS: usize = 2;
const BRANCHING: usize = 3;
const HOSTS_PER_LEAF: usize = 2;

/// Waves of churn; the host pool divides evenly across them.
pub const WAVES: usize = 3;

/// Hosts per wave.
pub const WAVE_HOSTS: usize = BRANCHING.pow(LEVELS as u32) * HOSTS_PER_LEAF / WAVES;

/// Per-host flood rate (packets/second) and packet size: each wave offers
/// 6 × 400 pps × 500 B = 9.6 Mbit/s against the victim's 10 Mbit/s tail.
const FLOOD_PPS: u64 = 400;
const FLOOD_SIZE: u32 = 500;

fn wave_sel(wave: usize) -> HostSel {
    HostSel::RoleSlice(Role::Attacker, wave * WAVE_HOSTS, WAVE_HOSTS)
}

fn wave_flood(wave: usize) -> TrafficSpec {
    TrafficSpec::flood(wave_sel(wave), TargetSel::Victim, FLOOD_PPS, FLOOD_SIZE)
}

/// The declarative E15 scenario: three equal waves over a `wave` period
/// each, rotating which third of the army is attached and flooding.
pub fn scenario(wave: SimDuration) -> Scenario {
    let cfg = AitfConfig {
        // As in E10/E13: disconnection would conflate "the flow stopped"
        // with "the churned host stopped"; keep the dynamics pure.
        grace: SimDuration::from_secs(3600),
        ..AitfConfig::default()
    };
    let mut s = Scenario::new(TopologySpec::tree(
        LEVELS,
        BRANCHING,
        HOSTS_PER_LEAF,
        HostPolicy::Malicious,
        10_000_000,
    ))
    .config(cfg)
    .duration(wave * WAVES as u64)
    // Wave 1 is the declarative workload; waves 2 and 3 join at runtime.
    .traffic(wave_flood(0))
    .event(SimDuration::ZERO, ChurnAction::Detach(wave_sel(1)))
    .event(SimDuration::ZERO, ChurnAction::Detach(wave_sel(2)));
    for k in 1..WAVES {
        let at = wave * k as u64;
        s = s
            .event(at, ChurnAction::Detach(wave_sel(k - 1)))
            .event(at, ChurnAction::Attach(wave_sel(k)))
            .event(at, ChurnAction::StartTraffic(wave_flood(k)));
    }
    let wave_s = wave.as_secs_f64();
    s.probes(
        ProbeSet::new()
            .leak_ratio("leak_r")
            .filters_installed_on("blocked_flows", Side::Attacker)
            .bin(SimDuration::from_millis(100))
            .sampled_victim_mbps("_series_attack_mbps", true, |w| {
                w.world.host(w.victim()).counters().rx_attack_bytes
            })
            .summarize(move |store, m| {
                // Per wave: mean attack bandwidth over the onset (first
                // 40% of the wave, covering the churn spike) vs settled
                // (last 40%) windows — recovery means settled << onset.
                for (k, &(onset_name, settled_name)) in WAVE_METRICS.iter().enumerate() {
                    let start = k as f64 * wave_s;
                    let end = start + wave_s;
                    // NaN (empty window) → -1, the "no data" sentinel.
                    let onset =
                        store.window_mean("_series_attack_mbps", start, start + 0.4 * wave_s);
                    let settled = store.window_mean("_series_attack_mbps", end - 0.4 * wave_s, end);
                    m.set(onset_name, if onset.is_nan() { -1.0 } else { onset });
                    m.set(settled_name, if settled.is_nan() { -1.0 } else { settled });
                }
            }),
    )
}

/// Metric names per wave (static, because metric keys are `&'static`).
const WAVE_METRICS: [(&str, &str); WAVES] = [
    ("w1_onset_mbps", "w1_settled_mbps"),
    ("w2_onset_mbps", "w2_settled_mbps"),
    ("w3_onset_mbps", "w3_settled_mbps"),
];

/// Runs one churn-period point.
pub fn run_one(wave: SimDuration, seed: u64) -> Outcome {
    scenario(wave).run(seed)
}

/// The E15 scenario spec: the churn period swept.
pub fn spec(quick: bool) -> ScenarioSpec {
    let wave_ms: &[u64] = if quick { &[2000] } else { &[2000, 4000] };
    ScenarioSpec::new(
        "e15_host_churn",
        "E15 (dynamic worlds): leak recovery as attack hosts churn mid-attack",
        "§III-C under churn",
    )
    .expectation(
        "attack bandwidth at the victim spikes at each wave boundary (new \
         hosts = new flows = fresh Td) and collapses within the wave \
         (wN_settled_mbps << wN_onset_mbps for every wave); all 18 \
         churned zombies end the run blocked at their own providers.",
    )
    .points(wave_ms.iter().map(|&w| {
        Params::new()
            .with("wave_ms", w)
            .with("waves", WAVES as u64)
            .with("wave_hosts", WAVE_HOSTS as u64)
    }))
    .runner(|p, ctx| {
        scenario(SimDuration::from_millis(p.u64("wave_ms")))
            .shards(ctx.shards)
            .run(ctx.seed)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_wave_recovers() {
        let o = run_one(SimDuration::from_secs(2), 51);
        for (onset_name, settled_name) in WAVE_METRICS {
            let onset = o.metrics.f64(onset_name);
            let settled = o.metrics.f64(settled_name);
            assert!(
                onset > 1.0,
                "each wave must actually hit the victim: {onset_name} = {onset} ({o:?})"
            );
            assert!(
                settled < onset * 0.5,
                "each wave must recover: {settled_name} = {settled} vs {onset_name} = {onset}"
            );
        }
    }

    #[test]
    fn all_churned_zombies_end_up_blocked() {
        let o = run_one(SimDuration::from_secs(2), 52);
        assert_eq!(
            o.metrics.u64("blocked_flows"),
            (WAVES * WAVE_HOSTS) as u64,
            "{o:?}"
        );
        assert!(o.metrics.f64("leak_r") < 0.25, "{o:?}");
    }
}
