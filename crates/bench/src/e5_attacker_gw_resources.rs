//! E5 — Sections IV-C/D: filtering close to the attacker.
//!
//! *"If a service provider is allowed to send R2 filtering requests per
//! time unit to a client, then the provider needs `na = R2·T` filters in
//! order to ensure that the client satisfies all the requests"* — and the
//! *client* needs the same `na` filters to comply (Section IV-D). Paper
//! example: R2 = 1/s, T = 1 min → na = 60 filters.
//!
//! One attacker network hosts many zombies, each flooding a distinct
//! victim. Victim requests converge on the zombies' gateway through its
//! provider link, policed at R2. We record the gateway's peak filter
//! occupancy and the zombies' aggregate self-filter occupancy against
//! `na = R2·T`.

use aitf_core::{AitfConfig, Contract};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};

use crate::harness::{run_spec, Table};

/// The declarative E5 scenario: `zombies` compliant zombies in one
/// network, each flooding its own victim, measured over `2·T`.
pub fn scenario(r2: f64, t: SimDuration, zombies: usize) -> Scenario {
    let cfg = AitfConfig {
        t_long: t,
        peer_contract: Contract::new(r2, (r2.ceil() as u32).max(1)),
        client_contract: Contract::new(1000.0, 1000),
        detection_delay: SimDuration::from_millis(10),
        grace: t * 100,
        ..AitfConfig::default()
    };
    let mut topo = TopologySpec::new();
    let wan = topo.net("wan", "10.100.0.0/16", None);
    let v_net = topo.net("v_net", "10.1.0.0/16", Some(wan));
    let b_net = topo.net("b_net", "10.9.0.0/16", Some(wan));
    for _ in 0..zombies {
        topo.host(v_net, Role::Victim);
    }
    // Compliant zombies: they stop when asked, exercising §IV-D's client-
    // side na bound as well.
    for _ in 0..zombies {
        topo.host(b_net, Role::Attacker);
    }
    let na_formula = r2 * t.as_secs_f64();
    Scenario::new(topo)
        .config(cfg)
        .duration(t * 2)
        .traffic(TrafficSpec::flood(
            HostSel::Role(Role::Attacker),
            TargetSel::Paired(Role::Victim),
            50,
            200,
        ))
        .probes(
            ProbeSet::new()
                .end(move |_, m| m.set("na_formula", na_formula))
                .peak_filters("gw_peak", "b_net")
                .end(|w, m| {
                    let clients_peak: usize = w
                        .hosts_with(Role::Attacker)
                        .iter()
                        .map(|&z| w.world.host(z).self_filters().stats().peak_occupancy)
                        .sum();
                    m.set("clients_peak", clients_peak);
                    m.set(
                        "policed",
                        w.world.router(w.net("b_net")).counters().requests_policed,
                    );
                }),
        )
}

/// Runs one `(R2, T)` point with `zombies` concurrent undesired flows.
pub fn run_one(r2: f64, t: SimDuration, zombies: usize, seed: u64) -> Outcome {
    scenario(r2, t, zombies).run(seed)
}

/// The E5 scenario spec: the `(R2, T, zombies)` grid.
pub fn spec(quick: bool) -> ScenarioSpec {
    let points: &[(f64, u64, u64)] = if quick {
        &[(1.0, 10, 30), (2.0, 10, 50)]
    } else {
        &[
            (0.5, 20, 30),
            (1.0, 10, 30),
            (1.0, 30, 60),
            (2.0, 10, 50),
            (2.0, 30, 120),
        ]
    };
    ScenarioSpec::new(
        "e5_attacker_gw_resources",
        "E5 (§IV-C/D): attacker-side filters na = R2*T",
        "§IV-C/D",
    )
    .expectation(
        "the gateway never holds more than ~R2*T filters no matter how many \
         flows are offered (the excess is policed); the compliant clients \
         collectively hold the same bound. Paper example: R2 = 1/s, \
         T = 60 s -> na = 60.",
    )
    .points(points.iter().map(|&(r2, t, zombies)| {
        Params::new()
            .with("r2_per_s", r2)
            .with("t_s", t)
            .with("zombies", zombies)
    }))
    .runner(|p, ctx| {
        scenario(
            p.f64("r2_per_s"),
            SimDuration::from_secs(p.u64("t_s")),
            p.usize("zombies"),
        )
        .shards(ctx.shards)
        .run(ctx.seed)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_filters_bounded_by_r2_t() {
        // 30 offered flows, but R2·T = 10: the gateway must stay near 10.
        let o = run_one(1.0, SimDuration::from_secs(10), 30, 2);
        let na = o.metrics.f64("na_formula");
        assert!(
            (o.metrics.u64("gw_peak") as f64) <= na + 1.0 + 2.0,
            "gateway exceeded na: {o:?}"
        );
        assert!(
            o.metrics.u64("policed") > 0,
            "excess requests must be policed: {o:?}"
        );
    }

    #[test]
    fn clients_hold_at_most_the_same_bound() {
        let o = run_one(1.0, SimDuration::from_secs(10), 30, 3);
        let na = o.metrics.f64("na_formula");
        assert!(
            (o.metrics.u64("clients_peak") as f64) <= na + 1.0 + 2.0,
            "clients exceeded na: {o:?}"
        );
    }

    #[test]
    fn higher_r2_admits_more_filters() {
        let lo = run_one(1.0, SimDuration::from_secs(10), 50, 4);
        let hi = run_one(4.0, SimDuration::from_secs(10), 50, 4);
        assert!(
            hi.metrics.u64("gw_peak") > lo.metrics.u64("gw_peak"),
            "R2 should scale filter admission: {lo:?} vs {hi:?}"
        );
    }
}
