//! E5 — Sections IV-C/D: filtering close to the attacker.
//!
//! *"If a service provider is allowed to send R2 filtering requests per
//! time unit to a client, then the provider needs `na = R2·T` filters in
//! order to ensure that the client satisfies all the requests"* — and the
//! *client* needs the same `na` filters to comply (Section IV-D). Paper
//! example: R2 = 1/s, T = 1 min → na = 60 filters.
//!
//! One attacker network hosts many zombies, each flooding a distinct
//! victim. Victim requests converge on the zombies' gateway through its
//! provider link, policed at R2. We record the gateway's peak filter
//! occupancy and the zombies' aggregate self-filter occupancy against
//! `na = R2·T`.

use aitf_attack::FloodSource;
use aitf_core::{AitfConfig, Contract, HostPolicy, WorldBuilder};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;

use crate::harness::{run_spec, Table};

/// One sweep point's result.
#[derive(Debug)]
pub struct AttackerSidePoint {
    /// Provider→client contract rate R2.
    pub r2: f64,
    /// Horizon T.
    pub t: SimDuration,
    /// Formula `na = R2·T`.
    pub na_formula: f64,
    /// Peak filter occupancy at the attacker's gateway.
    pub na_gateway: usize,
    /// Peak self-filter occupancy across the (compliant) zombies.
    pub na_clients: usize,
    /// Requests dropped by R2 policing at the gateway.
    pub policed: u64,
    /// Simulator events dispatched during the run.
    pub events: u64,
}

/// Runs one `(R2, T)` point with `zombies` concurrent undesired flows.
pub fn run_one(r2: f64, t: SimDuration, zombies: usize, seed: u64) -> AttackerSidePoint {
    let cfg = AitfConfig {
        t_long: t,
        peer_contract: Contract::new(r2, (r2.ceil() as u32).max(1)),
        client_contract: Contract::new(1000.0, 1000),
        detection_delay: SimDuration::from_millis(10),
        grace: t * 100,
        ..AitfConfig::default()
    };
    let mut b = WorldBuilder::new(seed, cfg);
    let wan = b.network("wan", "10.100.0.0/16", None);
    let v_net = b.network("v_net", "10.1.0.0/16", Some(wan));
    let b_net = b.network("b_net", "10.9.0.0/16", Some(wan));
    let victims: Vec<_> = (0..zombies).map(|_| b.host(v_net)).collect();
    // Compliant zombies: they stop when asked, exercising §IV-D's client-
    // side na bound as well.
    let zs: Vec<_> = (0..zombies)
        .map(|_| {
            b.host_with(
                b_net,
                HostPolicy::Compliant,
                WorldBuilder::default_host_link(),
            )
        })
        .collect();
    let mut w = b.build();
    for (i, &z) in zs.iter().enumerate() {
        let target = w.host_addr(victims[i]);
        w.add_app(z, Box::new(FloodSource::new(target, 50, 200)));
    }
    w.sim.run_for(t * 2);

    let gw = w.router(b_net);
    let na_gateway = gw.filters().stats().peak_occupancy;
    let policed = gw.counters().requests_policed;
    let na_clients = zs
        .iter()
        .map(|&z| w.host(z).self_filters().stats().peak_occupancy)
        .sum();
    AttackerSidePoint {
        r2,
        t,
        na_formula: r2 * t.as_secs_f64(),
        na_gateway,
        na_clients,
        policed,
        events: w.sim.dispatched_events(),
    }
}

/// The E5 scenario spec: the `(R2, T, zombies)` grid.
pub fn spec(quick: bool) -> ScenarioSpec {
    let points: &[(f64, u64, u64)] = if quick {
        &[(1.0, 10, 30), (2.0, 10, 50)]
    } else {
        &[
            (0.5, 20, 30),
            (1.0, 10, 30),
            (1.0, 30, 60),
            (2.0, 10, 50),
            (2.0, 30, 120),
        ]
    };
    ScenarioSpec::new(
        "e5_attacker_gw_resources",
        "E5 (§IV-C/D): attacker-side filters na = R2*T",
        "§IV-C/D",
    )
    .expectation(
        "the gateway never holds more than ~R2*T filters no matter how many \
         flows are offered (the excess is policed); the compliant clients \
         collectively hold the same bound. Paper example: R2 = 1/s, \
         T = 60 s -> na = 60.",
    )
    .points(points.iter().map(|&(r2, t, zombies)| {
        Params::new()
            .with("r2_per_s", r2)
            .with("t_s", t)
            .with("zombies", zombies)
    }))
    .runner(|p, ctx| {
        let o = run_one(
            p.f64("r2_per_s"),
            SimDuration::from_secs(p.u64("t_s")),
            p.usize("zombies"),
            ctx.seed,
        );
        Outcome::new(
            Params::new()
                .with("na_formula", o.na_formula)
                .with("gw_peak", o.na_gateway)
                .with("clients_peak", o.na_clients)
                .with("policed", o.policed),
        )
        .with_events(o.events)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_filters_bounded_by_r2_t() {
        // 30 offered flows, but R2·T = 10: the gateway must stay near 10.
        let p = run_one(1.0, SimDuration::from_secs(10), 30, 2);
        assert!(
            (p.na_gateway as f64) <= p.na_formula + p.r2.ceil() + 2.0,
            "gateway exceeded na: {p:?}"
        );
        assert!(p.policed > 0, "excess requests must be policed: {p:?}");
    }

    #[test]
    fn clients_hold_at_most_the_same_bound() {
        let p = run_one(1.0, SimDuration::from_secs(10), 30, 3);
        assert!(
            (p.na_clients as f64) <= p.na_formula + p.r2.ceil() + 2.0,
            "clients exceeded na: {p:?}"
        );
    }

    #[test]
    fn higher_r2_admits_more_filters() {
        let lo = run_one(1.0, SimDuration::from_secs(10), 50, 4);
        let hi = run_one(4.0, SimDuration::from_secs(10), 50, 4);
        assert!(
            hi.na_gateway > lo.na_gateway,
            "R2 should scale filter admission: {lo:?} vs {hi:?}"
        );
    }
}
