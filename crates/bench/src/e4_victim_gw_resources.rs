//! E4 — Section IV-B: filtering close to the victim.
//!
//! *"If a client is allowed to send R1 filtering requests per time unit to
//! the provider, the provider needs `nv = R1·Ttmp` filters and a DRAM
//! cache that can fit `mv = R1·T` filtering requests."* (Paper example:
//! R1 = 100/s, handshake-sized Ttmp → nv = 60 filters protect against
//! Nv = 6000 flows.)
//!
//! A spoofing zombie generates a continuous stream of *new* undesired
//! flows; the victim requests blocks at its full contract rate. We record
//! the victim-gateway's **peak filter occupancy** (should track `R1·Ttmp`)
//! and **peak shadow occupancy** (should track `R1·T`) across a sweep of
//! `(R1, Ttmp, T)`.

use aitf_core::{AitfConfig, Contract, HostPolicy};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;
use aitf_scenario::{HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};

use crate::harness::{run_spec, Table};

/// The declarative E4 scenario: one spoofing zombie against one victim
/// behind a shared `wan`, measured over `2·T`.
pub fn scenario(r1: f64, t_tmp: SimDuration, t: SimDuration) -> Scenario {
    let cfg = AitfConfig {
        t_long: t,
        t_tmp,
        client_contract: Contract::new(r1, (r1 / 10.0).ceil().max(1.0) as u32),
        // Attacker side absorbs everything so the victim side is measured.
        peer_contract: Contract::new(10_000.0, 10_000),
        detection_delay: SimDuration::from_millis(1),
        grace: t * 100,
        ..AitfConfig::default()
    };
    let mut topo = TopologySpec::new();
    let wan = topo.net("wan", "10.100.0.0/16", None);
    let g_net = topo.net("g_net", "10.1.0.0/16", Some(wan));
    let b_net = topo.net("b_net", "10.9.0.0/16", Some(wan));
    topo.host(g_net, Role::Victim);
    // The zombie's gateway does not ingress-filter intra-prefix spoofs, so
    // they stream out as an endless supply of fresh undesired flows.
    topo.host_with(
        b_net,
        Role::Attacker,
        HostPolicy::Malicious,
        aitf_core::WorldBuilder::default_host_link(),
    );
    // New flows appear at 2×R1 so the victim's bucket, not the supply, is
    // the limit; the pool is large enough never to repeat within T.
    let pool: aitf_packet::Prefix = "10.9.128.0/17".parse().expect("valid prefix");
    let pps = (2.0 * r1).max(10.0) as u64;
    let (nv_formula, mv_formula) = (r1 * t_tmp.as_secs_f64(), r1 * t.as_secs_f64());
    Scenario::new(topo)
        .config(cfg)
        .duration(t * 2)
        .traffic(TrafficSpec::spoof(
            HostSel::Role(Role::Attacker),
            TargetSel::Victim,
            pps,
            100,
            pool,
            30_000,
        ))
        .probes(
            ProbeSet::new()
                .end(move |_, m| m.set("nv_formula", nv_formula))
                .peak_filters("nv_peak", "g_net")
                .end(move |_, m| m.set("mv_formula", mv_formula))
                .peak_shadows("mv_peak", "g_net"),
        )
}

/// Runs one `(R1, Ttmp, T)` point.
pub fn run_one(r1: f64, t_tmp: SimDuration, t: SimDuration, seed: u64) -> Outcome {
    scenario(r1, t_tmp, t).run(seed)
}

/// The E4 scenario spec: the `(R1, Ttmp, T)` grid.
pub fn spec(quick: bool) -> ScenarioSpec {
    let points: &[(f64, u64, u64)] = if quick {
        &[(20.0, 1, 10), (50.0, 1, 10)]
    } else {
        &[
            (20.0, 1, 10),
            (50.0, 1, 10),
            (50.0, 2, 20),
            (100.0, 1, 30),
            (100.0, 2, 30),
        ]
    };
    ScenarioSpec::new(
        "e4_victim_gw_resources",
        "E4 (§IV-B): victim-gateway resources nv = R1*Ttmp, mv = R1*T",
        "§IV-B",
    )
    .expectation(
        "peak filters track R1*Ttmp (temporary filters recycle), peak \
         shadows track R1*T; nv << mv, which is the whole DRAM-vs-filters \
         economy. Paper example: 60 filters vs 6000 shadows.",
    )
    .points(points.iter().map(|&(r1, ttmp, t)| {
        Params::new()
            .with("r1_per_s", r1)
            .with("ttmp_s", ttmp)
            .with("t_s", t)
    }))
    .runner(|p, ctx| {
        scenario(
            p.f64("r1_per_s"),
            SimDuration::from_secs(p.u64("ttmp_s")),
            SimDuration::from_secs(p.u64("t_s")),
        )
        .shards(ctx.shards)
        .run(ctx.seed)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peaks(o: &Outcome) -> (f64, f64, f64, f64) {
        (
            o.metrics.f64("nv_formula"),
            o.metrics.u64("nv_peak") as f64,
            o.metrics.f64("mv_formula"),
            o.metrics.u64("mv_peak") as f64,
        )
    }

    #[test]
    fn filter_peak_tracks_r1_ttmp() {
        let o = run_one(
            20.0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(10),
            3,
        );
        let (nv_formula, nv_peak, ..) = peaks(&o);
        // Peak occupancy within a factor ~2 of the formula and far below mv.
        assert!(nv_peak <= nv_formula * 2.5 + 5.0, "nv peak too high: {o:?}");
        assert!(
            nv_peak >= nv_formula * 0.3,
            "nv peak suspiciously low: {o:?}"
        );
    }

    #[test]
    fn shadow_peak_tracks_r1_t() {
        let o = run_one(
            20.0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(10),
            4,
        );
        let (.., mv_formula, mv_peak) = peaks(&o);
        assert!(
            mv_peak <= mv_formula * 1.5 + 10.0,
            "mv peak too high: {o:?}"
        );
        assert!(
            mv_peak >= mv_formula * 0.4,
            "mv peak suspiciously low: {o:?}"
        );
    }

    #[test]
    fn filters_are_a_small_fraction_of_shadows() {
        let o = run_one(
            50.0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(20),
            5,
        );
        assert!(
            o.metrics.u64("nv_peak") * 4 < o.metrics.u64("mv_peak"),
            "nv must be << mv: {o:?}"
        );
    }
}
