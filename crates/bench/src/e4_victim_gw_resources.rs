//! E4 — Section IV-B: filtering close to the victim.
//!
//! *"If a client is allowed to send R1 filtering requests per time unit to
//! the provider, the provider needs `nv = R1·Ttmp` filters and a DRAM
//! cache that can fit `mv = R1·T` filtering requests."* (Paper example:
//! R1 = 100/s, handshake-sized Ttmp → nv = 60 filters protect against
//! Nv = 6000 flows.)
//!
//! A spoofing zombie generates a continuous stream of *new* undesired
//! flows; the victim requests blocks at its full contract rate. We record
//! the victim-gateway's **peak filter occupancy** (should track `R1·Ttmp`)
//! and **peak shadow occupancy** (should track `R1·T`) across a sweep of
//! `(R1, Ttmp, T)`.

use aitf_attack::SpoofingFlood;
use aitf_core::{AitfConfig, Contract, HostPolicy, WorldBuilder};
use aitf_engine::{Outcome, Params, ScenarioSpec};
use aitf_netsim::SimDuration;

use crate::harness::{run_spec, Table};

/// One sweep point's result.
#[derive(Debug)]
pub struct ResourcePoint {
    /// Client contract rate R1.
    pub r1: f64,
    /// Temporary filter lifetime Ttmp.
    pub t_tmp: SimDuration,
    /// Horizon T.
    pub t: SimDuration,
    /// Formula `nv = R1·Ttmp`.
    pub nv_formula: f64,
    /// Measured peak filter occupancy at the victim's gateway.
    pub nv_measured: usize,
    /// Formula `mv = R1·T`.
    pub mv_formula: f64,
    /// Measured peak shadow occupancy at the victim's gateway.
    pub mv_measured: usize,
    /// Simulator events dispatched during the run.
    pub events: u64,
}

/// Runs one `(R1, Ttmp, T)` point.
pub fn run_one(r1: f64, t_tmp: SimDuration, t: SimDuration, seed: u64) -> ResourcePoint {
    let cfg = AitfConfig {
        t_long: t,
        t_tmp,
        client_contract: Contract::new(r1, (r1 / 10.0).ceil().max(1.0) as u32),
        // Attacker side absorbs everything so the victim side is measured.
        peer_contract: Contract::new(10_000.0, 10_000),
        detection_delay: SimDuration::from_millis(1),
        grace: t * 100,
        ..AitfConfig::default()
    };
    let mut b = WorldBuilder::new(seed, cfg);
    let wan = b.network("wan", "10.100.0.0/16", None);
    let g_net = b.network("g_net", "10.1.0.0/16", Some(wan));
    let b_net = b.network("b_net", "10.9.0.0/16", Some(wan));
    let victim = b.host(g_net);
    // The zombie's gateway does not ingress-filter, so intra-prefix spoofs
    // stream out as an endless supply of fresh undesired flows.
    let zombie = b.host_with(
        b_net,
        HostPolicy::Malicious,
        WorldBuilder::default_host_link(),
    );
    let mut w = b.build();
    let target = w.host_addr(victim);
    // New flows appear at 2×R1 so the victim's bucket, not the supply, is
    // the limit; the pool is large enough never to repeat within T.
    let pool: aitf_packet::Prefix = "10.9.128.0/17".parse().expect("valid prefix");
    let pps = (2.0 * r1).max(10.0) as u64;
    w.add_app(
        zombie,
        Box::new(SpoofingFlood::new(target, pps, 100, pool, 30_000)),
    );
    w.sim.run_for(t * 2);

    let events = w.sim.dispatched_events();
    let gw = w.router(g_net);
    ResourcePoint {
        r1,
        t_tmp,
        t,
        nv_formula: r1 * t_tmp.as_secs_f64(),
        nv_measured: gw.filters().stats().peak_occupancy,
        mv_formula: r1 * t.as_secs_f64(),
        mv_measured: gw.shadow().stats().peak_occupancy,
        events,
    }
}

/// The E4 scenario spec: the `(R1, Ttmp, T)` grid.
pub fn spec(quick: bool) -> ScenarioSpec {
    let points: &[(f64, u64, u64)] = if quick {
        &[(20.0, 1, 10), (50.0, 1, 10)]
    } else {
        &[
            (20.0, 1, 10),
            (50.0, 1, 10),
            (50.0, 2, 20),
            (100.0, 1, 30),
            (100.0, 2, 30),
        ]
    };
    ScenarioSpec::new(
        "e4_victim_gw_resources",
        "E4 (§IV-B): victim-gateway resources nv = R1*Ttmp, mv = R1*T",
        "§IV-B",
    )
    .expectation(
        "peak filters track R1*Ttmp (temporary filters recycle), peak \
         shadows track R1*T; nv << mv, which is the whole DRAM-vs-filters \
         economy. Paper example: 60 filters vs 6000 shadows.",
    )
    .points(points.iter().map(|&(r1, ttmp, t)| {
        Params::new()
            .with("r1_per_s", r1)
            .with("ttmp_s", ttmp)
            .with("t_s", t)
    }))
    .runner(|p, ctx| {
        let o = run_one(
            p.f64("r1_per_s"),
            SimDuration::from_secs(p.u64("ttmp_s")),
            SimDuration::from_secs(p.u64("t_s")),
            ctx.seed,
        );
        Outcome::new(
            Params::new()
                .with("nv_formula", o.nv_formula)
                .with("nv_peak", o.nv_measured)
                .with("mv_formula", o.mv_formula)
                .with("mv_peak", o.mv_measured),
        )
        .with_events(o.events)
    })
}

/// Runs the sweep and prints the table.
pub fn run(quick: bool) -> Table {
    run_spec(&spec(quick), quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_peak_tracks_r1_ttmp() {
        let p = run_one(
            20.0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(10),
            3,
        );
        // Peak occupancy within a factor ~2 of the formula and far below mv.
        assert!(
            (p.nv_measured as f64) <= p.nv_formula * 2.5 + 5.0,
            "nv peak too high: {p:?}"
        );
        assert!(
            (p.nv_measured as f64) >= p.nv_formula * 0.3,
            "nv peak suspiciously low: {p:?}"
        );
    }

    #[test]
    fn shadow_peak_tracks_r1_t() {
        let p = run_one(
            20.0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(10),
            4,
        );
        assert!(
            (p.mv_measured as f64) <= p.mv_formula * 1.5 + 10.0,
            "mv peak too high: {p:?}"
        );
        assert!(
            (p.mv_measured as f64) >= p.mv_formula * 0.4,
            "mv peak suspiciously low: {p:?}"
        );
    }

    #[test]
    fn filters_are_a_small_fraction_of_shadows() {
        let p = run_one(
            50.0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(20),
            5,
        );
        assert!(p.nv_measured * 4 < p.mv_measured, "nv must be << mv: {p:?}");
    }
}
