//! Equivalence suite: pins the quick-mode `RunRecord`s of every registered
//! experiment bit-identically against a committed fixture.
//!
//! The E1–E11 + figures lines were captured from the pre-`aitf-scenario`
//! experiment code (each experiment hand-rolling its `WorldBuilder` +
//! `aitf-attack` setup); the declarative ports must reproduce the exact
//! same records — same params, same metrics (every f64 bit), same seeds,
//! same simulator event counts — at any thread count. Experiments born on
//! the new API (E12 onward) are pinned from their introduction.
//! `deterministic_eq`'s fields are exactly what the rendered lines
//! contain; wall time is excluded.
//!
//! Refresh intentionally (for a *semantic* change, never to paper over
//! drift) with:
//!
//! ```text
//! UPDATE_EQUIVALENCE_FIXTURE=1 cargo test -p aitf-bench --test equivalence
//! ```
//!
//! Setting `AITF_EQUIV_SHARDS=K` runs every scenario on a K-shard event
//! loop against the *same* fixture: sharding is a pure execution strategy,
//! so the records must stay byte-identical. CI runs the suite once plain
//! and once at `AITF_EQUIV_SHARDS=4`.

use std::fmt::Write as _;

use aitf_engine::Runner;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/quick_records.tsv"
);

/// Renders the whole quick suite as stable, diff-friendly lines. JSON
/// float rendering is Rust's shortest round-trip form, so equal lines
/// imply bit-equal `f64`s — string equality here is `deterministic_eq`.
fn render_quick_suite(threads: usize) -> String {
    let shards: usize = std::env::var("AITF_EQUIV_SHARDS")
        .ok()
        .map(|v| v.parse().expect("AITF_EQUIV_SHARDS must be an integer"))
        .unwrap_or(1);
    let registry = aitf_bench::registry(true);
    let grouped = Runner::new(threads)
        .quick(true)
        .base_seed(aitf_engine::DEFAULT_BASE_SEED)
        .shards(shards)
        .run_all(registry.specs());
    let mut out = String::new();
    for records in &grouped {
        for r in records {
            writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}\t{}",
                r.experiment,
                r.index,
                r.seed,
                r.events,
                r.params.to_json(),
                r.metrics.to_json(),
            )
            .expect("write to String cannot fail");
        }
    }
    out
}

#[test]
fn quick_suite_records_match_pre_port_baseline() {
    let current = render_quick_suite(2);
    if std::env::var_os("UPDATE_EQUIVALENCE_FIXTURE").is_some() {
        std::fs::write(FIXTURE, &current).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing; regenerate with UPDATE_EQUIVALENCE_FIXTURE=1");
    let expected_lines: Vec<&str> = expected.lines().collect();
    let current_lines: Vec<&str> = current.lines().collect();
    for (i, (want, got)) in expected_lines.iter().zip(&current_lines).enumerate() {
        assert_eq!(
            want,
            got,
            "record {} drifted from the pre-port baseline (fixture line {})",
            i,
            i + 1
        );
    }
    assert_eq!(
        expected_lines.len(),
        current_lines.len(),
        "record count changed vs the pre-port baseline"
    );
}
