//! CLI behaviour of the `all_experiments` driver: a `--filter` that
//! matches nothing must fail loudly (listing the known experiment ids and
//! exiting non-zero), even when other filters do match.

use std::process::Command;

fn driver() -> Command {
    Command::new(env!("CARGO_BIN_EXE_all_experiments"))
}

#[test]
fn unmatched_filter_lists_ids_and_exits_nonzero() {
    let out = driver()
        .args(["--quick", "--filter", "no_such_experiment"])
        .output()
        .expect("run all_experiments");
    assert!(!out.status.success(), "dead filter must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no_such_experiment"),
        "names the dead filter: {stderr}"
    );
    assert!(
        stderr.contains("known ids:") && stderr.contains("e1_escalation"),
        "lists the known ids: {stderr}"
    );
}

#[test]
fn dead_filter_fails_even_next_to_a_live_one() {
    let out = driver()
        .args(["--quick", "--filter", "e6", "--filter", "zzz_nope"])
        .output()
        .expect("run all_experiments");
    assert!(
        !out.status.success(),
        "a partially-dead filter set must not silently shrink"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("zzz_nope"), "{stderr}");
}

#[test]
fn matching_filter_still_runs() {
    let out = driver()
        .args(["--quick", "--filter", "e6", "--threads", "2"])
        .output()
        .expect("run all_experiments");
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("e6_handshake_security") || stdout.contains("E6"),
        "{stdout}"
    );
}
