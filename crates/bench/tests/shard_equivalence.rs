//! Shard-count equivalence: the sharded conservative-lookahead event loop
//! is a pure execution strategy, so a scenario run at any shard count must
//! produce `RunRecord`s that are `deterministic_eq` to the classic
//! single-threaded loop — every metric f64 bit, every event count.
//!
//! Three representative experiments cover the partitioner's regimes:
//!
//! - **E1** (Figure 1 chain pair): deep chains with rogue (non-cooperating)
//!   gateways, which the shard hints merge into their provider's group;
//! - **E10** (scaling star): many single-host networks around a hub, plus
//!   the pushback backend's hint fallback (no `BorderRouter` to downcast);
//! - **E16** (deployment mix): seed-derived cooperating/legacy assignment,
//!   so group merging changes per point.

use aitf_engine::{Runner, ScenarioSpec};

fn assert_shard_invariant(spec: &ScenarioSpec) {
    let run = |shards: usize| {
        Runner::new(1)
            .quick(true)
            .base_seed(aitf_engine::DEFAULT_BASE_SEED)
            .shards(shards)
            .run(spec)
    };
    let single = run(1);
    for shards in [2, 4] {
        let sharded = run(shards);
        assert_eq!(single.len(), sharded.len());
        for (s, k) in single.iter().zip(&sharded) {
            assert!(
                s.deterministic_eq(k),
                "{} point {} drifted at {} shards:\n  1 shard : {}\n  {} shards: {}",
                spec.id,
                s.index,
                shards,
                s.to_json(),
                shards,
                k.to_json(),
            );
            assert_eq!(k.shards, shards, "record must carry its shard count");
        }
    }
}

#[test]
fn e1_escalation_is_shard_invariant() {
    assert_shard_invariant(&aitf_bench::e1_escalation::spec(true));
}

#[test]
fn e10_scaling_is_shard_invariant() {
    assert_shard_invariant(&aitf_bench::e10_scaling::spec(true));
}

#[test]
fn e16_deployment_incentive_is_shard_invariant() {
    assert_shard_invariant(&aitf_bench::e16_deployment_incentive::spec(true));
}
