//! Zero-cost guarantee for the tracing facade with the feature **off**.
//!
//! The instrumented call sites (router spans, subsystem classification,
//! loop wall buckets) are compiled against no-op stubs in default builds.
//! This test pins the strong half of that claim on the same chain world
//! as the `event_dispatch` microbench: **zero heap allocations per
//! dispatched event** in steady state, and bit-identical event counts run
//! to run. The throughput half (events/sec within noise of the untraced
//! seed) is ratcheted by `tools/bench_compare`'s variance-aware wall gate
//! against the committed baseline, which was refreshed on this build.
//!
//! Compiled out under `--features trace` — with recording on, spans do
//! allocate by design.

#![cfg(not(feature = "trace"))]

use aitf_netsim::{
    impl_node_any, Context, LinkId, LinkParams, NetworkBuilder, Node, SimDuration, Simulator,
};
use aitf_packet::alloc_probe::CountingAlloc;
use aitf_packet::{Addr, Header, Packet, TrafficClass};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Steady packet source, re-armed by timer (the suite's traffic shape).
struct Source {
    dst: Addr,
    gap: SimDuration,
}

impl Node for Source {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.gap, 0);
    }

    fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
        let id = ctx.next_packet_id();
        let h = Header::udp(Addr::new(10, 0, 0, 1), self.dst, 7, 9);
        let link = ctx.my_links()[0];
        ctx.send(link, Packet::data(id, h, TrafficClass::Attack, 600));
        ctx.set_timer(self.gap, 0);
    }

    impl_node_any!();
}

/// Forwards every arrival out of its other link, stamping the route
/// record like a border router's data plane.
struct Relay {
    addr: Addr,
}

impl Node for Relay {
    fn on_packet(&mut self, mut packet: Packet, link: LinkId, ctx: &mut Context<'_>) {
        packet.header.ttl = match packet.header.ttl.checked_sub(1) {
            Some(t) if t > 0 => t,
            _ => return,
        };
        let _ = packet.route_record.push(self.addr);
        for i in 0..ctx.my_links().len() {
            let l = ctx.my_links()[i];
            if l != link {
                ctx.send(l, packet);
                return;
            }
        }
    }

    impl_node_any!();
}

struct Sink;

impl Node for Sink {
    fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}

    impl_node_any!();
}

/// Source → relay × `hops` → sink over finite links, as in the bench.
fn chain(hops: usize) -> Simulator {
    let mut b = NetworkBuilder::new(0xD15);
    let src = b.add_node();
    let relays: Vec<_> = (0..hops).map(|_| b.add_node()).collect();
    let sink = b.add_node();
    let params = LinkParams::ethernet(100_000_000, SimDuration::from_micros(50));
    let mut prev = src;
    for &r in &relays {
        b.connect(prev, r, params);
        prev = r;
    }
    b.connect(prev, sink, params);
    let mut sim = b.build();
    sim.install(
        src,
        Box::new(Source {
            dst: Addr::new(10, 0, 0, 99),
            gap: SimDuration::from_micros(100),
        }),
    );
    for (i, &r) in relays.iter().enumerate() {
        sim.install(
            r,
            Box::new(Relay {
                addr: Addr::new(10, 1, i as u8, 254),
            }),
        );
    }
    sim.install(sink, Box::new(Sink));
    sim
}

// ----------------------------------------------------------------------
// The same guarantee over the real router, once per defense policy: after
// the blocking phase settles, every hook chain's steady state — wire
// drops, prefix policing, stamp checks, control-plane vetoes — must
// dispatch without touching the heap.
// ----------------------------------------------------------------------

use aitf_core::{AitfConfig, DefensePolicy, HostPolicy, WorldBuilder};
use aitf_packet::Protocol;

/// Steady flood as a host app (mirrors aitf-attack's FloodSource without
/// the dependency).
struct HostFlood {
    target: Addr,
    period: SimDuration,
}

impl aitf_core::TrafficApp for HostFlood {
    fn on_start(&mut self, api: &mut aitf_core::HostApi<'_, '_>) {
        api.set_timer(self.period, 0);
    }

    fn on_timer(&mut self, _t: u32, api: &mut aitf_core::HostApi<'_, '_>) {
        api.send_from_self(self.target, Protocol::Udp, 80, TrafficClass::Attack, 500);
        api.set_timer(self.period, 0);
    }
}

/// A two-zombie star flooding one victim, every router running `policy`.
/// Long timers keep installs/expiries/disconnections out of the probe
/// window: after warm-up the defense is pure per-packet work.
fn policy_world(policy: DefensePolicy) -> aitf_core::World {
    let cfg = AitfConfig {
        defense: policy,
        t_long: SimDuration::from_secs(600),
        grace: SimDuration::from_secs(3600),
        ..AitfConfig::default()
    };
    let mut b = WorldBuilder::new(0xE19, cfg);
    let wan = b.network("wan", "10.100.0.0/16", None);
    let g = b.network("g", "10.1.0.0/16", Some(wan));
    let z0 = b.network("z0", "10.2.0.0/16", Some(wan));
    let z1 = b.network("z1", "10.3.0.0/16", Some(wan));
    let v = b.host(g);
    let a0 = b.host_with(z0, HostPolicy::Malicious, WorldBuilder::default_host_link());
    let a1 = b.host_with(z1, HostPolicy::Malicious, WorldBuilder::default_host_link());
    let mut w = b.build();
    let target = w.host_addr(v);
    for a in [a0, a1] {
        w.add_app(
            a,
            Box::new(HostFlood {
                target,
                period: SimDuration::from_micros(100),
            }),
        );
    }
    w
}

#[test]
fn every_defense_policy_dispatches_alloc_free_in_steady_state() {
    for policy in DefensePolicy::BAKEOFF {
        let mut w = policy_world(policy);
        // Warm-up: detection, escalation/propagation and filter installs
        // all complete; maps and queues reach high-water capacity.
        w.sim.run_for(SimDuration::from_secs(4));
        let ev0 = w.sim.dispatched_events();
        let ((), allocs) = CountingAlloc::count(|| w.sim.run_for(SimDuration::from_secs(15)));
        let events = w.sim.dispatched_events() - ev0;
        assert!(
            events >= 300_000,
            "{}: the probe window must be non-trivial ({events} events)",
            policy.name()
        );
        assert_eq!(
            allocs,
            0,
            "{}: steady-state dispatch allocated ({allocs} allocs over {events} events)",
            policy.name()
        );
    }
}

#[test]
fn disabled_tracing_dispatches_with_zero_allocations_per_event() {
    let mut sim = chain(8);
    // Warm-up: queues, slabs and heap reach their high-water capacity.
    sim.run_for(SimDuration::from_secs(2));
    let ev0 = sim.dispatched_events();
    let ((), allocs) = CountingAlloc::count(|| sim.run_for(SimDuration::from_secs(8)));
    let events = sim.dispatched_events() - ev0;
    assert!(events > 100_000, "the probe window must be non-trivial");
    assert_eq!(
        allocs, 0,
        "steady-state dispatch allocated with tracing compiled out \
         ({allocs} allocs over {events} events)"
    );
    // And the profile accessor confirms nothing was recorded.
    assert_eq!(sim.subsystem_profile().total_events(), 0);
    assert_eq!(sim.subsystem_profile().loop_nanos(), 0);
}

#[test]
fn disabled_tracing_leaves_dispatch_deterministic() {
    let run = || {
        let mut sim = chain(8);
        sim.run_for(SimDuration::from_secs(3));
        sim.dispatched_events()
    };
    assert_eq!(run(), run(), "event counts must be bit-stable run to run");
}
