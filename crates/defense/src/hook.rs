//! Hook points, stage traits and the DAG-ordered chain builder.

use aitf_netsim::{Context, LinkId};
use aitf_packet::Packet;

use crate::error::DefenseError;

/// The three decision boundaries of a border-router datapath.
///
/// - **Ingress** runs on every packet entering the forwarding path,
///   before any routing decision: spoofing checks, wire-speed filters,
///   reactivation triggers, rate policing. Read stages here veto packets.
/// - **Escalate** runs on control traffic addressed to the router itself:
///   filtering-request admission, role dispatch, pushback propagation.
/// - **Egress** runs on packets that passed ingress, just before the
///   route lookup and transmit: TTL accounting, route-record stamping.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Hook {
    /// Packet entering the forwarding path.
    Ingress,
    /// Control message addressed to this router.
    Escalate,
    /// Packet leaving towards the next hop.
    Egress,
}

impl Hook {
    /// Stable lower-case name (used in errors and docs).
    pub fn name(self) -> &'static str {
        match self {
            Hook::Ingress => "ingress",
            Hook::Escalate => "escalate",
            Hook::Egress => "egress",
        }
    }
}

/// What a read stage decided about the packet under inspection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Hand the packet to the next stage in the chain.
    Continue,
    /// Stop processing; the packet does not travel further. The stage
    /// has already done any accounting (counters, notices) it owes.
    Drop,
}

impl Verdict {
    /// `true` for [`Verdict::Drop`].
    pub fn is_drop(self) -> bool {
        matches!(self, Verdict::Drop)
    }
}

/// A stage's identity inside its hook chain: a unique name plus the
/// names of stages that must run before it.
#[derive(Clone, Copy, Debug)]
pub struct StageDecl {
    /// Unique (per hook chain) stage name.
    pub name: &'static str,
    /// Stages that must be ordered before this one.
    pub after: &'static [&'static str],
}

/// Identity every stage type declares; [`ReadStage`] and [`WriteStage`]
/// both require it so `ChainBuilder::stage` can read the declaration
/// from the type alone.
pub trait Stage {
    /// Unique (per hook chain) stage name.
    const NAME: &'static str;
    /// Stages that must run before this one. Empty means "anywhere".
    const AFTER: &'static [&'static str] = &[];
}

/// A read stage: inspects the packet, may veto with [`Verdict::Drop`].
///
/// `S` is the router state the stage operates on. The borrow is mutable
/// because read stages do real accounting — bump drop counters, refresh
/// caches, arm escalations — but the *packet* borrow is shared: a read
/// stage can never alter what travels on.
pub trait ReadStage<S: ?Sized>: Stage {
    /// Inspect `packet` as it traverses the hook; dropping it is the
    /// stage's responsibility to account for.
    fn inspect(state: &mut S, packet: &Packet, arrival: LinkId, ctx: &mut Context<'_>) -> Verdict;
}

/// A write stage: mutates the packet and/or router state. Write stages
/// cannot veto — a stage that needs both splits into a read stage
/// (the check) ordered `after` nothing and a write stage (the mutation)
/// ordered after it.
pub trait WriteStage<S: ?Sized>: Stage {
    /// Transform `packet` in place.
    fn apply(state: &mut S, packet: &mut Packet, arrival: LinkId, ctx: &mut Context<'_>);
}

/// One registered stage while the chain is under construction.
#[derive(Clone, Debug)]
struct Entry<K> {
    name: &'static str,
    after: Vec<&'static str>,
    id: K,
}

/// Collects stage declarations for one hook and resolves their `after`
/// DAG into a deterministic total order.
///
/// `K` is the caller's stage id — in practice a small `Copy` enum the
/// router `match`es on at dispatch time, which is what keeps the hot
/// path statically dispatched and allocation-free.
#[derive(Clone, Debug)]
pub struct ChainBuilder<K> {
    hook: Hook,
    entries: Vec<Entry<K>>,
}

impl<K: Copy> ChainBuilder<K> {
    /// An empty chain for `hook`.
    pub fn new(hook: Hook) -> Self {
        ChainBuilder {
            hook,
            entries: Vec::new(),
        }
    }

    /// Registers stage type `T` under id `id`, reading name and
    /// dependencies from the trait declaration.
    pub fn stage<T: Stage>(self, id: K) -> Self {
        self.push(T::NAME, T::AFTER, id)
    }

    /// Registers a stage from explicit name/dependency data (the dynamic
    /// form `ChainBuilder::stage` delegates to; also what the property
    /// tests drive directly).
    pub fn push(mut self, name: &'static str, after: &[&'static str], id: K) -> Self {
        self.entries.push(Entry {
            name,
            after: after.to_vec(),
            id,
        });
        self
    }

    /// Resolves the dependency DAG into a [`Chain`].
    ///
    /// The order is a deterministic topological sort: among the stages
    /// whose dependencies are all placed, the earliest-declared one goes
    /// next. Declaring a chain twice therefore always yields the same
    /// order — chain order can never depend on hash-map iteration or
    /// scheduling.
    pub fn build(self) -> Result<Chain<K>, DefenseError> {
        let hook = self.hook;
        // Duplicate names make `after` references ambiguous; reject first.
        for (i, e) in self.entries.iter().enumerate() {
            if self.entries[..i].iter().any(|p| p.name == e.name) {
                return Err(DefenseError::DuplicateStage { hook, name: e.name });
            }
        }
        let index_of = |name: &str| self.entries.iter().position(|e| e.name == name);
        // Every dependency must name a registered stage.
        let mut deps: Vec<Vec<usize>> = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            let mut d = Vec::with_capacity(e.after.len());
            for &a in &e.after {
                match index_of(a) {
                    Some(j) => d.push(j),
                    None => {
                        return Err(DefenseError::UnknownDependency {
                            hook,
                            stage: e.name,
                            after: a,
                        })
                    }
                }
            }
            deps.push(d);
        }
        // Kahn's algorithm with a declaration-order scan for the next
        // ready stage: O(n^2) over chains of at most a handful of stages.
        let n = self.entries.len();
        let mut placed = vec![false; n];
        let mut order = Vec::with_capacity(n);
        while order.len() < n {
            let next = (0..n).find(|&i| !placed[i] && deps[i].iter().all(|&j| placed[j]));
            match next {
                Some(i) => {
                    placed[i] = true;
                    order.push((self.entries[i].id, self.entries[i].name));
                }
                None => {
                    let involved = (0..n)
                        .filter(|&i| !placed[i])
                        .map(|i| self.entries[i].name)
                        .collect();
                    return Err(DefenseError::DependencyCycle { hook, involved });
                }
            }
        }
        Ok(Chain { hook, order })
    }
}

/// A resolved hook chain: stage ids in execution order.
///
/// Built once at router construction; at dispatch time the router walks
/// `0..len()` and `match`es [`Chain::stage`] — no allocation, no dynamic
/// dispatch.
#[derive(Clone, Debug)]
pub struct Chain<K> {
    hook: Hook,
    order: Vec<(K, &'static str)>,
}

impl<K: Copy> Chain<K> {
    /// The hook this chain runs at.
    pub fn hook(&self) -> Hook {
        self.hook
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when no stages are registered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The id of the `i`-th stage in execution order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn stage(&self, i: usize) -> K {
        self.order[i].0
    }

    /// Stage names in execution order (diagnostics and tests).
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.order.iter().map(|&(_, n)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declaration_order_is_kept_without_dependencies() {
        let chain = ChainBuilder::new(Hook::Ingress)
            .push("a", &[], 0u8)
            .push("b", &[], 1)
            .push("c", &[], 2)
            .build()
            .unwrap();
        assert_eq!(chain.names().collect::<Vec<_>>(), ["a", "b", "c"]);
        assert_eq!(
            (0..3).map(|i| chain.stage(i)).collect::<Vec<_>>(),
            [0, 1, 2]
        );
    }

    #[test]
    fn after_reorders_a_late_dependency() {
        // "stamp" declared first but must run after "ttl".
        let chain = ChainBuilder::new(Hook::Egress)
            .push("stamp", &["ttl"], 0u8)
            .push("ttl", &[], 1)
            .build()
            .unwrap();
        assert_eq!(chain.names().collect::<Vec<_>>(), ["ttl", "stamp"]);
    }

    #[test]
    fn duplicate_names_are_a_build_error() {
        let err = ChainBuilder::new(Hook::Ingress)
            .push("x", &[], 0u8)
            .push("x", &[], 1)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            DefenseError::DuplicateStage {
                hook: Hook::Ingress,
                name: "x"
            }
        );
    }

    #[test]
    fn unknown_dependency_is_a_build_error() {
        let err = ChainBuilder::new(Hook::Egress)
            .push("stamp", &["ttl"], 0u8)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            DefenseError::UnknownDependency {
                hook: Hook::Egress,
                stage: "stamp",
                after: "ttl"
            }
        );
    }

    #[test]
    fn cycles_are_a_build_error_not_a_panic() {
        let err = ChainBuilder::new(Hook::Escalate)
            .push("a", &["b"], 0u8)
            .push("b", &["a"], 1)
            .build()
            .unwrap_err();
        match err {
            DefenseError::DependencyCycle { hook, involved } => {
                assert_eq!(hook, Hook::Escalate);
                assert_eq!(involved, vec!["a", "b"]);
            }
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn typed_stage_registration_reads_the_trait_consts() {
        struct Ttl;
        impl Stage for Ttl {
            const NAME: &'static str = "ttl";
        }
        struct Mark;
        impl Stage for Mark {
            const NAME: &'static str = "mark";
            const AFTER: &'static [&'static str] = &["ttl"];
        }
        let chain = ChainBuilder::new(Hook::Egress)
            .stage::<Mark>(0u8)
            .stage::<Ttl>(1)
            .build()
            .unwrap();
        assert_eq!(chain.names().collect::<Vec<_>>(), ["ttl", "mark"]);
        assert_eq!(chain.hook(), Hook::Egress);
        assert_eq!(chain.len(), 2);
        assert!(!chain.is_empty());
    }
}
