//! Build-time errors of the hook pipeline.

use crate::hook::Hook;

/// Why a stage chain could not be built. These surface when a policy's
/// chains are assembled (router construction), never mid-simulation: a
/// chain that builds successfully cannot fail at dispatch time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DefenseError {
    /// Two stages in the same hook chain declared the same name.
    DuplicateStage {
        /// The hook whose chain was being built.
        hook: Hook,
        /// The name declared twice.
        name: &'static str,
    },
    /// A stage's `after` dependency names no stage in the chain.
    UnknownDependency {
        /// The hook whose chain was being built.
        hook: Hook,
        /// The stage declaring the dependency.
        stage: &'static str,
        /// The missing dependency name.
        after: &'static str,
    },
    /// The `after` dependencies form a cycle, so no total order exists.
    DependencyCycle {
        /// The hook whose chain was being built.
        hook: Hook,
        /// The stages left unordered when resolution stalled (every
        /// member either sits on the cycle or depends on it).
        involved: Vec<&'static str>,
    },
}

impl std::fmt::Display for DefenseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DefenseError::DuplicateStage { hook, name } => {
                write!(f, "{} chain declares stage {name:?} twice", hook.name())
            }
            DefenseError::UnknownDependency { hook, stage, after } => write!(
                f,
                "{} stage {stage:?} depends on unknown stage {after:?}",
                hook.name()
            ),
            DefenseError::DependencyCycle { hook, involved } => write!(
                f,
                "{} chain has a dependency cycle involving {involved:?}",
                hook.name()
            ),
        }
    }
}

impl std::error::Error for DefenseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_the_offending_names() {
        let d = DefenseError::DuplicateStage {
            hook: Hook::Ingress,
            name: "wire_filter",
        };
        assert!(d.to_string().contains("wire_filter"));
        assert!(d.to_string().contains("ingress"));
        let u = DefenseError::UnknownDependency {
            hook: Hook::Egress,
            stage: "stamp",
            after: "ttl",
        };
        assert!(u.to_string().contains("stamp"));
        assert!(u.to_string().contains("ttl"));
        let c = DefenseError::DependencyCycle {
            hook: Hook::Escalate,
            involved: vec!["a", "b"],
        };
        assert!(c.to_string().contains('a'));
    }
}
