//! The defense-policy sweep axis.

/// Which defense populates a border router's hook chains.
///
/// The policy is part of the scenario configuration
/// (`AitfConfig::defense` / `Scenario::defense(..)`): every router in a
/// world runs the same policy, and the `e19_defense_bakeoff` experiment
/// sweeps this axis under identical seeds. The default is the paper's
/// AITF protocol, pinned bit-identical to the pre-pipeline router by the
/// equivalence fixture.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DefensePolicy {
    /// The paper's protocol: wire-speed flow filters, shadow cache,
    /// three-way-handshake escalation along the recorded attack path.
    #[default]
    Aitf,
    /// The §V baseline: hop-by-hop pushback towards the attacker,
    /// effective only while every hop cooperates.
    Pushback,
    /// Per-source-prefix token-bucket policing at the ingress (client)
    /// links of every edge router. Purely local — no escalation, no
    /// per-flow state — but caps legitimate hosts sharing a prefix with
    /// attackers to the same contract.
    IngressRateLimit {
        /// Packets per second each /16 source prefix may inject.
        rate_pps: u32,
        /// Burst allowance in packets.
        burst: u32,
    },
    /// Capability-style path stamping on the route-record shim: every
    /// router stamps data packets; the victim's gateway revokes an
    /// origin (the attack path's first-hop router) on a filtering
    /// request and drops all stamped traffic from that origin — coarse,
    /// fast, and collateral-damaging to the origin's legitimate hosts.
    PathStamp,
}

impl DefensePolicy {
    /// The rate-limit variant with its bake-off default contract
    /// (100 pps / burst 100 per /16 source prefix).
    pub const fn ingress_ratelimit() -> Self {
        DefensePolicy::IngressRateLimit {
            rate_pps: 100,
            burst: 100,
        }
    }

    /// The four policies `e19_defense_bakeoff` ranks, in table order.
    pub const BAKEOFF: [DefensePolicy; 4] = [
        DefensePolicy::Aitf,
        DefensePolicy::Pushback,
        DefensePolicy::ingress_ratelimit(),
        DefensePolicy::PathStamp,
    ];

    /// Stable machine-readable name (sweep parameter / JSON telemetry).
    pub fn name(self) -> &'static str {
        match self {
            DefensePolicy::Aitf => "aitf",
            DefensePolicy::Pushback => "pushback",
            DefensePolicy::IngressRateLimit { .. } => "ingress_ratelimit",
            DefensePolicy::PathStamp => "path_stamp",
        }
    }

    /// Parses a [`DefensePolicy::name`] back into the policy; the
    /// rate-limit variant comes back with its bake-off defaults.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "aitf" => Some(DefensePolicy::Aitf),
            "pushback" => Some(DefensePolicy::Pushback),
            "ingress_ratelimit" => Some(DefensePolicy::ingress_ratelimit()),
            "path_stamp" => Some(DefensePolicy::PathStamp),
            _ => None,
        }
    }

    /// Whether the policy escalates filtering requests across provider
    /// boundaries. Drives shard partitioning: only an escalating policy
    /// can administratively disconnect a non-cooperating child network,
    /// so only then must such networks share their provider's shard.
    pub fn escalates(self) -> bool {
        matches!(self, DefensePolicy::Aitf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in DefensePolicy::BAKEOFF {
            assert_eq!(DefensePolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(DefensePolicy::from_name("nope"), None);
    }

    #[test]
    fn default_is_aitf_and_only_aitf_escalates() {
        assert_eq!(DefensePolicy::default(), DefensePolicy::Aitf);
        let escalating: Vec<_> = DefensePolicy::BAKEOFF
            .iter()
            .filter(|p| p.escalates())
            .collect();
        assert_eq!(escalating, [&DefensePolicy::Aitf]);
    }
}
