//! The defense pipeline: netfilter-style hook points for border routers.
//!
//! A border router's datapath is decomposed into three **hook points** —
//! [`Hook::Ingress`], [`Hook::Escalate`], [`Hook::Egress`] — each running
//! a chain of small policy *stages*. A stage is declared through one of
//! two traits:
//!
//! - [`ReadStage`]: inspects the packet (shared borrow) and may veto
//!   further processing with [`Verdict::Drop`]. Read stages may update
//!   router bookkeeping (counters, caches) but never the packet.
//! - [`WriteStage`]: mutates the packet and/or router state (TTL
//!   decrement, route-record stamping). Write stages cannot veto.
//!
//! Chains are ordered by explicit `after` dependencies — a DAG, resolved
//! once at router construction by [`ChainBuilder::build`] into a
//! deterministic total order (declaration order breaks ties). Duplicate
//! stage names, unknown dependencies and dependency cycles are build-time
//! [`DefenseError`]s, never runtime panics.
//!
//! The hot path stays allocation-free through **static dispatch**: a
//! built [`Chain`] is a flat array of caller-chosen stage ids (a `Copy`
//! enum in practice); the router iterates the array and `match`es each id
//! to a monomorphized stage call. No `Box<dyn>`, no vtables, no per-event
//! allocation — pinned by `aitf-bench`'s `trace_zero_cost` suite once per
//! [`DefensePolicy`] variant.
//!
//! Which stages populate the chains is selected by the [`DefensePolicy`]
//! sweep axis: the paper's AITF protocol, the §V pushback baseline, and
//! two simpler defenses (per-prefix ingress rate-limiting and
//! capability-style path stamping) that the `e19_defense_bakeoff`
//! experiment ranks under identical seeds.

mod error;
mod hook;
mod policy;

pub use error::DefenseError;
pub use hook::{Chain, ChainBuilder, Hook, ReadStage, Stage, StageDecl, Verdict, WriteStage};
pub use policy::DefensePolicy;
