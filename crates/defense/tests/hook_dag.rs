//! Property tests over the hook-chain DAG resolver.
//!
//! The contract under test: for any set of stage declarations,
//! `ChainBuilder::build` either returns a chain whose order is a *total
//! order* respecting every `after` edge, or a typed `DefenseError` — it
//! never panics, and duplicate names / cycles are always errors.

use aitf_defense::{ChainBuilder, DefenseError, Hook};
use proptest::prelude::*;

/// A fixed pool of stage names: proptest picks indices into it, which
/// keeps everything `&'static str` (the type stage declarations use).
const POOL: [&str; 12] = [
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
];

/// Builds a chain from `(name_index, after_mask)` pairs: bit `j` of a
/// stage's mask declares a dependency on the stage at *declaration
/// position* `j` (so masks restricted to earlier positions are acyclic
/// by construction).
fn build(
    decls: &[(usize, u16)],
    restrict_to_earlier: bool,
) -> Result<aitf_defense::Chain<usize>, DefenseError> {
    let mut b = ChainBuilder::new(Hook::Ingress);
    for (i, &(name_ix, mask)) in decls.iter().enumerate() {
        let after: Vec<&'static str> = (0..decls.len())
            .filter(|&j| {
                let wanted = mask & (1 << j) != 0 && j != i;
                wanted && (!restrict_to_earlier || j < i)
            })
            .map(|j| POOL[decls[j].0])
            .collect();
        b = b.push(POOL[name_ix], &after, i);
    }
    b.build()
}

/// Distinct name indices for `n` stages.
fn distinct_names(n: usize) -> Vec<usize> {
    (0..n).collect()
}

proptest! {
    /// Acyclic inputs (deps only on earlier declarations) always build,
    /// and the result is a total order that respects every edge.
    #[test]
    fn acyclic_chains_build_into_a_dependency_respecting_total_order(
        masks in proptest::collection::vec(0u16..4096, 1..10),
    ) {
        let decls: Vec<(usize, u16)> = distinct_names(masks.len())
            .into_iter()
            .zip(masks.iter().copied())
            .collect();
        let chain = build(&decls, true).expect("acyclic chains must build");

        // Total order: every declared stage appears exactly once.
        let mut ids: Vec<usize> = (0..chain.len()).map(|i| chain.stage(i)).collect();
        prop_assert_eq!(chain.len(), decls.len());
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..decls.len()).collect::<Vec<_>>());

        // Every `after` edge is respected: dependency runs earlier.
        let pos_of = |id: usize| (0..chain.len()).position(|i| chain.stage(i) == id).unwrap();
        for (i, &(_, mask)) in decls.iter().enumerate() {
            for j in 0..decls.len() {
                if j < i && mask & (1 << j) != 0 {
                    prop_assert!(
                        pos_of(j) < pos_of(i),
                        "stage {} must run after its dependency {}", i, j
                    );
                }
            }
        }
    }

    /// Arbitrary dependency masks (cycles allowed): build never panics,
    /// and on success the order still respects every edge.
    #[test]
    fn arbitrary_dependencies_never_panic(
        masks in proptest::collection::vec(0u16..4096, 1..10),
    ) {
        let decls: Vec<(usize, u16)> = distinct_names(masks.len())
            .into_iter()
            .zip(masks.iter().copied())
            .collect();
        match build(&decls, false) {
            Ok(chain) => {
                let pos_of = |id: usize| {
                    (0..chain.len()).position(|i| chain.stage(i) == id).unwrap()
                };
                for (i, &(_, mask)) in decls.iter().enumerate() {
                    for j in 0..decls.len() {
                        if j != i && mask & (1 << j) != 0 {
                            prop_assert!(pos_of(j) < pos_of(i));
                        }
                    }
                }
            }
            Err(DefenseError::DependencyCycle { involved, .. }) => {
                prop_assert!(!involved.is_empty());
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {:?}", other),
        }
    }

    /// Any declaration list containing a repeated name is rejected with
    /// `DuplicateStage`, whatever the dependencies say.
    #[test]
    fn duplicate_names_always_error(
        n in 2usize..8,
        dup_at in 1usize..8,
    ) {
        let dup_at = dup_at.min(n - 1);
        let mut names = distinct_names(n);
        names[dup_at] = names[0]; // force one collision
        let decls: Vec<(usize, u16)> = names.into_iter().map(|ix| (ix, 0)).collect();
        let err = build(&decls, true).expect_err("duplicates must not build");
        prop_assert_eq!(
            err,
            DefenseError::DuplicateStage { hook: Hook::Ingress, name: POOL[0] }
        );
    }

    /// Resolution is deterministic: building the same declarations twice
    /// yields the same order.
    #[test]
    fn resolution_is_deterministic(
        masks in proptest::collection::vec(0u16..4096, 1..10),
    ) {
        let decls: Vec<(usize, u16)> = distinct_names(masks.len())
            .into_iter()
            .zip(masks.iter().copied())
            .collect();
        let a = build(&decls, true).unwrap();
        let b = build(&decls, true).unwrap();
        let order_a: Vec<usize> = (0..a.len()).map(|i| a.stage(i)).collect();
        let order_b: Vec<usize> = (0..b.len()).map(|i| b.stage(i)).collect();
        prop_assert_eq!(order_a, order_b);
    }
}

/// An explicit 3-cycle reported through the typed error, not a panic.
#[test]
fn three_cycle_reports_every_member() {
    let err = ChainBuilder::new(Hook::Escalate)
        .push("a", &["c"], 0u8)
        .push("b", &["a"], 1)
        .push("c", &["b"], 2)
        .build()
        .unwrap_err();
    match err {
        DefenseError::DependencyCycle { hook, involved } => {
            assert_eq!(hook, Hook::Escalate);
            assert_eq!(involved, vec!["a", "b", "c"]);
        }
        other => panic!("expected cycle, got {other:?}"),
    }
}
