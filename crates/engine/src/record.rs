//! Structured run records — the engine's unit of telemetry.

use crate::params::{json_string, Params};

/// One completed sweep point: parameters in, metrics out, plus provenance.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The experiment id this record belongs to.
    pub experiment: &'static str,
    /// Index of the point in the spec's sweep order.
    pub index: usize,
    /// The derived RNG seed the point ran with.
    pub seed: u64,
    /// The point's parameters.
    pub params: Params,
    /// The measured metrics.
    pub metrics: Params,
    /// Simulator events dispatched (0 when not applicable).
    pub events: u64,
    /// Wall-clock seconds the point took. Excluded from
    /// [`RunRecord::deterministic_eq`] — it is the one legitimately
    /// nondeterministic field.
    pub wall_secs: f64,
    /// Event-loop shards the point's simulations ran as. Execution
    /// strategy, not an input: excluded from
    /// [`RunRecord::deterministic_eq`] (sharded and single runs of the
    /// same point must compare equal), and emitted in JSON only when > 1
    /// so single-loop records keep the historical shape.
    pub shards: usize,
    /// Optional observability payload from a trace-enabled build. Wall
    /// buckets inside are nondeterministic, so (like `wall_secs`) it is
    /// excluded from [`RunRecord::deterministic_eq`].
    pub trace: Option<Box<aitf_trace::TraceReport>>,
    /// Name of the non-default defense policy the point's routers ran.
    /// Emitted in JSON only when set, so AITF records keep the historical
    /// shape; a label derived from the params, hence not an independent
    /// input to [`RunRecord::deterministic_eq`].
    pub defense: Option<&'static str>,
}

impl RunRecord {
    /// Structural equality over everything except wall time: two runs of
    /// the same sweep (at any thread counts) must satisfy this.
    pub fn deterministic_eq(&self, other: &RunRecord) -> bool {
        self.experiment == other.experiment
            && self.index == other.index
            && self.seed == other.seed
            && self.params == other.params
            && self.metrics == other.metrics
            && self.events == other.events
    }

    /// Simulator events dispatched per wall-clock second for this point —
    /// the perf-trajectory number. Wall-derived, so (like `wall_secs`) it
    /// is excluded from [`RunRecord::deterministic_eq`].
    pub fn events_per_sec(&self) -> Option<f64> {
        rate_per_sec(self.events, self.wall_secs)
    }

    /// Renders the record as one JSON object. Trace-enabled runs gain a
    /// `subsystems` block (per-subsystem event counts and wall nanos);
    /// ordinary runs emit exactly the historical shape.
    pub fn to_json(&self) -> String {
        let subsystems = match &self.trace {
            Some(t) => format!(",\"subsystems\":{}", t.subsystems.finalized().to_json()),
            None => String::new(),
        };
        let shards = if self.shards > 1 {
            format!(",\"shards\":{}", self.shards)
        } else {
            String::new()
        };
        let defense = match self.defense {
            Some(name) => format!(",\"defense\":{}", json_string(name)),
            None => String::new(),
        };
        format!(
            "{{\"experiment\":{},\"index\":{},\"seed\":{},\"params\":{},\"metrics\":{},\"events\":{},\"wall_secs\":{},\"events_per_sec\":{}{}{}{}}}",
            json_string(self.experiment),
            self.index,
            self.seed,
            self.params.to_json(),
            self.metrics.to_json(),
            self.events,
            if self.wall_secs.is_finite() {
                format!("{}", self.wall_secs)
            } else {
                "null".to_string()
            },
            match self.events_per_sec() {
                Some(r) => format!("{r:.0}"),
                None => "null".to_string(),
            },
            shards,
            defense,
            subsystems,
        )
    }
}

/// `events / wall_secs` as a positive finite rate, or `None` when the wall
/// is degenerate (zero, non-finite) or nothing ran — the one definition
/// both the per-record and sweep-level `events_per_sec` JSON fields use.
pub fn rate_per_sec(events: u64, wall_secs: f64) -> Option<f64> {
    (wall_secs.is_finite() && wall_secs > 0.0 && events > 0).then(|| events as f64 / wall_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(wall: f64) -> RunRecord {
        RunRecord {
            experiment: "e0",
            index: 1,
            seed: 7,
            params: Params::new().with("x", 2u64),
            metrics: Params::new().with("y", 0.5),
            events: 10,
            wall_secs: wall,
            shards: 1,
            trace: None,
            defense: None,
        }
    }

    #[test]
    fn deterministic_eq_ignores_wall_time() {
        let a = record(0.1);
        let b = record(99.0);
        assert!(a.deterministic_eq(&b));
        let mut c = record(0.1);
        c.seed = 8;
        assert!(!a.deterministic_eq(&c));
    }

    #[test]
    fn json_shape() {
        let j = record(0.25).to_json();
        assert_eq!(
            j,
            r#"{"experiment":"e0","index":1,"seed":7,"params":{"x":2},"metrics":{"y":0.5},"events":10,"wall_secs":0.25,"events_per_sec":40}"#
        );
    }

    #[test]
    fn subsystems_block_appears_only_with_a_trace_payload() {
        let mut r = record(0.25);
        assert!(!r.to_json().contains("subsystems"));
        let mut report = aitf_trace::TraceReport::default();
        report.subsystems.record(aitf_trace::Subsystem::Link, 100);
        r.trace = Some(Box::new(report));
        let j = r.to_json();
        assert!(j.contains("\"subsystems\":{"), "{j}");
        assert!(j.contains("\"link\""), "{j}");
        // And the payload never disturbs determinism comparisons.
        assert!(r.deterministic_eq(&record(0.25)));
    }

    #[test]
    fn shards_field_appears_only_when_sharded() {
        let mut r = record(0.25);
        assert!(!r.to_json().contains("shards"));
        r.shards = 4;
        assert!(r.to_json().contains("\"shards\":4"), "{}", r.to_json());
        // Execution strategy never disturbs determinism comparisons.
        assert!(r.deterministic_eq(&record(0.25)));
    }

    #[test]
    fn defense_field_appears_only_when_labeled() {
        let mut r = record(0.25);
        assert!(!r.to_json().contains("defense"));
        r.defense = Some("pushback");
        assert!(
            r.to_json().contains("\"defense\":\"pushback\""),
            "{}",
            r.to_json()
        );
        assert!(r.deterministic_eq(&record(0.25)));
    }

    #[test]
    fn events_per_sec_handles_degenerate_walls() {
        assert_eq!(record(0.25).events_per_sec(), Some(40.0));
        assert_eq!(record(0.0).events_per_sec(), None);
        assert_eq!(record(f64::NAN).events_per_sec(), None);
        let mut r = record(0.25);
        r.events = 0;
        assert_eq!(r.events_per_sec(), None);
        assert!(r.to_json().contains("\"events_per_sec\":null"));
    }
}
