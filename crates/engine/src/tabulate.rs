//! Record → table projection: one sink over the same run records the JSON
//! emitter consumes. The engine stays presentation-agnostic — it produces
//! headers and string rows; the bench harness owns the ASCII rendering.

use crate::record::RunRecord;

/// Projects records onto `(headers, rows)`: parameter columns first (in
/// declaration order), then metric columns. Hidden columns (named with a
/// leading `_`) are kept in the JSON but dropped from tables.
pub fn tabulate(records: &[RunRecord]) -> (Vec<String>, Vec<Vec<String>>) {
    let Some(first) = records.first() else {
        return (Vec::new(), Vec::new());
    };
    let visible = |name: &str| !name.starts_with('_');
    let headers: Vec<String> = first
        .params
        .entries()
        .iter()
        .chain(first.metrics.entries())
        .map(|(n, _)| *n)
        .filter(|n| visible(n))
        .map(String::from)
        .collect();
    let rows = records
        .iter()
        .map(|r| {
            r.params
                .entries()
                .iter()
                .chain(r.metrics.entries())
                .filter(|(n, _)| visible(n))
                .map(|(_, v)| v.render())
                .collect()
        })
        .collect();
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::spec::{Outcome, ScenarioSpec};
    use crate::Runner;

    #[test]
    fn params_then_metrics_with_hidden_columns_dropped() {
        let spec = ScenarioSpec::new("t1", "t", "p")
            .point(Params::new().with("x", 3u64).with("_seed_note", "hidden"))
            .runner(|p, _| Outcome::new(Params::new().with("y", p.u64("x") as f64 / 2.0)));
        let recs = Runner::new(1).run(&spec);
        let (headers, rows) = tabulate(&recs);
        assert_eq!(headers, vec!["x", "y"]);
        assert_eq!(rows, vec![vec!["3".to_string(), "1.50".to_string()]]);
    }

    #[test]
    fn empty_records_produce_empty_table() {
        let (headers, rows) = tabulate(&[]);
        assert!(headers.is_empty() && rows.is_empty());
    }
}
