//! # aitf-engine — parallel scenario-sweep engine with JSON telemetry
//!
//! The AITF paper's evaluation is a grid of parametric sweeps. This crate
//! turns each experiment into data plus one closure:
//!
//! - a [`ScenarioSpec`] names the sweep, declares its [`Params`] points and
//!   supplies a `run(params, ctx) -> Outcome` closure;
//! - a [`Registry`] holds the specs the driver can select from
//!   (`--filter`);
//! - a [`Runner`] fans all selected points out over a `std::thread` pool.
//!   Every point's RNG seed derives only from `(base_seed, experiment id,
//!   point index)`, and results land in pre-indexed slots, so sweeps are
//!   **bit-identical at any thread count**;
//! - each finished point is a [`RunRecord`]; the same records feed two
//!   sinks — [`tabulate`] for the classic ASCII tables, and [`json`] for
//!   `BENCH_<experiment>.json` telemetry files.
//!
//! ```
//! use aitf_engine::{Outcome, Params, Runner, ScenarioSpec};
//!
//! let spec = ScenarioSpec::new("square", "squares a number", "§demo")
//!     .points((1..=4u64).map(|x| Params::new().with("x", x)))
//!     .runner(|p, _ctx| Outcome::new(Params::new().with("y", p.u64("x").pow(2))));
//! let records = Runner::new(4).run(&spec);
//! assert_eq!(records[3].metrics.u64("y"), 16);
//! ```

pub mod json;
pub mod params;
pub mod record;
pub mod registry;
pub mod runner;
pub mod spec;
pub mod tabulate;

pub use params::{Params, Value};
pub use record::RunRecord;
pub use registry::Registry;
pub use runner::{available_threads, Runner, DEFAULT_BASE_SEED};
pub use spec::{splitmix, Outcome, RunCtx, ScenarioSpec};
pub use tabulate::tabulate;
