//! The deterministic parallel sweep runner.
//!
//! All points of all requested specs go into one flat job list; a pool of
//! `std::thread` workers pulls jobs off an atomic cursor. Each job's RNG
//! seed is derived purely from `(base_seed, experiment id, point index)`,
//! and results land in pre-indexed slots, so the output is **bit-identical
//! at any thread count** — only wall time changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::record::RunRecord;
use crate::spec::{RunCtx, ScenarioSpec};

/// Sweep executor with a fixed worker count.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    threads: usize,
    quick: bool,
    base_seed: u64,
    shards: usize,
}

/// The default base seed for sweeps (`--seed` overrides it in the driver).
pub const DEFAULT_BASE_SEED: u64 = 42;

impl Default for Runner {
    fn default() -> Self {
        Runner::new(available_threads())
    }
}

/// The machine's available parallelism (1 if unknown).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Runner {
    /// A runner with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
            quick: false,
            base_seed: DEFAULT_BASE_SEED,
            shards: 1,
        }
    }

    /// Enables reduced-size (quick) mode, forwarded to every point run.
    pub fn quick(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// Sets the base seed all point seeds derive from.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Asks every point's scenarios to run as `shards` event-loop shards
    /// (clamped to at least 1). Like the thread count, this is pure
    /// execution strategy — records are bit-identical at any value.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one spec's sweep; records come back in point order.
    pub fn run(&self, spec: &ScenarioSpec) -> Vec<RunRecord> {
        self.run_all(std::slice::from_ref(spec))
            .pop()
            .expect("one spec in, one record set out")
    }

    /// Runs many specs as one flat job pool (maximum parallelism across
    /// experiment boundaries); records come back grouped by spec, each
    /// group in point order.
    pub fn run_all(&self, specs: &[ScenarioSpec]) -> Vec<Vec<RunRecord>> {
        // Flatten (spec, point) into one job list.
        let jobs: Vec<(usize, usize)> = specs
            .iter()
            .enumerate()
            .flat_map(|(s, spec)| (0..spec.points.len()).map(move |p| (s, p)))
            .collect();
        let slots: Vec<Mutex<Option<RunRecord>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);

        let workers = self.threads.min(jobs.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(s, p)) = jobs.get(i) else { break };
                    let spec = &specs[s];
                    let ctx = RunCtx {
                        seed: spec.seed_for(self.base_seed, p),
                        quick: self.quick,
                        shards: self.shards,
                    };
                    // detlint::allow(wall-clock): wall_secs telemetry on the record — excluded from deterministic_eq
                    let start = Instant::now();
                    let outcome = (spec.run)(&spec.points[p], &ctx);
                    let record = RunRecord {
                        experiment: spec.id,
                        index: p,
                        seed: ctx.seed,
                        params: spec.points[p].clone(),
                        metrics: outcome.metrics,
                        events: outcome.events,
                        wall_secs: start.elapsed().as_secs_f64(),
                        shards: self.shards,
                        trace: outcome.trace,
                        defense: outcome.defense,
                    };
                    *slots[i].lock().expect("result slot poisoned") = Some(record);
                });
            }
        });

        // Regroup by spec, preserving point order.
        let mut out: Vec<Vec<RunRecord>> = specs.iter().map(|_| Vec::new()).collect();
        for (&(s, _), slot) in jobs.iter().zip(slots) {
            let record = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("every job ran to completion");
            out[s].push(record);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::spec::Outcome;

    /// A cheap, seed-sensitive spec: metrics depend on params and seed in a
    /// way any scheduling bug would scramble.
    fn toy_spec(points: usize) -> ScenarioSpec {
        ScenarioSpec::new("toy_sweep", "toy", "§test")
            .points((0..points).map(|i| Params::new().with("i", i)))
            .runner(|params, ctx| {
                let i = params.u64("i");
                Outcome::new(
                    Params::new()
                        .with("mix", ctx.seed.wrapping_mul(i + 1))
                        .with("ratio", (i as f64 + 1.0) / 7.0),
                )
                .with_events(i * 10)
            })
    }

    #[test]
    fn records_come_back_in_point_order() {
        let recs = Runner::new(4).run(&toy_spec(32));
        assert_eq!(recs.len(), 32);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.params.u64("i"), i as u64);
            assert_eq!(r.events, i as u64 * 10);
        }
    }

    #[test]
    fn thread_count_does_not_change_records() {
        let spec = toy_spec(40);
        let one = Runner::new(1).run(&spec);
        let eight = Runner::new(8).run(&spec);
        assert_eq!(one.len(), eight.len());
        for (a, b) in one.iter().zip(&eight) {
            assert!(a.deterministic_eq(b), "{a:?} != {b:?}");
        }
    }

    #[test]
    fn base_seed_changes_seeds_but_not_shape() {
        let spec = toy_spec(4);
        let a = Runner::new(2).base_seed(1).run(&spec);
        let b = Runner::new(2).base_seed(2).run(&spec);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn run_all_pools_jobs_across_specs() {
        let specs = vec![toy_spec(3), toy_spec(5)];
        let grouped = Runner::new(8).run_all(&specs);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].len(), 3);
        assert_eq!(grouped[1].len(), 5);
    }

    #[test]
    fn zero_threads_is_clamped() {
        assert_eq!(Runner::new(0).threads(), 1);
        let recs = Runner::new(0).run(&toy_spec(2));
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn empty_spec_produces_no_records() {
        let spec = ScenarioSpec::new("empty", "t", "p").runner(|_, _| unreachable!());
        assert!(Runner::new(2).run(&spec).is_empty());
    }
}
