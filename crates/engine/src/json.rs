//! JSON telemetry emitter: one `BENCH_<experiment>.json` per sweep.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::params::json_string;
use crate::record::RunRecord;
use crate::spec::ScenarioSpec;

/// Schema version stamped into every file; bump on breaking changes.
pub const SCHEMA_VERSION: u32 = 1;

/// Renders the full JSON document for one sweep.
pub fn render_document(
    spec: &ScenarioSpec,
    records: &[RunRecord],
    base_seed: u64,
    threads: usize,
    quick: bool,
) -> String {
    let total_wall: f64 = records.iter().map(|r| r.wall_secs).sum();
    let total_events: u64 = records.iter().map(|r| r.events).sum();
    let mut out = String::with_capacity(256 + records.len() * 160);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"experiment\": {},\n", json_string(spec.id)));
    out.push_str(&format!("  \"title\": {},\n", json_string(&spec.title)));
    out.push_str(&format!("  \"paper\": {},\n", json_string(spec.paper)));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"base_seed\": {base_seed},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"total_events\": {total_events},\n"));
    out.push_str(&format!(
        "  \"total_wall_secs\": {},\n",
        if total_wall.is_finite() {
            format!("{total_wall}")
        } else {
            "null".into()
        }
    ));
    // Sweep-level throughput: the hot-path health number every perf PR
    // watches (wall-derived, so excluded from determinism comparisons).
    out.push_str(&format!(
        "  \"events_per_sec\": {},\n",
        match crate::record::rate_per_sec(total_events, total_wall) {
            Some(r) => format!("{r:.0}"),
            None => "null".into(),
        }
    ));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.to_json());
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the sweep's JSON document to `<dir>/BENCH_<experiment>.json`,
/// creating `dir` if needed. Returns the written path.
pub fn write_document(
    dir: &Path,
    spec: &ScenarioSpec,
    records: &[RunRecord],
    base_seed: u64,
    threads: usize,
    quick: bool,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{}.json", spec.id));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(render_document(spec, records, base_seed, threads, quick).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::spec::Outcome;
    use crate::Runner;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new("j1", "json test", "§x")
            .point(Params::new().with("a", 1u64))
            .point(Params::new().with("a", 2u64))
            .runner(|p, ctx| {
                Outcome::new(
                    Params::new()
                        .with("b", p.u64("a") * 2)
                        .with("note", "ok \"quoted\""),
                )
                .with_events(ctx.seed % 5)
            })
    }

    /// A deliberately minimal JSON validator: enough to guarantee the
    /// emitter produces well-formed documents (balanced structure, quoted
    /// strings, no trailing commas).
    fn validate_json(s: &str) {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut escape = false;
        let mut last_significant = ' ';
        for c in s.chars() {
            if in_str {
                if escape {
                    escape = false;
                } else if c == '\\' {
                    escape = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    assert_ne!(last_significant, ',', "trailing comma before close in {s}");
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close");
                }
                _ => {}
            }
            if !c.is_whitespace() {
                last_significant = c;
            }
        }
        assert!(!in_str, "unterminated string");
        assert_eq!(depth, 0, "unbalanced document");
    }

    #[test]
    fn document_is_well_formed_and_complete() {
        let spec = spec();
        let recs = Runner::new(2).run(&spec);
        let doc = render_document(&spec, &recs, 42, 2, false);
        validate_json(&doc);
        assert!(doc.contains("\"experiment\":\"j1\"") || doc.contains("\"experiment\": \"j1\""));
        assert!(doc.contains("\"records\""));
        assert!(doc.contains("ok \\\"quoted\\\""));
        assert_eq!(doc.matches("\"index\"").count(), 2);
        // Sweep-level plus one per record.
        assert_eq!(doc.matches("\"events_per_sec\"").count(), 3);
    }

    #[test]
    fn write_document_creates_bench_file() {
        let spec = spec();
        let recs = Runner::new(1).run(&spec);
        let dir = std::env::temp_dir().join(format!("aitf_engine_json_{}", std::process::id()));
        let path = write_document(&dir, &spec, &recs, 42, 1, true).expect("write");
        assert_eq!(path.file_name().unwrap(), "BENCH_j1.json");
        let body = std::fs::read_to_string(&path).expect("read back");
        validate_json(&body);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_record_set_is_still_valid() {
        let spec = ScenarioSpec::new("j2", "t", "p").runner(|_, _| unreachable!());
        let doc = render_document(&spec, &[], 1, 1, true);
        validate_json(&doc);
    }
}
