//! Scenario specifications: a named, parameterized sweep plus the closure
//! that runs one point of it.

use std::sync::Arc;

use crate::params::{Params, Value};

/// Context handed to a scenario's point runner.
#[derive(Debug, Clone, Copy)]
pub struct RunCtx {
    /// The derived RNG seed for this point. Depends only on the sweep's
    /// base seed, the experiment id and the point index — never on thread
    /// scheduling — so results are bit-identical at any thread count.
    pub seed: u64,
    /// Reduced-size mode (CI / integration tests).
    pub quick: bool,
    /// Event-loop shards each scenario should split into (1 = classic
    /// single-threaded loop). Pure execution strategy: results are
    /// bit-identical at any value.
    pub shards: usize,
}

/// What one sweep point produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Named metric values, in declaration order.
    pub metrics: Params,
    /// Simulator events dispatched during the run (0 when not applicable).
    pub events: u64,
    /// Optional observability payload (subsystem profile + spans). `None`
    /// in ordinary builds; populated by scenarios compiled with their
    /// `trace` feature. Never part of determinism comparisons.
    pub trace: Option<Box<aitf_trace::TraceReport>>,
    /// Name of the non-default defense policy the run's routers executed
    /// (`None` for the historical AITF datapath, keeping those records'
    /// JSON shape unchanged).
    pub defense: Option<&'static str>,
}

impl Outcome {
    /// An outcome with the given metrics and no event count.
    pub fn new(metrics: Params) -> Self {
        Outcome {
            metrics,
            events: 0,
            trace: None,
            defense: None,
        }
    }

    /// Attaches the simulator event count.
    pub fn with_events(mut self, events: u64) -> Self {
        self.events = events;
        self
    }

    /// Attaches an observability payload.
    pub fn with_trace(mut self, trace: aitf_trace::TraceReport) -> Self {
        self.trace = Some(Box::new(trace));
        self
    }

    /// Labels the run with the (non-default) defense policy it executed.
    pub fn with_defense(mut self, name: &'static str) -> Self {
        self.defense = Some(name);
        self
    }
}

/// The point-runner closure type: pure function of `(params, ctx)`.
pub type RunFn = Arc<dyn Fn(&Params, &RunCtx) -> Outcome + Send + Sync>;

/// A named, parameterized scenario sweep.
///
/// # Examples
///
/// ```
/// use aitf_engine::{Outcome, Params, ScenarioSpec};
///
/// let spec = ScenarioSpec::new("demo", "a demo sweep", "§0")
///     .expectation("doubling in, doubling out")
///     .point(Params::new().with("x", 1u64))
///     .point(Params::new().with("x", 2u64))
///     .runner(|params, _ctx| {
///         Outcome::new(Params::new().with("y", params.u64("x") * 2))
///     });
/// assert_eq!(spec.points.len(), 2);
/// ```
#[derive(Clone)]
pub struct ScenarioSpec {
    /// Stable machine-readable id (`e1_escalation`); names the JSON file.
    pub id: &'static str,
    /// Human-readable table title.
    pub title: String,
    /// Paper section / figure the scenario reproduces.
    pub paper: &'static str,
    /// The "paper expectation" prose printed after the table.
    pub expectation: String,
    /// The sweep points, one parameter set each.
    pub points: Vec<Params>,
    /// Runs one point.
    pub run: RunFn,
}

impl ScenarioSpec {
    /// Creates a spec with no points and a panicking runner; chain
    /// [`ScenarioSpec::point`]/[`ScenarioSpec::points`] and
    /// [`ScenarioSpec::runner`] to finish it.
    pub fn new(id: &'static str, title: impl Into<String>, paper: &'static str) -> Self {
        ScenarioSpec {
            id,
            title: title.into(),
            paper,
            expectation: String::new(),
            points: Vec::new(),
            run: Arc::new(|_, _| panic!("ScenarioSpec::runner was never set")),
        }
    }

    /// Sets the post-table expectation prose.
    pub fn expectation(mut self, text: impl Into<String>) -> Self {
        self.expectation = text.into();
        self
    }

    /// Appends one sweep point.
    pub fn point(mut self, params: Params) -> Self {
        self.points.push(params);
        self
    }

    /// Appends many sweep points.
    pub fn points(mut self, params: impl IntoIterator<Item = Params>) -> Self {
        self.points.extend(params);
        self
    }

    /// Sets the point runner.
    pub fn runner(
        mut self,
        f: impl Fn(&Params, &RunCtx) -> Outcome + Send + Sync + 'static,
    ) -> Self {
        self.run = Arc::new(f);
        self
    }

    /// The seed for point `index` under `base_seed` — a SplitMix64 chain
    /// over `(base_seed, fnv1a(id), group)`, where `group` defaults to the
    /// point index.
    ///
    /// A point may override the group by declaring a `_seed_group`
    /// parameter (`U64`): points sharing a group run with the **same**
    /// seed. Sweeps that compare an on/off knob across adjacent rows
    /// ("assists on vs off", "shadow on vs off") put the knob outside the
    /// group so the pair differs only in the knob, never in RNG noise.
    pub fn seed_for(&self, base_seed: u64, index: usize) -> u64 {
        let group = match self.points.get(index).and_then(|p| p.get("_seed_group")) {
            Some(Value::U64(g)) => *g,
            _ => index as u64,
        };
        let mut h = fnv1a(self.id.as_bytes());
        h = splitmix(h ^ base_seed);
        splitmix(h ^ group)
    }
}

impl std::fmt::Debug for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioSpec")
            .field("id", &self.id)
            .field("title", &self.title)
            .field("paper", &self.paper)
            .field("points", &self.points.len())
            .finish()
    }
}

/// FNV-1a over bytes — stable across platforms and runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer — bijective, well-mixed. Public because it is the
/// engine family's standard dependency-free mixer: derived sweep seeds
/// here, seed-derived deployment assignment in `aitf-scenario`.
pub fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = ScenarioSpec::new("e1", "t", "p");
        let b = ScenarioSpec::new("e2", "t", "p");
        assert_eq!(a.seed_for(42, 0), a.seed_for(42, 0));
        assert_ne!(a.seed_for(42, 0), a.seed_for(42, 1));
        assert_ne!(a.seed_for(42, 0), a.seed_for(43, 0));
        assert_ne!(a.seed_for(42, 0), b.seed_for(42, 0));
    }

    #[test]
    fn seed_groups_pair_points() {
        let spec = ScenarioSpec::new("paired", "t", "p")
            .point(Params::new().with("on", false).with("_seed_group", 0u64))
            .point(Params::new().with("on", true).with("_seed_group", 0u64))
            .point(Params::new().with("on", false).with("_seed_group", 1u64));
        assert_eq!(spec.seed_for(42, 0), spec.seed_for(42, 1));
        assert_ne!(spec.seed_for(42, 0), spec.seed_for(42, 2));
    }

    #[test]
    #[should_panic(expected = "runner was never set")]
    fn missing_runner_fails_loudly() {
        let spec = ScenarioSpec::new("x", "t", "p").point(Params::new());
        let ctx = RunCtx {
            seed: 1,
            quick: true,
            shards: 1,
        };
        let _ = (spec.run)(&spec.points[0], &ctx);
    }
}
