//! Typed scenario parameters and metric values.
//!
//! A [`Params`] is an *ordered* list of `(name, Value)` pairs: order is
//! preserved so tables and JSON render columns in the order the scenario
//! author declared them, and equality is structural so run records can be
//! compared bit-for-bit across thread counts.

use std::fmt;

/// A parameter or metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, sizes, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rates, ratios, seconds).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form label.
    Str(String),
    /// A numeric series (per-bin time series and other machine-readable
    /// vectors). Rendered as a JSON array; tables show only its length, so
    /// series metrics are conventionally named with a leading `_` to stay
    /// JSON-only.
    F64List(Vec<f64>),
    /// An unsigned-integer series — sketch-backed aggregates (heavy-hitter
    /// keys and estimated counts) whose values are exact integers that must
    /// not round-trip through `f64`. Same table/JSON conventions as
    /// [`Value::F64List`].
    U64List(Vec<u64>),
}

impl Value {
    /// Renders the value for a results table: floats are compacted the way
    /// the paper's tables print them, everything else verbatim.
    pub fn render(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => fmt_compact(*v),
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => s.clone(),
            Value::F64List(v) => format!("[{} pts]", v.len()),
            Value::U64List(v) => format!("[{} pts]", v.len()),
        }
    }

    /// Renders the value as a JSON fragment.
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) if v.is_finite() => format!("{v}"),
            Value::F64(_) => "null".to_string(),
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => json_string(s),
            Value::F64List(v) => {
                let body: Vec<String> = v
                    .iter()
                    .map(|x| {
                        if x.is_finite() {
                            format!("{x}")
                        } else {
                            "null".to_string()
                        }
                    })
                    .collect();
                format!("[{}]", body.join(","))
            }
            Value::U64List(v) => {
                let body: Vec<String> = v.iter().map(u64::to_string).collect();
                format!("[{}]", body.join(","))
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u8> for Value {
    fn from(v: u8) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::F64List(v)
    }
}

impl From<Vec<u64>> for Value {
    fn from(v: Vec<u64>) -> Self {
        Value::U64List(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Compact float formatting (shared with the bench tables): 6-ish
/// significant digits, no trailing noise.
pub fn fmt_compact(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.5}")
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An ordered set of named values (scenario parameters or run metrics).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    entries: Vec<(&'static str, Value)>,
}

impl Params {
    /// An empty set.
    pub fn new() -> Self {
        Params::default()
    }

    /// Builder-style insert.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already present — a spec bug worth failing loudly
    /// on.
    pub fn with(mut self, name: &'static str, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    /// Inserts a value.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already present.
    pub fn set(&mut self, name: &'static str, value: impl Into<Value>) {
        assert!(
            self.get(name).is_none(),
            "duplicate parameter/metric name {name:?}"
        );
        self.entries.push((name, value.into()));
    }

    /// Looks a value up by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// The entries in declaration order.
    pub fn entries(&self) -> &[(&'static str, Value)] {
        &self.entries
    }

    /// Returns `true` if no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Typed accessor for `U64` entries.
    ///
    /// # Panics
    ///
    /// Panics if the entry is missing or not a `U64` — scenario code reads
    /// back parameters it declared itself, so a mismatch is a spec bug.
    pub fn u64(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Value::U64(v)) => *v,
            other => panic!("param {name:?}: expected U64, got {other:?}"),
        }
    }

    /// Typed accessor for `U64` entries narrowed to `usize`.
    ///
    /// # Panics
    ///
    /// Panics if the entry is missing or not a `U64`.
    pub fn usize(&self, name: &str) -> usize {
        self.u64(name) as usize
    }

    /// Typed accessor for `F64` entries.
    ///
    /// # Panics
    ///
    /// Panics if the entry is missing or not an `F64`.
    pub fn f64(&self, name: &str) -> f64 {
        match self.get(name) {
            Some(Value::F64(v)) => *v,
            other => panic!("param {name:?}: expected F64, got {other:?}"),
        }
    }

    /// Typed accessor for `Bool` entries.
    ///
    /// # Panics
    ///
    /// Panics if the entry is missing or not a `Bool`.
    pub fn bool(&self, name: &str) -> bool {
        match self.get(name) {
            Some(Value::Bool(v)) => *v,
            other => panic!("param {name:?}: expected Bool, got {other:?}"),
        }
    }

    /// Typed accessor for `Str` entries.
    ///
    /// # Panics
    ///
    /// Panics if the entry is missing or not a `Str`.
    pub fn str(&self, name: &str) -> &str {
        match self.get(name) {
            Some(Value::Str(v)) => v,
            other => panic!("param {name:?}: expected Str, got {other:?}"),
        }
    }

    /// Typed accessor for `F64List` entries.
    ///
    /// # Panics
    ///
    /// Panics if the entry is missing or not an `F64List`.
    pub fn f64_list(&self, name: &str) -> &[f64] {
        match self.get(name) {
            Some(Value::F64List(v)) => v,
            other => panic!("param {name:?}: expected F64List, got {other:?}"),
        }
    }

    /// Typed accessor for `U64List` entries.
    ///
    /// # Panics
    ///
    /// Panics if the entry is missing or not a `U64List`.
    pub fn u64_list(&self, name: &str) -> &[u64] {
        match self.get(name) {
            Some(Value::U64List(v)) => v,
            other => panic!("param {name:?}: expected U64List, got {other:?}"),
        }
    }

    /// Renders the entries as a JSON object.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .entries
            .iter()
            .map(|(n, v)| format!("{}:{}", json_string(n), v.to_json()))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_and_typed() {
        let p = Params::new()
            .with("flows", 40usize)
            .with("r1", 10.0)
            .with("label", "x")
            .with("on", true);
        assert_eq!(p.usize("flows"), 40);
        assert_eq!(p.f64("r1"), 10.0);
        assert_eq!(p.str("label"), "x");
        assert!(p.bool("on"));
        let names: Vec<&str> = p.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["flows", "r1", "label", "on"]);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_names_are_rejected() {
        let _ = Params::new().with("a", 1u64).with("a", 2u64);
    }

    #[test]
    #[should_panic(expected = "expected F64")]
    fn type_mismatch_panics() {
        let p = Params::new().with("a", 1u64);
        let _ = p.f64("a");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        let p = Params::new().with("x", 1.5).with("s", "hi");
        assert_eq!(p.to_json(), r#"{"x":1.5,"s":"hi"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::F64(f64::NAN).to_json(), "null");
        assert_eq!(Value::F64(1.25).to_json(), "1.25");
    }

    #[test]
    fn u64_lists_render_as_json_arrays() {
        let v = Value::U64List(vec![167772161, 42]);
        assert_eq!(v.to_json(), "[167772161,42]");
        assert_eq!(v.render(), "[2 pts]");
        let p = Params::new().with("_hh_counts", vec![9u64, 3u64]);
        assert_eq!(p.u64_list("_hh_counts"), &[9, 3]);
        assert_eq!(p.to_json(), r#"{"_hh_counts":[9,3]}"#);
    }

    #[test]
    fn f64_lists_render_as_json_arrays() {
        let v = Value::F64List(vec![1.0, 2.5, f64::NAN]);
        assert_eq!(v.to_json(), "[1,2.5,null]");
        assert_eq!(v.render(), "[3 pts]");
        let p = Params::new().with("_series_y", vec![0.5, 1.5]);
        assert_eq!(p.f64_list("_series_y"), &[0.5, 1.5]);
        assert_eq!(p.to_json(), r#"{"_series_y":[0.5,1.5]}"#);
    }
}
