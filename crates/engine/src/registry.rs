//! The scenario registry: the driver's ordered catalogue of sweeps.

use crate::spec::ScenarioSpec;

/// An ordered collection of scenario specs with substring filtering.
#[derive(Debug, Default)]
pub struct Registry {
    specs: Vec<ScenarioSpec>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a spec.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate id — two experiments writing the same
    /// `BENCH_*.json` would silently clobber each other.
    pub fn register(&mut self, spec: ScenarioSpec) {
        assert!(
            self.specs.iter().all(|s| s.id != spec.id),
            "duplicate scenario id {:?}",
            spec.id
        );
        self.specs.push(spec);
    }

    /// All specs, in registration order.
    pub fn specs(&self) -> &[ScenarioSpec] {
        &self.specs
    }

    /// Number of registered specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Returns `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Specs matching any of `filters` (all specs when `filters` is
    /// empty), cloned in registration order.
    ///
    /// Each filter first tries **boundary matching** — the whole id, or a
    /// prefix ending at a `_` separator — so `e1` selects exactly
    /// `e1_escalation`, not `e10_scaling`/`e11_detection`. Only a filter
    /// with no boundary match at all falls back to substring matching
    /// (`escalation` still finds `e1_escalation`).
    pub fn select(&self, filters: &[String]) -> Vec<ScenarioSpec> {
        if filters.is_empty() {
            return self.specs.to_vec();
        }
        let matches = |id: &str| {
            filters.iter().any(|f| {
                if self.specs.iter().any(|s| boundary(s.id, f)) {
                    boundary(id, f)
                } else {
                    id.contains(f.as_str())
                }
            })
        };
        self.specs
            .iter()
            .filter(|s| matches(s.id))
            .cloned()
            .collect()
    }

    /// The filters that select nothing at all (under the same matching
    /// rules as [`Registry::select`]) — a driver should refuse these
    /// loudly rather than silently running everything else.
    pub fn unmatched<'a>(&self, filters: &'a [String]) -> Vec<&'a str> {
        filters
            .iter()
            .filter(|f| {
                !self
                    .specs
                    .iter()
                    .any(|s| boundary(s.id, f) || s.id.contains(f.as_str()))
            })
            .map(String::as_str)
            .collect()
    }
}

/// The `_`-boundary match rule shared by [`Registry::select`] and
/// [`Registry::unmatched`]: the whole id, or a prefix ending exactly at a
/// `_` separator.
fn boundary(id: &str, f: &str) -> bool {
    id == f || (id.starts_with(f) && id.as_bytes().get(f.len()) == Some(&b'_'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: &'static str) -> ScenarioSpec {
        ScenarioSpec::new(id, "t", "p")
    }

    #[test]
    fn select_prefers_boundary_matches() {
        let mut r = Registry::new();
        r.register(spec("e1_escalation"));
        r.register(spec("e10_scaling"));
        r.register(spec("e2_bandwidth"));
        assert_eq!(r.len(), 3);
        // `e1` has a boundary match, so e10 is NOT dragged in.
        let ids: Vec<&str> = r.select(&["e1".to_string()]).iter().map(|s| s.id).collect();
        assert_eq!(ids, vec!["e1_escalation"]);
        // No boundary match anywhere -> substring fallback.
        let ids: Vec<&str> = r
            .select(&["scaling".to_string()])
            .iter()
            .map(|s| s.id)
            .collect();
        assert_eq!(ids, vec!["e10_scaling"]);
        // Exact full-id match works too.
        assert_eq!(r.select(&["e10_scaling".to_string()]).len(), 1);
        assert_eq!(r.select(&[]).len(), 3);
        assert!(r.select(&["nope".to_string()]).is_empty());
    }

    #[test]
    fn unmatched_reports_only_dead_filters() {
        let mut r = Registry::new();
        r.register(spec("e1_escalation"));
        r.register(spec("e10_scaling"));
        let filters = vec![
            "e1".to_string(),
            "scaling".to_string(),
            "nope".to_string(),
            "e99".to_string(),
        ];
        assert_eq!(r.unmatched(&filters), vec!["nope", "e99"]);
        assert!(r.unmatched(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate scenario id")]
    fn duplicate_ids_are_rejected() {
        let mut r = Registry::new();
        r.register(spec("x"));
        r.register(spec("x"));
    }
}
