//! Allocation-counting global allocator for tests and benches.
//!
//! The hot-path work in this workspace carries "allocation-free in steady
//! state" claims (`route_record`, the netsim event slab); this probe makes
//! them checkable. A test or bench binary installs it with
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: aitf_packet::alloc_probe::CountingAlloc = CountingAlloc;
//! ```
//!
//! and brackets the region under audit with [`CountingAlloc::count`].
//!
//! Counting is **per thread** (a const-initialised thread-local, so the
//! allocator never recurses through lazy TLS setup and needs no teardown):
//! a counted region sees exactly the allocations its own thread performed,
//! which keeps the assertions exact even when libtest runs sibling tests
//! concurrently on other threads. `alloc` and `realloc` both count; frees
//! do not — the steady-state question is "does this code ask the allocator
//! for memory", not "does it balance".

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A `System`-backed allocator that counts every `alloc`/`realloc` made by
/// the current thread.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Total allocations observed on the calling thread since it started.
    pub fn total() -> u64 {
        ALLOCS.with(|n| n.get())
    }

    /// Runs `f` and returns its result plus how many allocations the
    /// calling thread made inside it.
    ///
    /// Only meaningful when the probe is installed as the global
    /// allocator; allocations `f` delegates to *other* threads are not
    /// attributed.
    pub fn count<T>(f: impl FnOnce() -> T) -> (T, u64) {
        let before = Self::total();
        let out = f();
        (out, Self::total() - before)
    }
}

fn bump() {
    ALLOCS.with(|n| n.set(n.get() + 1));
}

// The workspace denies `unsafe_code`; this is the one sanctioned
// exception — a GlobalAlloc shim has no safe spelling, and the zero-alloc
// pins in trace_zero_cost.rs depend on it.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}
