//! The AITF route-record shim.
//!
//! Section II-F assumes "an efficient traceback technique" so the victim's
//! gateway can identify the attacker's gateway and the next AITF node on the
//! attack path. Following the paper's own suggestion (Section IV-B) we model
//! an architecture like TRIAD \[CG00\] "where traceback is automatically
//! provided inside each packet": every AITF **border router** that forwards
//! a packet appends its address to a shim list.
//!
//! The record therefore enumerates, in order from the attacker outwards, the
//! border routers the packet crossed — exactly the *attack path* of Section
//! II-A. Its first entry is the attacker's gateway; entry `k` is the AITF
//! node tried at escalation round `k + 1`.
//!
//! # Memory layout
//!
//! Route records sit on the simulator's forwarding hot path: every border
//! router pushes one hop, and every queued copy of a packet carries the
//! record along. Real AS-level paths are short (mean length under 5), so
//! the first [`INLINE_ROUTE_RECORD`] hops live **inline** in the record —
//! pushing and cloning them never touches the heap. Only a record that
//! grows past the inline cap spills to a single heap allocation (sized for
//! the hard cap up front, so a spilled record never reallocates either).
//! The two representations are observationally identical; the property
//! tests at the bottom of this file pin the equivalence against a plain
//! `Vec` model, including the spill boundary.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::addr::Addr;

/// Maximum number of recorded border routers.
///
/// Real AS-level paths are short (the mean AS path length is under 5); the
/// bound keeps packet size finite and guards against a malicious source
/// pre-filling the record to exhaust memory.
pub const MAX_ROUTE_RECORD: usize = 16;

/// Hops stored inline (no heap allocation). Chosen to cover essentially
/// every real path — the paper's escalation walks AS-level paths whose mean
/// length is under 5 — while keeping the in-packet record one cache line.
pub const INLINE_ROUTE_RECORD: usize = 8;

const _: () = assert!(INLINE_ROUTE_RECORD <= MAX_ROUTE_RECORD);

/// Error returned by [`RouteRecord::push`] when the shim already holds
/// [`MAX_ROUTE_RECORD`] hops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteRecordFull;

impl std::fmt::Display for RouteRecordFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "route record full ({MAX_ROUTE_RECORD} hops)")
    }
}

impl std::error::Error for RouteRecordFull {}

/// Bytes each recorded hop adds to the on-wire packet size.
pub const ROUTE_RECORD_ENTRY_BYTES: u32 = 4;

/// Storage: inline up to [`INLINE_ROUTE_RECORD`] hops, spilled to one
/// heap allocation beyond that. A record never shrinks, so the variant is
/// a pure function of the length: `len <= INLINE_ROUTE_RECORD` is always
/// `Inline`, anything longer is always `Spilled`.
#[derive(Debug)]
enum Hops {
    Inline {
        len: u8,
        buf: [Addr; INLINE_ROUTE_RECORD],
    },
    Spilled(Vec<Addr>),
}

impl Clone for Hops {
    fn clone(&self) -> Self {
        match self {
            Hops::Inline { len, buf } => Hops::Inline {
                len: *len,
                buf: *buf,
            },
            // Not the derived `Vec::clone` (capacity == len): the clone
            // must keep the never-reallocates invariant under later pushes.
            Hops::Spilled(v) => {
                let mut c = Vec::with_capacity(MAX_ROUTE_RECORD);
                c.extend_from_slice(v);
                Hops::Spilled(c)
            }
        }
    }
}

/// The in-packet list of AITF border routers crossed, attacker side first.
#[derive(Clone, Debug)]
pub struct RouteRecord {
    hops: Hops,
}

impl Default for RouteRecord {
    fn default() -> Self {
        RouteRecord::new()
    }
}

impl PartialEq for RouteRecord {
    fn eq(&self, other: &Self) -> bool {
        self.hops() == other.hops()
    }
}

impl Eq for RouteRecord {}

impl Hash for RouteRecord {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.hops().hash(state);
    }
}

impl RouteRecord {
    /// Creates an empty record.
    pub fn new() -> Self {
        RouteRecord {
            hops: Hops::Inline {
                len: 0,
                buf: [Addr::ZERO; INLINE_ROUTE_RECORD],
            },
        }
    }

    /// Creates a record from an explicit hop list, truncating to
    /// [`MAX_ROUTE_RECORD`].
    pub fn from_hops(hops: impl IntoIterator<Item = Addr>) -> Self {
        let mut rr = RouteRecord::new();
        for hop in hops {
            if rr.push(hop).is_err() {
                break;
            }
        }
        rr
    }

    /// Appends a border-router address.
    ///
    /// Returns [`RouteRecordFull`] if the record is full; callers forward
    /// the packet anyway (an overlong path degrades traceback, it must not
    /// break forwarding).
    pub fn push(&mut self, addr: Addr) -> Result<(), RouteRecordFull> {
        match &mut self.hops {
            Hops::Inline { len, buf } => {
                let l = *len as usize;
                // Enforce the hard cap here too, so the bound holds even if
                // INLINE_ROUTE_RECORD is ever tuned up to MAX_ROUTE_RECORD.
                if l >= MAX_ROUTE_RECORD {
                    return Err(RouteRecordFull);
                }
                if l < INLINE_ROUTE_RECORD {
                    buf[l] = addr;
                    *len += 1;
                } else {
                    // Spill once, sized for the hard cap: a spilled record
                    // never reallocates.
                    let mut v = Vec::with_capacity(MAX_ROUTE_RECORD);
                    v.extend_from_slice(&buf[..l]);
                    v.push(addr);
                    self.hops = Hops::Spilled(v);
                }
                Ok(())
            }
            Hops::Spilled(v) => {
                if v.len() >= MAX_ROUTE_RECORD {
                    return Err(RouteRecordFull);
                }
                v.push(addr);
                Ok(())
            }
        }
    }

    /// The recorded hops, first entry closest to the packet's origin.
    pub fn hops(&self) -> &[Addr] {
        match &self.hops {
            Hops::Inline { len, buf } => &buf[..*len as usize],
            Hops::Spilled(v) => v,
        }
    }

    /// Number of recorded hops.
    pub fn len(&self) -> usize {
        match &self.hops {
            Hops::Inline { len, .. } => *len as usize,
            Hops::Spilled(v) => v.len(),
        }
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if the record has spilled past the inline capacity
    /// (diagnostics and allocation tests; semantics never depend on this).
    pub fn is_spilled(&self) -> bool {
        matches!(self.hops, Hops::Spilled(_))
    }

    /// The attacker's gateway: the first border router crossed.
    pub fn attacker_gateway(&self) -> Option<Addr> {
        self.hops().first().copied()
    }

    /// The border router closest to the destination.
    pub fn victim_gateway(&self) -> Option<Addr> {
        self.hops().last().copied()
    }

    /// The AITF node asked to filter at escalation round `round`
    /// (1-indexed): round 1 is the attacker's gateway, round 2 the next
    /// border router, and so on.
    pub fn node_for_round(&self, round: usize) -> Option<Addr> {
        if round == 0 {
            return None;
        }
        self.hops().get(round - 1).copied()
    }

    /// Returns `true` if `addr` appears anywhere on the recorded path.
    pub fn contains(&self, addr: Addr) -> bool {
        self.hops().contains(&addr)
    }

    /// Position of `addr` on the path (0 = attacker's gateway).
    pub fn position(&self, addr: Addr) -> Option<usize> {
        self.hops().iter().position(|&h| h == addr)
    }

    /// Extra on-wire bytes contributed by the record.
    pub fn wire_bytes(&self) -> u32 {
        self.len() as u32 * ROUTE_RECORD_ENTRY_BYTES
    }
}

impl fmt::Display for RouteRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, hop) in self.hops().iter().enumerate() {
            if i > 0 {
                write!(f, " > ")?;
            }
            write!(f, "{hop}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u8) -> Addr {
        Addr::new(10, i, 0, 1)
    }

    #[test]
    fn push_records_in_order() {
        let mut rr = RouteRecord::new();
        assert!(rr.is_empty());
        rr.push(addr(1)).unwrap();
        rr.push(addr(2)).unwrap();
        rr.push(addr(3)).unwrap();
        assert_eq!(rr.hops(), &[addr(1), addr(2), addr(3)]);
        assert_eq!(rr.len(), 3);
    }

    #[test]
    fn gateways_are_path_ends() {
        let rr = RouteRecord::from_hops([addr(1), addr(2), addr(3), addr(4)]);
        assert_eq!(rr.attacker_gateway(), Some(addr(1)));
        assert_eq!(rr.victim_gateway(), Some(addr(4)));
    }

    #[test]
    fn empty_record_has_no_gateways() {
        let rr = RouteRecord::new();
        assert_eq!(rr.attacker_gateway(), None);
        assert_eq!(rr.victim_gateway(), None);
        assert_eq!(rr.node_for_round(1), None);
    }

    #[test]
    fn rounds_walk_away_from_attacker() {
        let rr = RouteRecord::from_hops([addr(1), addr(2), addr(3)]);
        assert_eq!(rr.node_for_round(0), None);
        assert_eq!(rr.node_for_round(1), Some(addr(1)));
        assert_eq!(rr.node_for_round(2), Some(addr(2)));
        assert_eq!(rr.node_for_round(3), Some(addr(3)));
        assert_eq!(rr.node_for_round(4), None);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut rr = RouteRecord::new();
        for i in 0..MAX_ROUTE_RECORD {
            rr.push(addr(i as u8)).unwrap();
        }
        assert!(rr.push(addr(200)).is_err());
        assert_eq!(rr.len(), MAX_ROUTE_RECORD);
    }

    #[test]
    fn from_hops_truncates() {
        let rr = RouteRecord::from_hops((0..40).map(|i| addr(i as u8)));
        assert_eq!(rr.len(), MAX_ROUTE_RECORD);
    }

    #[test]
    fn contains_and_position() {
        let rr = RouteRecord::from_hops([addr(1), addr(2)]);
        assert!(rr.contains(addr(2)));
        assert!(!rr.contains(addr(9)));
        assert_eq!(rr.position(addr(2)), Some(1));
        assert_eq!(rr.position(addr(9)), None);
    }

    #[test]
    fn wire_bytes_grow_with_path() {
        let rr = RouteRecord::from_hops([addr(1), addr(2), addr(3)]);
        assert_eq!(rr.wire_bytes(), 12);
    }

    #[test]
    fn display_renders_path() {
        let rr = RouteRecord::from_hops([addr(1), addr(2)]);
        assert_eq!(rr.to_string(), "[10.1.0.1 > 10.2.0.1]");
    }

    #[test]
    fn spill_happens_exactly_past_the_inline_cap() {
        let mut rr = RouteRecord::new();
        for i in 0..INLINE_ROUTE_RECORD {
            rr.push(addr(i as u8)).unwrap();
            assert!(!rr.is_spilled(), "inline up to the cap ({i})");
        }
        rr.push(addr(100)).unwrap();
        assert!(rr.is_spilled(), "one past the cap spills");
        assert_eq!(rr.len(), INLINE_ROUTE_RECORD + 1);
        assert_eq!(rr.victim_gateway(), Some(addr(100)));
    }

    #[test]
    fn equality_and_hash_ignore_representation() {
        use std::collections::hash_map::DefaultHasher;

        // Build two equal-content records; since records only spill by
        // growing, equal lengths share a representation — but equality must
        // be defined over content regardless, so exercise both paths.
        let a = RouteRecord::from_hops((0..5).map(addr));
        let b = RouteRecord::from_hops((0..5).map(addr));
        assert_eq!(a, b);
        let hash = |rr: &RouteRecord| {
            let mut h = DefaultHasher::new();
            rr.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));

        let long_a = RouteRecord::from_hops((0..12).map(addr));
        let long_b = RouteRecord::from_hops((0..12).map(addr));
        assert!(long_a.is_spilled());
        assert_eq!(long_a, long_b);
        assert_eq!(hash(&long_a), hash(&long_b));
        assert_ne!(a, long_a);
    }
}

#[cfg(test)]
mod proptests {
    //! Inline-vs-`Vec` equivalence: a plain `Vec<Addr>` capped at
    //! [`MAX_ROUTE_RECORD`] is the reference model; the record must agree
    //! with it on every observation across push/contains/iteration and the
    //! wire round-trip, for lengths straddling the spill boundary.

    use super::*;
    use proptest::prelude::*;

    /// Lengths concentrated around the interesting boundaries: empty, the
    /// inline cap, one past it, and the hard cap (plus overflow attempts).
    fn arb_hop_list() -> impl Strategy<Value = Vec<Addr>> {
        proptest::collection::vec(any::<u32>().prop_map(Addr), 0..=MAX_ROUTE_RECORD + 4)
    }

    proptest! {
        #[test]
        fn record_matches_vec_model(hops in arb_hop_list()) {
            let mut model: Vec<Addr> = Vec::new();
            let mut rr = RouteRecord::new();
            for &hop in &hops {
                let accepted = rr.push(hop);
                if model.len() < MAX_ROUTE_RECORD {
                    prop_assert!(accepted.is_ok());
                    model.push(hop);
                } else {
                    prop_assert_eq!(accepted, Err(RouteRecordFull));
                }
            }
            prop_assert_eq!(rr.hops(), model.as_slice());
            prop_assert_eq!(rr.len(), model.len());
            prop_assert_eq!(rr.is_empty(), model.is_empty());
            prop_assert_eq!(rr.is_spilled(), model.len() > INLINE_ROUTE_RECORD);
            prop_assert_eq!(rr.attacker_gateway(), model.first().copied());
            prop_assert_eq!(rr.victim_gateway(), model.last().copied());
            prop_assert_eq!(rr.wire_bytes(), model.len() as u32 * ROUTE_RECORD_ENTRY_BYTES);
            // Every round maps to the model's 0-indexed entries.
            for round in 0..=MAX_ROUTE_RECORD + 1 {
                let expected = round.checked_sub(1).and_then(|i| model.get(i).copied());
                prop_assert_eq!(rr.node_for_round(round), expected);
            }
            // Membership and position agree for present and absent hops.
            for &hop in &model {
                prop_assert!(rr.contains(hop));
                prop_assert_eq!(rr.position(hop), model.iter().position(|&h| h == hop));
            }
            // Iteration order is the model's order.
            let collected: Vec<Addr> = rr.hops().to_vec();
            prop_assert_eq!(collected, model.clone());
            // from_hops over the same input builds the same record.
            prop_assert_eq!(RouteRecord::from_hops(hops.iter().copied()), rr);
        }

        #[test]
        fn wire_roundtrip_across_spill_boundary(hops in arb_hop_list()) {
            use crate::packet::{Header, Packet, TrafficClass};
            use crate::wire::{decode, encode};

            let mut p = Packet::data(
                1,
                Header::udp(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), 1, 2),
                TrafficClass::Legit,
                100,
            );
            p.route_record = RouteRecord::from_hops(hops);
            let decoded = decode(&encode(&p)).expect("valid packet");
            prop_assert_eq!(&decoded.route_record, &p.route_record);
            // Equality is content-based either side of the boundary.
            prop_assert_eq!(decoded.route_record.hops(), p.route_record.hops());
        }
    }
}
