//! The AITF route-record shim.
//!
//! Section II-F assumes "an efficient traceback technique" so the victim's
//! gateway can identify the attacker's gateway and the next AITF node on the
//! attack path. Following the paper's own suggestion (Section IV-B) we model
//! an architecture like TRIAD \[CG00\] "where traceback is automatically
//! provided inside each packet": every AITF **border router** that forwards
//! a packet appends its address to a shim list.
//!
//! The record therefore enumerates, in order from the attacker outwards, the
//! border routers the packet crossed — exactly the *attack path* of Section
//! II-A. Its first entry is the attacker's gateway; entry `k` is the AITF
//! node tried at escalation round `k + 1`.

use std::fmt;

use crate::addr::Addr;

/// Maximum number of recorded border routers.
///
/// Real AS-level paths are short (the mean AS path length is under 5); the
/// bound keeps packet size finite and guards against a malicious source
/// pre-filling the record to exhaust memory.
pub const MAX_ROUTE_RECORD: usize = 16;

/// Error returned by [`RouteRecord::push`] when the shim already holds
/// [`MAX_ROUTE_RECORD`] hops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteRecordFull;

impl std::fmt::Display for RouteRecordFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "route record full ({MAX_ROUTE_RECORD} hops)")
    }
}

impl std::error::Error for RouteRecordFull {}

/// Bytes each recorded hop adds to the on-wire packet size.
pub const ROUTE_RECORD_ENTRY_BYTES: u32 = 4;

/// The in-packet list of AITF border routers crossed, attacker side first.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct RouteRecord {
    hops: Vec<Addr>,
}

impl RouteRecord {
    /// Creates an empty record.
    pub fn new() -> Self {
        RouteRecord { hops: Vec::new() }
    }

    /// Creates a record from an explicit hop list, truncating to
    /// [`MAX_ROUTE_RECORD`].
    pub fn from_hops(hops: impl IntoIterator<Item = Addr>) -> Self {
        let mut rr = RouteRecord::new();
        for hop in hops {
            if rr.push(hop).is_err() {
                break;
            }
        }
        rr
    }

    /// Appends a border-router address.
    ///
    /// Returns [`RouteRecordFull`] if the record is full; callers forward
    /// the packet anyway (an overlong path degrades traceback, it must not
    /// break forwarding).
    pub fn push(&mut self, addr: Addr) -> Result<(), RouteRecordFull> {
        if self.hops.len() >= MAX_ROUTE_RECORD {
            return Err(RouteRecordFull);
        }
        self.hops.push(addr);
        Ok(())
    }

    /// The recorded hops, first entry closest to the packet's origin.
    pub fn hops(&self) -> &[Addr] {
        &self.hops
    }

    /// Number of recorded hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The attacker's gateway: the first border router crossed.
    pub fn attacker_gateway(&self) -> Option<Addr> {
        self.hops.first().copied()
    }

    /// The border router closest to the destination.
    pub fn victim_gateway(&self) -> Option<Addr> {
        self.hops.last().copied()
    }

    /// The AITF node asked to filter at escalation round `round`
    /// (1-indexed): round 1 is the attacker's gateway, round 2 the next
    /// border router, and so on.
    pub fn node_for_round(&self, round: usize) -> Option<Addr> {
        if round == 0 {
            return None;
        }
        self.hops.get(round - 1).copied()
    }

    /// Returns `true` if `addr` appears anywhere on the recorded path.
    pub fn contains(&self, addr: Addr) -> bool {
        self.hops.contains(&addr)
    }

    /// Position of `addr` on the path (0 = attacker's gateway).
    pub fn position(&self, addr: Addr) -> Option<usize> {
        self.hops.iter().position(|&h| h == addr)
    }

    /// Extra on-wire bytes contributed by the record.
    pub fn wire_bytes(&self) -> u32 {
        self.hops.len() as u32 * ROUTE_RECORD_ENTRY_BYTES
    }
}

impl fmt::Display for RouteRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                write!(f, " > ")?;
            }
            write!(f, "{hop}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u8) -> Addr {
        Addr::new(10, i, 0, 1)
    }

    #[test]
    fn push_records_in_order() {
        let mut rr = RouteRecord::new();
        assert!(rr.is_empty());
        rr.push(addr(1)).unwrap();
        rr.push(addr(2)).unwrap();
        rr.push(addr(3)).unwrap();
        assert_eq!(rr.hops(), &[addr(1), addr(2), addr(3)]);
        assert_eq!(rr.len(), 3);
    }

    #[test]
    fn gateways_are_path_ends() {
        let rr = RouteRecord::from_hops([addr(1), addr(2), addr(3), addr(4)]);
        assert_eq!(rr.attacker_gateway(), Some(addr(1)));
        assert_eq!(rr.victim_gateway(), Some(addr(4)));
    }

    #[test]
    fn empty_record_has_no_gateways() {
        let rr = RouteRecord::new();
        assert_eq!(rr.attacker_gateway(), None);
        assert_eq!(rr.victim_gateway(), None);
        assert_eq!(rr.node_for_round(1), None);
    }

    #[test]
    fn rounds_walk_away_from_attacker() {
        let rr = RouteRecord::from_hops([addr(1), addr(2), addr(3)]);
        assert_eq!(rr.node_for_round(0), None);
        assert_eq!(rr.node_for_round(1), Some(addr(1)));
        assert_eq!(rr.node_for_round(2), Some(addr(2)));
        assert_eq!(rr.node_for_round(3), Some(addr(3)));
        assert_eq!(rr.node_for_round(4), None);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut rr = RouteRecord::new();
        for i in 0..MAX_ROUTE_RECORD {
            rr.push(addr(i as u8)).unwrap();
        }
        assert!(rr.push(addr(200)).is_err());
        assert_eq!(rr.len(), MAX_ROUTE_RECORD);
    }

    #[test]
    fn from_hops_truncates() {
        let rr = RouteRecord::from_hops((0..40).map(|i| addr(i as u8)));
        assert_eq!(rr.len(), MAX_ROUTE_RECORD);
    }

    #[test]
    fn contains_and_position() {
        let rr = RouteRecord::from_hops([addr(1), addr(2)]);
        assert!(rr.contains(addr(2)));
        assert!(!rr.contains(addr(9)));
        assert_eq!(rr.position(addr(2)), Some(1));
        assert_eq!(rr.position(addr(9)), None);
    }

    #[test]
    fn wire_bytes_grow_with_path() {
        let rr = RouteRecord::from_hops([addr(1), addr(2), addr(3)]);
        assert_eq!(rr.wire_bytes(), 12);
    }

    #[test]
    fn display_renders_path() {
        let rr = RouteRecord::from_hops([addr(1), addr(2)]);
        assert_eq!(rr.to_string(), "[10.1.0.1 > 10.2.0.1]");
    }
}
