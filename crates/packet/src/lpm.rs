//! Longest-prefix-match table.
//!
//! Real routers forward on aggregated prefixes, not per-host entries; the
//! AITF world gives each network a prefix, so a border router's forwarding
//! table is a handful of prefix routes plus /32s for its own clients.
//! [`LpmTable`] is a binary trie over address bits: insertion is
//! `O(prefix length)`, lookup walks at most 32 nodes and returns the value
//! of the *longest* matching prefix.

use crate::addr::{Addr, Prefix};

#[derive(Debug, Clone)]
struct TrieNode<T> {
    value: Option<T>,
    children: [Option<Box<TrieNode<T>>>; 2],
}

impl<T> Default for TrieNode<T> {
    fn default() -> Self {
        TrieNode {
            value: None,
            children: [None, None],
        }
    }
}

/// A longest-prefix-match map from [`Prefix`] to `T`.
///
/// # Examples
///
/// ```
/// use aitf_packet::{Addr, Prefix};
/// use aitf_packet::lpm::LpmTable;
///
/// let mut t = LpmTable::new();
/// t.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// t.insert("10.1.0.0/16".parse().unwrap(), "fine");
///
/// assert_eq!(t.lookup(Addr::new(10, 1, 2, 3)), Some(&"fine"));
/// assert_eq!(t.lookup(Addr::new(10, 9, 0, 1)), Some(&"coarse"));
/// assert_eq!(t.lookup(Addr::new(11, 0, 0, 1)), None);
/// ```
#[derive(Debug, Clone)]
pub struct LpmTable<T> {
    root: TrieNode<T>,
    len: usize,
}

impl<T> Default for LpmTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LpmTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        LpmTable {
            root: TrieNode::default(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts (or replaces) the value for a prefix. Returns the previous
    /// value if the exact prefix was present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let bit = (prefix.addr().raw() >> (31 - i)) & 1;
            node = node.children[bit as usize].get_or_insert_with(Default::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes the value for an exact prefix.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        // Simple non-compacting removal: the trie nodes stay, the value
        // goes. Tables in this workspace are built once and mutated rarely.
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let bit = (prefix.addr().raw() >> (31 - i)) & 1;
            node = node.children[bit as usize].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// The value of the longest prefix containing `addr`, if any.
    pub fn lookup(&self, addr: Addr) -> Option<&T> {
        let mut node = &self.root;
        let mut best = node.value.as_ref();
        for i in 0..32 {
            let bit = (addr.raw() >> (31 - i)) & 1;
            match node.children[bit as usize].as_deref() {
                Some(child) => {
                    node = child;
                    if child.value.is_some() {
                        best = child.value.as_ref();
                    }
                }
                None => break,
            }
        }
        best
    }

    /// The value for an exact prefix, if present.
    pub fn get_exact(&self, prefix: Prefix) -> Option<&T> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let bit = (prefix.addr().raw() >> (31 - i)) & 1;
            node = node.children[bit as usize].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Returns `true` if any stored prefix contains `addr`.
    pub fn contains(&self, addr: Addr) -> bool {
        self.lookup(addr).is_some()
    }
}

impl<T> FromIterator<(Prefix, T)> for LpmTable<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut t = LpmTable::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().expect("valid prefix")
    }

    #[test]
    fn longest_match_wins() {
        let mut t = LpmTable::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        assert_eq!(t.lookup(Addr::new(10, 1, 2, 3)), Some(&24));
        assert_eq!(t.lookup(Addr::new(10, 1, 9, 3)), Some(&16));
        assert_eq!(t.lookup(Addr::new(10, 9, 9, 9)), Some(&8));
        assert_eq!(t.lookup(Addr::new(12, 0, 0, 1)), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = LpmTable::new();
        t.insert(Prefix::ANY, 0);
        assert_eq!(t.lookup(Addr::new(1, 2, 3, 4)), Some(&0));
        t.insert(p("9.0.0.0/8"), 9);
        assert_eq!(t.lookup(Addr::new(9, 1, 1, 1)), Some(&9));
    }

    #[test]
    fn host_routes_are_most_specific() {
        let mut t = LpmTable::new();
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(Prefix::host(Addr::new(10, 1, 0, 254)), 32);
        assert_eq!(t.lookup(Addr::new(10, 1, 0, 254)), Some(&32));
        assert_eq!(t.lookup(Addr::new(10, 1, 0, 253)), Some(&16));
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut t = LpmTable::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_exact(p("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn remove_exact_only() {
        let mut t = LpmTable::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        assert_eq!(t.remove(p("10.1.0.0/16")), Some(2));
        assert_eq!(t.remove(p("10.1.0.0/16")), None);
        assert_eq!(t.len(), 1);
        // The covering /8 still matches.
        assert_eq!(t.lookup(Addr::new(10, 1, 0, 1)), Some(&1));
    }

    #[test]
    fn from_iter_builds_table() {
        let t: LpmTable<u32> = [(p("10.0.0.0/8"), 1), (p("11.0.0.0/8"), 2)]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 2);
        assert!(t.contains(Addr::new(11, 1, 1, 1)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_prefix() -> impl Strategy<Value = Prefix> {
        (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(Addr(a), l))
    }

    proptest! {
        /// LPM must agree with the brute-force scan over stored prefixes.
        #[test]
        fn lpm_agrees_with_linear_scan(
            prefixes in proptest::collection::vec(arb_prefix(), 1..60),
            probes in proptest::collection::vec(any::<u32>(), 1..60),
        ) {
            let mut table = LpmTable::new();
            for (i, &p) in prefixes.iter().enumerate() {
                table.insert(p, i);
            }
            for &a in &probes {
                let addr = Addr(a);
                // Brute force: longest matching prefix, latest insert wins
                // among equal prefixes.
                let expected = prefixes
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.contains(addr))
                    .max_by_key(|(i, p)| (p.len(), *i))
                    .map(|(i, _)| i);
                prop_assert_eq!(table.lookup(addr).copied(), expected);
            }
        }

        /// Insert-then-remove restores the previous lookup result.
        #[test]
        fn remove_undoes_insert(
            base in proptest::collection::vec(arb_prefix(), 0..20),
            extra in arb_prefix(),
            probe in any::<u32>(),
        ) {
            // Skip when `extra` collides with a base prefix (remove would
            // expose the base value, which is correct but not "undo").
            prop_assume!(!base.contains(&extra));
            let mut table = LpmTable::new();
            for (i, &p) in base.iter().enumerate() {
                table.insert(p, i as i64);
            }
            let before = table.lookup(Addr(probe)).copied();
            table.insert(extra, -1);
            table.remove(extra);
            prop_assert_eq!(table.lookup(Addr(probe)).copied(), before);
        }
    }
}
