//! Packet formats and protocol messages for the AITF reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! - [`Addr`] and [`Prefix`] — IPv4-like addressing with longest-prefix
//!   semantics, used both for end hosts and for the address blocks owned by
//!   AITF networks (Autonomous Domains).
//! - [`FlowLabel`] — the wildcarded flow description carried by AITF
//!   filtering requests ("all packets with IP source address S and IP
//!   destination address D", Section II-A of the paper).
//! - [`Packet`] and [`Header`] — the simulated datagram, including the AITF
//!   *route record shim* appended by border routers (the traceback substrate
//!   assumed in Section II-F, provided in-packet as in the TRIAD
//!   architecture \[CG00\]).
//! - [`AitfMessage`] — the AITF control messages: the filtering request
//!   (Section II-C) and the verification query/reply pair of the 3-way
//!   handshake (Section II-E).
//!
//! The crate is deliberately dependency-free: it is pure data plus matching
//! logic, so the simulator, the filter substrate and the protocol engine can
//! all share it without cycles.

pub mod addr;
pub mod alloc_probe;
pub mod flow;
pub mod lpm;
pub mod message;
pub mod packet;
pub mod route_record;
pub mod wire;

pub use addr::{Addr, AddrParseError, Prefix};
pub use flow::{FlowLabel, PortPattern, ProtoPattern};
pub use lpm::LpmTable;
pub use message::{
    AitfMessage, FilteringRequest, Nonce, PushbackRequest, RequestDestination, VerificationQuery,
    VerificationReply,
};
pub use packet::{Header, Packet, PayloadKind, Protocol, TracebackMark, TrafficClass};
pub use route_record::{RouteRecord, RouteRecordFull, INLINE_ROUTE_RECORD, MAX_ROUTE_RECORD};
