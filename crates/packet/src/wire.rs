//! Binary wire codec for packets.
//!
//! The simulator passes [`Packet`] values by ownership, so encoding is not
//! on the forwarding fast path. The codec exists for three reasons: it fixes
//! the *on-wire size* story (control-message sizes used in queue accounting
//! correspond to a real encoding), it lets integration tests checkpoint
//! traffic captures, and round-tripping under proptest pins down the exact
//! packet semantics.
//!
//! Format (all integers big-endian):
//!
//! ```text
//! u64 id | header (14B) | u8 rr_len | rr_len * u32 | payload
//! header  = u32 src | u32 dst | u8 proto | u16 sport | u16 dport | u8 ttl
//! payload = u8 tag, then tag-specific body
//! ```

use crate::addr::{Addr, Prefix};
use crate::flow::{FlowLabel, PortPattern, ProtoPattern};
use crate::message::{
    AitfMessage, FilteringRequest, Nonce, PushbackRequest, RequestDestination, VerificationQuery,
    VerificationReply,
};
use crate::packet::{Header, Packet, PayloadKind, Protocol, TracebackMark, TrafficClass};
use crate::route_record::RouteRecord;

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure was complete.
    Truncated,
    /// A tag byte had no defined meaning.
    BadTag(u8),
    /// A length field exceeded its bound.
    BadLength(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::BadTag(t) => write!(f, "unknown tag {t}"),
            DecodeError::BadLength(n) => write!(f, "bad length {n}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(128),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn proto_to_byte(p: Protocol) -> u8 {
    match p {
        Protocol::Udp => 17,
        Protocol::Tcp => 6,
        Protocol::Icmp => 1,
        Protocol::Aitf => 254,
        Protocol::Other(n) => n,
    }
}

fn proto_from_byte(b: u8) -> Protocol {
    match b {
        17 => Protocol::Udp,
        6 => Protocol::Tcp,
        1 => Protocol::Icmp,
        254 => Protocol::Aitf,
        n => Protocol::Other(n),
    }
}

fn encode_header(w: &mut Writer, h: &Header) {
    w.u32(h.src.raw());
    w.u32(h.dst.raw());
    w.u8(proto_to_byte(h.proto));
    w.u16(h.src_port);
    w.u16(h.dst_port);
    w.u8(h.ttl);
}

fn decode_header(r: &mut Reader<'_>) -> Result<Header, DecodeError> {
    Ok(Header {
        src: Addr(r.u32()?),
        dst: Addr(r.u32()?),
        proto: proto_from_byte(r.u8()?),
        src_port: r.u16()?,
        dst_port: r.u16()?,
        ttl: r.u8()?,
    })
}

fn encode_flow(w: &mut Writer, f: &FlowLabel) {
    w.u32(f.src.addr().raw());
    w.u8(f.src.len());
    w.u32(f.dst.addr().raw());
    w.u8(f.dst.len());
    match f.proto {
        ProtoPattern::Any => w.u8(0),
        ProtoPattern::Exactly(p) => {
            w.u8(1);
            w.u8(proto_to_byte(p));
        }
    }
    for port in [f.src_port, f.dst_port] {
        match port {
            PortPattern::Any => w.u8(0),
            PortPattern::Exactly(p) => {
                w.u8(1);
                w.u16(p);
            }
        }
    }
}

fn decode_flow(r: &mut Reader<'_>) -> Result<FlowLabel, DecodeError> {
    let src_addr = Addr(r.u32()?);
    let src_len = r.u8()?;
    let dst_addr = Addr(r.u32()?);
    let dst_len = r.u8()?;
    if src_len > 32 {
        return Err(DecodeError::BadLength(src_len as usize));
    }
    if dst_len > 32 {
        return Err(DecodeError::BadLength(dst_len as usize));
    }
    let proto = match r.u8()? {
        0 => ProtoPattern::Any,
        1 => ProtoPattern::Exactly(proto_from_byte(r.u8()?)),
        t => return Err(DecodeError::BadTag(t)),
    };
    let mut ports = [PortPattern::Any; 2];
    for slot in &mut ports {
        *slot = match r.u8()? {
            0 => PortPattern::Any,
            1 => PortPattern::Exactly(r.u16()?),
            t => return Err(DecodeError::BadTag(t)),
        };
    }
    Ok(FlowLabel {
        src: Prefix::new(src_addr, src_len),
        dst: Prefix::new(dst_addr, dst_len),
        proto,
        src_port: ports[0],
        dst_port: ports[1],
    })
}

fn encode_route_record(w: &mut Writer, rr: &RouteRecord) {
    w.u8(rr.len() as u8);
    for hop in rr.hops() {
        w.u32(hop.raw());
    }
}

fn decode_route_record(r: &mut Reader<'_>) -> Result<RouteRecord, DecodeError> {
    let n = r.u8()? as usize;
    if n > crate::route_record::MAX_ROUTE_RECORD {
        return Err(DecodeError::BadLength(n));
    }
    let mut rr = RouteRecord::new();
    for _ in 0..n {
        rr.push(Addr(r.u32()?))
            .expect("length checked against capacity");
    }
    Ok(rr)
}

fn dest_to_byte(d: RequestDestination) -> u8 {
    match d {
        RequestDestination::VictimGateway => 0,
        RequestDestination::AttackerGateway => 1,
        RequestDestination::Attacker => 2,
    }
}

fn dest_from_byte(b: u8) -> Result<RequestDestination, DecodeError> {
    match b {
        0 => Ok(RequestDestination::VictimGateway),
        1 => Ok(RequestDestination::AttackerGateway),
        2 => Ok(RequestDestination::Attacker),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn encode_message(w: &mut Writer, m: &AitfMessage) {
    match m {
        AitfMessage::FilteringRequest(req) => {
            w.u8(0);
            w.u64(req.id);
            encode_flow(w, &req.flow);
            w.u8(dest_to_byte(req.dest));
            w.u64(req.duration_ns);
            encode_route_record(w, &req.path);
            w.u8(req.round);
        }
        AitfMessage::VerificationQuery(q) => {
            w.u8(1);
            w.u64(q.request_id);
            encode_flow(w, &q.flow);
            w.u64(q.nonce.0);
        }
        AitfMessage::VerificationReply(rep) => {
            w.u8(2);
            w.u64(rep.request_id);
            encode_flow(w, &rep.flow);
            w.u64(rep.nonce.0);
            w.u8(rep.confirm as u8);
        }
        AitfMessage::Pushback(p) => {
            w.u8(3);
            w.u64(p.id);
            encode_flow(w, &p.flow);
            w.u64(p.limit_bps);
            w.u64(p.duration_ns);
            w.u8(p.depth);
        }
    }
}

fn decode_message(r: &mut Reader<'_>) -> Result<AitfMessage, DecodeError> {
    match r.u8()? {
        0 => Ok(AitfMessage::FilteringRequest(FilteringRequest {
            id: r.u64()?,
            flow: decode_flow(r)?,
            dest: dest_from_byte(r.u8()?)?,
            duration_ns: r.u64()?,
            path: decode_route_record(r)?,
            round: r.u8()?,
        })),
        1 => Ok(AitfMessage::VerificationQuery(VerificationQuery {
            request_id: r.u64()?,
            flow: decode_flow(r)?,
            nonce: Nonce(r.u64()?),
        })),
        2 => {
            let request_id = r.u64()?;
            let flow = decode_flow(r)?;
            let nonce = Nonce(r.u64()?);
            let confirm = match r.u8()? {
                0 => false,
                1 => true,
                t => return Err(DecodeError::BadTag(t)),
            };
            Ok(AitfMessage::VerificationReply(VerificationReply {
                request_id,
                flow,
                nonce,
                confirm,
            }))
        }
        3 => Ok(AitfMessage::Pushback(PushbackRequest {
            id: r.u64()?,
            flow: decode_flow(r)?,
            limit_bps: r.u64()?,
            duration_ns: r.u64()?,
            depth: r.u8()?,
        })),
        t => Err(DecodeError::BadTag(t)),
    }
}

/// Encodes a packet to bytes.
pub fn encode(pkt: &Packet) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(pkt.id);
    encode_header(&mut w, &pkt.header);
    encode_route_record(&mut w, &pkt.route_record);
    match pkt.mark {
        None => w.u8(0),
        Some(m) => {
            w.u8(1);
            w.u32(m.router.raw());
            w.u8(m.distance);
        }
    }
    match &pkt.payload {
        PayloadKind::Data(class) => {
            w.u8(0);
            w.u8(match class {
                TrafficClass::Legit => 0,
                TrafficClass::Attack => 1,
            });
            w.u32(pkt.size_bytes);
        }
        PayloadKind::Aitf(msg) => {
            w.u8(1);
            encode_message(&mut w, msg);
            w.u32(pkt.size_bytes);
        }
    }
    w.buf
}

/// Decodes a packet from bytes produced by [`encode`].
///
/// Trailing bytes are rejected, so the codec is bijective on valid packets.
pub fn decode(bytes: &[u8]) -> Result<Packet, DecodeError> {
    let mut r = Reader::new(bytes);
    let id = r.u64()?;
    let header = decode_header(&mut r)?;
    let route_record = decode_route_record(&mut r)?;
    let mark = match r.u8()? {
        0 => None,
        1 => Some(TracebackMark {
            router: Addr(r.u32()?),
            distance: r.u8()?,
        }),
        t => return Err(DecodeError::BadTag(t)),
    };
    let payload = match r.u8()? {
        0 => {
            let class = match r.u8()? {
                0 => TrafficClass::Legit,
                1 => TrafficClass::Attack,
                t => return Err(DecodeError::BadTag(t)),
            };
            PayloadKind::Data(class)
        }
        1 => PayloadKind::Aitf(decode_message(&mut r)?),
        t => return Err(DecodeError::BadTag(t)),
    };
    let size_bytes = r.u32()?;
    if !r.finished() {
        return Err(DecodeError::BadLength(bytes.len()));
    }
    Ok(Packet {
        id,
        header,
        route_record,
        mark,
        payload,
        size_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TrafficClass;

    fn sample_data_packet() -> Packet {
        let h = Header::udp(Addr::new(10, 9, 0, 7), Addr::new(10, 1, 0, 1), 4000, 53);
        let mut p = Packet::data(77, h, TrafficClass::Attack, 512);
        p.route_record.push(Addr::new(10, 9, 0, 254)).unwrap();
        p.route_record.push(Addr::new(10, 8, 0, 254)).unwrap();
        p
    }

    fn sample_control_packet() -> Packet {
        let flow = FlowLabel::src_dst(Addr::new(10, 9, 0, 7), Addr::new(10, 1, 0, 1));
        let req = FilteringRequest::new(flow, RequestDestination::AttackerGateway, 60_000_000_000)
            .with_id(5)
            .with_round(2)
            .with_path(RouteRecord::from_hops([Addr::new(10, 9, 0, 254)]));
        Packet::control(
            78,
            Addr::new(10, 1, 0, 254),
            Addr::new(10, 9, 0, 254),
            AitfMessage::FilteringRequest(req),
        )
    }

    #[test]
    fn data_packet_roundtrip() {
        let p = sample_data_packet();
        assert_eq!(decode(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn control_packet_roundtrip() {
        let p = sample_control_packet();
        assert_eq!(decode(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn verification_messages_roundtrip() {
        let flow = FlowLabel::src_dst(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2));
        for msg in [
            AitfMessage::VerificationQuery(VerificationQuery {
                request_id: 9,
                flow,
                nonce: Nonce(0xdead_beef),
            }),
            AitfMessage::VerificationReply(VerificationReply {
                request_id: 9,
                flow,
                nonce: Nonce(0xdead_beef),
                confirm: true,
            }),
        ] {
            let p = Packet::control(1, Addr::new(3, 3, 3, 3), Addr::new(4, 4, 4, 4), msg);
            assert_eq!(decode(&encode(&p)).unwrap(), p);
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = encode(&sample_data_packet());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&sample_data_packet());
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(DecodeError::BadLength(bytes.len())));
    }

    #[test]
    fn bad_payload_tag_is_rejected() {
        let p = sample_data_packet();
        let mut bytes = encode(&p);
        // Payload tag sits after id (8) + header (14) + rr (1 + 2*4) + mark tag (1).
        let tag_pos = 8 + 14 + 1 + 8 + 1;
        bytes[tag_pos] = 9;
        assert_eq!(decode(&bytes), Err(DecodeError::BadTag(9)));
    }
}

#[cfg(test)]
mod seeded_roundtrips {
    //! Seeded randomized round-trips with hand-rolled generators: unlike
    //! the proptest module below, these enumerate every message variant
    //! explicitly, pin a named seed, and also check the codec's size
    //! accounting (`encode(p).len()` is a pure function of the packet).

    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const CASES: usize = 512;
    const SEED: u64 = 0xA17F;

    fn addr(rng: &mut StdRng) -> Addr {
        Addr(rng.gen())
    }

    fn prefix(rng: &mut StdRng) -> Prefix {
        Prefix::new(addr(rng), rng.gen_range(0u64..33) as u8)
    }

    fn flow(rng: &mut StdRng) -> FlowLabel {
        FlowLabel {
            src: prefix(rng),
            dst: prefix(rng),
            proto: if rng.gen_bool(0.5) {
                ProtoPattern::Any
            } else {
                ProtoPattern::Exactly(proto_from_byte(rng.gen()))
            },
            src_port: if rng.gen_bool(0.5) {
                PortPattern::Any
            } else {
                PortPattern::Exactly(rng.gen())
            },
            dst_port: if rng.gen_bool(0.5) {
                PortPattern::Any
            } else {
                PortPattern::Exactly(rng.gen())
            },
        }
    }

    fn route_record(rng: &mut StdRng) -> RouteRecord {
        let n = rng.gen_range(0u64..=crate::route_record::MAX_ROUTE_RECORD as u64);
        let mut rr = RouteRecord::new();
        for _ in 0..n {
            rr.push(addr(rng)).expect("within capacity");
        }
        rr
    }

    fn header(rng: &mut StdRng) -> Header {
        Header {
            src: addr(rng),
            dst: addr(rng),
            proto: proto_from_byte(rng.gen()),
            src_port: rng.gen(),
            dst_port: rng.gen(),
            ttl: rng.gen(),
        }
    }

    /// One message of the variant selected by `variant % 4`.
    fn message(variant: u8, rng: &mut StdRng) -> AitfMessage {
        match variant % 4 {
            0 => AitfMessage::FilteringRequest(FilteringRequest {
                id: rng.gen(),
                flow: flow(rng),
                dest: dest_from_byte(rng.gen_range(0u64..3) as u8).expect("in range"),
                duration_ns: rng.gen(),
                path: route_record(rng),
                round: rng.gen(),
            }),
            1 => AitfMessage::VerificationQuery(VerificationQuery {
                request_id: rng.gen(),
                flow: flow(rng),
                nonce: Nonce(rng.gen()),
            }),
            2 => AitfMessage::VerificationReply(VerificationReply {
                request_id: rng.gen(),
                flow: flow(rng),
                nonce: Nonce(rng.gen()),
                confirm: rng.gen_bool(0.5),
            }),
            _ => AitfMessage::Pushback(PushbackRequest {
                id: rng.gen(),
                flow: flow(rng),
                limit_bps: rng.gen(),
                duration_ns: rng.gen(),
                depth: rng.gen(),
            }),
        }
    }

    #[test]
    fn header_roundtrips() {
        let mut rng = StdRng::seed_from_u64(SEED);
        for _ in 0..CASES {
            let h = header(&mut rng);
            let mut w = Writer::new();
            encode_header(&mut w, &h);
            assert_eq!(w.buf.len(), 14, "header wire size is fixed");
            let decoded = decode_header(&mut Reader::new(&w.buf)).expect("valid header");
            assert_eq!(decoded, h);
        }
    }

    #[test]
    fn flow_label_roundtrips() {
        let mut rng = StdRng::seed_from_u64(SEED + 1);
        for _ in 0..CASES {
            let f = flow(&mut rng);
            let mut w = Writer::new();
            encode_flow(&mut w, &f);
            let decoded = decode_flow(&mut Reader::new(&w.buf)).expect("valid flow");
            assert_eq!(decoded, f);
        }
    }

    #[test]
    fn every_message_variant_roundtrips() {
        let mut rng = StdRng::seed_from_u64(SEED + 2);
        for case in 0..CASES {
            let m = message(case as u8, &mut rng);
            let mut w = Writer::new();
            encode_message(&mut w, &m);
            let decoded = decode_message(&mut Reader::new(&w.buf)).expect("valid message");
            assert_eq!(decoded, m, "variant {}", case % 4);
        }
    }

    #[test]
    fn full_packets_roundtrip_and_reject_truncation() {
        let mut rng = StdRng::seed_from_u64(SEED + 3);
        for case in 0..CASES {
            let payload = if rng.gen_bool(0.5) {
                PayloadKind::Data(if rng.gen_bool(0.5) {
                    TrafficClass::Attack
                } else {
                    TrafficClass::Legit
                })
            } else {
                PayloadKind::Aitf(message(case as u8, &mut rng))
            };
            let pkt = Packet {
                id: rng.gen(),
                header: header(&mut rng),
                route_record: route_record(&mut rng),
                mark: if rng.gen_bool(0.3) {
                    Some(TracebackMark {
                        router: addr(&mut rng),
                        distance: rng.gen(),
                    })
                } else {
                    None
                },
                payload,
                size_bytes: rng.gen(),
            };
            let bytes = encode(&pkt);
            assert_eq!(decode(&bytes).expect("valid packet"), pkt);
            // Size accounting: re-encoding is byte-identical.
            assert_eq!(encode(&pkt), bytes);
            // Any strict prefix must fail (sampled to keep the test fast).
            let cut = rng.gen_range(0u64..bytes.len() as u64) as usize;
            assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_addr() -> impl Strategy<Value = Addr> {
        any::<u32>().prop_map(Addr)
    }

    fn arb_prefix() -> impl Strategy<Value = Prefix> {
        (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(Addr(a), l))
    }

    fn arb_proto() -> impl Strategy<Value = Protocol> {
        any::<u8>().prop_map(proto_from_byte)
    }

    fn arb_flow() -> impl Strategy<Value = FlowLabel> {
        (
            arb_prefix(),
            arb_prefix(),
            proptest::option::of(arb_proto()),
            proptest::option::of(any::<u16>()),
            proptest::option::of(any::<u16>()),
        )
            .prop_map(|(src, dst, proto, sp, dp)| FlowLabel {
                src,
                dst,
                proto: proto.map_or(ProtoPattern::Any, ProtoPattern::Exactly),
                src_port: sp.map_or(PortPattern::Any, PortPattern::Exactly),
                dst_port: dp.map_or(PortPattern::Any, PortPattern::Exactly),
            })
    }

    fn arb_route_record() -> impl Strategy<Value = RouteRecord> {
        proptest::collection::vec(arb_addr(), 0..=crate::route_record::MAX_ROUTE_RECORD)
            .prop_map(RouteRecord::from_hops)
    }

    fn arb_message() -> impl Strategy<Value = AitfMessage> {
        prop_oneof![
            (
                any::<u64>(),
                arb_flow(),
                0u8..3,
                any::<u64>(),
                arb_route_record(),
                any::<u8>()
            )
                .prop_map(|(id, flow, dest, dur, path, round)| {
                    AitfMessage::FilteringRequest(FilteringRequest {
                        id,
                        flow,
                        dest: dest_from_byte(dest).expect("dest in range"),
                        duration_ns: dur,
                        path,
                        round,
                    })
                }),
            (any::<u64>(), arb_flow(), any::<u64>()).prop_map(|(id, flow, nonce)| {
                AitfMessage::VerificationQuery(VerificationQuery {
                    request_id: id,
                    flow,
                    nonce: Nonce(nonce),
                })
            }),
            (any::<u64>(), arb_flow(), any::<u64>(), any::<bool>()).prop_map(
                |(id, flow, nonce, confirm)| {
                    AitfMessage::VerificationReply(VerificationReply {
                        request_id: id,
                        flow,
                        nonce: Nonce(nonce),
                        confirm,
                    })
                }
            ),
            (
                any::<u64>(),
                arb_flow(),
                any::<u64>(),
                any::<u64>(),
                any::<u8>()
            )
                .prop_map(|(id, flow, limit, dur, depth)| {
                    AitfMessage::Pushback(PushbackRequest {
                        id,
                        flow,
                        limit_bps: limit,
                        duration_ns: dur,
                        depth,
                    })
                }),
        ]
    }

    fn arb_packet() -> impl Strategy<Value = Packet> {
        (
            any::<u64>(),
            arb_addr(),
            arb_addr(),
            arb_proto(),
            any::<u16>(),
            any::<u16>(),
            any::<u8>(),
            arb_route_record(),
            proptest::option::of(
                (arb_addr(), any::<u8>())
                    .prop_map(|(router, distance)| TracebackMark { router, distance }),
            ),
            prop_oneof![
                any::<bool>().prop_map(|a| PayloadKind::Data(if a {
                    TrafficClass::Attack
                } else {
                    TrafficClass::Legit
                })),
                arb_message().prop_map(PayloadKind::Aitf),
            ],
            40u32..20_000,
        )
            .prop_map(
                |(id, src, dst, proto, sp, dp, ttl, rr, mark, payload, size)| Packet {
                    id,
                    header: Header {
                        src,
                        dst,
                        proto,
                        src_port: sp,
                        dst_port: dp,
                        ttl,
                    },
                    route_record: rr,
                    mark,
                    payload,
                    size_bytes: size,
                },
            )
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(pkt in arb_packet()) {
            let decoded = decode(&encode(&pkt)).expect("valid packet must decode");
            prop_assert_eq!(decoded, pkt);
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode(&bytes);
        }

        #[test]
        fn flow_label_roundtrip(flow in arb_flow()) {
            let mut w = Writer::new();
            encode_flow(&mut w, &flow);
            let mut r = Reader::new(&w.buf);
            let decoded = decode_flow(&mut r).expect("valid flow must decode");
            prop_assert_eq!(decoded, flow);
        }
    }
}
