//! AITF control messages.
//!
//! Section II-C: *"The AITF protocol involves only one type of message: a
//! filtering request. A filtering request contains a flow label and a type
//! field"* — the type says whether the request is addressed to the victim's
//! gateway, the attacker's gateway or the attacker.
//!
//! Section II-E adds two more messages for request verification: a
//! *verification query* and a *verification reply*, each carrying a flow
//! label and a nonce, forming the 3-way handshake that stops off-path nodes
//! from forging requests.
//!
//! In this reproduction the request additionally carries the attack path
//! (copied from the route record of an attack packet the victim actually
//! received) and the escalation round, so each recipient can locate the AITF
//! node being asked to filter without global state. Durations are expressed
//! in nanoseconds, the simulator's native unit.

use std::fmt;

use crate::flow::FlowLabel;
use crate::route_record::RouteRecord;

/// The `type` field of a filtering request: who the request is addressed to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RequestDestination {
    /// From the victim to its own gateway (or, during escalation, from a
    /// gateway playing the victim role to *its* gateway).
    VictimGateway,
    /// From the victim's gateway to the attacker's gateway (or to the round-k
    /// node on the attack path during escalation).
    AttackerGateway,
    /// From the attacker's gateway to the attacker itself.
    Attacker,
}

impl fmt::Display for RequestDestination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RequestDestination::VictimGateway => "to-victim-gw",
            RequestDestination::AttackerGateway => "to-attacker-gw",
            RequestDestination::Attacker => "to-attacker",
        };
        f.write_str(s)
    }
}

/// A request to block a flow for a period of time (Section II-A: *"a request
/// to block a flow of packets ... for the next T time units"*).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FilteringRequest {
    /// Correlation id, assigned by the original requestor and preserved
    /// across propagation and escalation.
    pub id: u64,
    /// The undesired flow.
    pub flow: FlowLabel,
    /// Who this copy of the request is addressed to.
    pub dest: RequestDestination,
    /// Requested blocking duration `T`, in nanoseconds.
    pub duration_ns: u64,
    /// The attack path: route record copied from a received attack packet.
    /// Empty when the requestor has no sample (e.g. a pre-emptive request).
    pub path: RouteRecord,
    /// Escalation round, 1-indexed: round 1 targets the attacker's gateway,
    /// round 2 the next AITF node on the attack path, and so on (Section
    /// II-B: *"the mechanism proceeds in rounds"*).
    pub round: u8,
}

impl FilteringRequest {
    /// Builds a round-1 request with no attack-path sample.
    pub fn new(flow: FlowLabel, dest: RequestDestination, duration_ns: u64) -> Self {
        FilteringRequest {
            id: 0,
            flow,
            dest,
            duration_ns,
            path: RouteRecord::new(),
            round: 1,
        }
    }

    /// Attaches the attack-path sample.
    pub fn with_path(mut self, path: RouteRecord) -> Self {
        self.path = path;
        self
    }

    /// Sets the correlation id.
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }

    /// Sets the escalation round.
    pub fn with_round(mut self, round: u8) -> Self {
        self.round = round;
        self
    }

    /// Returns a copy re-addressed to `dest`.
    pub fn readdressed(&self, dest: RequestDestination) -> Self {
        let mut copy = self.clone();
        copy.dest = dest;
        copy
    }

    /// Returns a copy escalated by one round and re-addressed to the
    /// victim-gateway role (the shape a gateway sends to *its* gateway when
    /// the attacker side did not cooperate).
    pub fn escalated(&self) -> Self {
        let mut copy = self.clone();
        copy.round = copy.round.saturating_add(1);
        copy.dest = RequestDestination::VictimGateway;
        copy
    }
}

impl fmt::Display for FilteringRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "req#{} {} round={} {} T={}ms",
            self.id,
            self.dest,
            self.round,
            self.flow,
            self.duration_ns / 1_000_000
        )
    }
}

/// A random nonce binding a verification reply to its query.
///
/// Nonces are generated from the simulator's seeded RNG; what matters for
/// the security argument is that an **off-path** node never observes them
/// (Section II-F assumes off-path traffic monitoring is impossible).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Nonce(pub u64);

impl fmt::Display for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// "Do you really not want this traffic flow?" — sent by the attacker's
/// gateway to the claimed victim (Section II-E, step ii).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerificationQuery {
    /// The request being verified.
    pub request_id: u64,
    /// The flow in question.
    pub flow: FlowLabel,
    /// Nonce that the reply must echo.
    pub nonce: Nonce,
}

/// The victim's answer to a [`VerificationQuery`] (Section II-E, step iii).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerificationReply {
    /// The request being verified.
    pub request_id: u64,
    /// Must equal the query's flow label.
    pub flow: FlowLabel,
    /// Must equal the query's nonce.
    pub nonce: Nonce,
    /// `true` if the victim confirms it wants the flow blocked.
    pub confirm: bool,
}

/// A hop-by-hop pushback request (the \[MBF+01\] baseline re-implemented
/// for comparison, Section V). A congested router asks its *adjacent
/// upstream* router to rate-limit an aggregate; recipients recursively
/// propagate further upstream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PushbackRequest {
    /// Correlation id.
    pub id: u64,
    /// The aggregate to limit.
    pub flow: FlowLabel,
    /// Target rate in bits/second (0 = drop everything, matching AITF's
    /// blocking semantics for a fair comparison).
    pub limit_bps: u64,
    /// How long the limit should stay, in nanoseconds.
    pub duration_ns: u64,
    /// Hops travelled from the congested router (loop/depth guard).
    pub depth: u8,
}

/// The AITF control-message set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AitfMessage {
    /// A filtering request (the protocol's single basic message).
    FilteringRequest(FilteringRequest),
    /// Handshake query from the attacker's gateway to the victim.
    VerificationQuery(VerificationQuery),
    /// Handshake reply from the victim.
    VerificationReply(VerificationReply),
    /// Hop-by-hop pushback (baseline protocol, not part of AITF proper).
    Pushback(PushbackRequest),
}

impl AitfMessage {
    /// Returns the flow label the message is about.
    pub fn flow(&self) -> &FlowLabel {
        match self {
            AitfMessage::FilteringRequest(r) => &r.flow,
            AitfMessage::VerificationQuery(q) => &q.flow,
            AitfMessage::VerificationReply(r) => &r.flow,
            AitfMessage::Pushback(p) => &p.flow,
        }
    }
}

impl fmt::Display for AitfMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AitfMessage::FilteringRequest(r) => write!(f, "{r}"),
            AitfMessage::VerificationQuery(q) => {
                write!(
                    f,
                    "verify-query req#{} {} nonce={}",
                    q.request_id, q.flow, q.nonce
                )
            }
            AitfMessage::VerificationReply(r) => write!(
                f,
                "verify-reply req#{} {} nonce={} confirm={}",
                r.request_id, r.flow, r.nonce, r.confirm
            ),
            AitfMessage::Pushback(p) => write!(
                f,
                "pushback#{} {} limit={}bps depth={}",
                p.id, p.flow, p.limit_bps, p.depth
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn flow() -> FlowLabel {
        FlowLabel::src_dst(Addr::new(10, 9, 0, 7), Addr::new(10, 1, 0, 1))
    }

    #[test]
    fn new_request_starts_at_round_one() {
        let r = FilteringRequest::new(flow(), RequestDestination::VictimGateway, 60);
        assert_eq!(r.round, 1);
        assert!(r.path.is_empty());
    }

    #[test]
    fn readdressed_changes_only_dest() {
        let r = FilteringRequest::new(flow(), RequestDestination::VictimGateway, 60).with_id(5);
        let r2 = r.readdressed(RequestDestination::AttackerGateway);
        assert_eq!(r2.dest, RequestDestination::AttackerGateway);
        assert_eq!(r2.id, 5);
        assert_eq!(r2.round, r.round);
        assert_eq!(r2.flow, r.flow);
    }

    #[test]
    fn escalated_bumps_round_and_targets_victim_gateway() {
        let r = FilteringRequest::new(flow(), RequestDestination::AttackerGateway, 60);
        let e = r.escalated();
        assert_eq!(e.round, 2);
        assert_eq!(e.dest, RequestDestination::VictimGateway);
        let e2 = e.escalated();
        assert_eq!(e2.round, 3);
    }

    #[test]
    fn escalation_round_saturates() {
        let mut r = FilteringRequest::new(flow(), RequestDestination::VictimGateway, 60);
        r.round = u8::MAX;
        assert_eq!(r.escalated().round, u8::MAX);
    }

    #[test]
    fn message_flow_accessor() {
        let f = flow();
        let q = AitfMessage::VerificationQuery(VerificationQuery {
            request_id: 1,
            flow: f,
            nonce: Nonce(42),
        });
        assert_eq!(*q.flow(), f);
    }

    #[test]
    fn display_includes_round_and_duration() {
        let r = FilteringRequest::new(flow(), RequestDestination::AttackerGateway, 60_000_000_000)
            .with_id(9)
            .with_round(2);
        let s = r.to_string();
        assert!(s.contains("req#9"));
        assert!(s.contains("round=2"));
        assert!(s.contains("T=60000ms"));
    }
}
