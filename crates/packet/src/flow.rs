//! Wildcarded flow labels.
//!
//! Section II-A of the paper: *"A flow label is a set of values that
//! captures the common characteristics of a traffic flow — e.g., 'all
//! packets with IP source address S and IP destination address D'."*
//!
//! A [`FlowLabel`] is the predicate carried inside filtering requests and
//! installed into filter tables. Every field is a pattern that may be fully
//! wildcarded, so one label can describe anything from a single TCP
//! connection to "everything from network 10.1.0.0/16".

use std::fmt;

use crate::addr::{Addr, Prefix};
use crate::packet::{Header, Protocol};

/// Pattern over the 8-bit protocol field: a specific protocol or any.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ProtoPattern {
    /// Matches every protocol.
    #[default]
    Any,
    /// Matches exactly one protocol.
    Exactly(Protocol),
}

impl ProtoPattern {
    /// Returns `true` if the pattern matches `proto`.
    pub fn matches(self, proto: Protocol) -> bool {
        match self {
            ProtoPattern::Any => true,
            ProtoPattern::Exactly(p) => p == proto,
        }
    }

    /// Returns `true` if every protocol matched by `other` is matched by `self`.
    pub fn covers(self, other: ProtoPattern) -> bool {
        match (self, other) {
            (ProtoPattern::Any, _) => true,
            (ProtoPattern::Exactly(a), ProtoPattern::Exactly(b)) => a == b,
            (ProtoPattern::Exactly(_), ProtoPattern::Any) => false,
        }
    }
}

/// Pattern over a 16-bit port field: a specific port or any.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PortPattern {
    /// Matches every port.
    #[default]
    Any,
    /// Matches exactly one port.
    Exactly(u16),
}

impl PortPattern {
    /// Returns `true` if the pattern matches `port`.
    pub fn matches(self, port: u16) -> bool {
        match self {
            PortPattern::Any => true,
            PortPattern::Exactly(p) => p == port,
        }
    }

    /// Returns `true` if every port matched by `other` is matched by `self`.
    pub fn covers(self, other: PortPattern) -> bool {
        match (self, other) {
            (PortPattern::Any, _) => true,
            (PortPattern::Exactly(a), PortPattern::Exactly(b)) => a == b,
            (PortPattern::Exactly(_), PortPattern::Any) => false,
        }
    }
}

/// A wildcarded flow label: the predicate inside every filtering request.
///
/// Source and destination addresses are matched by prefix; protocol and
/// ports by exact value or wildcard. The common case in the paper is a
/// `(source host, destination host)` pair with everything else wildcarded —
/// [`FlowLabel::src_dst`] builds exactly that.
///
/// # Examples
///
/// ```
/// use aitf_packet::{Addr, FlowLabel, Header};
///
/// let attacker = Addr::new(10, 9, 0, 7);
/// let victim = Addr::new(10, 1, 0, 1);
/// let label = FlowLabel::src_dst(attacker, victim);
///
/// let pkt = Header::udp(attacker, victim, 4000, 53);
/// assert!(label.matches(&pkt));
///
/// let other = Header::udp(Addr::new(10, 9, 0, 8), victim, 4000, 53);
/// assert!(!label.matches(&other));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowLabel {
    /// Source address pattern (prefix containment).
    pub src: Prefix,
    /// Destination address pattern (prefix containment).
    pub dst: Prefix,
    /// Protocol pattern.
    pub proto: ProtoPattern,
    /// Source port pattern.
    pub src_port: PortPattern,
    /// Destination port pattern.
    pub dst_port: PortPattern,
}

impl FlowLabel {
    /// The label that matches every packet.
    pub const ANY: FlowLabel = FlowLabel {
        src: Prefix::ANY,
        dst: Prefix::ANY,
        proto: ProtoPattern::Any,
        src_port: PortPattern::Any,
        dst_port: PortPattern::Any,
    };

    /// Builds the classic AITF label: one source host to one destination
    /// host, all protocols and ports.
    pub fn src_dst(src: Addr, dst: Addr) -> Self {
        FlowLabel {
            src: Prefix::host(src),
            dst: Prefix::host(dst),
            ..FlowLabel::ANY
        }
    }

    /// Builds a label matching everything from `src` (a network prefix) to a
    /// destination host — the shape used when blocking a whole misbehaving
    /// network after disconnection.
    pub fn net_to_host(src: Prefix, dst: Addr) -> Self {
        FlowLabel {
            src,
            dst: Prefix::host(dst),
            ..FlowLabel::ANY
        }
    }

    /// Builds a label matching everything addressed to `dst`, regardless of
    /// source — the shape a victim uses against spoofed floods it cannot
    /// attribute.
    pub fn to_host(dst: Addr) -> Self {
        FlowLabel {
            dst: Prefix::host(dst),
            ..FlowLabel::ANY
        }
    }

    /// Restricts the label to one protocol, returning the narrowed label.
    pub fn with_proto(mut self, proto: Protocol) -> Self {
        self.proto = ProtoPattern::Exactly(proto);
        self
    }

    /// Restricts the label to one destination port, returning the narrowed
    /// label.
    pub fn with_dst_port(mut self, port: u16) -> Self {
        self.dst_port = PortPattern::Exactly(port);
        self
    }

    /// Restricts the label to one source port, returning the narrowed label.
    pub fn with_src_port(mut self, port: u16) -> Self {
        self.src_port = PortPattern::Exactly(port);
        self
    }

    /// Returns `true` if the packet header matches this label.
    pub fn matches(&self, header: &Header) -> bool {
        self.src.contains(header.src)
            && self.dst.contains(header.dst)
            && self.proto.matches(header.proto)
            && self.src_port.matches(header.src_port)
            && self.dst_port.matches(header.dst_port)
    }

    /// Returns `true` if every packet matched by `other` is also matched by
    /// `self` (i.e. `self` is at least as general).
    pub fn covers(&self, other: &FlowLabel) -> bool {
        self.src.covers(other.src)
            && self.dst.covers(other.dst)
            && self.proto.covers(other.proto)
            && self.src_port.covers(other.src_port)
            && self.dst_port.covers(other.dst_port)
    }

    /// A coarse specificity score: higher means more specific.
    ///
    /// Used by filter tables to prefer keeping specific filters when forced
    /// to evict, and by tests to check the covers/specificity relationship.
    pub fn specificity(&self) -> u32 {
        let mut s = self.src.len() as u32 + self.dst.len() as u32;
        if matches!(self.proto, ProtoPattern::Exactly(_)) {
            s += 8;
        }
        if matches!(self.src_port, PortPattern::Exactly(_)) {
            s += 16;
        }
        if matches!(self.dst_port, PortPattern::Exactly(_)) {
            s += 16;
        }
        s
    }

    /// Returns the single destination host if the destination pattern is a
    /// /32, which is the common case for filtering requests.
    pub fn dst_host(&self) -> Option<Addr> {
        (self.dst.len() == 32).then(|| self.dst.addr())
    }

    /// Returns the single source host if the source pattern is a /32.
    pub fn src_host(&self) -> Option<Addr> {
        (self.src.len() == 32).then(|| self.src.addr())
    }
}

impl fmt::Display for FlowLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)?;
        if let ProtoPattern::Exactly(p) = self.proto {
            write!(f, " proto={p:?}")?;
        }
        if let PortPattern::Exactly(p) = self.src_port {
            write!(f, " sport={p}")?;
        }
        if let PortPattern::Exactly(p) = self.dst_port {
            write!(f, " dport={p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Header;

    fn h(src: Addr, dst: Addr) -> Header {
        Header::udp(src, dst, 1000, 80)
    }

    #[test]
    fn any_matches_everything() {
        let hdr = h(Addr::new(1, 2, 3, 4), Addr::new(5, 6, 7, 8));
        assert!(FlowLabel::ANY.matches(&hdr));
    }

    #[test]
    fn src_dst_matches_only_that_pair() {
        let a = Addr::new(10, 9, 0, 7);
        let v = Addr::new(10, 1, 0, 1);
        let label = FlowLabel::src_dst(a, v);
        assert!(label.matches(&h(a, v)));
        assert!(!label.matches(&h(v, a)));
        assert!(!label.matches(&h(Addr::new(10, 9, 0, 8), v)));
        assert!(!label.matches(&h(a, Addr::new(10, 1, 0, 2))));
    }

    #[test]
    fn proto_and_port_narrowing() {
        let a = Addr::new(10, 9, 0, 7);
        let v = Addr::new(10, 1, 0, 1);
        let label = FlowLabel::src_dst(a, v)
            .with_proto(Protocol::Udp)
            .with_dst_port(53);
        assert!(label.matches(&Header::udp(a, v, 999, 53)));
        assert!(!label.matches(&Header::udp(a, v, 999, 80)));
        assert!(!label.matches(&Header::tcp(a, v, 999, 53)));
    }

    #[test]
    fn net_to_host_matches_whole_prefix() {
        let net: Prefix = "10.9.0.0/16".parse().unwrap();
        let v = Addr::new(10, 1, 0, 1);
        let label = FlowLabel::net_to_host(net, v);
        assert!(label.matches(&h(Addr::new(10, 9, 200, 3), v)));
        assert!(!label.matches(&h(Addr::new(10, 8, 0, 3), v)));
    }

    #[test]
    fn covers_is_reflexive_and_ordered_by_generality() {
        let a = Addr::new(10, 9, 0, 7);
        let v = Addr::new(10, 1, 0, 1);
        let narrow = FlowLabel::src_dst(a, v).with_proto(Protocol::Udp);
        let wide = FlowLabel::to_host(v);
        assert!(narrow.covers(&narrow));
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(FlowLabel::ANY.covers(&wide));
    }

    #[test]
    fn specificity_increases_with_narrowing() {
        let a = Addr::new(10, 9, 0, 7);
        let v = Addr::new(10, 1, 0, 1);
        let base = FlowLabel::src_dst(a, v);
        assert!(base.specificity() > FlowLabel::to_host(v).specificity());
        assert!(base.with_proto(Protocol::Udp).specificity() > base.specificity());
        assert!(base.with_dst_port(53).specificity() > base.specificity());
        assert_eq!(FlowLabel::ANY.specificity(), 0);
    }

    #[test]
    fn dst_host_extraction() {
        let v = Addr::new(10, 1, 0, 1);
        assert_eq!(FlowLabel::to_host(v).dst_host(), Some(v));
        let label = FlowLabel::net_to_host("10.0.0.0/8".parse().unwrap(), v);
        assert_eq!(label.src_host(), None);
        assert_eq!(label.dst_host(), Some(v));
    }

    #[test]
    fn display_is_readable() {
        let a = Addr::new(10, 9, 0, 7);
        let v = Addr::new(10, 1, 0, 1);
        let s = FlowLabel::src_dst(a, v).with_dst_port(53).to_string();
        assert!(s.contains("10.9.0.7/32"));
        assert!(s.contains("dport=53"));
    }
}

/// Label algebra: intersection and aggregation.
///
/// Routers that run out of filters can trade precision for space by
/// *merging* labels (e.g. two host-pair filters from the same /24 into one
/// prefix filter) — the paper's bounded-filter economy makes this the
/// natural pressure valve. These operations are the verified kernel such a
/// policy builds on.
impl FlowLabel {
    /// The most general label matched by **both** inputs, or `None` if
    /// they are disjoint.
    pub fn intersect(&self, other: &FlowLabel) -> Option<FlowLabel> {
        fn narrower(a: Prefix, b: Prefix) -> Option<Prefix> {
            if a.covers(b) {
                Some(b)
            } else if b.covers(a) {
                Some(a)
            } else {
                None
            }
        }
        let proto = match (self.proto, other.proto) {
            (ProtoPattern::Any, p) | (p, ProtoPattern::Any) => p,
            (a, b) if a == b => a,
            _ => return None,
        };
        let pick_port = |a: PortPattern, b: PortPattern| match (a, b) {
            (PortPattern::Any, p) | (p, PortPattern::Any) => Some(p),
            (x, y) if x == y => Some(x),
            _ => None,
        };
        Some(FlowLabel {
            src: narrower(self.src, other.src)?,
            dst: narrower(self.dst, other.dst)?,
            proto,
            src_port: pick_port(self.src_port, other.src_port)?,
            dst_port: pick_port(self.dst_port, other.dst_port)?,
        })
    }

    /// Returns `true` if some packet matches both labels.
    pub fn overlaps(&self, other: &FlowLabel) -> bool {
        self.intersect(other).is_some()
    }

    /// Attempts to merge two labels into one that covers both without
    /// widening the source prefix beyond `max_src_widening` bits from the
    /// narrower input (the precision the caller is willing to give up).
    ///
    /// Only labels that agree on everything except the source prefix are
    /// merged — that is the shape filter aggregation needs: many attack
    /// hosts in one network, one victim.
    pub fn try_merge(&self, other: &FlowLabel, max_src_widening: u8) -> Option<FlowLabel> {
        if self.dst != other.dst
            || self.proto != other.proto
            || self.src_port != other.src_port
            || self.dst_port != other.dst_port
        {
            return None;
        }
        // The merged source is the longest common prefix of the two.
        let min_len = self.src.len().min(other.src.len());
        let a = self.src.addr().raw();
        let b = other.src.addr().raw();
        let common = (a ^ b).leading_zeros().min(32) as u8;
        let merged_len = common.min(min_len);
        let widening = self.src.len().max(other.src.len()) - merged_len;
        if widening > max_src_widening {
            return None;
        }
        Some(FlowLabel {
            src: Prefix::new(self.src.addr(), merged_len),
            ..*self
        })
    }
}

#[cfg(test)]
mod algebra_tests {
    use super::*;
    use crate::packet::Header;

    fn host(i: u8) -> Addr {
        Addr::new(10, 9, 0, i)
    }

    const V: Addr = Addr::new(10, 1, 0, 1);

    #[test]
    fn intersect_narrows_to_the_specific_side() {
        let wide = FlowLabel::net_to_host("10.9.0.0/16".parse().unwrap(), V);
        let narrow = FlowLabel::src_dst(host(7), V).with_proto(Protocol::Udp);
        let i = wide.intersect(&narrow).expect("overlap");
        assert_eq!(i, narrow);
        assert_eq!(narrow.intersect(&wide), Some(narrow), "commutative");
    }

    #[test]
    fn disjoint_labels_do_not_intersect() {
        let a = FlowLabel::src_dst(host(1), V);
        let b = FlowLabel::src_dst(host(2), V);
        assert_eq!(a.intersect(&b), None);
        assert!(!a.overlaps(&b));
        // Different protocols are also disjoint.
        let udp = FlowLabel::src_dst(host(1), V).with_proto(Protocol::Udp);
        let tcp = FlowLabel::src_dst(host(1), V).with_proto(Protocol::Tcp);
        assert!(!udp.overlaps(&tcp));
    }

    #[test]
    fn merge_two_hosts_into_their_common_prefix() {
        let a = FlowLabel::src_dst(Addr::new(10, 9, 0, 2), V);
        let b = FlowLabel::src_dst(Addr::new(10, 9, 0, 3), V);
        let m = a.try_merge(&b, 8).expect("mergeable");
        // 10.9.0.2 and 10.9.0.3 share a /31.
        assert_eq!(m.src, "10.9.0.2/31".parse().unwrap());
        assert!(m.covers(&a) && m.covers(&b));
        // Both original packets still match.
        assert!(m.matches(&Header::udp(Addr::new(10, 9, 0, 2), V, 1, 2)));
        assert!(m.matches(&Header::udp(Addr::new(10, 9, 0, 3), V, 1, 2)));
    }

    #[test]
    fn merge_refuses_excessive_widening() {
        let a = FlowLabel::src_dst(Addr::new(10, 9, 0, 1), V);
        let b = FlowLabel::src_dst(Addr::new(10, 200, 0, 1), V);
        // Common prefix is /8: widening 24 bits.
        assert!(a.try_merge(&b, 8).is_none());
        assert!(a.try_merge(&b, 24).is_some());
    }

    #[test]
    fn merge_requires_identical_non_src_fields() {
        let a = FlowLabel::src_dst(host(1), V).with_dst_port(80);
        let b = FlowLabel::src_dst(host(2), V).with_dst_port(443);
        assert!(a.try_merge(&b, 32).is_none());
        let c = FlowLabel::src_dst(host(2), Addr::new(10, 1, 0, 9));
        assert!(FlowLabel::src_dst(host(1), V).try_merge(&c, 32).is_none());
    }
}

#[cfg(test)]
mod algebra_proptests {
    use super::*;
    use crate::packet::Header;
    use proptest::prelude::*;

    fn arb_prefix() -> impl Strategy<Value = Prefix> {
        (any::<u32>(), 8u8..=32).prop_map(|(a, l)| Prefix::new(Addr(a), l))
    }

    fn arb_label() -> impl Strategy<Value = FlowLabel> {
        (arb_prefix(), arb_prefix(), any::<bool>(), any::<bool>()).prop_map(
            |(src, dst, udp, port)| {
                let mut l = FlowLabel {
                    src,
                    dst,
                    ..FlowLabel::ANY
                };
                if udp {
                    l = l.with_proto(Protocol::Udp);
                }
                if port {
                    l = l.with_dst_port(80);
                }
                l
            },
        )
    }

    fn arb_header() -> impl Strategy<Value = Header> {
        (any::<u32>(), any::<u32>(), any::<bool>(), any::<u16>()).prop_map(|(s, d, udp, port)| {
            if udp {
                Header::udp(Addr(s), Addr(d), 1, port)
            } else {
                Header::tcp(Addr(s), Addr(d), 1, port)
            }
        })
    }

    proptest! {
        /// A packet matches the intersection iff it matches both inputs.
        #[test]
        fn intersection_is_conjunction(
            a in arb_label(),
            b in arb_label(),
            h in arb_header(),
        ) {
            match a.intersect(&b) {
                Some(i) => prop_assert_eq!(i.matches(&h), a.matches(&h) && b.matches(&h)),
                None => prop_assert!(!(a.matches(&h) && b.matches(&h))),
            }
        }

        /// A merged label covers both inputs.
        #[test]
        fn merge_covers_both(a in arb_label(), b in arb_label()) {
            if let Some(m) = a.try_merge(&b, 32) {
                prop_assert!(m.covers(&a), "merge must cover lhs");
                prop_assert!(m.covers(&b), "merge must cover rhs");
            }
        }

        /// `covers` and `matches` are consistent: if A covers B, every
        /// packet matching B matches A.
        #[test]
        fn covers_implies_matching_superset(
            a in arb_label(),
            b in arb_label(),
            h in arb_header(),
        ) {
            if a.covers(&b) && b.matches(&h) {
                prop_assert!(a.matches(&h));
            }
        }
    }
}
