//! The simulated datagram.
//!
//! A [`Packet`] carries an IPv4-like [`Header`], the AITF route-record shim
//! (Section II-F: the traceback substrate, provided in-packet as in
//! \[CG00\]), and a payload that is either opaque data (attack or
//! legitimate traffic) or an AITF control message.

use std::fmt;

use crate::addr::Addr;
use crate::message::AitfMessage;
use crate::route_record::RouteRecord;

/// Transport protocol carried by a packet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Protocol {
    /// UDP — the typical DoS flood protocol.
    #[default]
    Udp,
    /// TCP.
    Tcp,
    /// ICMP; ports are ignored for matching purposes but kept for shape.
    Icmp,
    /// The AITF control protocol itself.
    Aitf,
    /// Anything else, by IANA-style number — lets attack generators hop
    /// across protocols to evade narrow filters.
    Other(u8),
}

/// Classification of data traffic, carried for *accounting only*.
///
/// Routers never look at this — it exists so experiments can measure the
/// goodput of legitimate traffic and the effective bandwidth of undesired
/// flows without deep-packet magic. Victims detect attacks from observable
/// behaviour (rate), not from this tag, unless configured as an oracle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum TrafficClass {
    /// Legitimate foreground traffic.
    #[default]
    Legit,
    /// Undesired (attack) traffic.
    Attack,
}

/// The IPv4-like packet header, the input to flow-label matching.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Header {
    /// Source address (spoofable by attack generators).
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Transport protocol.
    pub proto: Protocol,
    /// Source port (0 when meaningless, e.g. ICMP).
    pub src_port: u16,
    /// Destination port (0 when meaningless).
    pub dst_port: u16,
    /// Remaining hop budget, decremented by routers; packets are discarded
    /// at zero, guarding the simulator against routing loops.
    pub ttl: u8,
}

impl Header {
    /// Default initial TTL for generated packets.
    pub const DEFAULT_TTL: u8 = 64;

    /// Builds a UDP header.
    pub fn udp(src: Addr, dst: Addr, src_port: u16, dst_port: u16) -> Self {
        Header {
            src,
            dst,
            proto: Protocol::Udp,
            src_port,
            dst_port,
            ttl: Self::DEFAULT_TTL,
        }
    }

    /// Builds a TCP header.
    pub fn tcp(src: Addr, dst: Addr, src_port: u16, dst_port: u16) -> Self {
        Header {
            src,
            dst,
            proto: Protocol::Tcp,
            src_port,
            dst_port,
            ttl: Self::DEFAULT_TTL,
        }
    }

    /// Builds an ICMP header (ports zero).
    pub fn icmp(src: Addr, dst: Addr) -> Self {
        Header {
            src,
            dst,
            proto: Protocol::Icmp,
            src_port: 0,
            dst_port: 0,
            ttl: Self::DEFAULT_TTL,
        }
    }

    /// Builds an AITF control-plane header.
    pub fn aitf(src: Addr, dst: Addr) -> Self {
        Header {
            src,
            dst,
            proto: Protocol::Aitf,
            src_port: 0,
            dst_port: 0,
            ttl: Self::DEFAULT_TTL,
        }
    }
}

/// Packet payload: opaque data or an AITF control message.
///
/// The enum as a whole cannot be `Copy` (control messages own a route
/// record), but the `Data` arm — the one every forwarded data packet
/// clones — must stay built purely from `Copy` parts so cloning it is a
/// bytewise copy. The audit below breaks the build if that regresses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PayloadKind {
    /// Opaque application data with an accounting class.
    Data(TrafficClass),
    /// An AITF control message (filtering request, verification query or
    /// reply).
    Aitf(AitfMessage),
}

// Compile-time audit of the data-plane clone cost: everything a data packet
// carries besides the route record is `Copy`, and the route record itself
// is allocation-free up to `INLINE_ROUTE_RECORD` hops (see
// `tests/alloc_free.rs` for the dynamic check).
const _: () = {
    const fn assert_copy<T: Copy>() {}
    assert_copy::<Header>();
    assert_copy::<TrafficClass>();
    assert_copy::<TracebackMark>();
    assert_copy::<Protocol>();
};

/// A probabilistic traceback mark, for the sampling-based traceback
/// alternative (\[SWKA00\]-style node sampling).
///
/// A border router overwrites the mark with its own address (distance 0)
/// with a small probability, and otherwise increments the distance of an
/// existing mark. The victim reconstructs the attack path from the
/// distribution of received marks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TracebackMark {
    /// The router that wrote the mark.
    pub router: Addr,
    /// Border hops traversed since the mark was written.
    pub distance: u8,
}

/// A simulated packet.
///
/// `size_bytes` is the on-wire size used for serialisation-time and queue
/// accounting; it includes the notional headers, so it is never zero.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Packet {
    /// Unique packet id assigned by the source, for tracing and debugging.
    pub id: u64,
    /// The network/transport header.
    pub header: Header,
    /// The AITF route-record shim, appended to by border routers.
    pub route_record: RouteRecord,
    /// Probabilistic traceback mark (only used when the deployment runs
    /// sampling traceback instead of the route-record shim).
    pub mark: Option<TracebackMark>,
    /// The payload.
    pub payload: PayloadKind,
    /// On-wire size in bytes.
    pub size_bytes: u32,
}

/// Notional size of the fixed header, used as minimum packet size.
pub const MIN_PACKET_BYTES: u32 = 40;

/// Notional on-wire size of an AITF control message.
pub const CONTROL_PACKET_BYTES: u32 = 96;

impl Packet {
    /// Builds a data packet of `size_bytes` (clamped up to the header size).
    pub fn data(id: u64, header: Header, class: TrafficClass, size_bytes: u32) -> Self {
        Packet {
            id,
            header,
            route_record: RouteRecord::new(),
            mark: None,
            payload: PayloadKind::Data(class),
            size_bytes: size_bytes.max(MIN_PACKET_BYTES),
        }
    }

    /// Builds an AITF control packet from `src` to `dst`.
    pub fn control(id: u64, src: Addr, dst: Addr, msg: AitfMessage) -> Self {
        Packet {
            id,
            header: Header::aitf(src, dst),
            route_record: RouteRecord::new(),
            mark: None,
            payload: PayloadKind::Aitf(msg),
            size_bytes: CONTROL_PACKET_BYTES,
        }
    }

    /// Returns the AITF message if this is a control packet.
    pub fn aitf_message(&self) -> Option<&AitfMessage> {
        match &self.payload {
            PayloadKind::Aitf(m) => Some(m),
            PayloadKind::Data(_) => None,
        }
    }

    /// Returns `true` if this is a data packet of the given class.
    pub fn is_class(&self, class: TrafficClass) -> bool {
        matches!(self.payload, PayloadKind::Data(c) if c == class)
    }

    /// Returns `true` if this is any data packet (not control).
    pub fn is_data(&self) -> bool {
        matches!(self.payload, PayloadKind::Data(_))
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {} -> {} ({:?}, {}B)",
            self.id, self.header.src, self.header.dst, self.header.proto, self.size_bytes
        )?;
        if let PayloadKind::Aitf(m) = &self.payload {
            write!(f, " [{m}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowLabel;
    use crate::message::{AitfMessage, FilteringRequest, RequestDestination};

    #[test]
    fn data_packet_clamps_size_to_header_minimum() {
        let h = Header::udp(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), 1, 2);
        let p = Packet::data(7, h, TrafficClass::Attack, 4);
        assert_eq!(p.size_bytes, MIN_PACKET_BYTES);
        let q = Packet::data(8, h, TrafficClass::Attack, 1500);
        assert_eq!(q.size_bytes, 1500);
    }

    #[test]
    fn control_packet_carries_message() {
        let a = Addr::new(1, 1, 1, 1);
        let v = Addr::new(2, 2, 2, 2);
        let req = FilteringRequest::new(
            FlowLabel::src_dst(a, v),
            RequestDestination::VictimGateway,
            60_000,
        );
        let p = Packet::control(1, v, a, AitfMessage::FilteringRequest(req.clone()));
        assert_eq!(p.header.proto, Protocol::Aitf);
        assert_eq!(p.aitf_message(), Some(&AitfMessage::FilteringRequest(req)));
        assert!(!p.is_data());
    }

    #[test]
    fn class_accounting_helpers() {
        let h = Header::udp(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), 1, 2);
        let p = Packet::data(1, h, TrafficClass::Legit, 100);
        assert!(p.is_class(TrafficClass::Legit));
        assert!(!p.is_class(TrafficClass::Attack));
        assert!(p.is_data());
        assert!(p.aitf_message().is_none());
    }

    #[test]
    fn display_shows_endpoints() {
        let h = Header::udp(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), 1, 2);
        let p = Packet::data(42, h, TrafficClass::Legit, 100);
        let s = p.to_string();
        assert!(s.contains("#42"));
        assert!(s.contains("1.1.1.1"));
        assert!(s.contains("2.2.2.2"));
    }
}
