//! IPv4-like addresses and prefixes.
//!
//! The simulator does not need real IP semantics, only an address space that
//! supports prefix aggregation (each AITF network owns a prefix) and textual
//! dotted-quad rendering for readable experiment output.

use std::fmt;
use std::str::FromStr;

/// A 32-bit network address, rendered dotted-quad like IPv4.
///
/// # Examples
///
/// ```
/// use aitf_packet::Addr;
///
/// let a = Addr::new(10, 0, 0, 1);
/// assert_eq!(a.to_string(), "10.0.0.1");
/// assert_eq!(a, "10.0.0.1".parse().unwrap());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u32);

impl Addr {
    /// The all-zero address, used as a placeholder for "unset".
    pub const ZERO: Addr = Addr(0);

    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | (d as u32))
    }

    /// Returns the raw 32-bit value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the four dotted-quad octets.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Returns the address with the low `32 - len` bits cleared.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub const fn masked(self, len: u8) -> Addr {
        assert!(len <= 32);
        if len == 0 {
            Addr(0)
        } else {
            Addr(self.0 & (u32::MAX << (32 - len)))
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error returned when parsing an [`Addr`] or [`Prefix`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address: {}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for Addr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(|| AddrParseError(s.to_string()))?;
            *slot = part.parse().map_err(|_| AddrParseError(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(AddrParseError(s.to_string()));
        }
        Ok(Addr::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// A CIDR-style address prefix: `addr/len`.
///
/// Prefixes are the unit of address ownership in the simulation — each AITF
/// network (Autonomous Domain) is assigned one, and border routers decide
/// whether a packet's source lies inside their own network by prefix
/// containment.
///
/// # Examples
///
/// ```
/// use aitf_packet::{Addr, Prefix};
///
/// let net: Prefix = "10.1.0.0/16".parse().unwrap();
/// assert!(net.contains(Addr::new(10, 1, 42, 7)));
/// assert!(!net.contains(Addr::new(10, 2, 0, 1)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    addr: Addr,
    len: u8,
}

impl Prefix {
    /// The zero-length prefix that contains every address.
    pub const ANY: Prefix = Prefix {
        addr: Addr(0),
        len: 0,
    };

    /// Builds a prefix, normalising the address by masking off host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub const fn new(addr: Addr, len: u8) -> Self {
        assert!(len <= 32);
        Prefix {
            addr: addr.masked(len),
            len,
        }
    }

    /// Builds the /32 prefix holding exactly `addr`.
    pub const fn host(addr: Addr) -> Self {
        Prefix { addr, len: 32 }
    }

    /// Returns the (masked) network address.
    pub const fn addr(self) -> Addr {
        self.addr
    }

    /// Returns the prefix length in bits.
    // A prefix length is not a container size; `is_empty` has no meaning.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Returns `true` if this is the catch-all zero-length prefix.
    pub const fn is_any(self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `addr` falls inside this prefix.
    pub const fn contains(self, addr: Addr) -> bool {
        addr.masked(self.len).0 == self.addr.0
    }

    /// Returns `true` if every address in `other` is also in `self`.
    pub const fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && other.addr.masked(self.len).0 == self.addr.0
    }

    /// Returns `true` if the two prefixes share at least one address.
    pub const fn overlaps(self, other: Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// Returns the `index`-th host address inside the prefix.
    ///
    /// Host number 0 is the network address itself; callers that want
    /// conventional host numbering should start at 1.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in the prefix's host-bit space.
    pub fn host_at(self, index: u32) -> Addr {
        let host_bits = 32 - self.len;
        if host_bits < 32 {
            assert!(
                (index as u64) < (1u64 << host_bits),
                "host index {index} out of range for /{}",
                self.len
            );
        }
        Addr(self.addr.0 | index)
    }

    /// Returns the number of addresses covered by the prefix.
    pub const fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Prefix {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_part, len_part) = s
            .split_once('/')
            .ok_or_else(|| AddrParseError(s.to_string()))?;
        let addr: Addr = addr_part.parse()?;
        let len: u8 = len_part
            .parse()
            .map_err(|_| AddrParseError(s.to_string()))?;
        if len > 32 {
            return Err(AddrParseError(s.to_string()));
        }
        Ok(Prefix::new(addr, len))
    }
}

impl From<Addr> for Prefix {
    fn from(addr: Addr) -> Self {
        Prefix::host(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_roundtrips_through_text() {
        for s in ["0.0.0.0", "10.1.2.3", "255.255.255.255", "192.168.0.1"] {
            let a: Addr = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
        }
    }

    #[test]
    fn addr_rejects_malformed_text() {
        for s in ["", "1.2.3", "1.2.3.4.5", "1.2.3.256", "a.b.c.d", "1..2.3"] {
            assert!(s.parse::<Addr>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn addr_octets_match_construction() {
        let a = Addr::new(1, 2, 3, 4);
        assert_eq!(a.octets(), [1, 2, 3, 4]);
        assert_eq!(a.raw(), 0x0102_0304);
    }

    #[test]
    fn masked_clears_host_bits() {
        let a = Addr::new(10, 1, 2, 3);
        assert_eq!(a.masked(8), Addr::new(10, 0, 0, 0));
        assert_eq!(a.masked(16), Addr::new(10, 1, 0, 0));
        assert_eq!(a.masked(32), a);
        assert_eq!(a.masked(0), Addr::ZERO);
    }

    #[test]
    fn prefix_contains_and_covers() {
        let p16: Prefix = "10.1.0.0/16".parse().unwrap();
        let p24: Prefix = "10.1.5.0/24".parse().unwrap();
        assert!(p16.contains(Addr::new(10, 1, 255, 255)));
        assert!(!p16.contains(Addr::new(10, 0, 0, 0)));
        assert!(p16.covers(p24));
        assert!(!p24.covers(p16));
        assert!(p16.overlaps(p24));
        assert!(p24.overlaps(p16));
        assert!(Prefix::ANY.covers(p16));
    }

    #[test]
    fn prefix_normalises_host_bits() {
        let p = Prefix::new(Addr::new(10, 1, 2, 3), 16);
        assert_eq!(p.addr(), Addr::new(10, 1, 0, 0));
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn prefix_host_at_produces_member_addresses() {
        let p: Prefix = "10.2.0.0/16".parse().unwrap();
        for i in [0u32, 1, 77, 65_535] {
            assert!(p.contains(p.host_at(i)));
        }
        assert_eq!(p.host_at(1), Addr::new(10, 2, 0, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prefix_host_at_panics_out_of_range() {
        let p: Prefix = "10.2.0.0/24".parse().unwrap();
        let _ = p.host_at(256);
    }

    #[test]
    fn prefix_size() {
        assert_eq!(Prefix::host(Addr::ZERO).size(), 1);
        assert_eq!("10.0.0.0/24".parse::<Prefix>().unwrap().size(), 256);
        assert_eq!(Prefix::ANY.size(), 1u64 << 32);
    }

    #[test]
    fn disjoint_prefixes_do_not_overlap() {
        let a: Prefix = "10.1.0.0/16".parse().unwrap();
        let b: Prefix = "10.2.0.0/16".parse().unwrap();
        assert!(!a.overlaps(b));
        assert!(!a.contains(b.addr()));
    }

    #[test]
    fn prefix_parse_rejects_bad_input() {
        for s in ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/", "/8", "10.0.0/8"] {
            assert!(s.parse::<Prefix>().is_err(), "{s} should not parse");
        }
    }
}
