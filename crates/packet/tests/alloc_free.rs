//! Dynamic allocation audit for the packet hot path.
//!
//! The simulator clones a data packet every time it fans out or queues a
//! copy; the AITF gateways are engineered for wire-speed filtering, so the
//! reproduction holds the same line: building, stamping and cloning a data
//! packet with a realistic (≤ [`INLINE_ROUTE_RECORD`]-hop) path must not
//! touch the heap. The shared counting allocator makes the claim checkable.

use aitf_packet::alloc_probe::CountingAlloc;
use aitf_packet::{
    Addr, Header, Packet, RouteRecord, TrafficClass, INLINE_ROUTE_RECORD, MAX_ROUTE_RECORD,
};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn data_packet(hops: usize) -> Packet {
    let h = Header::udp(Addr::new(10, 0, 0, 7), Addr::new(10, 1, 0, 1), 4000, 53);
    let mut p = Packet::data(1, h, TrafficClass::Attack, 600);
    for i in 0..hops {
        p.route_record.push(Addr::new(10, 2, i as u8, 254)).unwrap();
    }
    p
}

#[test]
fn building_and_stamping_a_data_packet_is_allocation_free() {
    let ((), n) = CountingAlloc::count(|| {
        let mut p = data_packet(0);
        for i in 0..INLINE_ROUTE_RECORD {
            p.route_record.push(Addr::new(10, 3, i as u8, 254)).unwrap();
        }
        std::hint::black_box(&p);
    });
    assert_eq!(n, 0, "inline route record must not allocate");
}

#[test]
fn cloning_a_forwarded_data_packet_is_allocation_free() {
    let p = data_packet(INLINE_ROUTE_RECORD);
    let (clone, n) = CountingAlloc::count(|| p.clone());
    assert_eq!(clone, p);
    assert_eq!(
        n, 0,
        "cloning a data packet with an inline record allocated"
    );
}

#[test]
fn spill_allocates_exactly_once_and_never_reallocates() {
    let mut p = data_packet(INLINE_ROUTE_RECORD);
    let ((), n) = CountingAlloc::count(|| {
        for i in INLINE_ROUTE_RECORD..MAX_ROUTE_RECORD {
            p.route_record.push(Addr::new(10, 4, i as u8, 254)).unwrap();
        }
    });
    assert!(p.route_record.is_spilled());
    assert_eq!(p.route_record.len(), MAX_ROUTE_RECORD);
    assert_eq!(n, 1, "spill is one up-front allocation sized for the cap");
}

#[test]
fn cloning_a_spilled_record_allocates_once() {
    let p = data_packet(MAX_ROUTE_RECORD);
    let (clone, n) = CountingAlloc::count(|| p.clone());
    assert_eq!(clone, p);
    assert_eq!(n, 1, "spilled records clone with a single allocation");
}

#[test]
fn clone_of_spilled_record_keeps_full_capacity_for_later_pushes() {
    // Clone-then-push is the forwarding pattern (fan out, then stamp).
    // The clone must inherit the hard-cap reservation, not Vec::clone's
    // capacity == len.
    let p = data_packet(INLINE_ROUTE_RECORD + 2);
    let (mut clone, clone_allocs) = CountingAlloc::count(|| p.clone());
    assert_eq!(clone_allocs, 1);
    let ((), push_allocs) = CountingAlloc::count(|| {
        for i in clone.route_record.len()..MAX_ROUTE_RECORD {
            clone
                .route_record
                .push(Addr::new(10, 6, i as u8, 254))
                .unwrap();
        }
    });
    assert_eq!(clone.route_record.len(), MAX_ROUTE_RECORD);
    assert_eq!(
        push_allocs, 0,
        "pushing into a cloned spilled record must not reallocate"
    );
}

#[test]
fn from_hops_within_inline_cap_is_allocation_free() {
    let hops: Vec<Addr> = (0..INLINE_ROUTE_RECORD as u8)
        .map(|i| Addr::new(10, 5, i, 254))
        .collect();
    let (rr, n) = CountingAlloc::count(|| RouteRecord::from_hops(hops.iter().copied()));
    assert_eq!(rr.hops(), hops.as_slice());
    assert_eq!(n, 0);
}
