//! Attack workloads, legitimate traffic and canned scenario topologies.
//!
//! The paper's threat model (Section I): an attacker compromises a large
//! number of hosts and orchestrates them to flood the victim's tail
//! circuit. This crate provides:
//!
//! - [`sources`] — traffic applications: constant floods, the "on-off"
//!   evasion pattern of Section II-B footnote 2, source-address spoofing
//!   and protocol hopping;
//! - [`legit`] — legitimate foreground traffic whose goodput measures the
//!   collateral damage of both the attack and the defense;
//! - [`army`] — zombie armies: arming many hosts with staggered floods.
//!
//! Canned topologies (Figure 1, attacker stars, provider chains) moved to
//! the `aitf-scenario` crate, which layers a fully declarative
//! topology × workload × probes API over these traffic sources.

pub mod army;
pub mod legit;
pub mod sources;

pub use army::{ArmyHandles, ZombieArmySpec};
pub use legit::LegitClient;
pub use sources::{FloodSource, OnOffSource, ProtocolHopper, RequestForger, SpoofingFlood};
