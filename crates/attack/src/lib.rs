//! Attack workloads, legitimate traffic and canned scenario topologies.
//!
//! The paper's threat model (Section I): an attacker compromises a large
//! number of hosts and orchestrates them to flood the victim's tail
//! circuit. This crate provides:
//!
//! - [`sources`] — traffic applications: constant floods, the "on-off"
//!   evasion pattern of Section II-B footnote 2, source-address spoofing
//!   and protocol hopping;
//! - [`legit`] — legitimate foreground traffic whose goodput measures the
//!   collateral damage of both the attack and the defense;
//! - [`army`] — zombie armies: many attacker networks, many hosts each;
//! - [`scenarios`] — canned topologies: the paper's Figure 1, a star of
//!   attacker networks around one victim, and deep provider chains for the
//!   escalation/pushback comparisons.

pub mod army;
pub mod legit;
pub mod scenarios;
pub mod sources;

pub use army::{ArmyHandles, ZombieArmySpec};
pub use legit::LegitClient;
pub use scenarios::{fig1, star, Fig1World, StarWorld};
pub use sources::{FloodSource, OnOffSource, ProtocolHopper, RequestForger, SpoofingFlood};
