//! Zombie armies.
//!
//! "The attacker typically uses a worm to create an 'army' of zombies,
//! which she orchestrates to flood the victim's site" (Section I). This
//! module arms the hosts of a pre-built scenario with flood sources,
//! optionally staggering their start times so detection and filtering
//! requests spread out realistically.

use aitf_core::{HostId, World};
use aitf_netsim::SimDuration;
use aitf_packet::Addr;

use crate::sources::FloodSource;

/// Parameters of a zombie army's firing pattern.
#[derive(Debug, Clone)]
pub struct ZombieArmySpec {
    /// Flood rate per zombie, packets/second.
    pub pps: u64,
    /// Packet size in bytes.
    pub size: u32,
    /// Delay between consecutive zombies joining the attack.
    pub stagger: SimDuration,
}

impl Default for ZombieArmySpec {
    fn default() -> Self {
        ZombieArmySpec {
            pps: 500,
            size: 500,
            stagger: SimDuration::ZERO,
        }
    }
}

/// Handles to the army's hosts (from a scenario builder).
#[derive(Debug, Clone)]
pub struct ArmyHandles {
    /// The zombie hosts.
    pub zombies: Vec<HostId>,
}

/// Arms every zombie with a [`FloodSource`] aimed at `target`.
pub fn arm_floods(world: &mut World, zombies: &[HostId], target: Addr, spec: &ZombieArmySpec) {
    for (i, &z) in zombies.iter().enumerate() {
        let flood =
            FloodSource::new(target, spec.pps, spec.size).starting_after(spec.stagger * i as u64);
        world.add_app(z, Box::new(flood));
    }
}

/// Aggregate offered attack load in bits per second once all zombies fire.
pub fn offered_bits_per_sec(n_zombies: usize, spec: &ZombieArmySpec) -> f64 {
    n_zombies as f64 * spec.pps as f64 * spec.size as f64 * 8.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::star;
    use aitf_core::{AitfConfig, HostPolicy};

    #[test]
    fn offered_load_formula() {
        let spec = ZombieArmySpec {
            pps: 100,
            size: 1000,
            stagger: SimDuration::ZERO,
        };
        assert_eq!(offered_bits_per_sec(10, &spec), 8_000_000.0);
    }

    #[test]
    fn army_floods_congest_then_aitf_rescues() {
        // 8 nets × 2 zombies × 500 pps × 500 B = 32 Mbit/s against a
        // 10 Mbit/s victim tail circuit.
        let mut s = star(
            AitfConfig::default(),
            11,
            8,
            2,
            HostPolicy::Malicious,
            10_000_000,
        );
        let target = s.world.host_addr(s.victim);
        let spec = ZombieArmySpec::default();
        arm_floods(&mut s.world, &s.zombies, target, &spec);
        s.world.sim.run_for(SimDuration::from_secs(5));
        // Every zombie flow must have been detected and requested.
        let v = s.world.host(s.victim).counters();
        assert!(
            v.detections >= 16,
            "all {} zombie flows should be detected, got {}",
            s.zombies.len(),
            v.detections
        );
        // The zombie gateways hold long filters (or disconnected clients).
        let mut filters = 0u64;
        let mut disconnects = 0u64;
        for &net in &s.attacker_nets {
            let c = s.world.router(net).counters();
            filters += c.filters_installed;
            disconnects += c.disconnects_client;
        }
        assert!(
            filters >= 16,
            "attacker gateways must hold the filters: {filters}"
        );
        assert_eq!(disconnects, 16, "malicious zombies get disconnected");
        // The attack is dead: no new attack bytes arrive late in the run.
        let before = s.world.host(s.victim).counters().rx_attack_bytes;
        s.world.sim.run_for(SimDuration::from_secs(2));
        let after = s.world.host(s.victim).counters().rx_attack_bytes;
        assert_eq!(before, after, "flood must stay quenched");
    }

    #[test]
    fn staggered_start_spreads_requests() {
        let mut s = star(
            AitfConfig::default(),
            12,
            4,
            1,
            HostPolicy::Malicious,
            10_000_000,
        );
        let target = s.world.host_addr(s.victim);
        let spec = ZombieArmySpec {
            pps: 200,
            size: 500,
            stagger: SimDuration::from_millis(500),
        };
        arm_floods(&mut s.world, &s.zombies, target, &spec);
        // After 0.7 s only the first two zombies have fired.
        s.world.sim.run_for(SimDuration::from_millis(700));
        let d = s.world.host(s.victim).counters().detections;
        assert!(d <= 2, "detections too early: {d}");
        s.world.sim.run_for(SimDuration::from_secs(3));
        assert_eq!(s.world.host(s.victim).counters().detections, 4);
    }
}
