//! Zombie armies.
//!
//! "The attacker typically uses a worm to create an 'army' of zombies,
//! which she orchestrates to flood the victim's site" (Section I). This
//! module arms the hosts of a pre-built scenario with flood sources,
//! optionally staggering their start times so detection and filtering
//! requests spread out realistically.

use aitf_core::{HostId, World};
use aitf_netsim::SimDuration;
use aitf_packet::Addr;

use crate::sources::FloodSource;

/// Parameters of a zombie army's firing pattern.
#[derive(Debug, Clone)]
pub struct ZombieArmySpec {
    /// Flood rate per zombie, packets/second.
    pub pps: u64,
    /// Packet size in bytes.
    pub size: u32,
    /// Delay between consecutive zombies joining the attack.
    pub stagger: SimDuration,
}

impl Default for ZombieArmySpec {
    fn default() -> Self {
        ZombieArmySpec {
            pps: 500,
            size: 500,
            stagger: SimDuration::ZERO,
        }
    }
}

/// Handles to the army's hosts (from a scenario builder).
#[derive(Debug, Clone)]
pub struct ArmyHandles {
    /// The zombie hosts.
    pub zombies: Vec<HostId>,
}

/// Arms every zombie with a [`FloodSource`] aimed at `target`.
pub fn arm_floods(world: &mut World, zombies: &[HostId], target: Addr, spec: &ZombieArmySpec) {
    for (i, &z) in zombies.iter().enumerate() {
        let flood =
            FloodSource::new(target, spec.pps, spec.size).starting_after(spec.stagger * i as u64);
        world.add_app(z, Box::new(flood));
    }
}

/// Aggregate offered attack load in bits per second once all zombies fire.
pub fn offered_bits_per_sec(n_zombies: usize, spec: &ZombieArmySpec) -> f64 {
    n_zombies as f64 * spec.pps as f64 * spec.size as f64 * 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    // End-to-end army behaviour (congestion, rescue, staggered starts) is
    // exercised in `aitf-scenario`'s workload tests, which own the star
    // topologies these floods are armed on.

    #[test]
    fn offered_load_formula() {
        let spec = ZombieArmySpec {
            pps: 100,
            size: 1000,
            stagger: SimDuration::ZERO,
        };
        assert_eq!(offered_bits_per_sec(10, &spec), 8_000_000.0);
    }
}
