//! Legitimate foreground traffic.
//!
//! The damage a DoS attack does — and the damage a *defense* must not do —
//! is measured on legitimate traffic. [`LegitClient`] generates a steady
//! (optionally Poisson) stream of `TrafficClass::Legit` packets; the
//! receiving [`aitf_core::EndHost`] counts the bytes that survive, giving
//! the goodput series the experiment harness plots.

use aitf_core::{HostApi, TrafficApp};
use aitf_netsim::SimDuration;
use aitf_packet::{Addr, Protocol, TrafficClass};
use rand::Rng;

/// A legitimate constant-bit-rate (or Poisson) client.
///
/// # Examples
///
/// ```
/// use aitf_attack::LegitClient;
/// use aitf_packet::Addr;
///
/// // 100 packets/s of 1000 B ≈ 0.8 Mbit/s of legitimate load.
/// let client = LegitClient::new(Addr::new(10, 1, 0, 1), 100, 1000);
/// assert!((client.offered_bits_per_sec() - 800_000.0).abs() < 1.0);
/// ```
#[derive(Debug)]
pub struct LegitClient {
    target: Addr,
    pps: u64,
    period: SimDuration,
    size: u32,
    poisson: bool,
    /// Self-contained SplitMix64 state for the Poisson draws; `None`
    /// draws from the simulation's shared stream. Seeded clients are
    /// bit-identical at any shard count (the shared stream is per-shard,
    /// so its draw order depends on the partition).
    seeded: Option<u64>,
    dst_port: u16,
}

/// SplitMix64 finalizer — the engine family's standard mixer, inlined so
/// `aitf-attack` stays free of an `aitf-engine` dependency.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl LegitClient {
    /// A CBR client at `pps` packets/second of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `pps` is zero.
    pub fn new(target: Addr, pps: u64, size: u32) -> Self {
        assert!(pps > 0, "rate must be positive");
        LegitClient {
            target,
            pps,
            period: SimDuration::from_nanos(1_000_000_000 / pps),
            size,
            poisson: false,
            seeded: None,
            dst_port: 443,
        }
    }

    /// Switches to Poisson inter-arrival times with the same mean rate,
    /// drawn from the simulation's shared RNG stream.
    pub fn poisson(mut self) -> Self {
        self.poisson = true;
        self.seeded = None;
        self
    }

    /// Poisson arrivals from a self-contained per-client stream seeded by
    /// `seed` — use this (with a distinct seed per client) when the run
    /// must stay bit-identical at any shard count.
    pub fn poisson_seeded(mut self, seed: u64) -> Self {
        self.poisson = true;
        self.seeded = Some(splitmix64(seed ^ 0x1E61_7000_0000_0001));
        self
    }

    /// Overrides the destination port.
    pub fn with_dst_port(mut self, port: u16) -> Self {
        self.dst_port = port;
        self
    }

    /// The offered load in bits per second.
    pub fn offered_bits_per_sec(&self) -> f64 {
        self.pps as f64 * self.size as f64 * 8.0
    }

    fn next_gap(&mut self, api: &mut HostApi<'_, '_>) -> SimDuration {
        if self.poisson {
            // Exponential inter-arrival with mean `period`, via inverse CDF.
            let u: f64 = match &mut self.seeded {
                Some(state) => {
                    *state = splitmix64(*state);
                    // u ∈ (0, 1] from the top 53 bits.
                    ((*state >> 11) as f64 + 1.0) / (1u64 << 53) as f64
                }
                None => api.rng().gen_range(1e-12..1.0),
            };
            SimDuration::from_secs_f64(-u.ln() * self.period.as_secs_f64())
        } else {
            self.period
        }
    }
}

impl TrafficApp for LegitClient {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        let gap = self.next_gap(api);
        api.set_timer(gap, 0);
    }

    fn on_timer(&mut self, _token: u32, api: &mut HostApi<'_, '_>) {
        api.send_from_self(
            self.target,
            Protocol::Tcp,
            self.dst_port,
            TrafficClass::Legit,
            self.size,
        );
        let gap = self.next_gap(api);
        api.set_timer(gap, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitf_core::{AitfConfig, WorldBuilder};

    #[test]
    fn cbr_client_delivers_expected_goodput() {
        let mut b = WorldBuilder::new(3, AitfConfig::default());
        let wan = b.network("wan", "10.100.0.0/16", None);
        let g = b.network("g", "10.1.0.0/16", Some(wan));
        let c = b.network("c", "10.2.0.0/16", Some(wan));
        let server = b.host(g);
        let client = b.host(c);
        let mut w = b.build();
        let target = w.host_addr(server);
        w.add_app(client, Box::new(LegitClient::new(target, 100, 1000)));
        w.sim.run_for(SimDuration::from_secs(5));
        let rx = w.host(server).counters().rx_legit_bytes;
        // ~5 s × 100 pps × 1000 B, minus in-flight tail.
        assert!((480_000..=500_000).contains(&rx), "rx = {rx}");
    }

    #[test]
    fn poisson_client_matches_mean_rate() {
        let mut b = WorldBuilder::new(3, AitfConfig::default());
        let wan = b.network("wan", "10.100.0.0/16", None);
        let g = b.network("g", "10.1.0.0/16", Some(wan));
        let c = b.network("c", "10.2.0.0/16", Some(wan));
        let server = b.host(g);
        let client = b.host(c);
        let mut w = b.build();
        let target = w.host_addr(server);
        w.add_app(
            client,
            Box::new(LegitClient::new(target, 200, 500).poisson()),
        );
        w.sim.run_for(SimDuration::from_secs(10));
        let rx_pkts = w.host(server).counters().rx_legit_pkts as f64;
        let expected = 2000.0;
        assert!(
            (rx_pkts - expected).abs() < expected * 0.15,
            "rx_pkts = {rx_pkts}, expected ≈ {expected}"
        );
    }
}
