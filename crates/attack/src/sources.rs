//! Attack traffic generators.
//!
//! All sources are [`TrafficApp`]s installed on an [`aitf_core::EndHost`].
//! Whether the host *stops* when asked is the host's
//! [`aitf_core::HostPolicy`], not the source's concern — a compliant host
//! suppresses the source's packets at the send hook.

use aitf_core::{HostApi, TrafficApp};
use aitf_netsim::{SimDuration, SimTime};
use aitf_packet::{Addr, Prefix, Protocol, TrafficClass};
use rand::Rng;

/// A constant-rate flood towards one target.
///
/// # Examples
///
/// ```
/// use aitf_attack::FloodSource;
/// use aitf_packet::Addr;
///
/// // 1000 packets/s of 500-byte UDP to the victim, starting at t = 0.
/// let src = FloodSource::new(Addr::new(10, 1, 0, 1), 1000, 500);
/// assert_eq!(src.packets_per_sec(), 1000);
/// ```
#[derive(Debug)]
pub struct FloodSource {
    target: Addr,
    period: SimDuration,
    pps: u64,
    size: u32,
    start_after: SimDuration,
    stop_at: Option<SimTime>,
    dst_port: u16,
}

impl FloodSource {
    /// A UDP flood of `pps` packets/second of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `pps` is zero.
    pub fn new(target: Addr, pps: u64, size: u32) -> Self {
        assert!(pps > 0, "flood rate must be positive");
        FloodSource {
            target,
            period: SimDuration::from_nanos(1_000_000_000 / pps),
            pps,
            size,
            start_after: SimDuration::ZERO,
            stop_at: None,
            dst_port: 80,
        }
    }

    /// Delays the first packet.
    pub fn starting_after(mut self, delay: SimDuration) -> Self {
        self.start_after = delay;
        self
    }

    /// Stops the flood at an absolute time.
    pub fn stopping_at(mut self, t: SimTime) -> Self {
        self.stop_at = Some(t);
        self
    }

    /// Overrides the destination port.
    pub fn with_dst_port(mut self, port: u16) -> Self {
        self.dst_port = port;
        self
    }

    /// The configured rate.
    pub fn packets_per_sec(&self) -> u64 {
        self.pps
    }
}

impl TrafficApp for FloodSource {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        api.set_timer(self.start_after, 0);
    }

    fn on_timer(&mut self, _token: u32, api: &mut HostApi<'_, '_>) {
        if let Some(stop) = self.stop_at {
            if api.now() >= stop {
                return;
            }
        }
        api.send_from_self(
            self.target,
            Protocol::Udp,
            self.dst_port,
            TrafficClass::Attack,
            self.size,
        );
        api.set_timer(self.period, 0);
    }
}

/// The "on-off" evasion pattern (Section II-B footnote 2): flood for
/// `on_period`, go silent for `off_period`, repeat — hoping the victim's
/// gateway forgets between bursts. The shadow cache exists to defeat this.
#[derive(Debug)]
pub struct OnOffSource {
    target: Addr,
    period: SimDuration,
    size: u32,
    on_period: SimDuration,
    off_period: SimDuration,
    /// Time the current on-phase started.
    phase_started: SimTime,
    sending: bool,
}

impl OnOffSource {
    /// Builds an on-off flood: `pps`/`size` during on-phases.
    ///
    /// # Panics
    ///
    /// Panics if `pps` is zero or either period is zero.
    pub fn new(
        target: Addr,
        pps: u64,
        size: u32,
        on_period: SimDuration,
        off_period: SimDuration,
    ) -> Self {
        assert!(pps > 0, "rate must be positive");
        assert!(
            !on_period.is_zero() && !off_period.is_zero(),
            "periods must be positive"
        );
        OnOffSource {
            target,
            period: SimDuration::from_nanos(1_000_000_000 / pps),
            size,
            on_period,
            off_period,
            phase_started: SimTime::ZERO,
            sending: true,
        }
    }

    /// Fraction of time the source is on.
    pub fn duty_cycle(&self) -> f64 {
        let on = self.on_period.as_secs_f64();
        on / (on + self.off_period.as_secs_f64())
    }
}

impl TrafficApp for OnOffSource {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        self.phase_started = api.now();
        self.sending = true;
        api.set_timer(SimDuration::ZERO, 0);
    }

    fn on_timer(&mut self, _token: u32, api: &mut HostApi<'_, '_>) {
        let now = api.now();
        if self.sending {
            if now.saturating_since(self.phase_started) >= self.on_period {
                // Go quiet; wake up when the off-phase ends.
                self.sending = false;
                self.phase_started = now;
                api.set_timer(self.off_period, 0);
                return;
            }
            api.send_from_self(
                self.target,
                Protocol::Udp,
                80,
                TrafficClass::Attack,
                self.size,
            );
            api.set_timer(self.period, 0);
        } else {
            // Off-phase over: resume.
            self.sending = true;
            self.phase_started = now;
            api.set_timer(SimDuration::ZERO, 0);
        }
    }
}

/// A flood that spoofs its source address from a prefix — each packet a
/// different fake host. Ingress filtering at the attacker's gateway
/// (Section III-A) stops it cold; without ingress filtering the victim
/// faces an apparently-huge set of distinct undesired flows.
#[derive(Debug)]
pub struct SpoofingFlood {
    target: Addr,
    period: SimDuration,
    size: u32,
    spoof_pool: Prefix,
    /// Number of distinct spoofed sources (cycled deterministically when
    /// `random` is false).
    pool_size: u32,
    next: u32,
    random: bool,
    start_after: SimDuration,
}

impl SpoofingFlood {
    /// A spoofing flood cycling through `pool_size` addresses in
    /// `spoof_pool`.
    ///
    /// # Panics
    ///
    /// Panics if `pps` or `pool_size` is zero.
    pub fn new(target: Addr, pps: u64, size: u32, spoof_pool: Prefix, pool_size: u32) -> Self {
        assert!(pps > 0 && pool_size > 0);
        SpoofingFlood {
            target,
            period: SimDuration::from_nanos(1_000_000_000 / pps),
            size,
            spoof_pool,
            pool_size,
            next: 0,
            random: false,
            start_after: SimDuration::ZERO,
        }
    }

    /// Draws spoofed sources randomly instead of round-robin.
    pub fn randomised(mut self) -> Self {
        self.random = true;
        self
    }

    /// Delays the first packet — a zombie army staggered off a shared
    /// period lattice produces no same-timestamp event collisions, which
    /// keeps large sharded runs bit-identical at any shard count.
    pub fn starting_after(mut self, delay: SimDuration) -> Self {
        self.start_after = delay;
        self
    }
}

impl TrafficApp for SpoofingFlood {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        api.set_timer(self.start_after, 0);
    }

    fn on_timer(&mut self, _token: u32, api: &mut HostApi<'_, '_>) {
        let index = if self.random {
            api.rng().gen_range(0..self.pool_size)
        } else {
            let i = self.next;
            self.next = (self.next + 1) % self.pool_size;
            i
        };
        let src = self.spoof_pool.host_at(index);
        api.send_data(
            src,
            self.target,
            Protocol::Udp,
            0,
            80,
            TrafficClass::Attack,
            self.size,
        );
        api.set_timer(self.period, 0);
    }
}

/// A flood that hops protocols every `hop_every` to evade narrow filters
/// (the "arms race" of Section I: an attack that changes protocols faster
/// than a human can reconfigure filters).
///
/// Against AITF's default `src → dst` labels hopping is useless — the
/// filter matches all protocols — which is itself a reproducible claim.
#[derive(Debug)]
pub struct ProtocolHopper {
    target: Addr,
    period: SimDuration,
    size: u32,
    hop_every: SimDuration,
    protocols: Vec<Protocol>,
    current: usize,
    last_hop: SimTime,
}

impl ProtocolHopper {
    /// Builds a hopping flood over the given protocol list.
    ///
    /// # Panics
    ///
    /// Panics if `pps` is zero or `protocols` is empty.
    pub fn new(
        target: Addr,
        pps: u64,
        size: u32,
        hop_every: SimDuration,
        protocols: Vec<Protocol>,
    ) -> Self {
        assert!(pps > 0 && !protocols.is_empty());
        ProtocolHopper {
            target,
            period: SimDuration::from_nanos(1_000_000_000 / pps),
            size,
            hop_every,
            protocols,
            current: 0,
            last_hop: SimTime::ZERO,
        }
    }

    /// The protocol currently in use.
    pub fn current_protocol(&self) -> Protocol {
        self.protocols[self.current]
    }
}

impl TrafficApp for ProtocolHopper {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        self.last_hop = api.now();
        api.set_timer(SimDuration::ZERO, 0);
    }

    fn on_timer(&mut self, _token: u32, api: &mut HostApi<'_, '_>) {
        let now = api.now();
        if now.saturating_since(self.last_hop) >= self.hop_every {
            self.current = (self.current + 1) % self.protocols.len();
            self.last_hop = now;
        }
        let proto = self.protocols[self.current];
        api.send_from_self(self.target, proto, 80, TrafficClass::Attack, self.size);
        api.set_timer(self.period, 0);
    }
}

/// A malicious node forging filtering requests: it claims that `victim`
/// does not want traffic from `claimed_src`, hoping to cut a legitimate
/// flow it is not a party to (the attack Section II-E's 3-way handshake
/// exists to stop).
#[derive(Debug)]
pub struct RequestForger {
    /// The gateway the forged request is sent to (the claimed attacker's
    /// gateway).
    pub to_gateway: Addr,
    /// The legitimate flow the forger wants blocked.
    pub claim_flow: aitf_packet::FlowLabel,
    /// When to fire.
    pub delay: SimDuration,
    /// How many times to re-send (a persistent forger).
    pub repeats: u32,
}

impl RequestForger {
    /// A one-shot forger.
    pub fn new(to_gateway: Addr, claim_flow: aitf_packet::FlowLabel, delay: SimDuration) -> Self {
        RequestForger {
            to_gateway,
            claim_flow,
            delay,
            repeats: 1,
        }
    }
}

impl TrafficApp for RequestForger {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        api.set_timer(self.delay, 0);
    }

    fn on_timer(&mut self, _token: u32, api: &mut HostApi<'_, '_>) {
        if self.repeats == 0 {
            return;
        }
        self.repeats -= 1;
        let req = aitf_packet::FilteringRequest {
            id: 0xF0F0_0000 + self.repeats as u64,
            flow: self.claim_flow,
            dest: aitf_packet::RequestDestination::AttackerGateway,
            duration_ns: 60_000_000_000,
            path: Default::default(),
            round: 1,
        };
        let pkt = aitf_packet::Packet::control(
            0,
            api.my_addr(),
            self.to_gateway,
            aitf_packet::AitfMessage::FilteringRequest(req),
        );
        api.send_raw(pkt);
        if self.repeats > 0 {
            api.set_timer(SimDuration::from_secs(1), 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitf_core::{AitfConfig, HostPolicy, WorldBuilder};

    fn tiny_world() -> (aitf_core::World, aitf_core::HostId, aitf_core::HostId) {
        let mut b = WorldBuilder::new(5, AitfConfig::default());
        let wan = b.network("wan", "10.100.0.0/16", None);
        let g = b.network("g", "10.1.0.0/16", Some(wan));
        let bad = b.network("b", "10.9.0.0/16", Some(wan));
        let v = b.host(g);
        let a = b.host_with(
            bad,
            HostPolicy::Malicious,
            WorldBuilder::default_host_link(),
        );
        (b.build(), v, a)
    }

    #[test]
    fn flood_sends_at_configured_rate() {
        let (mut w, v, a) = tiny_world();
        let target = w.host_addr(v);
        // Disable the defense so the raw rate is visible: no detection ever
        // fires because the victim's requests are what stop the flow; here
        // we just check tx accounting over 1 s.
        w.add_app(a, Box::new(FloodSource::new(target, 200, 100)));
        w.sim.run_for(SimDuration::from_secs(1));
        let tx = w.host(a).counters().tx_pkts;
        assert!((195..=201).contains(&tx), "tx = {tx}");
    }

    #[test]
    fn flood_start_and_stop_windows() {
        let (mut w, v, a) = tiny_world();
        let target = w.host_addr(v);
        w.add_app(
            a,
            Box::new(
                FloodSource::new(target, 100, 100)
                    .starting_after(SimDuration::from_millis(500))
                    .stopping_at(SimTime::ZERO + SimDuration::from_millis(1500)),
            ),
        );
        w.sim.run_for(SimDuration::from_millis(400));
        assert_eq!(w.host(a).counters().tx_pkts, 0, "not started yet");
        w.sim.run_for(SimDuration::from_secs(2));
        let tx = w.host(a).counters().tx_pkts;
        // Active window was 1 s at 100 pps.
        assert!((95..=105).contains(&tx), "tx = {tx}");
    }

    #[test]
    fn onoff_duty_cycle_accounting() {
        let on = SimDuration::from_millis(100);
        let off = SimDuration::from_millis(300);
        let src = OnOffSource::new(Addr::new(1, 1, 1, 1), 100, 100, on, off);
        assert!((src.duty_cycle() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn onoff_source_alternates() {
        let (mut w, v, a) = tiny_world();
        let target = w.host_addr(v);
        w.add_app(
            a,
            Box::new(OnOffSource::new(
                target,
                1000,
                100,
                SimDuration::from_millis(100),
                SimDuration::from_millis(900),
            )),
        );
        w.sim.run_for(SimDuration::from_secs(3));
        let tx = w.host(a).counters().tx_pkts;
        // 3 cycles × ~100 ms on at 1000 pps ≈ 300 packets.
        assert!((250..=350).contains(&tx), "tx = {tx}");
    }

    #[test]
    fn spoofing_flood_uses_distinct_sources() {
        let (mut w, v, a) = tiny_world();
        let target = w.host_addr(v);
        let pool: Prefix = "10.9.128.0/24".parse().unwrap();
        // Attacker's own network prefix, so ingress filtering lets it pass.
        w.add_app(a, Box::new(SpoofingFlood::new(target, 100, 100, pool, 16)));
        w.sim.run_for(SimDuration::from_secs(1));
        // The victim sees many distinct undesired flows → many detections.
        let v_detections = w.host(v).counters().detections;
        assert!(v_detections >= 8, "detections = {v_detections}");
    }

    #[test]
    fn spoofed_sources_outside_prefix_are_dropped_by_ingress() {
        let (mut w, v, a) = tiny_world();
        let target = w.host_addr(v);
        // Spoofing from a prefix that is NOT the attacker's network.
        let pool: Prefix = "172.16.0.0/24".parse().unwrap();
        w.add_app(a, Box::new(SpoofingFlood::new(target, 100, 100, pool, 16)));
        w.sim.run_for(SimDuration::from_secs(1));
        assert_eq!(
            w.host(v).counters().rx_attack_pkts,
            0,
            "ingress must stop spoofs"
        );
        let b_net = w.host_net(a);
        assert!(w.router(b_net).counters().spoofed_dropped > 50);
    }

    #[test]
    fn protocol_hopper_cycles_protocols() {
        let (mut w, v, a) = tiny_world();
        let target = w.host_addr(v);
        w.add_app(
            a,
            Box::new(ProtocolHopper::new(
                target,
                100,
                100,
                SimDuration::from_millis(250),
                vec![Protocol::Udp, Protocol::Tcp, Protocol::Icmp],
            )),
        );
        w.sim.run_for(SimDuration::from_secs(1));
        // Hopping does not help against src→dst labels: the flood is still
        // detected and blocked like any other.
        assert!(w.host(v).counters().detections >= 1);
    }
}
