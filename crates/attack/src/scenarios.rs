//! Canned topologies used across tests, examples and the benchmark
//! harness.
//!
//! - [`fig1`] — the paper's Figure 1 path: two three-level provider
//!   hierarchies (`G_*` and `B_*`) peered at the top, one victim, one
//!   attacker.
//! - [`chain_pair`] — the same shape with configurable depth, for the
//!   escalation and pushback comparisons.
//! - [`star`] — one victim network plus `M` attacker networks around a
//!   hub, for capacity and scaling experiments.

use aitf_core::{AitfConfig, HostId, HostPolicy, NetId, World, WorldBuilder};
use aitf_packet::Prefix;

/// Deterministic allocator of non-overlapping /16 prefixes.
#[derive(Debug, Default)]
pub struct PrefixAlloc {
    next: u32,
}

impl PrefixAlloc {
    /// Creates an allocator starting at `10.1.0.0/16`.
    pub fn new() -> Self {
        PrefixAlloc { next: 0 }
    }

    /// Returns the next free /16.
    ///
    /// # Panics
    ///
    /// Panics after ~12k allocations (the 10/12/172-ish space is spent).
    pub fn next_slash16(&mut self) -> Prefix {
        let i = self.next;
        self.next += 1;
        let a = 10 + (i / 250) as u8;
        let b = (i % 250 + 1) as u8;
        assert!(a < 60, "prefix space exhausted");
        Prefix::new(aitf_packet::Addr::new(a, b, 0, 0), 16)
    }
}

/// The paper's Figure 1 world.
pub struct Fig1World {
    /// The built world.
    pub world: World,
    /// `G_net` (victim's enterprise network; its router is G_gw1).
    pub g_net: NetId,
    /// `G_isp` (router G_gw2).
    pub g_isp: NetId,
    /// `G_wan` (router G_gw3).
    pub g_wan: NetId,
    /// `B_net` (attacker's network; router B_gw1 is the attacker's gateway).
    pub b_net: NetId,
    /// `B_isp` (router B_gw2).
    pub b_isp: NetId,
    /// `B_wan` (router B_gw3).
    pub b_wan: NetId,
    /// `G_host`, the victim.
    pub victim: HostId,
    /// `B_host`, the attacker.
    pub attacker: HostId,
}

/// Builds the Figure 1 topology with the given attacker host policy.
pub fn fig1(cfg: AitfConfig, seed: u64, attacker_policy: HostPolicy) -> Fig1World {
    let mut b = WorldBuilder::new(seed, cfg);
    let g_wan = b.network("G_wan", "10.103.0.0/16", None);
    let g_isp = b.network("G_isp", "10.102.0.0/16", Some(g_wan));
    let g_net = b.network("G_net", "10.1.0.0/16", Some(g_isp));
    let b_wan = b.network("B_wan", "10.203.0.0/16", None);
    let b_isp = b.network("B_isp", "10.202.0.0/16", Some(b_wan));
    let b_net = b.network("B_net", "10.9.0.0/16", Some(b_isp));
    b.peer(g_wan, b_wan, WorldBuilder::default_net_link());
    let victim = b.host(g_net);
    let attacker = b.host_with(b_net, attacker_policy, WorldBuilder::default_host_link());
    Fig1World {
        world: b.build(),
        g_net,
        g_isp,
        g_wan,
        b_net,
        b_isp,
        b_wan,
        victim,
        attacker,
    }
}

/// A Figure-1-like world with configurable chain depth.
pub struct ChainWorld {
    /// The built world.
    pub world: World,
    /// Victim-side networks, leaf (victim's gateway) first.
    pub g_chain: Vec<NetId>,
    /// Attacker-side networks, leaf (attacker's gateway) first.
    pub b_chain: Vec<NetId>,
    /// The victim host.
    pub victim: HostId,
    /// The attacker host.
    pub attacker: HostId,
}

/// Builds two provider chains of `depth` networks each, peered at the top.
///
/// `depth = 3` is exactly [`fig1`]'s shape.
///
/// # Panics
///
/// Panics if `depth` is zero.
pub fn chain_pair(
    cfg: AitfConfig,
    seed: u64,
    depth: usize,
    attacker_policy: HostPolicy,
) -> ChainWorld {
    assert!(depth > 0, "depth must be at least 1");
    let mut alloc = PrefixAlloc::new();
    let mut b = WorldBuilder::new(seed, cfg);
    // Build top-down so parents exist, then reverse to leaf-first order.
    let mut g_chain: Vec<NetId> = Vec::with_capacity(depth);
    let mut b_chain: Vec<NetId> = Vec::with_capacity(depth);
    for side in 0..2 {
        let chain = if side == 0 {
            &mut g_chain
        } else {
            &mut b_chain
        };
        let mut parent: Option<NetId> = None;
        for level in (0..depth).rev() {
            let name = format!("{}_{}", if side == 0 { "G" } else { "B" }, level + 1);
            let prefix = alloc.next_slash16();
            let id = b.network(&name, &prefix.to_string(), parent);
            parent = Some(id);
            chain.push(id);
        }
        chain.reverse();
    }
    b.peer(
        g_chain[depth - 1],
        b_chain[depth - 1],
        WorldBuilder::default_net_link(),
    );
    let victim = b.host(g_chain[0]);
    let attacker = b.host_with(
        b_chain[0],
        attacker_policy,
        WorldBuilder::default_host_link(),
    );
    ChainWorld {
        world: b.build(),
        g_chain,
        b_chain,
        victim,
        attacker,
    }
}

/// One victim network and `M` attacker networks around a hub.
pub struct StarWorld {
    /// The built world.
    pub world: World,
    /// The hub (top-level AD).
    pub hub: NetId,
    /// The victim's network.
    pub victim_net: NetId,
    /// The victim host.
    pub victim: HostId,
    /// Attacker networks.
    pub attacker_nets: Vec<NetId>,
    /// Zombie hosts, grouped by network in order.
    pub zombies: Vec<HostId>,
}

/// Builds a star: `n_nets` attacker networks with `hosts_per_net` zombies
/// each, all clients of one hub AD that also serves the victim's network.
///
/// The victim's tail circuit is `victim_tail_bps`; zombies get fat links so
/// the bottleneck is the victim side, as in the paper's introduction.
pub fn star(
    cfg: AitfConfig,
    seed: u64,
    n_nets: usize,
    hosts_per_net: usize,
    zombie_policy: HostPolicy,
    victim_tail_bps: u64,
) -> StarWorld {
    let mut alloc = PrefixAlloc::new();
    let mut b = WorldBuilder::new(seed, cfg);
    let hub_prefix = alloc.next_slash16();
    let hub = b.network("hub", &hub_prefix.to_string(), None);
    let victim_prefix = alloc.next_slash16();
    let victim_net = b.network("victim_net", &victim_prefix.to_string(), Some(hub));
    let victim = b.host_with(
        victim_net,
        HostPolicy::Compliant,
        aitf_netsim::LinkParams::ethernet(
            victim_tail_bps,
            aitf_netsim::SimDuration::from_millis(5),
        ),
    );
    let mut attacker_nets = Vec::with_capacity(n_nets);
    let mut zombies = Vec::with_capacity(n_nets * hosts_per_net);
    for i in 0..n_nets {
        let prefix = alloc.next_slash16();
        let net = b.network(&format!("zombie_net_{i}"), &prefix.to_string(), Some(hub));
        attacker_nets.push(net);
        for _ in 0..hosts_per_net {
            zombies.push(b.host_with(net, zombie_policy, WorldBuilder::default_host_link()));
        }
    }
    StarWorld {
        world: b.build(),
        hub,
        victim_net,
        victim,
        attacker_nets,
        zombies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitf_netsim::SimDuration;

    #[test]
    fn prefix_alloc_never_overlaps() {
        let mut alloc = PrefixAlloc::new();
        let mut seen = Vec::new();
        for _ in 0..600 {
            let p = alloc.next_slash16();
            for q in &seen {
                assert!(!p.overlaps(*q), "{p} overlaps {q}");
            }
            seen.push(p);
        }
    }

    #[test]
    fn fig1_matches_paper_shape() {
        let f = fig1(AitfConfig::default(), 1, HostPolicy::Malicious);
        assert_eq!(f.world.net_count(), 6);
        assert_eq!(f.world.host_count(), 2);
        assert_eq!(f.world.net_name(f.g_net), "G_net");
        assert!(f.world.uplink(f.g_net).is_some());
        assert!(f.world.uplink(f.g_wan).is_none());
    }

    #[test]
    fn chain_pair_depth_one_is_minimal() {
        let c = chain_pair(AitfConfig::default(), 1, 1, HostPolicy::Compliant);
        assert_eq!(c.world.net_count(), 2);
        assert_eq!(c.g_chain.len(), 1);
    }

    #[test]
    fn chain_pair_depth_three_equals_fig1_shape() {
        let c = chain_pair(AitfConfig::default(), 1, 3, HostPolicy::Compliant);
        assert_eq!(c.world.net_count(), 6);
        // Leaf-first: the victim's network has an uplink, the top does not.
        assert!(c.world.uplink(c.g_chain[0]).is_some());
        assert!(c.world.uplink(c.g_chain[2]).is_none());
    }

    #[test]
    fn star_world_counts() {
        let s = star(
            AitfConfig::default(),
            1,
            8,
            3,
            HostPolicy::Malicious,
            10_000_000,
        );
        assert_eq!(s.attacker_nets.len(), 8);
        assert_eq!(s.zombies.len(), 24);
        assert_eq!(s.world.net_count(), 10);
        assert_eq!(s.world.host_count(), 25);
    }

    #[test]
    fn deep_chain_routes_end_to_end() {
        let mut c = chain_pair(AitfConfig::default(), 1, 6, HostPolicy::Compliant);
        let target = c.world.host_addr(c.victim);
        c.world.add_app(
            c.attacker,
            Box::new(crate::LegitClient::new(target, 50, 500)),
        );
        c.world.sim.run_for(SimDuration::from_secs(2));
        assert!(c.world.host(c.victim).counters().rx_legit_pkts > 80);
    }
}
