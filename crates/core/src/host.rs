//! The AITF end host.
//!
//! An [`EndHost`] is a victim, an attacker, a legitimate client, or any mix
//! of the three. It carries:
//!
//! - pluggable **traffic applications** ([`TrafficApp`]) — flood sources,
//!   on-off attackers, legitimate request generators (implemented in the
//!   `aitf-attack` crate);
//! - the **victim agent**: attack detection (oracle with delay `Td`; fast
//!   re-detection of logged flows per footnote 8), filtering-request
//!   origination, the request log used to answer verification queries, and
//!   a traceback collector fed by every received packet;
//! - the **attacker agent**: compliance with `dest=Attacker` notices. A
//!   [`HostPolicy::Compliant`] host installs a self-filter and stops
//!   sending matching traffic ("a legitimate AITF node must be provisioned
//!   to stop sending undesired flows when requested", Section IV-D); a
//!   [`HostPolicy::Malicious`] host ignores notices and risks
//!   disconnection.

use std::collections::HashMap;

use aitf_filter::{FilterTable, TokenBucket};
use aitf_netsim::{impl_node_any, Context, LinkId, MaybeSend, Node, SimDuration, SimTime};
use aitf_packet::{
    Addr, AitfMessage, FilteringRequest, FlowLabel, Header, Packet, Protocol, RequestDestination,
    TrafficClass, VerificationReply,
};
use aitf_traceback::{RouteRecordTraceback, SamplingTraceback, Traceback};

use crate::config::{AitfConfig, HostPolicy, TracebackMode};
use crate::detector::{DetectionMode, RateDetector};

/// Host-side statistics, read by the experiment harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostCounters {
    /// Attack-class data packets received.
    pub rx_attack_pkts: u64,
    /// Attack-class bytes received (the victim's *effective bandwidth* of
    /// undesired flows — the paper's `Be`).
    pub rx_attack_bytes: u64,
    /// Legitimate data packets received.
    pub rx_legit_pkts: u64,
    /// Legitimate bytes received (goodput numerator).
    pub rx_legit_bytes: u64,
    /// Data packets sent by applications.
    pub tx_pkts: u64,
    /// Bytes sent by applications.
    pub tx_bytes: u64,
    /// Sends suppressed by a self-filter (compliance).
    pub tx_suppressed: u64,
    /// Filtering requests sent to the gateway.
    pub requests_sent: u64,
    /// Requests withheld by the host's own contract bucket.
    pub requests_self_limited: u64,
    /// Verification queries answered.
    pub verification_queries: u64,
    /// Queries confirmed (we really did request the block).
    pub verification_confirmed: u64,
    /// Queries denied (someone forged a request in our name).
    pub verification_denied: u64,
    /// `dest=Attacker` notices received.
    pub notices_received: u64,
    /// Flows stopped in compliance with a notice.
    pub flows_stopped: u64,
    /// Undesired flows detected (detection events, not packets).
    pub detections: u64,
}

/// The send-side API a [`TrafficApp`] drives the host through.
pub struct HostApi<'a, 'b> {
    ctx: &'a mut Context<'b>,
    addr: Addr,
    gateway: Addr,
    uplink: LinkId,
    app_index: usize,
    /// The host's attachment generation at arming time; timers from an
    /// older generation are stale (their chain was superseded by a
    /// detach) and are dropped on delivery.
    epoch: u16,
    suppress: bool,
    self_filters: &'a mut FilterTable,
    counters: &'a mut HostCounters,
}

impl HostApi<'_, '_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// This host's address.
    pub fn my_addr(&self) -> Addr {
        self.addr
    }

    /// This host's gateway address.
    pub fn gateway(&self) -> Addr {
        self.gateway
    }

    /// Deterministic RNG.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.ctx.rng()
    }

    /// Arms a one-shot timer delivered back to this app's
    /// [`TrafficApp::on_timer`] with `app_token`.
    ///
    /// The token carries the app index and the host's current attachment
    /// epoch; a timer armed before a detach is stale afterwards and never
    /// delivered, so a detach→attach cycle can never leave two concurrent
    /// timer chains running (the double-rate hazard of dynamic worlds).
    pub fn set_timer(&mut self, delay: SimDuration, app_token: u32) {
        assert!(
            self.app_index + 1 < 1 << 16,
            "more than 65534 apps on one host"
        );
        let token =
            ((self.epoch as u64) << 48) | ((self.app_index as u64 + 1) << 32) | app_token as u64;
        self.ctx.set_timer(delay, token);
    }

    /// Sends a data packet. Returns `false` if a self-filter suppressed it
    /// (the host was asked to stop this flow and is compliant) or the link
    /// dropped it.
    #[allow(clippy::too_many_arguments)]
    pub fn send_data(
        &mut self,
        src: Addr,
        dst: Addr,
        proto: Protocol,
        src_port: u16,
        dst_port: u16,
        class: TrafficClass,
        size_bytes: u32,
    ) -> bool {
        let header = Header {
            src,
            dst,
            proto,
            src_port,
            dst_port,
            ttl: Header::DEFAULT_TTL,
        };
        if self.suppress && self.self_filters.matches(&header, self.ctx.now()) {
            self.counters.tx_suppressed += 1;
            return false;
        }
        let id = self.ctx.next_packet_id();
        self.counters.tx_pkts += 1;
        self.counters.tx_bytes += size_bytes.max(40) as u64;
        self.ctx
            .send(self.uplink, Packet::data(id, header, class, size_bytes))
    }

    /// Sends an arbitrary pre-built packet out of the uplink. Adversarial
    /// apps use this to forge control messages; the packet id is replaced
    /// with a fresh one.
    pub fn send_raw(&mut self, mut packet: Packet) -> bool {
        packet.id = self.ctx.next_packet_id();
        self.ctx.send(self.uplink, packet)
    }

    /// Sends a data packet sourced from this host's own address.
    pub fn send_from_self(
        &mut self,
        dst: Addr,
        proto: Protocol,
        dst_port: u16,
        class: TrafficClass,
        size_bytes: u32,
    ) -> bool {
        self.send_data(self.addr, dst, proto, 0, dst_port, class, size_bytes)
    }
}

/// A traffic generator or responder running on an [`EndHost`].
///
/// Implementations live in the `aitf-attack` crate (floods, on-off
/// attackers, legitimate clients and echo servers).
pub trait TrafficApp: MaybeSend + 'static {
    /// Called once when the simulation starts.
    fn on_start(&mut self, api: &mut HostApi<'_, '_>);

    /// A timer armed through [`HostApi::set_timer`] fired.
    fn on_timer(&mut self, _token: u32, _api: &mut HostApi<'_, '_>) {}

    /// A data packet was delivered to this host.
    fn on_packet(&mut self, _packet: &Packet, _api: &mut HostApi<'_, '_>) {}
}

/// A streaming observer of every data packet a host accepts.
///
/// This is the probe tap point for constant-memory measurement: the
/// scenario layer hangs a sketch/reservoir aggregator off the victim and
/// sees `(src, class, size)` per delivered packet without the host
/// materializing any per-flow state. Exactly one tap per host; it fires
/// after the delivery counters update, before the traffic apps.
pub trait RxTap: MaybeSend + 'static {
    /// One data packet was delivered: source address, traffic class, wire
    /// size. Must be O(1) and allocation-free — it runs on the hot path.
    fn on_rx(&mut self, src: Addr, class: TrafficClass, size_bytes: u32);

    /// Downcast support for reading aggregates back at end of run.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

enum TracebackBox {
    RouteRecord(RouteRecordTraceback),
    Sampling(SamplingTraceback),
}

impl TracebackBox {
    fn as_traceback(&mut self) -> &mut dyn Traceback {
        match self {
            TracebackBox::RouteRecord(t) => t,
            TracebackBox::Sampling(t) => t,
        }
    }

    fn attack_path(&self, flow: &FlowLabel) -> Option<Vec<Addr>> {
        match self {
            TracebackBox::RouteRecord(t) => t.attack_path(flow),
            TracebackBox::Sampling(t) => t.attack_path(flow),
        }
    }
}

/// Host timer meanings (tokens below the app namespace).
enum HostTimer {
    Detect { flow: FlowLabel },
}

/// An AITF end host node.
pub struct EndHost {
    addr: Addr,
    gateway: Addr,
    uplink: LinkId,
    cfg: AitfConfig,
    policy: HostPolicy,
    apps: Vec<Option<Box<dyn TrafficApp>>>,
    /// Flows whose detection timer is pending.
    detecting: HashMap<FlowLabel, ()>,
    /// Flows this host has requested blocked, with the `T` expiry.
    request_log: HashMap<FlowLabel, SimTime>,
    /// Damping: last time a request was sent per flow.
    last_request: HashMap<FlowLabel, SimTime>,
    /// Self-policing of the client contract (R1).
    request_bucket: TokenBucket,
    /// The rate-threshold detector, when configured.
    rate_detector: Option<RateDetector>,
    traceback: TracebackBox,
    /// Self-filters: flows this host agreed to stop sending (sized
    /// `na = R2·T`, Section IV-D).
    self_filters: FilterTable,
    token_map: HashMap<u64, HostTimer>,
    next_token: u64,
    counters: HostCounters,
    timeline: Vec<(SimTime, String)>,
    /// Dynamic-world state: a detached host is off the network — its tail
    /// circuit is blocked by the world layer and this flag silences its
    /// traffic apps (timer chains are dropped, so nothing is even offered
    /// to the dead link).
    attached: bool,
    /// Attachment generation, bumped on every detach. App timer tokens
    /// are stamped with it, so chains armed before a detach stay dead
    /// even if their events fire after a (possibly same-instant)
    /// reattach.
    attach_epoch: u16,
    /// Streaming probe tap, fed every delivered data packet.
    rx_tap: Option<Box<dyn RxTap>>,
}

impl EndHost {
    /// Builds a host attached to `gateway` through `uplink`.
    pub fn new(
        addr: Addr,
        gateway: Addr,
        uplink: LinkId,
        cfg: AitfConfig,
        policy: HostPolicy,
    ) -> Self {
        let traceback = match cfg.traceback {
            TracebackMode::RouteRecord => {
                TracebackBox::RouteRecord(RouteRecordTraceback::new(4096))
            }
            TracebackMode::Sampling { min_samples, .. } => {
                TracebackBox::Sampling(SamplingTraceback::new(4096, min_samples))
            }
        };
        let na = (cfg.peer_contract.rate * cfg.t_long.as_secs_f64())
            .ceil()
            .max(1.0) as usize;
        let rate_detector = match cfg.detection {
            DetectionMode::Oracle => None,
            DetectionMode::RateThreshold {
                bytes_per_sec,
                window,
            } => Some(RateDetector::new(bytes_per_sec, window, 4096)),
        };
        EndHost {
            addr,
            gateway,
            uplink,
            request_bucket: TokenBucket::new(cfg.client_contract.rate, cfg.client_contract.burst),
            rate_detector,
            self_filters: FilterTable::new(na),
            cfg,
            policy,
            apps: Vec::new(),
            detecting: HashMap::new(),
            request_log: HashMap::new(),
            last_request: HashMap::new(),
            traceback,
            token_map: HashMap::new(),
            next_token: 0,
            counters: HostCounters::default(),
            timeline: Vec::new(),
            attached: true,
            attach_epoch: 0,
            rx_tap: None,
        }
    }

    /// Installs the streaming probe tap (replacing any previous one).
    pub fn set_rx_tap(&mut self, tap: Box<dyn RxTap>) {
        self.rx_tap = Some(tap);
    }

    /// The installed tap, for end-of-run readback.
    pub fn rx_tap(&self) -> Option<&dyn RxTap> {
        self.rx_tap.as_deref()
    }

    /// Mutable access to the installed tap.
    pub fn rx_tap_mut(&mut self) -> Option<&mut (dyn RxTap + 'static)> {
        self.rx_tap.as_deref_mut()
    }

    /// This host's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Counter snapshot.
    pub fn counters(&self) -> HostCounters {
        self.counters
    }

    /// The self-filter table (compliance state).
    pub fn self_filters(&self) -> &FilterTable {
        &self.self_filters
    }

    /// Live request-log size.
    pub fn request_log_len(&self) -> usize {
        self.request_log.len()
    }

    /// The recorded timeline (empty unless `config.trace`).
    pub fn timeline(&self) -> &[(SimTime, String)] {
        &self.timeline
    }

    /// Installs a traffic application. Must be called before the simulation
    /// starts.
    pub fn add_app(&mut self, app: Box<dyn TrafficApp>) {
        self.apps.push(Some(app));
    }

    /// Changes the host's compliance policy (experiments flip this).
    pub fn set_policy(&mut self, policy: HostPolicy) {
        self.policy = policy;
    }

    /// Whether the host is attached to the network (dynamic worlds detach
    /// and reattach hosts mid-run).
    pub fn is_attached(&self) -> bool {
        self.attached
    }

    /// Flips the attachment flag. While detached every timer event is
    /// dropped — app timer chains die, so a retired host stops *offering*
    /// traffic instead of uselessly hammering its blocked tail circuit —
    /// and received packets are ignored. Detaching also bumps the
    /// attachment epoch, instantly staling every pending app timer: even
    /// a same-instant detach→attach cannot resurrect the old chains. The
    /// world layer pairs this with blocking the tail link itself.
    pub fn set_attached(&mut self, attached: bool) {
        if self.attached && !attached {
            self.attach_epoch = self.attach_epoch.wrapping_add(1);
        }
        self.attached = attached;
    }

    /// Re-runs every installed app's `on_start` — the reattachment hook:
    /// timer chains broken by a detach period restart from the current
    /// time (an app's `starting_after` delay now counts from reattachment).
    pub fn restart_apps(&mut self, ctx: &mut Context<'_>) {
        for i in 0..self.apps.len() {
            self.with_api(i, ctx, |app, api| app.on_start(api));
        }
    }

    /// Installs a traffic app *mid-run* and starts it immediately — the
    /// runtime-activation hook dynamic worlds compile late-arriving
    /// traffic onto. (Before the simulation starts, [`EndHost::add_app`]
    /// plus the normal `on_start` pass is equivalent.)
    pub fn install_app_now(&mut self, app: Box<dyn TrafficApp>, ctx: &mut Context<'_>) {
        self.apps.push(Some(app));
        let i = self.apps.len() - 1;
        self.with_api(i, ctx, |app, api| app.on_start(api));
    }

    fn trace(&mut self, now: SimTime, msg: impl FnOnce() -> String) {
        if self.cfg.trace {
            self.timeline.push((now, msg()));
        }
    }

    fn with_api<R>(
        &mut self,
        app_index: usize,
        ctx: &mut Context<'_>,
        f: impl FnOnce(&mut dyn TrafficApp, &mut HostApi<'_, '_>) -> R,
    ) -> Option<R> {
        let mut app = self.apps[app_index].take()?;
        let mut api = HostApi {
            ctx,
            addr: self.addr,
            gateway: self.gateway,
            uplink: self.uplink,
            app_index,
            epoch: self.attach_epoch,
            suppress: self.policy == HostPolicy::Compliant,
            self_filters: &mut self.self_filters,
            counters: &mut self.counters,
        };
        let r = f(app.as_mut(), &mut api);
        self.apps[app_index] = Some(app);
        Some(r)
    }

    // ------------------------------------------------------------------
    // Victim agent.
    // ------------------------------------------------------------------

    fn on_attack_packet(&mut self, packet: &Packet, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let flow = FlowLabel::src_dst(packet.header.src, self.addr);
        self.purge_request_log(now);

        if let Some(&expiry) = self.request_log.get(&flow) {
            if expiry > now {
                // A flow we already asked to have blocked is leaking. With
                // fast re-detection (footnote 8) the request goes out
                // immediately; without it, re-detection costs a fresh `Td`
                // like any new flow — the conservative model behind the
                // paper's `r ≈ n(Td+Tr)/T`.
                let cooldown = self.cfg.t_tmp / 2;
                let recently = self
                    .last_request
                    .get(&flow)
                    .copied()
                    .unwrap_or(SimTime::ZERO);
                if now.saturating_since(recently) < cooldown {
                    return;
                }
                if self.cfg.fast_redetect {
                    self.send_filtering_request(flow, ctx);
                } else if self.detecting.insert(flow, ()).is_none() {
                    let token = self.next_token;
                    self.next_token += 1;
                    self.token_map.insert(token, HostTimer::Detect { flow });
                    ctx.set_timer(self.cfg.detection_delay, token);
                }
                return;
            }
        }
        if self.detecting.contains_key(&flow) {
            return;
        }
        // New undesired flow: the oracle detector fires after Td.
        self.detecting.insert(flow, ());
        let token = self.next_token;
        self.next_token += 1;
        self.token_map.insert(token, HostTimer::Detect { flow });
        ctx.set_timer(self.cfg.detection_delay, token);
    }

    fn on_detect(&mut self, flow: FlowLabel, ctx: &mut Context<'_>) {
        ctx.profile_subsystem(aitf_netsim::Subsystem::Detector);
        let now = ctx.now();
        // Under sampling traceback the attack path may not have converged
        // yet; a request without a path cannot be propagated, so wait.
        // This is exactly the identification latency the sampling ablation
        // is meant to expose.
        if matches!(self.cfg.traceback, TracebackMode::Sampling { .. })
            && self.traceback.attack_path(&flow).is_none()
        {
            let token = self.next_token;
            self.next_token += 1;
            self.token_map.insert(token, HostTimer::Detect { flow });
            ctx.set_timer(SimDuration::from_millis(20), token);
            return;
        }
        self.detecting.remove(&flow);
        self.counters.detections += 1;
        self.trace(now, || format!("detected undesired flow {flow}"));
        self.send_filtering_request(flow, ctx);
    }

    /// The rate detector flagged `src`: request a block immediately
    /// (detection latency already elapsed inside the estimator).
    fn on_rate_trip(&mut self, src: aitf_packet::Addr, ctx: &mut Context<'_>) {
        ctx.profile_subsystem(aitf_netsim::Subsystem::Detector);
        let now = ctx.now();
        let flow = FlowLabel::src_dst(src, self.addr);
        self.purge_request_log(now);
        if let Some(&expiry) = self.request_log.get(&flow) {
            if expiry > now {
                // Already requested; damp re-requests like the oracle path.
                let cooldown = self.cfg.t_tmp / 2;
                let recently = self
                    .last_request
                    .get(&flow)
                    .copied()
                    .unwrap_or(SimTime::ZERO);
                if self.cfg.fast_redetect && now.saturating_since(recently) >= cooldown {
                    self.send_filtering_request(flow, ctx);
                }
                return;
            }
        }
        self.counters.detections += 1;
        self.trace(now, || format!("rate detector flagged {flow}"));
        if let Some(d) = &mut self.rate_detector {
            d.forget(src);
        }
        self.send_filtering_request(flow, ctx);
    }

    fn send_filtering_request(&mut self, flow: FlowLabel, ctx: &mut Context<'_>) {
        let now = ctx.now();
        // Self-police the contract: the gateway would drop the excess
        // anyway (Section II-B), so do not waste the wire.
        if !self.request_bucket.try_acquire(now) {
            self.counters.requests_self_limited += 1;
            return;
        }
        let path = self.traceback.attack_path(&flow).unwrap_or_default();
        let id = ctx.next_packet_id();
        let req = FilteringRequest {
            id,
            flow,
            dest: RequestDestination::VictimGateway,
            duration_ns: self.cfg.t_long.as_nanos(),
            path: aitf_packet::RouteRecord::from_hops(path.iter().copied()),
            round: 1,
        };
        self.counters.requests_sent += 1;
        self.request_log.insert(flow, now + self.cfg.t_long);
        self.last_request.insert(flow, now);
        self.trace(now, || format!("filtering request #{id} for {flow}"));
        let pkt = Packet::control(
            ctx.next_packet_id(),
            self.addr,
            self.gateway,
            AitfMessage::FilteringRequest(req),
        );
        ctx.send(self.uplink, pkt);
    }

    fn purge_request_log(&mut self, now: SimTime) {
        if self.request_log.len() > 64 {
            // detlint::allow(hash-iter): per-entry expiry predicate — the surviving set is independent of visit order
            self.request_log.retain(|_, &mut exp| exp > now);
        }
    }

    // ------------------------------------------------------------------
    // Control-plane handling.
    // ------------------------------------------------------------------

    fn handle_control(&mut self, packet: &Packet, ctx: &mut Context<'_>) {
        let Some(msg) = packet.aitf_message() else {
            return;
        };
        ctx.profile_subsystem(aitf_netsim::Subsystem::Escalation);
        let now = ctx.now();
        match msg {
            AitfMessage::VerificationQuery(q) => {
                self.counters.verification_queries += 1;
                let confirm = self.request_log.get(&q.flow).is_some_and(|&exp| exp > now);
                if confirm {
                    self.counters.verification_confirmed += 1;
                } else {
                    self.counters.verification_denied += 1;
                }
                self.trace(now, || {
                    format!("verification query for {}: confirm={confirm}", q.flow)
                });
                let reply = VerificationReply {
                    request_id: q.request_id,
                    flow: q.flow,
                    nonce: q.nonce,
                    confirm,
                };
                let pkt = Packet::control(
                    ctx.next_packet_id(),
                    self.addr,
                    packet.header.src,
                    AitfMessage::VerificationReply(reply),
                );
                ctx.send(self.uplink, pkt);
            }
            AitfMessage::FilteringRequest(req) if req.dest == RequestDestination::Attacker => {
                self.counters.notices_received += 1;
                match self.policy {
                    HostPolicy::Compliant => {
                        let dur = SimDuration::from_nanos(req.duration_ns);
                        if self.self_filters.install(req.flow, now, dur).is_ok() {
                            self.counters.flows_stopped += 1;
                            self.trace(now, || format!("stopping flow {} as asked", req.flow));
                        }
                    }
                    HostPolicy::Malicious => {
                        self.trace(now, || format!("IGNORING stop notice for {}", req.flow));
                    }
                }
            }
            _ => {}
        }
    }
}

impl Node for EndHost {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // A host detached before the run starts (an "arrives later" world)
        // keeps its apps dormant; reattachment restarts them.
        if !self.attached {
            return;
        }
        for i in 0..self.apps.len() {
            self.with_api(i, ctx, |app, api| app.on_start(api));
        }
    }

    fn on_packet(&mut self, packet: Packet, _link: LinkId, ctx: &mut Context<'_>) {
        if !self.attached {
            // A packet already in flight when the host detached: gone.
            return;
        }
        // Feed traceback with everything we receive.
        self.traceback.as_traceback().observe(&packet);

        if packet.header.dst != self.addr {
            // Mis-routed packet; hosts do not forward.
            return;
        }
        if packet.is_data() {
            match packet.payload {
                aitf_packet::PayloadKind::Data(TrafficClass::Attack) => {
                    self.counters.rx_attack_pkts += 1;
                    self.counters.rx_attack_bytes += packet.size_bytes as u64;
                    if self.rate_detector.is_none() {
                        self.on_attack_packet(&packet, ctx);
                    }
                }
                aitf_packet::PayloadKind::Data(TrafficClass::Legit) => {
                    self.counters.rx_legit_pkts += 1;
                    self.counters.rx_legit_bytes += packet.size_bytes as u64;
                }
                aitf_packet::PayloadKind::Aitf(_) => unreachable!("is_data checked"),
            }
            if let (Some(tap), aitf_packet::PayloadKind::Data(class)) =
                (&mut self.rx_tap, &packet.payload)
            {
                tap.on_rx(packet.header.src, *class, packet.size_bytes);
            }
            // The rate detector is class-blind: it sees what a real victim
            // sees — bytes per source — and flags whoever floods.
            if let Some(detector) = &mut self.rate_detector {
                let now = ctx.now();
                let src = packet.header.src;
                if detector.observe(src, packet.size_bytes, now) {
                    self.on_rate_trip(src, ctx);
                }
            }
            for i in 0..self.apps.len() {
                self.with_api(i, ctx, |app, api| app.on_packet(&packet, api));
            }
        } else {
            self.handle_control(&packet, ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if !self.attached {
            // Dropping the event breaks self-rearming timer chains, which
            // is the point: a detached host goes fully quiet. Host-level
            // detection state is unwound so the flow can be re-detected
            // fresh after reattachment.
            if let Some(HostTimer::Detect { flow }) = self.token_map.remove(&token) {
                self.detecting.remove(&flow);
            }
            return;
        }
        let epoch = (token >> 48) as u16;
        let app_ns = (token >> 32) & 0xffff;
        if app_ns > 0 {
            if epoch != self.attach_epoch {
                // A chain armed before a detach: stale, superseded by
                // restart_apps — dropping it is what keeps a brief
                // detach→attach from doubling the send rate.
                return;
            }
            let app_index = (app_ns - 1) as usize;
            let app_token = (token & 0xffff_ffff) as u32;
            self.with_api(app_index, ctx, |app, api| app.on_timer(app_token, api));
            return;
        }
        match self.token_map.remove(&token) {
            Some(HostTimer::Detect { flow }) => self.on_detect(flow, ctx),
            None => {}
        }
    }

    impl_node_any!();
}
