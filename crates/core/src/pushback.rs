//! Pushback baseline state: hop-by-hop aggregate blocking (\[MBF+01\]).
//!
//! Section V of the AITF paper contrasts AITF with Mahajan et al.'s
//! *pushback*: *"A pushback request is propagated hop by hop by the victim
//! towards the attacker. In contrast, the propagation of an AITF filtering
//! request involves only 4 nodes ... A pushback request does not force the
//! recipient router to rate-limit the problematic aggregate; it relies on
//! its good will."*
//!
//! Under [`aitf_defense::DefensePolicy::Pushback`] the border router runs
//! the pushback hook chains instead of AITF's; this module holds the
//! state those stages need — the per-aggregate arrival-link memory and the
//! pushback-specific counters. The shared machinery (filter table,
//! forwarding, TTL accounting, `data_*`/`requests_*`/`filters_installed`
//! counters) lives on the router itself, which is what keeps the protocols
//! comparable:
//!
//! - the victim's gateway turns a victim filtering request into a local
//!   block plus a [`aitf_packet::PushbackRequest`] to the adjacent
//!   *upstream* router the aggregate arrives from;
//! - each recipient blocks locally and recursively propagates upstream,
//!   one hop at a time, until the attacker's edge is reached;
//! - every router on the path therefore holds a filter (the "filtering
//!   bottleneck" of Section I), and one non-cooperating hop silently
//!   breaks the chain upstream of it — there is no disconnection lever.
//!
//! The rate limit is configured to 0 bps (drop) so effectiveness is
//! directly comparable with AITF's blocking.

use std::collections::HashMap;

use aitf_netsim::LinkId;
use aitf_packet::Addr;

/// Maximum hops a pushback request travels (loop guard).
pub const MAX_PUSHBACK_DEPTH: u8 = 32;

/// Destination address of link-local (hop-by-hop) pushback packets.
pub const LINK_LOCAL: Addr = Addr::ZERO;

/// Counters specific to the pushback control plane. Data-plane drops and
/// filter installs land in the router's shared
/// [`crate::RouterCounters`] buckets.
#[derive(Clone, Copy, Debug, Default)]
pub struct PushbackCounters {
    /// Pushback messages received from downstream.
    pub pushback_received: u64,
    /// Pushback messages propagated upstream.
    pub pushback_sent: u64,
    /// Pushback messages ignored (non-cooperating router).
    pub pushback_ignored: u64,
}

/// Per-router pushback state, live only under the pushback policy.
#[derive(Debug, Default)]
pub struct PushbackState {
    /// Which link packets of a given `(src, dst)` pair arrive on — the
    /// "contributing upstream neighbour" needed for propagation.
    flow_arrivals: HashMap<(Addr, Addr), LinkId>,
    /// Pushback-plane counters.
    pub counters: PushbackCounters,
}

impl PushbackState {
    /// Records which link the `(src, dst)` aggregate arrives on. Bounded:
    /// beyond 64k distinct pairs, stop learning new ones (old pairs keep
    /// being refreshed in place).
    pub fn note_arrival(&mut self, key: (Addr, Addr), arrival: LinkId) {
        if self.flow_arrivals.len() < 65_536 || self.flow_arrivals.contains_key(&key) {
            self.flow_arrivals.insert(key, arrival);
        }
    }

    /// The learned upstream link for an aggregate, if any.
    pub fn arrival_of(&self, key: (Addr, Addr)) -> Option<LinkId> {
        self.flow_arrivals.get(&key).copied()
    }

    /// Distinct aggregates currently tracked.
    pub fn tracked_aggregates(&self) -> usize {
        self.flow_arrivals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_learning_is_bounded_but_refreshes_known_pairs() {
        let mut s = PushbackState::default();
        let a = Addr::new(10, 1, 0, 1);
        let b = Addr::new(10, 9, 0, 1);
        s.note_arrival((a, b), LinkId(3));
        assert_eq!(s.arrival_of((a, b)), Some(LinkId(3)));
        s.note_arrival((a, b), LinkId(4));
        assert_eq!(s.arrival_of((a, b)), Some(LinkId(4)));
        assert_eq!(s.tracked_aggregates(), 1);
        assert_eq!(s.arrival_of((b, a)), None);
    }
}
