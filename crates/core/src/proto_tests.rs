//! End-to-end protocol tests over the paper's Figure 1 topology.
//!
//! These are the behavioural contract of the whole crate: a constant flood
//! is launched from `B_host` towards `G_host` across three provider levels
//! on each side, and the tests assert who blocked what, when, and with how
//! many filters — for cooperative, non-cooperative, malicious and forged
//! scenarios.

#![cfg(test)]

use aitf_netsim::{SimDuration, SimTime};
use aitf_packet::{
    Addr, AitfMessage, FilteringRequest, FlowLabel, Packet, Protocol, RequestDestination,
    TrafficClass,
};

use crate::config::{AitfConfig, HostPolicy, RouterPolicy};
use crate::host::{HostApi, TrafficApp};
use crate::world::{HostId, NetId, World, WorldBuilder};

/// A constant-rate UDP flood: one packet every `period`.
struct TestFlood {
    target: Addr,
    period: SimDuration,
    size: u32,
}

impl TrafficApp for TestFlood {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        api.set_timer(self.period, 0);
    }

    fn on_timer(&mut self, _token: u32, api: &mut HostApi<'_, '_>) {
        api.send_from_self(
            self.target,
            Protocol::Udp,
            80,
            TrafficClass::Attack,
            self.size,
        );
        api.set_timer(self.period, 0);
    }
}

/// A one-shot forged filtering request sent straight to a gateway address.
struct ForgeRequest {
    to_gateway: Addr,
    claim_flow: FlowLabel,
    delay: SimDuration,
}

impl TrafficApp for ForgeRequest {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        api.set_timer(self.delay, 1);
    }

    fn on_timer(&mut self, _token: u32, api: &mut HostApi<'_, '_>) {
        let req = FilteringRequest {
            id: 999_999,
            flow: self.claim_flow,
            dest: RequestDestination::AttackerGateway,
            duration_ns: 60_000_000_000,
            path: Default::default(),
            round: 1,
        };
        // Hand-roll the control packet (a compromised node is not polite).
        let now_unused = api.now();
        let _ = now_unused;
        let src = api.my_addr();
        let pkt = Packet::control(0, src, self.to_gateway, AitfMessage::FilteringRequest(req));
        // Send through the host's uplink via the public API: send_data is
        // for data packets, so use a tiny shim — the forged request is a
        // control payload, which HostApi does not offer; emulate by direct
        // construction through send_raw below.
        api.send_raw(pkt);
    }
}

/// Legitimate constant-rate traffic for collateral-damage checks.
struct TestLegit {
    target: Addr,
    period: SimDuration,
}

impl TrafficApp for TestLegit {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        api.set_timer(self.period, 2);
    }

    fn on_timer(&mut self, _token: u32, api: &mut HostApi<'_, '_>) {
        api.send_from_self(self.target, Protocol::Tcp, 443, TrafficClass::Legit, 500);
        api.set_timer(self.period, 2);
    }
}

/// The paper's Figure 1: G_host–G_gw1–G_gw2–G_gw3 = B_gw3–B_gw2–B_gw1–B_host.
#[allow(dead_code)] // Handles kept symmetric for readability.
struct Fig1 {
    world: World,
    g_net: NetId,
    g_isp: NetId,
    g_wan: NetId,
    b_net: NetId,
    b_isp: NetId,
    b_wan: NetId,
    victim: HostId,
    attacker: HostId,
}

fn fig1(cfg: AitfConfig, attacker_policy: HostPolicy) -> Fig1 {
    let mut b = WorldBuilder::new(42, cfg);
    let g_wan = b.network("G_wan", "10.103.0.0/16", None);
    let g_isp = b.network("G_isp", "10.102.0.0/16", Some(g_wan));
    let g_net = b.network("G_net", "10.1.0.0/16", Some(g_isp));
    let b_wan = b.network("B_wan", "10.203.0.0/16", None);
    let b_isp = b.network("B_isp", "10.202.0.0/16", Some(b_wan));
    let b_net = b.network("B_net", "10.9.0.0/16", Some(b_isp));
    b.peer(g_wan, b_wan, WorldBuilder::default_net_link());
    let victim = b.host(g_net);
    let attacker = b.host_with(b_net, attacker_policy, WorldBuilder::default_host_link());
    Fig1 {
        world: b.build(),
        g_net,
        g_isp,
        g_wan,
        b_net,
        b_isp,
        b_wan,
        victim,
        attacker,
    }
}

fn flood(f: &mut Fig1, pps: u64, size: u32) {
    let target = f.world.host_addr(f.victim);
    f.world.add_app(
        f.attacker,
        Box::new(TestFlood {
            target,
            period: SimDuration::from_nanos(1_000_000_000 / pps),
            size,
        }),
    );
}

#[test]
fn cooperative_world_quenches_flood_at_attacker_gateway() {
    let cfg = AitfConfig::default();
    let td = cfg.detection_delay;
    let mut f = fig1(cfg, HostPolicy::Compliant);
    flood(&mut f, 1000, 500);
    f.world.sim.run_for(SimDuration::from_secs(10));

    // The victim saw attack traffic only during the detection+request
    // window: at 1000 pps * 500 B that window is Td + ~2*5ms ≈ 115 ms,
    // so roughly 115 packets; allow generous slack.
    let c = f.world.host(f.victim).counters();
    assert!(
        c.rx_attack_pkts > 0,
        "some leak before the block is expected"
    );
    assert!(
        c.rx_attack_pkts < 400,
        "flood not quenched: {} attack packets reached the victim",
        c.rx_attack_pkts
    );
    assert!(c.requests_sent >= 1);
    let _ = td;

    // The attacker's gateway holds the long filter...
    let b_gw1 = f.world.router(f.b_net);
    assert_eq!(b_gw1.counters().filters_installed, 1);
    assert!(b_gw1.counters().handshakes_confirmed >= 1);
    // ...and the victim's gateway only ever needed its temporary filter.
    let g_gw1 = f.world.router(f.g_net);
    assert!(g_gw1.counters().escalations_sent == 0);

    // The compliant attacker actually stopped sending.
    let a = f.world.host(f.attacker).counters();
    assert!(a.flows_stopped == 1);
    assert!(
        a.tx_suppressed > 0,
        "self-filter must suppress further sends"
    );

    // Nobody was disconnected.
    assert_eq!(b_gw1.counters().disconnects_client, 0);
}

#[test]
fn malicious_host_is_disconnected_after_grace() {
    let cfg = AitfConfig::default();
    let mut f = fig1(cfg, HostPolicy::Malicious);
    flood(&mut f, 1000, 500);
    f.world.sim.run_for(SimDuration::from_secs(10));

    let b_gw1 = f.world.router(f.b_net);
    assert_eq!(
        b_gw1.counters().disconnects_client,
        1,
        "the zombie must be disconnected after the grace period"
    );
    // The host kept trying to send (malicious hosts have no self-filter).
    let a = f.world.host(f.attacker).counters();
    assert_eq!(a.tx_suppressed, 0);
    assert!(a.notices_received >= 1);
    // After disconnection nothing reaches even B_gw1: its filter stops
    // seeing hits. The victim saw only the initial leak.
    let v = f.world.host(f.victim).counters();
    assert!(v.rx_attack_pkts < 400, "victim leak: {}", v.rx_attack_pkts);
}

#[test]
fn non_cooperating_attacker_gateway_forces_escalation() {
    let cfg = AitfConfig::default();
    let mut f = fig1(cfg, HostPolicy::Malicious);
    // B_gw1 ignores filtering requests.
    f.world
        .router_mut(f.b_net)
        .set_policy(RouterPolicy::non_cooperating());
    flood(&mut f, 1000, 500);
    f.world.sim.run_for(SimDuration::from_secs(10));

    // Round 2 lands at B_gw2 (B_isp), which installs the long filter.
    let b_gw2 = f.world.router(f.b_isp);
    assert!(
        b_gw2.counters().filters_installed >= 1,
        "escalation must reach B_isp: {:?}",
        b_gw2.counters()
    );
    // The victim's gateway escalated at least once.
    let g_gw1 = f.world.router(f.g_net);
    assert!(g_gw1.counters().escalations_sent >= 1 || g_gw1.counters().reactivations >= 1);
    // B_isp, holding the bag for its bad client, disconnects B_net.
    assert_eq!(b_gw2.counters().disconnects_client, 1);
    let v = f.world.host(f.victim).counters();
    assert!(v.rx_attack_pkts < 800, "victim leak: {}", v.rx_attack_pkts);
}

#[test]
fn fully_rogue_attacker_side_triggers_peer_disconnect() {
    let cfg = AitfConfig::default();
    let mut f = fig1(cfg, HostPolicy::Malicious);
    for net in [f.b_net, f.b_isp, f.b_wan] {
        f.world
            .router_mut(net)
            .set_policy(RouterPolicy::non_cooperating());
    }
    flood(&mut f, 1000, 500);
    f.world.sim.run_for(SimDuration::from_secs(20));

    // The worst case of Section II-D: G_gw3 disconnects from B_gw3.
    let g_gw3 = f.world.router(f.g_wan);
    assert!(
        g_gw3.counters().disconnects_peer >= 1,
        "top-level victim-side gateway must disconnect the rogue peer: {:?}",
        g_gw3.counters()
    );
    // After the disconnect the flood is fully dead.
    let v0 = f.world.host(f.victim).counters().rx_attack_pkts;
    f.world.sim.run_for(SimDuration::from_secs(5));
    let v1 = f.world.host(f.victim).counters().rx_attack_pkts;
    assert_eq!(v0, v1, "flood must stay dead after peer disconnect");
}

#[test]
fn forged_request_is_denied_by_handshake() {
    // A compromised host M in G_isp forges "block A->V" for a legitimate
    // flow it is not on the path of. The handshake must kill it.
    let cfg = AitfConfig::default();
    let mut b = WorldBuilder::new(7, cfg);
    let wan = b.network("wan", "10.100.0.0/16", None);
    let a_net = b.network("a_net", "10.1.0.0/16", Some(wan));
    let v_net = b.network("v_net", "10.2.0.0/16", Some(wan));
    let m_net = b.network("m_net", "10.3.0.0/16", Some(wan));
    let a = b.host(a_net);
    let v = b.host(v_net);
    let m = b.host(m_net);
    let mut world = b.build();

    let a_addr = world.host_addr(a);
    let v_addr = world.host_addr(v);
    let a_gw = world.router_addr(a_net);
    // A sends legitimate traffic to V.
    world.add_app(
        a,
        Box::new(TestLegit {
            target: v_addr,
            period: SimDuration::from_millis(10),
        }),
    );
    // M forges a request claiming V wants A blocked.
    world.add_app(
        m,
        Box::new(ForgeRequest {
            to_gateway: a_gw,
            claim_flow: FlowLabel::src_dst(a_addr, v_addr),
            delay: SimDuration::from_secs(1),
        }),
    );
    world.sim.run_for(SimDuration::from_secs(5));

    let a_router = world.router(a_net);
    assert_eq!(
        a_router.counters().handshakes_denied,
        1,
        "{:?}",
        a_router.counters()
    );
    assert_eq!(
        a_router.counters().filters_installed,
        0,
        "forged request must not block"
    );
    // V denied the query.
    assert_eq!(world.host(v).counters().verification_denied, 1);
    // The legitimate flow kept flowing.
    let legit = world.host(v).counters().rx_legit_pkts;
    assert!(legit > 400, "legit flow harmed: only {legit} packets");
}

#[test]
fn forgery_succeeds_without_verification_ablation() {
    let cfg = AitfConfig {
        verification: false,
        ..AitfConfig::default()
    };
    let mut b = WorldBuilder::new(7, cfg);
    let wan = b.network("wan", "10.100.0.0/16", None);
    let a_net = b.network("a_net", "10.1.0.0/16", Some(wan));
    let v_net = b.network("v_net", "10.2.0.0/16", Some(wan));
    let m_net = b.network("m_net", "10.3.0.0/16", Some(wan));
    let a = b.host(a_net);
    let v = b.host(v_net);
    let m = b.host(m_net);
    let mut world = b.build();
    let a_addr = world.host_addr(a);
    let v_addr = world.host_addr(v);
    let a_gw = world.router_addr(a_net);
    world.add_app(
        a,
        Box::new(TestLegit {
            target: v_addr,
            period: SimDuration::from_millis(10),
        }),
    );
    world.add_app(
        m,
        Box::new(ForgeRequest {
            to_gateway: a_gw,
            claim_flow: FlowLabel::src_dst(a_addr, v_addr),
            delay: SimDuration::from_secs(1),
        }),
    );
    world.sim.run_for(SimDuration::from_secs(5));

    // Without the handshake the forged request installs a real filter and
    // the legitimate flow dies — this is why Section II-E exists.
    let a_router = world.router(a_net);
    assert!(a_router.counters().filters_installed >= 1);
    let legit_at_2s = world.host(v).counters().rx_legit_pkts;
    assert!(
        legit_at_2s < 150,
        "legit flow should have been cut early, got {legit_at_2s} packets"
    );
}

#[test]
fn victim_gateway_filter_is_temporary_not_long() {
    let cfg = AitfConfig::default();
    let t_tmp = cfg.t_tmp;
    let mut f = fig1(cfg, HostPolicy::Compliant);
    flood(&mut f, 1000, 500);
    // Run long enough for install, then check expiry bookkeeping.
    f.world.sim.run_for(SimDuration::from_millis(300));
    let flow = FlowLabel::src_dst(f.world.host_addr(f.attacker), f.world.host_addr(f.victim));
    let g_gw1 = f.world.router(f.g_net);
    let exp = g_gw1
        .filters()
        .expiry_of(&flow)
        .expect("temp filter present");
    assert!(
        exp <= SimTime::ZERO + SimDuration::from_millis(300) + t_tmp,
        "victim gateway filter must be temporary"
    );
    // The shadow outlives the filter by design.
    let shadow = g_gw1.shadow().get(&flow).expect("shadow present");
    assert!(shadow.expires > exp);
}

// ----------------------------------------------------------------------
// Partial deployment: deployment-aware escalation.
// ----------------------------------------------------------------------

#[test]
fn escalation_skips_legacy_hop_to_nearest_aitf_node() {
    // G_isp never runs AITF and B_gw1 refuses to cooperate. Round 2's
    // escalation must skip the legacy G_isp straight to G_wan (instead of
    // being silently eaten), and G_wan's round-2 request lands on B_isp —
    // the nearest participating node — so the flood still dies on the
    // attacker's side.
    let cfg = AitfConfig::default();
    let mut f = fig1(cfg, HostPolicy::Malicious);
    f.world.set_router_policy(f.g_isp, RouterPolicy::legacy());
    f.world
        .set_router_policy(f.b_net, RouterPolicy::non_cooperating());
    flood(&mut f, 1000, 500);
    f.world.sim.run_for(SimDuration::from_secs(10));

    // The legacy hop was never asked anything: no requests reached (or
    // were wasted on) G_isp.
    let g_gw2 = f.world.router(f.g_isp).counters();
    assert_eq!(g_gw2.requests_received, 0, "legacy G_isp must be skipped");
    assert_eq!(g_gw2.requests_ignored, 0);
    // The victim's gateway escalated directly to G_wan...
    assert!(f.world.router(f.g_net).counters().escalations_sent >= 1);
    assert!(f.world.router(f.g_wan).counters().requests_received >= 1);
    // ...and the round-2 filter landed at B_gw2.
    let b_gw2 = f.world.router(f.b_isp).counters();
    assert!(
        b_gw2.filters_installed >= 1,
        "round 2 must block at B_isp: {b_gw2:?}"
    );
    // Nothing fell into the void.
    for net in [f.g_net, f.g_isp, f.g_wan, f.b_net, f.b_isp, f.b_wan] {
        assert_eq!(f.world.router(net).counters().escalations_dropped, 0);
    }
    let v = f.world.host(f.victim).counters();
    assert!(v.rx_attack_pkts < 3000, "victim leak: {}", v.rx_attack_pkts);
}

#[test]
fn provider_leaving_aitf_mid_attack_reescalates_around_it() {
    // The E17 mechanics at protocol level: the flood is blocked at B_gw1
    // in round 1; then B_net *and* B_isp leave AITF mid-attack
    // (`World::set_router_policy` broadcasts the change). Their filters
    // go dormant, the flow reappears, and the victim gateway's round-2
    // re-escalation must route around both dropped-out providers to
    // B_wan, which re-blocks the flow and holds its own client (B_isp's
    // network) accountable. Grace is pushed past the horizon so the
    // zombie is not simply unplugged before the churn happens.
    let cfg = AitfConfig {
        grace: SimDuration::from_secs(3600),
        ..AitfConfig::default()
    };
    let mut f = fig1(cfg, HostPolicy::Malicious);
    flood(&mut f, 1000, 500);
    f.world.sim.run_for(SimDuration::from_secs(2));
    assert_eq!(f.world.router(f.b_net).counters().filters_installed, 1);
    assert_eq!(f.world.router(f.b_wan).counters().filters_installed, 0);
    let leak_before_flip = f.world.host(f.victim).counters().rx_attack_pkts;

    f.world.set_router_policy(f.b_net, RouterPolicy::legacy());
    f.world.set_router_policy(f.b_isp, RouterPolicy::legacy());
    f.world.sim.run_for(SimDuration::from_secs(2));

    // Re-blocked at the nearest still-participating node: B_wan started
    // the verification handshake and installed the long filter; the
    // dropped-out B_isp was never asked to filter.
    let b_gw3 = f.world.router(f.b_wan).counters();
    assert!(b_gw3.handshakes_started >= 1, "{b_gw3:?}");
    assert!(b_gw3.filters_installed >= 1, "{b_gw3:?}");
    assert_eq!(f.world.router(f.b_isp).counters().handshakes_started, 0);
    assert_eq!(f.world.router(f.b_isp).counters().filters_installed, 0);

    // B_wan's misbehaving client is B_isp's network; the accountability
    // notice goes there and is ignored (it left AITF) — the §II-D
    // pressure that would get it disconnected after the grace period.
    assert!(f.world.router(f.b_isp).counters().requests_ignored >= 1);
    assert!(b_gw3.attacker_notices_sent >= 1, "{b_gw3:?}");

    // The re-escalation spike is bounded: once re-blocked, the leak
    // stops growing.
    let leak_after_settle = f.world.host(f.victim).counters().rx_attack_pkts;
    f.world.sim.run_for(SimDuration::from_secs(4));
    let leak_end = f.world.host(f.victim).counters().rx_attack_pkts;
    assert!(
        leak_end - leak_after_settle < 50,
        "leak must stop after re-escalation: {leak_before_flip} -> \
         {leak_after_settle} -> {leak_end}"
    );
}

#[test]
fn rejoining_provider_is_escalated_through_again() {
    // The flip is reversible: after B_net leaves and the flow re-blocks
    // upstream, B_net rejoining AITF restores its dormant filter — new
    // flows block at B_net again, round 1, exactly as at full deployment.
    let cfg = AitfConfig {
        grace: SimDuration::from_secs(3600),
        ..AitfConfig::default()
    };
    let mut f = fig1(cfg, HostPolicy::Malicious);
    flood(&mut f, 1000, 500);
    f.world.sim.run_for(SimDuration::from_secs(2));
    f.world.set_router_policy(f.b_net, RouterPolicy::legacy());
    f.world.sim.run_for(SimDuration::from_secs(2));
    // Re-blocked at B_isp while B_net is out.
    assert!(f.world.router(f.b_isp).counters().filters_installed >= 1);

    f.world.set_router_policy(f.b_net, RouterPolicy::default());
    // B_net's long filter (60 s) is live again the moment it rejoins:
    // its data-plane drop counter resumes climbing.
    let dropped_at_rejoin = f.world.router(f.b_net).counters().data_filtered_pkts;
    f.world.sim.run_for(SimDuration::from_secs(2));
    let dropped_end = f.world.router(f.b_net).counters().data_filtered_pkts;
    assert!(
        dropped_end > dropped_at_rejoin + 500,
        "rejoined provider must filter at wire speed again: \
         {dropped_at_rejoin} -> {dropped_end}"
    );
}

#[test]
fn deterministic_end_to_end() {
    let run = |seed: u64| {
        let mut b = WorldBuilder::new(seed, AitfConfig::default());
        let wan = b.network("wan", "10.100.0.0/16", None);
        let g = b.network("g", "10.1.0.0/16", Some(wan));
        let bad = b.network("b", "10.9.0.0/16", Some(wan));
        let v = b.host(g);
        let a = b.host_with(
            bad,
            HostPolicy::Malicious,
            WorldBuilder::default_host_link(),
        );
        let mut w = b.build();
        let target = w.host_addr(v);
        w.add_app(
            a,
            Box::new(TestFlood {
                target,
                period: SimDuration::from_millis(2),
                size: 600,
            }),
        );
        w.sim.run_for(SimDuration::from_secs(5));
        let vc = w.host(v).counters();
        (
            vc.rx_attack_pkts,
            vc.rx_attack_bytes,
            vc.requests_sent,
            w.sim.dispatched_events(),
        )
    };
    assert_eq!(run(99), run(99));
    // A different seed still works (values may differ).
    let _ = run(100);
}
