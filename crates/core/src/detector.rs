//! Attack detection at the victim.
//!
//! The paper starts "from the point where the node has identified the
//! undesired flow(s)" (Section V), so detection itself is pluggable:
//!
//! - [`DetectionMode::Oracle`] tags `TrafficClass::Attack` packets as
//!   undesired after a configurable delay `Td` — the controlled knob the
//!   Section IV formulas use.
//! - [`DetectionMode::RateThreshold`] is a real detector: a per-source
//!   EWMA rate estimator (the estimator style of \[MBF+01\]) flags any
//!   source whose sustained rate towards the victim exceeds a threshold.
//!   Detection latency then *emerges* from the estimator instead of being
//!   assumed, and false positives/negatives become measurable.

use std::collections::BTreeMap;

use aitf_netsim::{SimDuration, SimTime};
use aitf_packet::Addr;

/// How a victim identifies undesired flows.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum DetectionMode {
    /// Trust the accounting tag; fire `Td` after the first attack packet.
    Oracle,
    /// Flag sources whose EWMA rate exceeds `bytes_per_sec`, smoothed over
    /// `window`.
    RateThreshold {
        /// Sustained-rate threshold in bytes/second.
        bytes_per_sec: f64,
        /// EWMA time constant; larger = smoother and slower.
        window: SimDuration,
    },
}

#[derive(Debug, Clone, Copy)]
struct FlowRate {
    ewma_bps: f64,
    last_update: SimTime,
}

/// Per-source EWMA rate estimator with a trip threshold.
///
/// # Examples
///
/// ```
/// use aitf_core::detector::RateDetector;
/// use aitf_netsim::{SimDuration, SimTime};
/// use aitf_packet::Addr;
///
/// // Trip at 100 kB/s sustained, smoothed over 100 ms.
/// let mut d = RateDetector::new(100_000.0, SimDuration::from_millis(100), 1024);
/// let src = Addr::new(10, 9, 0, 7);
/// let mut tripped = false;
/// for i in 0..200u64 {
///     // 1000-byte packets every 1 ms = 1 MB/s, far above threshold.
///     let t = SimTime(i * 1_000_000);
///     tripped |= d.observe(src, 1000, t);
/// }
/// assert!(tripped);
/// ```
#[derive(Debug)]
pub struct RateDetector {
    threshold_bps: f64,
    window: SimDuration,
    /// Ordered map: the capacity-shedding scan below picks a minimum over
    /// this map, and ties on `last_update` must break by address, not by
    /// hash order — stale-entry choice feeds which sources get detected.
    flows: BTreeMap<Addr, FlowRate>,
    capacity: usize,
    /// Sources flagged so far (diagnostics).
    pub trips: u64,
}

impl RateDetector {
    /// Creates a detector tripping at `threshold_bytes_per_sec`, tracking
    /// at most `capacity` concurrent sources.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not positive or the window is zero.
    pub fn new(threshold_bytes_per_sec: f64, window: SimDuration, capacity: usize) -> Self {
        assert!(threshold_bytes_per_sec > 0.0, "threshold must be positive");
        assert!(!window.is_zero(), "window must be positive");
        RateDetector {
            threshold_bps: threshold_bytes_per_sec,
            window,
            flows: BTreeMap::new(),
            capacity,
            trips: 0,
        }
    }

    /// Number of sources currently tracked.
    pub fn tracked(&self) -> usize {
        self.flows.len()
    }

    /// Feeds one received packet; returns `true` if the source's smoothed
    /// rate now exceeds the threshold.
    pub fn observe(&mut self, src: Addr, bytes: u32, now: SimTime) -> bool {
        if !self.flows.contains_key(&src) && self.flows.len() >= self.capacity {
            // Table full: shed the stalest entry so hot sources keep being
            // tracked. Iteration is addr-ordered and `min_by_key` keeps the
            // first minimum, so ties on `last_update` break to the lowest
            // address — the shed choice is a pure function of the table.
            if let Some((&stale, _)) = self.flows.iter().min_by_key(|(_, f)| f.last_update) {
                self.flows.remove(&stale);
            }
        }
        let entry = self.flows.entry(src).or_insert(FlowRate {
            ewma_bps: 0.0,
            last_update: now,
        });
        let dt = now.saturating_since(entry.last_update).as_secs_f64();
        let tau = self.window.as_secs_f64();
        if dt > 0.0 {
            // Standard time-decayed EWMA: weight the instantaneous rate by
            // how much of the window has elapsed.
            let alpha = 1.0 - (-dt / tau).exp();
            let instant = bytes as f64 / dt;
            entry.ewma_bps = (1.0 - alpha) * entry.ewma_bps + alpha * instant;
            entry.last_update = now;
        } else {
            // Same-instant packets (bursts): accumulate as instantaneous
            // mass spread over the window, a conservative under-estimate.
            entry.ewma_bps += bytes as f64 / tau;
        }
        let tripped = entry.ewma_bps > self.threshold_bps;
        if tripped {
            self.trips += 1;
        }
        tripped
    }

    /// Current smoothed rate estimate for a source (bytes/second).
    pub fn rate_of(&self, src: Addr) -> Option<f64> {
        self.flows.get(&src).map(|f| f.ewma_bps)
    }

    /// Forgets a source (after its flow has been blocked).
    pub fn forget(&mut self, src: Addr) {
        self.flows.remove(&src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Addr = Addr::new(10, 9, 0, 7);

    fn detector() -> RateDetector {
        RateDetector::new(100_000.0, SimDuration::from_millis(100), 64)
    }

    #[test]
    fn flood_above_threshold_trips() {
        let mut d = detector();
        let mut tripped_at = None;
        for i in 0..500u64 {
            // 1 MB/s: 1000 B per ms.
            let t = SimTime(i * 1_000_000);
            if d.observe(SRC, 1000, t) && tripped_at.is_none() {
                tripped_at = Some(t);
            }
        }
        let at = tripped_at.expect("must trip");
        // Detection latency is a few EWMA windows, far below 500 ms.
        assert!(at < SimTime(400_000_000), "tripped too late: {at}");
    }

    #[test]
    fn traffic_below_threshold_never_trips() {
        let mut d = detector();
        for i in 0..2000u64 {
            // 50 kB/s: 500 B every 10 ms, half the threshold.
            let t = SimTime(i * 10_000_000);
            assert!(!d.observe(SRC, 500, t), "false positive at {i}");
        }
        let r = d.rate_of(SRC).expect("tracked");
        assert!((r - 50_000.0).abs() < 5_000.0, "estimate off: {r}");
    }

    #[test]
    fn estimate_decays_when_flow_stops() {
        let mut d = detector();
        for i in 0..100u64 {
            d.observe(SRC, 1000, SimTime(i * 1_000_000));
        }
        let busy = d.rate_of(SRC).expect("tracked");
        // One packet after a long silence pulls the estimate way down.
        d.observe(SRC, 100, SimTime(2_000_000_000));
        let idle = d.rate_of(SRC).expect("tracked");
        assert!(idle < busy / 10.0, "no decay: {busy} -> {idle}");
    }

    #[test]
    fn same_instant_bursts_accumulate() {
        let mut d = detector();
        let t = SimTime(1_000_000);
        let mut tripped = false;
        for _ in 0..20 {
            tripped |= d.observe(SRC, 1000, t);
        }
        assert!(
            tripped,
            "a 20 kB same-instant burst over a 100 ms window is 200 kB/s"
        );
    }

    #[test]
    fn capacity_is_bounded_with_stale_shedding() {
        let mut d = RateDetector::new(1e6, SimDuration::from_millis(100), 8);
        for i in 0..100u32 {
            let src = Addr::new(10, 9, (i / 250) as u8, (i % 250) as u8);
            d.observe(src, 100, SimTime(i as u64 * 1_000_000));
        }
        assert!(d.tracked() <= 8);
    }

    #[test]
    fn forget_clears_state() {
        let mut d = detector();
        d.observe(SRC, 1000, SimTime(0));
        d.forget(SRC);
        assert!(d.rate_of(SRC).is_none());
        assert_eq!(d.tracked(), 0);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        let _ = RateDetector::new(0.0, SimDuration::from_millis(100), 8);
    }
}
