//! # aitf-core — Active Internet Traffic Filtering
//!
//! The primary contribution of Argyraki & Cheriton's AITF paper: an
//! automatic filter-propagation protocol that pushes the blocking of DoS
//! flood traffic to the network closest to the attacker, in exchange for a
//! *bounded* amount of router resources.
//!
//! The protocol in one paragraph (Sections II-B/C of the paper): the victim
//! sends a filtering request to its gateway; the gateway blocks the flow
//! with a **temporary** filter (`Ttmp`), logs a **shadow** of the request in
//! DRAM for the full horizon `T`, and propagates the request to the
//! **attacker's gateway**, which verifies it with a nonce **3-way
//! handshake**, blocks the flow for `T`, and tells the attacker to stop or
//! be **disconnected**. If the attacker's gateway does not cooperate, the
//! mechanism **escalates** one provider level per round until a cooperating
//! AITF node is found — at most four nodes are involved in any round.
//!
//! ## Crate layout
//!
//! - [`config`] — timers (`T`, `Ttmp`, grace), contracts (`R1`, `R2`),
//!   per-node policies, traceback mode, defense policy.
//! - [`router`] — [`BorderRouter`]: every protocol role in one node,
//!   organised as Ingress/Escalate/Egress hook chains.
//! - [`pipeline`] — stage declarations and per-policy chain wiring for
//!   the router's defense hooks.
//! - [`pushback`] — state for the hop-by-hop pushback baseline policy.
//! - [`host`] — [`EndHost`]: victim agent, attacker compliance, pluggable
//!   [`TrafficApp`]s.
//! - [`world`] — [`WorldBuilder`]: networks, hosts, routing, contracts.
//!
//! ## Quickstart
//!
//! ```
//! use aitf_core::{AitfConfig, WorldBuilder};
//! use aitf_netsim::SimDuration;
//!
//! // Figure 1 of the paper, two levels deep.
//! let mut b = WorldBuilder::new(7, AitfConfig::default());
//! let wan = b.network("wan", "10.100.0.0/16", None);
//! let g_net = b.network("G_net", "10.1.0.0/16", Some(wan));
//! let b_net = b.network("B_net", "10.9.0.0/16", Some(wan));
//! let victim = b.host(g_net);
//! let attacker = b.host(b_net);
//! let mut world = b.build();
//! world.sim.run_for(SimDuration::from_secs(5));
//! assert_eq!(world.attack_bytes_at(victim), 0, "no attack app installed");
//! let _ = attacker;
//! ```

pub mod config;
pub mod detector;
pub mod host;
pub mod pipeline;
mod proto_tests;
pub mod pushback;
pub mod router;
pub mod world;

pub use config::{AitfConfig, Contract, HostPolicy, RouterPolicy, TracebackMode};
// Re-exported so scenario/experiment layers can name the sweep axes
// without a direct aitf-filter / aitf-defense dependency.
pub use aitf_defense::DefensePolicy;
pub use aitf_filter::EvictionPolicy;
pub use detector::{DetectionMode, RateDetector};
pub use host::{EndHost, HostApi, HostCounters, RxTap, TrafficApp};
pub use pipeline::{PolicyChains, StageId};
pub use pushback::{PushbackCounters, PushbackState, LINK_LOCAL, MAX_PUSHBACK_DEPTH};
pub use router::{BorderRouter, RouterCounters, RouterSpec};
pub use world::{HostId, NetId, RoutingMode, World, WorldBuilder};
