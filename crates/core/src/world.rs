//! World builder: assembles AITF networks, hosts and routing into a
//! runnable simulation.
//!
//! An *AITF network* (Section II-A) is an Autonomous Domain fronted by one
//! border router, with filtering contracts towards its end-hosts and its
//! neighbour ADs. The builder mirrors the paper's Figure 1: networks form
//! a provider hierarchy (`G_net ⊂ G_isp ⊂ G_wan`), top-level ADs peer with
//! each other, and end hosts hang off their network's border router
//! through a tail circuit.
//!
//! # Examples
//!
//! ```
//! use aitf_core::{AitfConfig, WorldBuilder};
//! use aitf_netsim::SimDuration;
//!
//! let mut b = WorldBuilder::new(42, AitfConfig::default());
//! let wan = b.network("wan", "10.100.0.0/16", None);
//! let net = b.network("net", "10.1.0.0/16", Some(wan));
//! let host = b.host(net);
//! let mut world = b.build();
//! world.sim.run_for(SimDuration::from_secs(1));
//! assert!(world.host_addr(host).to_string().starts_with("10.1."));
//! ```

use std::collections::{BTreeMap, HashMap};

use aitf_netsim::{
    LinkDirection, LinkId, LinkParams, NetworkBuilder, NextHops, NodeId, PartitionSpec,
    SimDuration, Simulator,
};
use aitf_packet::{Addr, LpmTable, Prefix};

use crate::config::{AitfConfig, HostPolicy, RouterPolicy};
use crate::host::{EndHost, TrafficApp};
use crate::router::{BorderRouter, RouterSpec};

/// How forwarding tables are derived from the declared topology.
///
/// [`RoutingMode::AllPairs`] runs a shortest-path computation over the
/// router backbone and gives every router one route per remote network —
/// correct for arbitrary graphs, but O(n²) time *and* memory, which is
/// prohibitive past a few thousand networks. [`RoutingMode::Hierarchical`]
/// exploits the provider-tree structure the builder already enforces:
/// each router gets a default route up its provider uplink, one route per
/// child subtree down, and subtree shortcut routes across each declared
/// peering — O(n·depth) state total, no all-pairs pass. On any
/// tree-plus-peering topology (stars, trees, the power-law generators)
/// both modes forward every packet over the same links; hierarchical
/// simply refuses to route graphs with cross-links it cannot see.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RoutingMode {
    /// All-pairs shortest paths over the router backbone (the default).
    #[default]
    AllPairs,
    /// Provider-tree routing: default-up, subtree-down, peering shortcuts.
    Hierarchical,
}

/// Handle to a network (AD) in a [`WorldBuilder`] / [`World`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NetId(pub usize);

/// Handle to an end host.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HostId(pub usize);

struct NetSpec {
    name: String,
    prefix: Prefix,
    parent: Option<usize>,
    policy: RouterPolicy,
    uplink_params: LinkParams,
}

struct HostSpec {
    net: usize,
    policy: HostPolicy,
    link_params: LinkParams,
}

/// Builder for an AITF world.
pub struct WorldBuilder {
    seed: u64,
    cfg: AitfConfig,
    nets: Vec<NetSpec>,
    hosts: Vec<HostSpec>,
    peerings: Vec<(usize, usize, LinkParams)>,
    routing: RoutingMode,
    /// Exact-duplicate guard for hierarchical mode, where the O(n²)
    /// pairwise overlap scan is skipped (generated prefixes come from a
    /// disjoint allocator; reuse of an identical prefix is the realistic
    /// bug to catch).
    prefix_seen: std::collections::HashSet<Prefix>,
}

impl WorldBuilder {
    /// Default inter-network link: 1 Gbit/s, 10 ms, fat queue.
    pub fn default_net_link() -> LinkParams {
        LinkParams::ethernet(1_000_000_000, SimDuration::from_millis(10)).with_queue_bytes(1 << 20)
    }

    /// Default tail circuit: 10 Mbit/s, 5 ms, shallow queue — the paper's
    /// introduction example of a link an attacker can congest.
    pub fn default_host_link() -> LinkParams {
        LinkParams::ethernet(10_000_000, SimDuration::from_millis(5))
    }

    /// Creates a builder.
    pub fn new(seed: u64, cfg: AitfConfig) -> Self {
        WorldBuilder {
            seed,
            cfg,
            nets: Vec::new(),
            hosts: Vec::new(),
            peerings: Vec::new(),
            routing: RoutingMode::default(),
            prefix_seen: std::collections::HashSet::new(),
        }
    }

    /// Selects the routing mode. Set this before declaring networks:
    /// hierarchical mode replaces the per-network overlap scan with an
    /// exact-duplicate check, and only prefixes declared after the switch
    /// skip the scan.
    pub fn routing(&mut self, mode: RoutingMode) -> &mut Self {
        self.routing = mode;
        self
    }

    /// Declares a network with the default router policy and uplink.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` does not parse or overlaps an existing network.
    pub fn network(&mut self, name: &str, prefix: &str, parent: Option<NetId>) -> NetId {
        self.network_with(
            name,
            prefix,
            parent,
            RouterPolicy::default(),
            Self::default_net_link(),
        )
    }

    /// Declares a network with explicit policy and uplink parameters.
    pub fn network_with(
        &mut self,
        name: &str,
        prefix: &str,
        parent: Option<NetId>,
        policy: RouterPolicy,
        uplink_params: LinkParams,
    ) -> NetId {
        let prefix: Prefix = prefix.parse().expect("invalid network prefix");
        assert!(
            self.prefix_seen.insert(prefix),
            "prefix {prefix} duplicates an existing network"
        );
        if self.routing == RoutingMode::AllPairs {
            for n in &self.nets {
                assert!(
                    !n.prefix.overlaps(prefix),
                    "prefix {prefix} overlaps existing network {}",
                    n.name
                );
            }
        }
        let id = NetId(self.nets.len());
        self.nets.push(NetSpec {
            name: name.to_string(),
            prefix,
            parent: parent.map(|p| p.0),
            policy,
            uplink_params,
        });
        id
    }

    /// Overrides a network's router policy before building.
    pub fn set_router_policy(&mut self, net: NetId, policy: RouterPolicy) {
        self.nets[net.0].policy = policy;
    }

    /// Adds a compliant host with the default tail circuit.
    pub fn host(&mut self, net: NetId) -> HostId {
        self.host_with(net, HostPolicy::Compliant, Self::default_host_link())
    }

    /// Adds a host with explicit policy and tail-circuit parameters.
    pub fn host_with(&mut self, net: NetId, policy: HostPolicy, link_params: LinkParams) -> HostId {
        let id = HostId(self.hosts.len());
        self.hosts.push(HostSpec {
            net: net.0,
            policy,
            link_params,
        });
        id
    }

    /// Connects two (typically top-level) networks as peers.
    pub fn peer(&mut self, a: NetId, b: NetId, params: LinkParams) {
        self.peerings.push((a.0, b.0, params));
    }

    /// Assembles the simulator, routing tables and protocol nodes, with
    /// [`BorderRouter`]s at every network. Which defense the routers run
    /// is the configuration's [`crate::AitfConfig::defense`] policy — the
    /// pushback baseline and the other bake-off defenses reuse all the
    /// topology, addressing and routing machinery through their hook
    /// chains instead of substituting a different node type.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent input: a network with more than 250 hosts,
    /// or a disconnected topology being asked to route.
    pub fn build(self) -> World {
        let mut nb = NetworkBuilder::new(self.seed);

        // One node per router, one per host.
        let router_nodes: Vec<NodeId> = self.nets.iter().map(|_| nb.add_node()).collect();
        let host_nodes: Vec<NodeId> = self.hosts.iter().map(|_| nb.add_node()).collect();

        // Links: child → parent uplinks, host tail circuits, peerings.
        let mut uplinks: Vec<Option<LinkId>> = vec![None; self.nets.len()];
        for (i, net) in self.nets.iter().enumerate() {
            if let Some(p) = net.parent {
                uplinks[i] = Some(nb.connect(router_nodes[i], router_nodes[p], net.uplink_params));
            }
        }
        let tail_links: Vec<LinkId> = self
            .hosts
            .iter()
            .enumerate()
            .map(|(i, h)| nb.connect(host_nodes[i], router_nodes[h.net], h.link_params))
            .collect();
        let peer_links: Vec<LinkId> = self
            .peerings
            .iter()
            .map(|&(a, b, params)| nb.connect(router_nodes[a], router_nodes[b], params))
            .collect();

        let mut sim = nb.build();

        // Routing runs over the router backbone only. Hosts are leaves on
        // their tail circuit — they can never be transit — so an all-pairs
        // computation over every node would produce the same router paths
        // at O((routers+hosts)²) cost, which is prohibitive at 100k hosts.
        debug_assert!(router_nodes.iter().enumerate().all(|(i, n)| n.0 == i));
        let mut router_links: Vec<(NodeId, NodeId, LinkId, u64)> = Vec::new();
        for (i, net) in self.nets.iter().enumerate() {
            if let Some(p) = net.parent {
                router_links.push((
                    router_nodes[i],
                    router_nodes[p],
                    uplinks[i].expect("child has an uplink"),
                    1,
                ));
            }
        }
        for (k, &(a, b, _)) in self.peerings.iter().enumerate() {
            router_links.push((router_nodes[a], router_nodes[b], peer_links[k], 1));
        }
        let mut hosts_of_net: Vec<Vec<usize>> = vec![Vec::new(); self.nets.len()];
        for (h, hspec) in self.hosts.iter().enumerate() {
            hosts_of_net[hspec.net].push(h);
        }

        // Address assignment: router = .254 of the first /24, hosts from 1.
        let router_addr: Vec<Addr> = self.nets.iter().map(|n| n.prefix.host_at(254)).collect();
        let mut hosts_in_net: HashMap<usize, u32> = HashMap::new();
        let host_addr: Vec<Addr> = self
            .hosts
            .iter()
            .map(|h| {
                let k = hosts_in_net.entry(h.net).or_insert(0);
                *k += 1;
                assert!(*k <= 250, "more than 250 hosts in one network");
                self.nets[h.net].prefix.host_at(*k)
            })
            .collect();

        // Subtree prefixes (self + all descendants) per network.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.nets.len()];
        for (i, net) in self.nets.iter().enumerate() {
            if let Some(p) = net.parent {
                children[p].push(i);
            }
        }
        fn collect_subtree(
            i: usize,
            children: &[Vec<usize>],
            nets: &[NetSpec],
            out: &mut Vec<Prefix>,
        ) {
            out.push(nets[i].prefix);
            for &c in &children[i] {
                collect_subtree(c, children, nets, out);
            }
        }
        let subtree: Vec<Vec<Prefix>> = (0..self.nets.len())
            .map(|i| {
                let mut v = Vec::new();
                collect_subtree(i, &children, &self.nets, &mut v);
                v
            })
            .collect();

        // Longest-prefix-match forwarding, one table per router, plus /32
        // routes for the hosts of a router's own network. Only the gateway
        // carries its clients' /32s: remote routers reach a host through a
        // covering prefix route along the same path.
        //
        // - AllPairs: one route per remote network prefix towards its
        //   border router, from a shortest-path pass over the backbone —
        //   the aggregation a real AS-level forwarding table has, at O(n²)
        //   build cost.
        // - Hierarchical: a len-0 default route up the provider uplink,
        //   each child's subtree prefixes down its uplink, and each
        //   peering's far-side subtree across the peering link — O(n·depth)
        //   total state, no all-pairs pass, identical forwarding on any
        //   tree-plus-peering topology.
        let mut fwd_tables: Vec<LpmTable<LinkId>> = match self.routing {
            RoutingMode::AllPairs => {
                let next_hops = NextHops::compute(self.nets.len(), &router_links);
                (0..self.nets.len())
                    .map(|n_idx| {
                        let node = router_nodes[n_idx];
                        let mut table = LpmTable::new();
                        for (n, net) in self.nets.iter().enumerate() {
                            if n == n_idx {
                                continue;
                            }
                            if let Some(link) = next_hops.next_hop(node, router_nodes[n]) {
                                table.insert(net.prefix, link);
                            }
                        }
                        table
                    })
                    .collect()
            }
            RoutingMode::Hierarchical => {
                let mut tables: Vec<LpmTable<LinkId>> =
                    (0..self.nets.len()).map(|_| LpmTable::new()).collect();
                for (i, _) in self.nets.iter().enumerate() {
                    if let Some(up) = uplinks[i] {
                        tables[i].insert(Prefix::ANY, up);
                    }
                    for &c in &children[i] {
                        let link = uplinks[c].expect("child has an uplink");
                        for &p in &subtree[c] {
                            tables[i].insert(p, link);
                        }
                    }
                }
                for (k, &(a, b, _)) in self.peerings.iter().enumerate() {
                    for &p in &subtree[b] {
                        tables[a].insert(p, peer_links[k]);
                    }
                    for &p in &subtree[a] {
                        tables[b].insert(p, peer_links[k]);
                    }
                }
                tables
            }
        };
        for (n_idx, table) in fwd_tables.iter_mut().enumerate() {
            for &h in &hosts_of_net[n_idx] {
                table.insert(Prefix::host(host_addr[h]), tail_links[h]);
            }
        }

        // Deployment view seeded at build time: which border routers do
        // not participate in AITF (the capability "advertisement" every
        // router sees), plus each router's full ancestor chain so
        // escalation can skip legacy parents to the nearest AITF node.
        let legacy_peers: Vec<Addr> = self
            .nets
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.policy.aitf_enabled)
            .map(|(i, _)| router_addr[i])
            .collect();
        let ancestors_of = |i: usize| -> Vec<Addr> {
            let mut chain = Vec::new();
            let mut cur = self.nets[i].parent;
            while let Some(p) = cur {
                chain.push(router_addr[p]);
                cur = self.nets[p].parent;
            }
            chain
        };

        // Install routers.
        for (i, net) in self.nets.iter().enumerate() {
            let mut client_links: BTreeMap<LinkId, Vec<Prefix>> = BTreeMap::new();
            for &c in &children[i] {
                let link = uplinks[c].expect("child has an uplink");
                client_links.insert(link, subtree[c].clone());
            }
            for &h in &hosts_of_net[i] {
                // Ingress filtering is at network granularity (Section
                // III-A: a provider keeps spoofed flows from *exiting
                // its network*); spoofing inside one's own prefix is
                // exactly what ingress filtering cannot catch.
                client_links.insert(tail_links[h], vec![net.prefix]);
            }
            let spec = RouterSpec {
                addr: router_addr[i],
                fwd: std::mem::take(&mut fwd_tables[i]),
                uplink: uplinks[i],
                ancestors: ancestors_of(i),
                legacy_peers: legacy_peers.clone(),
                client_links,
                config: self.cfg.clone(),
                policy: net.policy,
            };
            sim.install(router_nodes[i], Box::new(BorderRouter::new(spec)));
        }

        // Hand every router a clone of one shared tracer so escalation
        // spans parent across routers.
        let tracer = aitf_trace::Tracer::new();
        for &node in &router_nodes {
            if let Some(r) = sim.node_mut::<BorderRouter>(node) {
                // With tracing off the Tracer is zero-sized Copy and this
                // clone is free; with it on, it is the sharing Rc clone.
                #[allow(clippy::clone_on_copy)]
                r.set_tracer(tracer.clone());
            }
        }

        // Install hosts.
        for (h, hspec) in self.hosts.iter().enumerate() {
            let host = EndHost::new(
                host_addr[h],
                router_addr[hspec.net],
                tail_links[h],
                self.cfg.clone(),
                hspec.policy,
            );
            sim.install(host_nodes[h], Box::new(host));
        }

        World {
            sim,
            cfg: self.cfg,
            net_names: self.nets.iter().map(|n| n.name.clone()).collect(),
            net_prefixes: self.nets.iter().map(|n| n.prefix).collect(),
            router_nodes,
            router_addr,
            host_nodes,
            host_addr,
            host_net: self.hosts.iter().map(|h| h.net).collect(),
            net_parent: self.nets.iter().map(|n| n.parent).collect(),
            net_cooperating: self
                .nets
                .iter()
                .map(|n| n.policy.aitf_enabled && n.policy.cooperating)
                .collect(),
            tail_links,
            uplinks,
            tracer,
        }
    }
}

/// A built AITF world: the simulator plus the name/address bookkeeping the
/// experiment harness needs.
pub struct World {
    /// The underlying simulator; run it with `run_for`/`run_until`.
    pub sim: Simulator,
    /// The configuration the world was built with.
    pub cfg: AitfConfig,
    net_names: Vec<String>,
    net_prefixes: Vec<Prefix>,
    router_nodes: Vec<NodeId>,
    router_addr: Vec<Addr>,
    host_nodes: Vec<NodeId>,
    host_addr: Vec<Addr>,
    host_net: Vec<usize>,
    net_parent: Vec<Option<usize>>,
    /// Build-time `aitf_enabled && cooperating` per network; drives the
    /// shard-hint merging of [`World::shard_hints`].
    net_cooperating: Vec<bool>,
    tail_links: Vec<LinkId>,
    uplinks: Vec<Option<LinkId>>,
    /// Shared across all AITF routers; zero-sized unless `trace` is on.
    tracer: aitf_trace::Tracer,
}

impl World {
    /// Number of networks.
    pub fn net_count(&self) -> usize {
        self.router_nodes.len()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.host_nodes.len()
    }

    /// A network's display name.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.0]
    }

    /// A network's prefix.
    pub fn net_prefix(&self, net: NetId) -> Prefix {
        self.net_prefixes[net.0]
    }

    /// A network's border-router address.
    pub fn router_addr(&self, net: NetId) -> Addr {
        self.router_addr[net.0]
    }

    /// A network's border-router node id.
    pub fn router_node(&self, net: NetId) -> NodeId {
        self.router_nodes[net.0]
    }

    /// A host's address.
    pub fn host_addr(&self, host: HostId) -> Addr {
        self.host_addr[host.0]
    }

    /// A host's node id.
    pub fn host_node(&self, host: HostId) -> NodeId {
        self.host_nodes[host.0]
    }

    /// The network a host belongs to.
    pub fn host_net(&self, host: HostId) -> NetId {
        NetId(self.host_net[host.0])
    }

    /// A host's tail-circuit link.
    pub fn tail_link(&self, host: HostId) -> LinkId {
        self.tail_links[host.0]
    }

    /// The world-wide escalation tracer (a no-op handle unless the `trace`
    /// feature is enabled).
    pub fn tracer(&self) -> &aitf_trace::Tracer {
        &self.tracer
    }

    /// Closes any still-open spans at the current sim time and returns every
    /// recorded escalation span. Always empty without the `trace` feature.
    pub fn trace_spans(&self) -> Vec<aitf_trace::SpanRecord> {
        self.tracer.finish(self.sim.now().0);
        self.tracer.spans()
    }

    /// A network's uplink towards its provider.
    pub fn uplink(&self, net: NetId) -> Option<LinkId> {
        self.uplinks[net.0]
    }

    /// Shard hints for [`aitf_netsim::Simulator::apply_shards`]: one group
    /// per network (its border router plus its hosts), parented along the
    /// provider tree, so the partitioner only ever cuts inter-network
    /// links — whose propagation delay provides the conservative
    /// lookahead.
    ///
    /// A network that does not fully participate in AITF (legacy or
    /// non-cooperating gateway) is merged into its provider's group:
    /// escalation disconnects such children at the provider's side of the
    /// uplink, and keeping that uplink intra-shard keeps the blocking
    /// action local. Non-escalating defense policies (pushback, rate
    /// limiting, path stamping — see
    /// [`aitf_defense::DefensePolicy::escalates`]) have no disconnection
    /// lever, so every network keeps its own group there.
    pub fn shard_hints(&self) -> PartitionSpec {
        let n = self.net_count();
        let escalating = self.cfg.defense.escalates();
        // Resolve each net to its merge target. Parents are declared
        // before children in WorldBuilder, so target[parent] is final by
        // the time a child reads it.
        let mut target: Vec<usize> = (0..n).collect();
        for i in 0..n {
            if escalating && !self.net_cooperating[i] {
                if let Some(p) = self.net_parent[i] {
                    target[i] = target[p];
                }
            }
        }
        let mut group_of: Vec<usize> = vec![usize::MAX; n];
        let mut roots: Vec<usize> = Vec::new();
        for i in 0..n {
            if target[i] == i {
                group_of[i] = roots.len();
                roots.push(i);
            }
        }
        for i in 0..n {
            group_of[i] = group_of[target[i]];
        }
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); roots.len()];
        for i in 0..n {
            groups[group_of[i]].push(self.router_nodes[i]);
        }
        for (h, &net) in self.host_net.iter().enumerate() {
            groups[group_of[net]].push(self.host_nodes[h]);
        }
        let parents: Vec<Option<usize>> = roots
            .iter()
            .map(|&r| self.net_parent[r].map(|p| group_of[p]))
            .collect();
        PartitionSpec::new(groups, parents)
    }

    /// Read access to a border router.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a [`BorderRouter`] (cannot happen for ids
    /// from this world).
    pub fn router(&self, net: NetId) -> &BorderRouter {
        self.sim
            .node_ref::<BorderRouter>(self.router_nodes[net.0])
            .expect("router node")
    }

    /// Mutable access to a border router.
    pub fn router_mut(&mut self, net: NetId) -> &mut BorderRouter {
        self.sim
            .node_mut::<BorderRouter>(self.router_nodes[net.0])
            .expect("router node")
    }

    /// Read access to a host.
    pub fn host(&self, host: HostId) -> &EndHost {
        self.sim
            .node_ref::<EndHost>(self.host_nodes[host.0])
            .expect("host node")
    }

    /// Mutable access to a host.
    pub fn host_mut(&mut self, host: HostId) -> &mut EndHost {
        self.sim
            .node_mut::<EndHost>(self.host_nodes[host.0])
            .expect("host node")
    }

    /// Installs a traffic application on a host (before the run starts).
    pub fn add_app(&mut self, host: HostId, app: Box<dyn TrafficApp>) {
        self.host_mut(host).add_app(app);
    }

    // ------------------------------------------------------------------
    // Dynamic-world hooks: runtime attach / detach / activate.
    //
    // These are the mutation points churn layers drive between `run_*`
    // segments. All of them act at the current virtual time and touch only
    // schedule-independent state, so a run that interleaves them at fixed
    // times stays bit-deterministic.
    // ------------------------------------------------------------------

    /// Installs a traffic application on a host at any time. Before the
    /// simulation starts this is [`World::add_app`]; after, the app is
    /// installed *and started immediately* (its `starting_after` window
    /// counts from now) — how late-arriving hosts begin sending mid-run.
    pub fn activate_app(&mut self, host: HostId, app: Box<dyn TrafficApp>) {
        if !self.sim.is_started() {
            self.add_app(host, app);
            return;
        }
        let node = self.host_nodes[host.0];
        self.sim.with_node_ctx(node, |n, ctx| {
            n.as_any_mut()
                .downcast_mut::<EndHost>()
                .expect("host node")
                .install_app_now(app, ctx);
        });
    }

    /// Detaches a host from the network: its tail circuit is blocked in
    /// both directions and its traffic apps go quiet (timer chains are
    /// dropped, so a retired attacker stops *offering* traffic). Safe to
    /// call before the run starts — the host then begins the simulation
    /// offline.
    pub fn detach_host(&mut self, host: HostId) {
        let link = self.tail_links[host.0];
        self.sim.set_link_blocked(link, LinkDirection::AToB, true);
        self.sim.set_link_blocked(link, LinkDirection::BToA, true);
        self.host_mut(host).set_attached(false);
    }

    /// Reattaches a previously detached host: unblocks the tail circuit
    /// and restarts every installed app (their `starting_after` delays now
    /// count from the reattachment instant). Attaching an already-attached
    /// host is a no-op — its running apps are left untouched, so an
    /// overlapping churn selection cannot restart (and thereby duplicate)
    /// live traffic.
    pub fn attach_host(&mut self, host: HostId) {
        if self.host(host).is_attached() {
            return;
        }
        let link = self.tail_links[host.0];
        self.sim.set_link_blocked(link, LinkDirection::AToB, false);
        self.sim.set_link_blocked(link, LinkDirection::BToA, false);
        self.host_mut(host).set_attached(true);
        if self.sim.is_started() {
            let node = self.host_nodes[host.0];
            self.sim.with_node_ctx(node, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<EndHost>()
                    .expect("host node")
                    .restart_apps(ctx);
            });
        }
    }

    /// Whether a host is currently attached.
    pub fn host_attached(&self, host: HostId) -> bool {
        self.host(host).is_attached()
    }

    /// Replaces a network's router policy at any time — before the run
    /// starts or mid-simulation — and broadcasts the AITF-participation
    /// change to every other border router's deployment view, so
    /// escalation immediately routes around a provider that just left
    /// AITF (and back through one that rejoined). This is the network
    /// counterpart of [`World::detach_host`] / [`World::attach_host`]:
    /// the runtime hook `ChurnAction::SetRouterPolicy` compiles onto.
    pub fn set_router_policy(&mut self, net: NetId, policy: RouterPolicy) {
        let addr = self.router_addr[net.0];
        let enabled = policy.aitf_enabled;
        self.router_mut(net).set_policy(policy);
        for (i, &node) in self.router_nodes.iter().enumerate() {
            if i == net.0 {
                continue;
            }
            let router = self
                .sim
                .node_mut::<BorderRouter>(node)
                .expect("router node");
            router.set_peer_aitf_enabled(addr, enabled);
        }
    }

    /// A network's current router policy.
    pub fn router_policy(&self, net: NetId) -> RouterPolicy {
        self.router(net).policy()
    }

    /// Attack bytes delivered to a host so far (the victim's effective
    /// bandwidth numerator).
    pub fn attack_bytes_at(&self, host: HostId) -> u64 {
        self.host(host).counters().rx_attack_bytes
    }

    /// Legitimate bytes delivered to a host so far.
    pub fn legit_bytes_at(&self, host: HostId) -> u64 {
        self.host(host).counters().rx_legit_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level_world() -> (World, NetId, NetId, HostId, HostId) {
        let mut b = WorldBuilder::new(1, AitfConfig::default());
        let wan = b.network("wan", "10.100.0.0/16", None);
        let g_net = b.network("g_net", "10.1.0.0/16", Some(wan));
        let b_net = b.network("b_net", "10.9.0.0/16", Some(wan));
        let v = b.host(g_net);
        let a = b.host(b_net);
        (b.build(), g_net, b_net, v, a)
    }

    #[test]
    fn addresses_follow_prefixes() {
        let (w, g_net, b_net, v, a) = two_level_world();
        assert_eq!(w.router_addr(g_net), Addr::new(10, 1, 0, 254));
        assert_eq!(w.router_addr(b_net), Addr::new(10, 9, 0, 254));
        assert_eq!(w.host_addr(v), Addr::new(10, 1, 0, 1));
        assert_eq!(w.host_addr(a), Addr::new(10, 9, 0, 1));
        assert!(w.net_prefix(g_net).contains(w.host_addr(v)));
    }

    #[test]
    fn world_accessors_are_consistent() {
        let (w, g_net, _, v, _) = two_level_world();
        assert_eq!(w.net_count(), 3);
        assert_eq!(w.host_count(), 2);
        assert_eq!(w.host_net(v), g_net);
        assert_eq!(w.net_name(g_net), "g_net");
        assert_eq!(w.router(g_net).addr(), w.router_addr(g_net));
        assert_eq!(w.host(v).addr(), w.host_addr(v));
        assert!(w.uplink(g_net).is_some());
        assert!(w.uplink(NetId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "overlaps existing network")]
    fn overlapping_prefixes_rejected() {
        let mut b = WorldBuilder::new(1, AitfConfig::default());
        b.network("a", "10.0.0.0/8", None);
        b.network("b", "10.1.0.0/16", None);
    }

    #[test]
    fn empty_world_runs() {
        let (mut w, ..) = two_level_world();
        w.sim.run_for(SimDuration::from_secs(1));
        assert_eq!(w.sim.now().as_secs_f64(), 1.0);
    }

    /// A minimal constant-rate sender for the dynamic-world tests (the
    /// real sources live in `aitf-attack`, which this crate cannot
    /// depend on).
    struct TestTicker {
        to: Addr,
    }

    impl crate::TrafficApp for TestTicker {
        fn on_start(&mut self, api: &mut crate::HostApi<'_, '_>) {
            api.set_timer(SimDuration::from_millis(10), 0);
        }

        fn on_timer(&mut self, _token: u32, api: &mut crate::HostApi<'_, '_>) {
            api.send_from_self(
                self.to,
                aitf_packet::Protocol::Udp,
                80,
                aitf_packet::TrafficClass::Legit,
                100,
            );
            api.set_timer(SimDuration::from_millis(10), 0);
        }
    }

    #[test]
    fn detach_silences_a_host_and_attach_revives_it() {
        let (mut w, _, _, v, a) = two_level_world();
        let victim_addr = w.host_addr(v);
        w.add_app(a, Box::new(TestTicker { to: victim_addr }));
        w.sim.run_for(SimDuration::from_secs(1));
        let tx_before = w.host(a).counters().tx_pkts;
        let rx_before = w.host(v).counters().rx_legit_pkts;
        assert!(tx_before > 50, "sender must be running");
        assert!(rx_before > 50, "victim must be receiving");

        w.detach_host(a);
        assert!(!w.host_attached(a));
        w.sim.run_for(SimDuration::from_secs(1));
        // Fully quiet: the app's timer chain died, nothing was offered.
        assert_eq!(w.host(a).counters().tx_pkts, tx_before);

        w.attach_host(a);
        assert!(w.host_attached(a));
        w.sim.run_for(SimDuration::from_secs(1));
        assert!(
            w.host(a).counters().tx_pkts > tx_before + 50,
            "reattached host must resume sending"
        );
        assert!(w.host(v).counters().rx_legit_pkts > rx_before + 50);
    }

    #[test]
    fn host_detached_before_start_joins_on_attach() {
        let (mut w, _, _, v, a) = two_level_world();
        let victim_addr = w.host_addr(v);
        w.add_app(a, Box::new(TestTicker { to: victim_addr }));
        w.detach_host(a);
        w.sim.run_for(SimDuration::from_secs(1));
        assert_eq!(w.host(a).counters().tx_pkts, 0, "dormant until attach");
        w.attach_host(a);
        w.sim.run_for(SimDuration::from_secs(1));
        assert!(w.host(a).counters().tx_pkts > 50);
    }

    #[test]
    fn same_instant_detach_attach_does_not_double_the_rate() {
        // The stale-chain hazard: a detach→attach with no simulated time
        // in between leaves the pre-detach timer still queued. The epoch
        // stamp must kill it, or restart_apps doubles the send rate.
        let (mut w, _, _, v, a) = two_level_world();
        let victim_addr = w.host_addr(v);
        w.add_app(a, Box::new(TestTicker { to: victim_addr }));
        w.sim.run_for(SimDuration::from_secs(1));
        let tx_before = w.host(a).counters().tx_pkts;
        w.detach_host(a);
        w.attach_host(a); // same instant: old timer chain still pending
        w.sim.run_for(SimDuration::from_secs(1));
        let delta = w.host(a).counters().tx_pkts - tx_before;
        // One 10 ms chain ≈ 100 pkts/s; a resurrected second chain ≈ 200.
        assert!((90..=101).contains(&delta), "rate doubled? delta = {delta}");
    }

    #[test]
    fn attaching_an_attached_host_is_a_no_op() {
        let (mut w, _, _, v, a) = two_level_world();
        let victim_addr = w.host_addr(v);
        w.add_app(a, Box::new(TestTicker { to: victim_addr }));
        w.sim.run_for(SimDuration::from_secs(1));
        let tx_before = w.host(a).counters().tx_pkts;
        // Never detached: attach must not restart (and duplicate) the
        // live app chains of an overlapping churn selection.
        w.attach_host(a);
        w.sim.run_for(SimDuration::from_secs(1));
        let delta = w.host(a).counters().tx_pkts - tx_before;
        assert!((90..=101).contains(&delta), "rate doubled? delta = {delta}");
    }

    #[test]
    fn shard_hints_group_each_net_with_its_hosts() {
        let (w, g_net, b_net, v, a) = two_level_world();
        let spec = w.shard_hints();
        assert_eq!(spec.groups().len(), 3, "one group per network");
        // wan is the root; both leaf nets parent to it.
        assert_eq!(spec.parents()[0], None);
        assert_eq!(spec.parents()[g_net.0], Some(0));
        assert_eq!(spec.parents()[b_net.0], Some(0));
        assert!(spec.groups()[g_net.0].contains(&w.host_node(v)));
        assert!(spec.groups()[b_net.0].contains(&w.host_node(a)));
        // Every node lands in exactly one group.
        let total: usize = spec.groups().iter().map(Vec::len).sum();
        assert_eq!(total, w.sim.node_count());
    }

    #[test]
    fn shard_hints_merge_non_cooperating_nets_into_their_provider() {
        let mut b = WorldBuilder::new(1, AitfConfig::default());
        let wan = b.network("wan", "10.100.0.0/16", None);
        let coop = b.network("coop", "10.1.0.0/16", Some(wan));
        let legacy = b.network_with(
            "legacy",
            "10.9.0.0/16",
            Some(wan),
            RouterPolicy {
                aitf_enabled: false,
                ..RouterPolicy::default()
            },
            WorldBuilder::default_net_link(),
        );
        let h = b.host(legacy);
        let w = b.build();
        let spec = w.shard_hints();
        assert_eq!(spec.groups().len(), 2, "legacy merges into wan's group");
        // Group 0 is wan's: it holds both wan and legacy routers plus the
        // legacy host; coop keeps its own group.
        assert!(spec.groups()[0].contains(&w.router_node(wan)));
        assert!(spec.groups()[0].contains(&w.router_node(legacy)));
        assert!(spec.groups()[0].contains(&w.host_node(h)));
        assert!(spec.groups()[1].contains(&w.router_node(coop)));
        assert_eq!(spec.parents(), &[None, Some(0)]);
    }

    #[test]
    fn shard_hints_partition_and_run() {
        // End-to-end: hints → partition → sharded run matches single.
        let run = |shards: usize| {
            let (mut w, _, _, v, a) = two_level_world();
            let victim_addr = w.host_addr(v);
            w.add_app(a, Box::new(TestTicker { to: victim_addr }));
            if shards > 1 {
                let spec = w.shard_hints();
                let part = w.sim.apply_shards(shards, &spec).expect("partition");
                assert_eq!(part.shards, shards);
            }
            w.sim.run_for(SimDuration::from_secs(2));
            (
                w.sim.dispatched_events(),
                w.host(v).counters().rx_legit_pkts,
                w.host(a).counters().tx_pkts,
            )
        };
        let single = run(1);
        assert_eq!(run(2), single);
        assert_eq!(run(3), single);
    }

    #[test]
    fn hierarchical_routing_matches_all_pairs_on_a_tree_with_peering() {
        // Same topology, both routing modes: a two-level tree with a
        // peering shortcut. Every packet must traverse the same links, so
        // the event counts and delivery counters agree exactly.
        let run = |mode: RoutingMode| {
            let mut b = WorldBuilder::new(1, AitfConfig::default());
            b.routing(mode);
            let wan = b.network("wan", "10.100.0.0/16", None);
            let isp_a = b.network("isp_a", "10.1.0.0/16", Some(wan));
            let isp_b = b.network("isp_b", "10.9.0.0/16", Some(wan));
            let leaf = b.network("leaf", "10.20.0.0/16", Some(isp_b));
            b.peer(isp_a, isp_b, WorldBuilder::default_net_link());
            let v = b.host(isp_a);
            let a = b.host(leaf);
            let mut w = b.build();
            let victim_addr = w.host_addr(v);
            w.add_app(a, Box::new(TestTicker { to: victim_addr }));
            w.sim.run_for(SimDuration::from_secs(2));
            (
                w.sim.dispatched_events(),
                w.host(v).counters().rx_legit_pkts,
            )
        };
        let all_pairs = run(RoutingMode::AllPairs);
        assert!(all_pairs.1 > 100, "traffic must flow: {all_pairs:?}");
        assert_eq!(run(RoutingMode::Hierarchical), all_pairs);
    }

    #[test]
    #[should_panic(expected = "duplicates an existing network")]
    fn duplicate_prefixes_rejected_in_hierarchical_mode() {
        let mut b = WorldBuilder::new(1, AitfConfig::default());
        b.routing(RoutingMode::Hierarchical);
        b.network("a", "10.1.0.0/16", None);
        b.network("b", "10.1.0.0/16", None);
    }

    #[test]
    fn activate_app_mid_run_starts_immediately() {
        let (mut w, _, _, v, a) = two_level_world();
        let victim_addr = w.host_addr(v);
        w.sim.run_for(SimDuration::from_secs(1));
        assert_eq!(w.host(a).counters().tx_pkts, 0);
        w.activate_app(a, Box::new(TestTicker { to: victim_addr }));
        w.sim.run_for(SimDuration::from_secs(1));
        let tx = w.host(a).counters().tx_pkts;
        assert!((90..=101).contains(&tx), "tx = {tx}");
    }
}
