//! Protocol configuration: timers, contracts and per-node policies.
//!
//! The names follow Section IV of the paper: `T` is the blocking horizon of
//! every filtering request, `Ttmp ≪ T` the lifetime of the victim-gateway's
//! temporary filter, `Td` the attack-detection time and the *grace period*
//! the time an attacker (or attacker's gateway) is given to stop before
//! disconnection.

use aitf_defense::DefensePolicy;
use aitf_filter::EvictionPolicy;
use aitf_netsim::SimDuration;

use crate::detector::DetectionMode;

/// Which traceback substrate border routers run (Section II-F).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TracebackMode {
    /// Deterministic in-packet route record (\[CG00\]-style shim):
    /// every border router appends its address; traceback time is 0.
    RouteRecord,
    /// Probabilistic node sampling (\[SWKA00\]-style): routers stamp with
    /// probability `p`; the victim side needs many packets to converge.
    Sampling {
        /// Marking probability per border router.
        p: f64,
        /// Votes per path position required before the path is trusted.
        min_samples: u64,
    },
}

/// A filtering contract: the request rate one party may impose on another
/// (Section II-A). `rate` is requests per second, `burst` the bucket depth.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Contract {
    /// Sustained filtering-request rate, requests/second.
    pub rate: f64,
    /// Token-bucket burst, requests.
    pub burst: u32,
}

impl Contract {
    /// Builds a contract.
    pub const fn new(rate: f64, burst: u32) -> Self {
        Contract { rate, burst }
    }
}

/// Global protocol parameters, shared by every AITF node in a world.
#[derive(Clone, Debug)]
pub struct AitfConfig {
    /// `T`: how long a filtering request asks the flow to be blocked.
    pub t_long: SimDuration,
    /// `Ttmp ≪ T`: lifetime of the victim-gateway's temporary filter. Must
    /// cover traceback plus the 3-way handshake (Section IV-B).
    pub t_tmp: SimDuration,
    /// Grace period the attacker (or a downstream gateway) gets to stop the
    /// flow before disconnection.
    pub grace: SimDuration,
    /// How long the attacker's gateway waits for a verification reply.
    pub handshake_timeout: SimDuration,
    /// `Td`: oracle detection delay for a *new* undesired flow. Reappearing
    /// flows are detected instantly from the request log (footnote 8).
    pub detection_delay: SimDuration,
    /// How victims identify undesired flows (oracle vs rate threshold).
    pub detection: DetectionMode,
    /// `R1` default: contract between an AD and each of its end-hosts /
    /// client networks (client → provider request rate).
    pub client_contract: Contract,
    /// `R2` default: contract between a provider and a client for requests
    /// flowing *down* (provider → client), and between peering ADs.
    pub peer_contract: Contract,
    /// Wire-speed filter table capacity per border router.
    pub filter_capacity: usize,
    /// DRAM shadow cache capacity per border router.
    pub shadow_capacity: usize,
    /// What a full filter table does.
    pub eviction: EvictionPolicy,
    /// Run the 3-way verification handshake (Section II-E). Turning this
    /// off is the E6 ablation: forged requests then succeed.
    pub verification: bool,
    /// Traceback substrate.
    pub traceback: TracebackMode,
    /// Hard bound on escalation rounds (paths are short; this is a loop
    /// guard, not a policy knob).
    pub max_round: u8,
    /// Victim-gateway shadow assist: a data packet hitting a live shadow
    /// (after its temporary filter expired) immediately reinstalls the
    /// filter and escalates. Turning this off is the E7 ablation — the
    /// victim must then re-detect each on-off cycle itself, which is the
    /// conservative model behind the paper's `r ≈ n(Td+Tr)/T` formula.
    pub packet_triggered_reactivation: bool,
    /// Victims detect a *reappearing* logged flow instantly instead of
    /// waiting `Td` again (footnote 8 of the paper).
    pub fast_redetect: bool,
    /// Record a human-readable per-node timeline (examples turn this on).
    pub trace: bool,
    /// Which defense populates every border router's hook chains. The
    /// default is the paper's AITF protocol; `Scenario::defense(..)`
    /// sweeps the axis (pushback baseline, per-prefix rate-limiting,
    /// path stamping) through identical topologies and seeds.
    pub defense: DefensePolicy,
}

impl Default for AitfConfig {
    /// The paper's running example: `T` = 1 min, handshake ≈ 600 ms
    /// (Section IV-B), `Ttmp` = 1 s, `R1` = 100 req/s, `R2` = 1 req/s.
    fn default() -> Self {
        AitfConfig {
            t_long: SimDuration::from_secs(60),
            t_tmp: SimDuration::from_secs(1),
            grace: SimDuration::from_millis(500),
            handshake_timeout: SimDuration::from_millis(600),
            detection_delay: SimDuration::from_millis(100),
            detection: DetectionMode::Oracle,
            client_contract: Contract::new(100.0, 100),
            peer_contract: Contract::new(1.0, 60),
            filter_capacity: 4096,
            shadow_capacity: 1 << 20,
            eviction: EvictionPolicy::Reject,
            verification: true,
            traceback: TracebackMode::RouteRecord,
            max_round: 16,
            packet_triggered_reactivation: true,
            fast_redetect: true,
            trace: false,
            defense: DefensePolicy::Aitf,
        }
    }
}

impl AitfConfig {
    /// Paper Section IV-B sizing for the victim's provider:
    /// `nv = R1 · Ttmp` filters.
    pub fn nv(&self) -> f64 {
        self.client_contract.rate * self.t_tmp.as_secs_f64()
    }

    /// Paper Section IV-B sizing for the shadow cache: `mv = R1 · T`.
    pub fn mv(&self) -> f64 {
        self.client_contract.rate * self.t_long.as_secs_f64()
    }

    /// Paper Section IV-A.2: flows a client is protected against,
    /// `Nv = R1 · T`.
    pub fn protected_flows(&self) -> f64 {
        self.client_contract.rate * self.t_long.as_secs_f64()
    }

    /// Paper Section IV-C/D: filters the attacker side needs, `na = R2 · T`.
    pub fn na(&self) -> f64 {
        self.peer_contract.rate * self.t_long.as_secs_f64()
    }
}

/// Per-border-router behaviour knobs (experiments flip these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterPolicy {
    /// Participates in AITF at all. Non-AITF routers forward blindly (the
    /// "no defense" baseline) and do not stamp route records.
    pub aitf_enabled: bool,
    /// Honours filtering requests addressed to it. A non-cooperating
    /// gateway (Section II-D) ignores them, forcing escalation.
    pub cooperating: bool,
    /// Drops client packets whose source is outside the client's prefix
    /// (the ingress-filtering incentive of Section III-A).
    pub ingress_filtering: bool,
    /// Compromised: snoops verification nonces passing through and forges
    /// confirming replies (the on-path attack of Section III-B).
    pub compromised: bool,
}

impl Default for RouterPolicy {
    fn default() -> Self {
        RouterPolicy {
            aitf_enabled: true,
            cooperating: true,
            ingress_filtering: true,
            compromised: false,
        }
    }
}

impl RouterPolicy {
    /// A router that ignores filtering requests (but still forwards and
    /// stamps route records).
    pub fn non_cooperating() -> Self {
        RouterPolicy {
            cooperating: false,
            ..Self::default()
        }
    }

    /// A legacy router: no AITF participation at all.
    pub fn legacy() -> Self {
        RouterPolicy {
            aitf_enabled: false,
            cooperating: false,
            ..Self::default()
        }
    }

    /// A compromised on-path router.
    pub fn compromised() -> Self {
        RouterPolicy {
            compromised: true,
            ..Self::default()
        }
    }
}

/// How an end-host responds to a filtering request addressed to it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum HostPolicy {
    /// Stops the flow when asked (a well-provisioned legitimate node,
    /// Section IV-D).
    #[default]
    Compliant,
    /// Ignores requests (a zombie); its gateway will disconnect it.
    Malicious,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_examples() {
        let c = AitfConfig::default();
        // Section IV-A.2: R1 = 100/s, T = 60 s → Nv = 6000.
        assert_eq!(c.protected_flows(), 6000.0);
        // Section IV-B: nv = R1 · Ttmp = 100 filters at Ttmp = 1 s.
        assert_eq!(c.nv(), 100.0);
        assert_eq!(c.mv(), 6000.0);
        // Section IV-C: na = R2 · T = 60 filters.
        assert_eq!(c.na(), 60.0);
    }

    #[test]
    fn policy_constructors() {
        assert!(!RouterPolicy::non_cooperating().cooperating);
        assert!(RouterPolicy::non_cooperating().aitf_enabled);
        assert!(!RouterPolicy::legacy().aitf_enabled);
        assert!(RouterPolicy::compromised().compromised);
        assert!(RouterPolicy::default().cooperating);
        assert_eq!(HostPolicy::default(), HostPolicy::Compliant);
    }
}
