//! The border router's hook pipeline: which defense stages run where.
//!
//! This module owns the *wiring* of the defense pipeline — the stage
//! marker types with their [`Stage`] declarations (name + `after`
//! dependencies) and the per-policy chain assembly. The stage *logic*
//! lives next to the router state it operates on: `router.rs` implements
//! [`aitf_defense::ReadStage`] / [`aitf_defense::WriteStage`] for every
//! marker type and `match`-dispatches on [`StageId`] — static dispatch,
//! so the hot path stays allocation-free whatever the policy.
//!
//! Hook map (stages in resolved chain order):
//!
//! ```text
//! policy            Ingress                              Egress                         Escalate
//! ----------------  -----------------------------------  -----------------------------  --------------------------
//! Aitf              ingress_filter > wire_filter         ttl_check > ttl_decrement      aitf_admission >
//!                     > shadow_react                       > traceback_stamp              aitf_dispatch
//! Pushback          pushback_wire_filter                 ttl_check > ttl_decrement      pushback_control
//!                     > pushback_arrival
//! IngressRateLimit  prefix_police                        ttl_check > ttl_decrement      ratelimit_control
//! PathStamp         path_stamp_check                     ttl_check > ttl_decrement      path_stamp_control
//!                                                          > path_stamp_mark
//! ```
//!
//! After the Egress chain, the hook's terminal action (route lookup +
//! transmit) runs — it is the datapath's one fixed step, not a stage.

use aitf_defense::{Chain, ChainBuilder, DefenseError, DefensePolicy, Hook, Stage};

/// Dispatch ids for every stage any policy can register. A built
/// [`Chain`] is a flat array of these; the router `match`es per packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageId {
    // AITF ingress.
    /// Client anti-spoofing (Section III-A).
    AitfIngressFilter,
    /// Wire-speed flow filter check.
    AitfWireFilter,
    /// Shadow-cache reactivation trigger (on-off flows).
    AitfShadowReact,
    // AITF egress.
    /// Route-record / sampling traceback stamp.
    AitfStamp,
    // AITF escalate.
    /// Request admission: counting, enablement, contract policing.
    AitfAdmission,
    /// Role dispatch: victim gateway / attacker gateway / attacker.
    AitfDispatch,
    // Shared egress.
    /// TTL-exhaustion veto.
    TtlCheck,
    /// TTL decrement.
    TtlDecrement,
    // Pushback.
    /// Aggregate-filter check (also refreshes the arrival record).
    PushbackWireFilter,
    /// Arrival-link learning for upstream propagation.
    PushbackArrival,
    /// Pushback / edge-trigger control handling.
    PushbackControl,
    // Ingress rate limiting.
    /// Per-source-prefix token-bucket policing on client links.
    PrefixPolice,
    /// Control sink: counts and ignores filtering requests.
    RatelimitControl,
    // Path stamping.
    /// Revoked-origin check against the packet's route record.
    PathStampCheck,
    /// Unconditional route-record stamp (the "capability").
    PathStampMark,
    /// Origin revocation on a victim's filtering request.
    PathStampControl,
}

// Stage marker types. Each carries only its declaration; the logic is the
// trait impl in `router.rs`.
macro_rules! declare_stage {
    ($(#[$doc:meta])* $ty:ident, $name:literal $(, after: [$($dep:literal),*])?) => {
        $(#[$doc])*
        pub struct $ty;
        impl Stage for $ty {
            const NAME: &'static str = $name;
            $(const AFTER: &'static [&'static str] = &[$($dep),*];)?
        }
    };
}

declare_stage!(
    /// AITF client anti-spoofing at ingress.
    AitfIngressFilter, "ingress_filter");
declare_stage!(
    /// AITF wire-speed filter; must see only unspoofed traffic.
    AitfWireFilter, "wire_filter", after: ["ingress_filter"]);
declare_stage!(
    /// Shadow reactivation; only flows that passed the wire filter.
    AitfShadowReact, "shadow_react", after: ["wire_filter"]);
declare_stage!(
    /// Traceback stamping after TTL accounting.
    AitfStamp, "traceback_stamp", after: ["ttl_decrement"]);
declare_stage!(
    /// Filtering-request admission (counters, enablement, policing).
    AitfAdmission, "aitf_admission");
declare_stage!(
    /// Role dispatch for admitted control messages.
    AitfDispatch, "aitf_dispatch", after: ["aitf_admission"]);
declare_stage!(
    /// TTL-exhaustion check (read: vetoes, does not mutate).
    TtlCheck, "ttl_check");
declare_stage!(
    /// TTL decrement (write), strictly after the check.
    TtlDecrement, "ttl_decrement", after: ["ttl_check"]);
declare_stage!(
    /// Pushback aggregate-filter check.
    PushbackWireFilter, "pushback_wire_filter");
declare_stage!(
    /// Pushback arrival-link learning for surviving packets.
    PushbackArrival, "pushback_arrival", after: ["pushback_wire_filter"]);
declare_stage!(
    /// Pushback control plane (hop-by-hop requests + edge trigger).
    PushbackControl, "pushback_control");
declare_stage!(
    /// Per-prefix token-bucket policing at client links.
    PrefixPolice, "prefix_police");
declare_stage!(
    /// Rate-limit control sink (requests are counted, never served).
    RatelimitControl, "ratelimit_control");
declare_stage!(
    /// Path-stamp revocation check at ingress.
    PathStampCheck, "path_stamp_check");
declare_stage!(
    /// Path-stamp route-record mark after TTL accounting.
    PathStampMark, "path_stamp_mark", after: ["ttl_decrement"]);
declare_stage!(
    /// Path-stamp origin revocation on filtering requests.
    PathStampControl, "path_stamp_control");

/// The three resolved chains of one router.
#[derive(Clone, Debug)]
pub struct PolicyChains {
    /// Runs on every packet entering the forwarding path.
    pub ingress: Chain<StageId>,
    /// Runs on control packets addressed to this router.
    pub escalate: Chain<StageId>,
    /// Runs just before the route lookup + transmit.
    pub egress: Chain<StageId>,
}

impl PolicyChains {
    /// Assembles the chains for `policy`. The registrations below are
    /// static, so failure is a programming error surfaced by tests — but
    /// the resolver's contract (duplicate / unknown-dep / cycle as typed
    /// errors, never panics) is what makes new policy authoring safe.
    pub fn build(policy: DefensePolicy) -> Result<PolicyChains, DefenseError> {
        let ingress = ChainBuilder::new(Hook::Ingress);
        let escalate = ChainBuilder::new(Hook::Escalate);
        let egress = ChainBuilder::new(Hook::Egress)
            .stage::<TtlCheck>(StageId::TtlCheck)
            .stage::<TtlDecrement>(StageId::TtlDecrement);
        let (ingress, escalate, egress) = match policy {
            DefensePolicy::Aitf => (
                ingress
                    .stage::<AitfIngressFilter>(StageId::AitfIngressFilter)
                    .stage::<AitfWireFilter>(StageId::AitfWireFilter)
                    .stage::<AitfShadowReact>(StageId::AitfShadowReact),
                escalate
                    .stage::<AitfAdmission>(StageId::AitfAdmission)
                    .stage::<AitfDispatch>(StageId::AitfDispatch),
                egress.stage::<AitfStamp>(StageId::AitfStamp),
            ),
            DefensePolicy::Pushback => (
                ingress
                    .stage::<PushbackWireFilter>(StageId::PushbackWireFilter)
                    .stage::<PushbackArrival>(StageId::PushbackArrival),
                escalate.stage::<PushbackControl>(StageId::PushbackControl),
                egress,
            ),
            DefensePolicy::IngressRateLimit { .. } => (
                ingress.stage::<PrefixPolice>(StageId::PrefixPolice),
                escalate.stage::<RatelimitControl>(StageId::RatelimitControl),
                egress,
            ),
            DefensePolicy::PathStamp => (
                ingress.stage::<PathStampCheck>(StageId::PathStampCheck),
                escalate.stage::<PathStampControl>(StageId::PathStampControl),
                egress.stage::<PathStampMark>(StageId::PathStampMark),
            ),
        };
        Ok(PolicyChains {
            ingress: ingress.build()?,
            escalate: escalate.build()?,
            egress: egress.build()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_builds_and_matches_the_hook_map() {
        for policy in DefensePolicy::BAKEOFF {
            let chains = PolicyChains::build(policy)
                .unwrap_or_else(|e| panic!("{policy:?} chains must build: {e}"));
            assert!(!chains.egress.is_empty());
            // TTL accounting is shared by every policy, in check-then-
            // decrement order.
            let egress: Vec<_> = chains.egress.names().collect();
            let check = egress.iter().position(|&n| n == "ttl_check").unwrap();
            let dec = egress.iter().position(|&n| n == "ttl_decrement").unwrap();
            assert!(check < dec);
        }
    }

    #[test]
    fn aitf_chains_keep_the_pre_pipeline_operation_order() {
        // The equivalence fixture pins records bit-identically; the chain
        // order below is the exact pre-decomposition `forward_data` /
        // `handle_control` sequence.
        let chains = PolicyChains::build(DefensePolicy::Aitf).unwrap();
        assert_eq!(
            chains.ingress.names().collect::<Vec<_>>(),
            ["ingress_filter", "wire_filter", "shadow_react"]
        );
        assert_eq!(
            chains.egress.names().collect::<Vec<_>>(),
            ["ttl_check", "ttl_decrement", "traceback_stamp"]
        );
        assert_eq!(
            chains.escalate.names().collect::<Vec<_>>(),
            ["aitf_admission", "aitf_dispatch"]
        );
    }

    #[test]
    fn stamping_stages_depend_on_ttl_via_the_dag_not_declaration_order() {
        // Declaring the stamp before TTL still resolves to TTL-first:
        // the `after` dependency, not luck, carries the order.
        let chain = ChainBuilder::new(Hook::Egress)
            .stage::<AitfStamp>(StageId::AitfStamp)
            .stage::<TtlCheck>(StageId::TtlCheck)
            .stage::<TtlDecrement>(StageId::TtlDecrement)
            .build()
            .unwrap();
        assert_eq!(
            chain.names().collect::<Vec<_>>(),
            ["ttl_check", "ttl_decrement", "traceback_stamp"]
        );
    }
}
