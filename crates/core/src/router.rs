//! The AITF border router.
//!
//! Border routers are the only routers that speak AITF (Section II-C:
//! "Internal routers do not participate"). One [`BorderRouter`] node plays
//! every role the paper describes, depending on the request it receives:
//!
//! - **victim's gateway** — polices its client's requests, installs the
//!   temporary filter for `Ttmp`, logs the shadow for `T`, and propagates
//!   the request to the attacker's gateway (or escalates to its own
//!   gateway when the attacker side does not cooperate);
//! - **attacker's gateway** — verifies the request with the 3-way
//!   handshake, installs the long (`T`) filter, tells its client to stop,
//!   and disconnects the client after the grace period if it does not;
//! - **escalation relay** — both of the above, one level up, in later
//!   rounds;
//! - **plain forwarder** — stamps the route-record shim (or probabilistic
//!   marks) on transit data packets and enforces ingress filtering.

use std::collections::{BTreeMap, HashMap};

use aitf_defense::{DefensePolicy, ReadStage, Verdict, WriteStage};
use aitf_filter::{FilterTable, InstallError, RateLimiterBank, ShadowCache};
use aitf_netsim::{impl_node_any, Context, LinkId, Node, SimTime, Subsystem};
use aitf_packet::{
    Addr, AitfMessage, FilteringRequest, FlowLabel, LpmTable, Nonce, Packet, PayloadKind, Prefix,
    PushbackRequest, RequestDestination, TracebackMark, TrafficClass, VerificationQuery,
    VerificationReply,
};
use aitf_trace::{Cause, SpanId, SpanKind, Tracer};
use rand::Rng;

use crate::config::{AitfConfig, RouterPolicy, TracebackMode};
use crate::pipeline::{self, PolicyChains, StageId};
use crate::pushback::{PushbackCounters, PushbackState, LINK_LOCAL, MAX_PUSHBACK_DEPTH};

/// Everything a border router counts; read by experiments after a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RouterCounters {
    /// Data packets forwarded.
    pub data_forwarded: u64,
    /// Data packets dropped by a wire-speed filter.
    pub data_filtered_pkts: u64,
    /// Bytes dropped by a wire-speed filter.
    pub data_filtered_bytes: u64,
    /// Client packets dropped by ingress filtering (spoofed source).
    pub spoofed_dropped: u64,
    /// Packets dropped for TTL exhaustion or no route.
    pub undeliverable: u64,
    /// Filtering requests received (before policing).
    pub requests_received: u64,
    /// Filtering requests dropped by contract policing.
    pub requests_policed: u64,
    /// Requests ignored because this router is non-cooperating or legacy.
    pub requests_ignored: u64,
    /// Victim-gateway-role requests rejected as invalid (wrong direction,
    /// destination not behind the requesting client).
    pub requests_invalid: u64,
    /// Damped duplicate requests whose temporary filter was refreshed in
    /// place.
    pub requests_refreshed: u64,
    /// Requests this router accepted and committed work to (temporary
    /// filter installed, handshake started, or long filter attempted) —
    /// together with the policed/ignored/invalid/refreshed/unsatisfiable
    /// counters, every received request lands in exactly one bucket.
    pub requests_accepted: u64,
    /// Requests this router satisfied by installing a filter.
    pub filters_installed: u64,
    /// Requests that failed because the filter table was full.
    pub requests_unsatisfiable: u64,
    /// Escalations that could not go anywhere: no AITF-enabled ancestor
    /// to forward to, or no identifiable neighbour to disconnect.
    pub escalations_dropped: u64,
    /// Escalations that dead-ended at this router's own uplink: severing
    /// it would disconnect this network, not the attacker, so the flow is
    /// filtered locally instead.
    pub local_filter_fallbacks: u64,
    /// Verification handshakes started.
    pub handshakes_started: u64,
    /// Handshakes that confirmed the request.
    pub handshakes_confirmed: u64,
    /// Handshakes denied by the victim.
    pub handshakes_denied: u64,
    /// Handshakes that timed out.
    pub handshakes_timed_out: u64,
    /// Escalated requests sent to this router's own gateway.
    pub escalations_sent: u64,
    /// Shadow-cache reactivations (on-off flows caught).
    pub reactivations: u64,
    /// Clients (hosts or client networks) disconnected after the grace
    /// period.
    pub disconnects_client: u64,
    /// Peers disconnected at the top of the escalation chain.
    pub disconnects_peer: u64,
    /// `dest=Attacker` notices sent towards the attacker.
    pub attacker_notices_sent: u64,
    /// Verification queries snooped and forged (compromised router only).
    pub handshakes_forged: u64,
    /// Deferred handshake-confirm installs that found the table full. The
    /// request was already counted `accepted` when its handshake started,
    /// so this is *outside* the received-request identity — it records
    /// committed work that could not be completed.
    pub deferred_unsatisfied: u64,
}

/// Timer meanings, keyed by token through `token_map`.
#[derive(Debug)]
enum TimerAction {
    HandshakeTimeout { nonce: u64 },
    GraceCheck { watch: u64 },
}

#[derive(Debug)]
struct PendingHandshake {
    request: FilteringRequest,
    nonce: Nonce,
    /// The open handshake span ([`SpanId::NONE`] when tracing is off).
    span: SpanId,
}

#[derive(Debug)]
struct GraceWatch {
    flow: FlowLabel,
    round: u8,
    client_link: Option<LinkId>,
    armed_at: SimTime,
}

/// A victim-gateway request waiting for an attack-path sample.
#[derive(Debug)]
struct PendingPath {
    request: FilteringRequest,
    expires: SimTime,
}

/// Static wiring a router needs from the world builder.
#[derive(Debug, Clone)]
pub struct RouterSpec {
    /// This router's control-plane address.
    pub addr: Addr,
    /// Longest-prefix-match forwarding table: network prefixes towards
    /// remote networks plus /32 routes for this router's own clients.
    pub fwd: LpmTable<LinkId>,
    /// Link towards this router's provider; `None` at the top level.
    pub uplink: Option<LinkId>,
    /// Addresses of this router's ancestor gateways, nearest first —
    /// escalation walks this chain, skipping ancestors known not to run
    /// AITF. Empty at the top level.
    pub ancestors: Vec<Addr>,
    /// Border routers known (via capability advertisement at build time)
    /// not to participate in AITF. Kept current at runtime through
    /// [`BorderRouter::set_peer_aitf_enabled`].
    pub legacy_peers: Vec<Addr>,
    /// Client links (to end-hosts and client networks) with the set of
    /// prefixes legitimately sourced behind each.
    pub client_links: BTreeMap<LinkId, Vec<Prefix>>,
    /// Protocol parameters.
    pub config: AitfConfig,
    /// Behaviour knobs.
    pub policy: RouterPolicy,
}

/// An AITF border router node.
///
/// Since the hook-pipeline refactor the datapath is organised as three
/// hook points — **Ingress** (packet entering the forwarding path),
/// **Egress** (just before route lookup + transmit) and **Escalate**
/// (control packets addressed to this router) — each running a
/// DAG-ordered chain of defense stages selected by
/// [`AitfConfig::defense`]. Stage logic is implemented on this type via
/// [`aitf_defense::ReadStage`] / [`aitf_defense::WriteStage`] and
/// dispatched statically through [`StageId`], so swapping the defense
/// never costs an allocation or a virtual call on the per-packet path.
pub struct BorderRouter {
    addr: Addr,
    cfg: AitfConfig,
    policy: RouterPolicy,
    /// Which defense populates the chains (copied from the config).
    defense: DefensePolicy,
    /// Resolved per-hook stage chains for `defense`.
    chains: PolicyChains,
    /// Pushback baseline state (arrival-link memory + counters); inert
    /// under every other policy.
    pushback: PushbackState,
    /// Per-source-prefix policer, populated only under
    /// [`DefensePolicy::IngressRateLimit`].
    prefix_limiter: Option<RateLimiterBank>,
    /// Revoked path-stamp origins `(first-hop router, expiry)`, populated
    /// only under [`DefensePolicy::PathStamp`].
    stamp_blocks: Vec<(Addr, SimTime)>,
    fwd: LpmTable<LinkId>,
    uplink: Option<LinkId>,
    ancestors: Vec<Addr>,
    /// The deployment view: peers currently known not to run AITF.
    disabled_peers: std::collections::HashSet<Addr>,
    client_links: BTreeMap<LinkId, Vec<Prefix>>,
    filters: FilterTable,
    shadow: ShadowCache,
    limiter: RateLimiterBank,
    pending_handshakes: HashMap<u64, PendingHandshake>,
    pending_paths: Vec<PendingPath>,
    grace_watches: HashMap<u64, GraceWatch>,
    token_map: HashMap<u64, TimerAction>,
    next_id: u64,
    counters: RouterCounters,
    timeline: Vec<(SimTime, String)>,
    /// Structured span recorder (a zero-sized no-op unless the `trace`
    /// feature is on); shared with every other router in the world so
    /// escalation chains parent across routers.
    tracer: Tracer,
}

/// Compact span key for a flow: `src_host << 32 | dst_host` (0 for a
/// wildcard end). Escalation flows are host-to-host labels, so the key is
/// unique within a world.
fn flow_key(flow: &FlowLabel) -> u64 {
    let src = flow.src_host().map(|a| a.0).unwrap_or(0) as u64;
    let dst = flow.dst_host().map(|a| a.0).unwrap_or(0) as u64;
    (src << 32) | dst
}

impl BorderRouter {
    /// Builds a router from its spec.
    pub fn new(spec: RouterSpec) -> Self {
        let cfg = spec.config;
        let mut limiter = RateLimiterBank::new(cfg.peer_contract.rate, cfg.peer_contract.burst);
        // Client links are policed at the client contract (R1); everything
        // else (uplink, peering) at the peer contract (R2).
        for &link in spec.client_links.keys() {
            limiter.set_contract(
                link.0 as u64,
                cfg.client_contract.rate,
                cfg.client_contract.burst,
            );
        }
        let defense = cfg.defense;
        BorderRouter {
            filters: FilterTable::with_policy(cfg.filter_capacity, cfg.eviction),
            shadow: ShadowCache::new(cfg.shadow_capacity),
            limiter,
            defense,
            chains: PolicyChains::build(defense).expect("static policy chains build"),
            pushback: PushbackState::default(),
            prefix_limiter: match defense {
                DefensePolicy::IngressRateLimit { rate_pps, burst } => {
                    Some(RateLimiterBank::new(rate_pps as f64, burst))
                }
                _ => None,
            },
            stamp_blocks: Vec::new(),
            cfg,
            policy: spec.policy,
            fwd: spec.fwd,
            uplink: spec.uplink,
            ancestors: spec.ancestors,
            // A router never lists itself: its own participation is its
            // `policy`, and the view only answers "can this *peer* act?".
            disabled_peers: spec
                .legacy_peers
                .into_iter()
                .filter(|&a| a != spec.addr)
                .collect(),
            addr: spec.addr,
            client_links: spec.client_links,
            pending_handshakes: HashMap::new(),
            pending_paths: Vec::new(),
            grace_watches: HashMap::new(),
            token_map: HashMap::new(),
            next_id: 0,
            counters: RouterCounters::default(),
            timeline: Vec::new(),
            tracer: Tracer::new(),
        }
    }

    /// Replaces the span recorder. The world builder calls this on every
    /// router with clones of one shared [`Tracer`], so round spans parent
    /// across routers; a router keeps its private (inert) tracer otherwise.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// This router's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The link towards this router's provider, if any.
    pub fn uplink(&self) -> Option<LinkId> {
        self.uplink
    }

    /// Counter snapshot.
    pub fn counters(&self) -> RouterCounters {
        self.counters
    }

    /// The wire-speed filter table (read-only).
    pub fn filters(&self) -> &FilterTable {
        &self.filters
    }

    /// The DRAM shadow cache (read-only).
    pub fn shadow(&self) -> &ShadowCache {
        &self.shadow
    }

    /// The contract policer (read-only).
    pub fn limiter(&self) -> &RateLimiterBank {
        &self.limiter
    }

    /// Which defense policy populates this router's hook chains.
    pub fn defense(&self) -> DefensePolicy {
        self.defense
    }

    /// The resolved hook chains (read-only; experiments and docs
    /// introspect the stage order).
    pub fn chains(&self) -> &PolicyChains {
        &self.chains
    }

    /// Pushback-plane counters (all zero unless the world runs
    /// [`DefensePolicy::Pushback`]).
    pub fn pushback(&self) -> PushbackCounters {
        self.pushback.counters
    }

    /// Total defense state this router currently holds: wire-speed filter
    /// entries plus policy-specific state (revoked path-stamp origins,
    /// per-prefix policing buckets). The bake-off's "filter footprint"
    /// metric sums this over every router.
    pub fn defense_footprint(&self) -> usize {
        self.filters.len()
            + self.stamp_blocks.len()
            + self.prefix_limiter.as_ref().map_or(0, RateLimiterBank::len)
    }

    /// The recorded timeline (empty unless `config.trace`).
    pub fn timeline(&self) -> &[(SimTime, String)] {
        &self.timeline
    }

    /// The current behaviour policy.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Replaces the behaviour policy (experiments flip cooperation at
    /// runtime). Prefer [`crate::World::set_router_policy`], which also
    /// updates every other router's deployment view.
    pub fn set_policy(&mut self, policy: RouterPolicy) {
        self.policy = policy;
    }

    /// Updates the deployment view: records whether the border router at
    /// `addr` currently participates in AITF. The world-level
    /// [`crate::World::set_router_policy`] hook broadcasts this to every
    /// router when a provider joins or leaves AITF — the simulation's
    /// stand-in for a BGP-style capability advertisement.
    pub fn set_peer_aitf_enabled(&mut self, addr: Addr, enabled: bool) {
        if addr == self.addr {
            return;
        }
        if enabled {
            self.disabled_peers.remove(&addr);
        } else {
            self.disabled_peers.insert(addr);
        }
    }

    /// Whether `addr` is believed to run AITF (this router itself always
    /// answers yes — its own participation is its policy).
    fn peer_participates(&self, addr: Addr) -> bool {
        !self.disabled_peers.contains(&addr)
    }

    /// The nearest ancestor gateway that participates in AITF — the
    /// escalation target. A legacy parent is skipped, so the request
    /// lands on the nearest cooperating node instead of being silently
    /// eaten by a router that will only count it as ignored.
    fn escalation_parent(&self) -> Option<Addr> {
        self.ancestors
            .iter()
            .copied()
            .find(|&a| self.peer_participates(a))
    }

    fn trace(&mut self, now: SimTime, msg: impl FnOnce() -> String) {
        if self.cfg.trace {
            self.timeline.push((now, msg()));
        }
    }

    fn alloc_token(&mut self, action: TimerAction) -> u64 {
        let token = self.next_id;
        self.next_id += 1;
        self.token_map.insert(token, action);
        token
    }

    /// Sends an AITF control message towards `dst` through the forwarding
    /// table.
    fn send_control(&mut self, ctx: &mut Context<'_>, dst: Addr, msg: AitfMessage) {
        let Some(&link) = self.fwd.lookup(dst) else {
            self.counters.undeliverable += 1;
            return;
        };
        let id = ctx.next_packet_id();
        ctx.send(link, Packet::control(id, self.addr, dst, msg));
    }

    /// Is `link` a client link, and if so, which prefixes live behind it?
    fn client_prefixes(&self, link: LinkId) -> Option<&[Prefix]> {
        self.client_links.get(&link).map(Vec::as_slice)
    }

    // ------------------------------------------------------------------
    // Data plane: the Ingress and Egress hooks.
    // ------------------------------------------------------------------

    /// Runs one stage by id — the static-dispatch heart of the pipeline.
    /// Every arm is a monomorphized trait call on a unit marker type, so
    /// walking a chain is a `match` per stage: no boxing, no vtables, no
    /// allocation. Write stages cannot veto; they report `Continue`.
    fn run_stage(
        &mut self,
        id: StageId,
        packet: &mut Packet,
        arrival: LinkId,
        ctx: &mut Context<'_>,
    ) -> Verdict {
        use pipeline as st;
        match id {
            StageId::AitfIngressFilter => {
                st::AitfIngressFilter::inspect(self, packet, arrival, ctx)
            }
            StageId::AitfWireFilter => st::AitfWireFilter::inspect(self, packet, arrival, ctx),
            StageId::AitfShadowReact => st::AitfShadowReact::inspect(self, packet, arrival, ctx),
            StageId::TtlCheck => st::TtlCheck::inspect(self, packet, arrival, ctx),
            StageId::TtlDecrement => {
                st::TtlDecrement::apply(self, packet, arrival, ctx);
                Verdict::Continue
            }
            StageId::AitfStamp => {
                st::AitfStamp::apply(self, packet, arrival, ctx);
                Verdict::Continue
            }
            StageId::AitfAdmission => st::AitfAdmission::inspect(self, packet, arrival, ctx),
            StageId::AitfDispatch => {
                st::AitfDispatch::apply(self, packet, arrival, ctx);
                Verdict::Continue
            }
            StageId::PushbackWireFilter => {
                st::PushbackWireFilter::inspect(self, packet, arrival, ctx)
            }
            StageId::PushbackArrival => st::PushbackArrival::inspect(self, packet, arrival, ctx),
            StageId::PushbackControl => {
                st::PushbackControl::apply(self, packet, arrival, ctx);
                Verdict::Continue
            }
            StageId::PrefixPolice => st::PrefixPolice::inspect(self, packet, arrival, ctx),
            StageId::RatelimitControl => st::RatelimitControl::inspect(self, packet, arrival, ctx),
            StageId::PathStampCheck => st::PathStampCheck::inspect(self, packet, arrival, ctx),
            StageId::PathStampMark => {
                st::PathStampMark::apply(self, packet, arrival, ctx);
                Verdict::Continue
            }
            StageId::PathStampControl => {
                st::PathStampControl::apply(self, packet, arrival, ctx);
                Verdict::Continue
            }
        }
    }

    fn forward_data(&mut self, mut packet: Packet, arrival: LinkId, ctx: &mut Context<'_>) {
        // Ingress hook: any stage may veto the packet.
        for i in 0..self.chains.ingress.len() {
            let id = self.chains.ingress.stage(i);
            if self.run_stage(id, &mut packet, arrival, ctx).is_drop() {
                // The defense consumed the packet: attribute this event's
                // cost to the hook pipeline, not plain forwarding.
                ctx.profile_subsystem(Subsystem::DefenseHook);
                return;
            }
        }
        // Egress hook: TTL accounting, traceback stamping.
        for i in 0..self.chains.egress.len() {
            let id = self.chains.egress.stage(i);
            if self.run_stage(id, &mut packet, arrival, ctx).is_drop() {
                ctx.profile_subsystem(Subsystem::DefenseHook);
                return;
            }
        }
        // Terminal action: route lookup + transmit (the datapath's one
        // fixed step — every policy forwards what its chains let through).
        match self.fwd.lookup(packet.header.dst) {
            Some(&link) => {
                self.counters.data_forwarded += 1;
                ctx.send(link, packet);
            }
            None => self.counters.undeliverable += 1,
        }
    }

    /// A packet matching a pending-path request supplies the missing
    /// attack-path sample; complete the propagation step.
    fn harvest_pending_path(&mut self, packet: &Packet, ctx: &mut Context<'_>) {
        if self.pending_paths.is_empty() {
            return;
        }
        let now = ctx.now();
        self.pending_paths.retain(|p| p.expires > now);
        let Some(pos) = self
            .pending_paths
            .iter()
            .position(|p| p.request.flow.matches(&packet.header))
        else {
            return;
        };
        if packet.route_record.is_empty() {
            return;
        }
        let mut request = self.pending_paths.remove(pos).request;
        // The packet has not crossed this router yet, so the record lacks
        // our own hop; append it for a complete path.
        let mut hops = packet.route_record.hops().to_vec();
        if hops.last() != Some(&self.addr) {
            hops.push(self.addr);
        }
        request.path = aitf_packet::RouteRecord::from_hops(hops.iter().copied());
        self.shadow.insert_with_path(
            request.flow,
            request.id,
            now,
            self.cfg.t_long,
            request.round,
            hops,
        );
        self.trace(now, || {
            format!("pending path resolved for {}", request.flow)
        });
        self.propagate_as_victim_gateway(request, ctx);
    }

    // ------------------------------------------------------------------
    // Control plane: the Escalate hook.
    // ------------------------------------------------------------------

    fn handle_control(&mut self, mut packet: Packet, arrival: LinkId, ctx: &mut Context<'_>) {
        // AITF control handling is escalation work; every other policy's
        // control plane is part of its defense pipeline.
        ctx.profile_subsystem(match self.defense {
            DefensePolicy::Aitf => Subsystem::Escalation,
            _ => Subsystem::DefenseHook,
        });
        for i in 0..self.chains.escalate.len() {
            let id = self.chains.escalate.stage(i);
            if self.run_stage(id, &mut packet, arrival, ctx).is_drop() {
                return;
            }
        }
    }

    /// Pushback's hop-by-hop step: block the aggregate locally and relay
    /// the request to the contributing upstream neighbour.
    fn pushback_block_and_propagate(
        &mut self,
        flow: FlowLabel,
        id: u64,
        depth: u8,
        ctx: &mut Context<'_>,
    ) {
        let now = ctx.now();
        if self.filters.install(flow, now, self.cfg.t_long).is_ok() {
            self.counters.filters_installed += 1;
        }
        if depth >= MAX_PUSHBACK_DEPTH {
            return;
        }
        // The contributing upstream neighbour is whoever the aggregate has
        // been arriving from.
        let key = match (flow.src_host(), flow.dst_host()) {
            (Some(s), Some(d)) => (s, d),
            _ => return,
        };
        let Some(uplink) = self.pushback.arrival_of(key) else {
            return;
        };
        let msg = AitfMessage::Pushback(PushbackRequest {
            id,
            flow,
            limit_bps: 0,
            duration_ns: self.cfg.t_long.as_nanos(),
            depth: depth + 1,
        });
        let pkt = Packet::control(ctx.next_packet_id(), self.addr, LINK_LOCAL, msg);
        self.pushback.counters.pushback_sent += 1;
        ctx.send(uplink, pkt);
    }

    // ------------------------------------------------------------------
    // Victim-gateway role.
    // ------------------------------------------------------------------

    fn victim_gateway_role(
        &mut self,
        mut req: FilteringRequest,
        arrival: LinkId,
        ctx: &mut Context<'_>,
    ) {
        let now = ctx.now();
        if !self.policy.cooperating {
            self.counters.requests_ignored += 1;
            return;
        }

        // The requester must be a client, and may only claim victimhood for
        // destinations behind itself (trivial ingress verification,
        // Section II-E).
        match self.client_prefixes(arrival) {
            Some(prefixes) => {
                let dst_ok = match req.flow.dst_host() {
                    Some(dst) => prefixes.iter().any(|p| p.contains(dst)),
                    None => prefixes.iter().any(|p| req.flow.dst.overlaps(*p)),
                };
                if !dst_ok {
                    self.counters.requests_invalid += 1;
                    return;
                }
            }
            None => {
                self.counters.requests_invalid += 1;
                return;
            }
        }

        // A repeat request for a flow we already acted on means the last
        // round failed: escalate. (The client always claims round 1; the
        // shadow knows better.)
        if let Some(entry) = self.shadow.get(&req.flow) {
            let cooldown = self.cfg.t_tmp / 2;
            if entry.round >= req.round {
                if now.saturating_since(entry.last_action) < cooldown {
                    // Duplicate within the damping window: refresh only.
                    // A full table means even the refresh failed — the
                    // client is unprotected and must not look served.
                    let key = flow_key(&req.flow);
                    match self.filters.install(req.flow, now, self.cfg.t_tmp) {
                        Ok(_) => {
                            self.counters.requests_refreshed += 1;
                            self.tracer.instant(
                                SpanKind::Refresh,
                                Cause::Duplicate,
                                key,
                                entry.round,
                                self.addr.0,
                                now.0,
                            );
                        }
                        Err(InstallError::TableFull) => {
                            self.counters.requests_unsatisfiable += 1;
                            self.tracer.instant(
                                SpanKind::Drop,
                                Cause::TableFull,
                                key,
                                entry.round,
                                self.addr.0,
                                now.0,
                            );
                        }
                    }
                    return;
                }
                req.round = entry.round.saturating_add(1).min(self.cfg.max_round);
            }
            if req.path.is_empty() && !entry.path.is_empty() {
                req.path = aitf_packet::RouteRecord::from_hops(entry.path.iter().copied());
            }
        }

        // Temporary filter for Ttmp; shadow for T.
        let key = flow_key(&req.flow);
        match self.filters.install(req.flow, now, self.cfg.t_tmp) {
            Ok(_) => {}
            Err(InstallError::TableFull) => {
                self.counters.requests_unsatisfiable += 1;
                self.tracer.instant(
                    SpanKind::Drop,
                    Cause::TableFull,
                    key,
                    req.round,
                    self.addr.0,
                    now.0,
                );
                return;
            }
        }
        self.counters.requests_accepted += 1;
        // One span per escalation round, opened where the round is
        // handled; everything the round causes (handshake, long filter,
        // disconnect — wherever it happens) parents under it.
        let round_cause = if req.round > 1 {
            Cause::Escalated
        } else {
            Cause::Detection
        };
        self.tracer.start(
            SpanKind::Round,
            round_cause,
            key,
            req.round,
            self.addr.0,
            now.0,
        );
        self.tracer.instant(
            SpanKind::TempFilter,
            Cause::Protocol,
            key,
            req.round,
            self.addr.0,
            now.0,
        );
        self.shadow.insert_with_path(
            req.flow,
            req.id,
            now,
            self.cfg.t_long,
            req.round,
            req.path.hops().to_vec(),
        );
        self.trace(now, || {
            format!(
                "victim-gw: temp filter for {} (round {})",
                req.flow, req.round
            )
        });

        if req.path.is_empty() {
            // No attack-path sample yet: wait for one (the temporary filter
            // is already protecting the client; blocked packets will carry
            // the route record).
            self.pending_paths.push(PendingPath {
                request: req,
                expires: now + self.cfg.t_tmp,
            });
            return;
        }
        self.propagate_as_victim_gateway(req, ctx);
    }

    /// Decides, for round `k`, whether this router propagates to the
    /// attacker side, forwards the escalation to its parent, or — at the
    /// top of the chain with nothing left to try — disconnects the peer.
    ///
    /// Under partial deployment both selections are *deployment-aware*:
    /// path hops known to have left AITF are skipped, so the round-k
    /// request lands on the nearest participating node instead of being
    /// eaten by a legacy router, and escalation forwards to the nearest
    /// AITF-enabled ancestor rather than blindly to the parent.
    fn propagate_as_victim_gateway(&mut self, req: FilteringRequest, ctx: &mut Context<'_>) {
        let now = ctx.now();
        // Everything the decision needs is `Copy`-cheap; pulling it out up
        // front lets each branch *move* `req` into the outgoing message
        // instead of cloning the whole request (route record included).
        let flow = req.flow;
        let round = req.round;
        let k = round.max(1) as usize;
        let len = req.path.len();
        let my_pos = req.path.position(self.addr);
        // The victim-side handler for round k is the k-th node from the
        // victim end of the path — or, when that hop no longer runs AITF,
        // the nearest participating node on the victim side of it.
        let handler_pos = len
            .checked_sub(k)
            .and_then(|ideal| (ideal..len).find(|&i| self.peer_participates(req.path.hops()[i])));
        // The attacker-side node asked to filter at round k, skipping
        // hops that have left AITF since they stamped the record.
        let target = req.path.hops()[(k - 1).min(len)..]
            .iter()
            .copied()
            .find(|&a| self.peer_participates(a));
        let parent = self.escalation_parent();

        let i_am_handler = match (my_pos, handler_pos) {
            (Some(p), Some(h)) => p == h || (p > h && parent.is_none()),
            // Not on the recorded path (or path exhausted): handle locally.
            _ => true,
        };

        let key = flow_key(&flow);
        if !i_am_handler {
            let Some(parent) = parent else {
                // No AITF-enabled ancestor left to escalate through; the
                // request would otherwise vanish without a trace.
                self.counters.escalations_dropped += 1;
                self.tracer.instant(
                    SpanKind::Drop,
                    Cause::NoAncestor,
                    key,
                    round,
                    self.addr.0,
                    now.0,
                );
                self.tracer.close_round(key, round, now.0);
                self.trace(now, || {
                    format!("escalation round {round} for {flow} dropped: no AITF-enabled ancestor")
                });
                return;
            };
            self.counters.escalations_sent += 1;
            self.shadow.note_round(&flow, round);
            self.shadow.touch_action(&flow, now);
            self.tracer.instant(
                SpanKind::Escalate,
                Cause::Escalated,
                key,
                round,
                self.addr.0,
                now.0,
            );
            self.trace(now, || {
                format!("escalate round {round} for {flow} to parent {parent}")
            });
            let escalated = FilteringRequest {
                dest: RequestDestination::VictimGateway,
                ..req
            };
            self.send_control(ctx, parent, AitfMessage::FilteringRequest(escalated));
            return;
        }

        // I am the handler: ask the round-k attacker-side node to filter.
        match target {
            Some(target) if target != self.addr => {
                self.shadow.touch_action(&flow, now);
                self.trace(now, || {
                    format!("round {k}: request {flow} -> attacker-side node {target}")
                });
                let outgoing = FilteringRequest {
                    dest: RequestDestination::AttackerGateway,
                    ..req
                };
                self.send_control(ctx, target, AitfMessage::FilteringRequest(outgoing));
            }
            _ => {
                // Every attacker-side node was tried (or the round walked
                // into ourselves): disconnect the neighbour the flow comes
                // through (Section II-D worst case: "G_gw3 disconnects from
                // B_gw3").
                self.disconnect_flow_neighbor(&req, ctx);
            }
        }
    }

    /// Blocks the incoming direction of the link the attack path enters
    /// through — unless that link is this router's own uplink, in which
    /// case severing it would disconnect this network (and every client
    /// behind it) from the world rather than the attacker; the flow is
    /// then kept filtered locally instead. That is the partial-deployment
    /// endgame: a victim's gateway with no cooperating node upstream
    /// still protects its client with its own table.
    fn disconnect_flow_neighbor(&mut self, req: &FilteringRequest, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let key = flow_key(&req.flow);
        let my_pos = req.path.position(self.addr);
        // The neighbour towards the attacker: previous hop on the path, or
        // the route towards the flow source as a fallback.
        let neighbor = my_pos
            .and_then(|p| p.checked_sub(1))
            .and_then(|i| req.path.hops().get(i).copied())
            .or_else(|| req.flow.src_host());
        let Some(neighbor) = neighbor else {
            // Nobody identifiable to disconnect: the escalation dead-ends
            // here, which must be observable.
            self.counters.escalations_dropped += 1;
            self.tracer.instant(
                SpanKind::Drop,
                Cause::NoNeighbor,
                key,
                req.round,
                self.addr.0,
                now.0,
            );
            self.tracer.close_round(key, req.round, now.0);
            self.trace(now, || {
                format!(
                    "escalation for {} dropped: no neighbour to disconnect",
                    req.flow
                )
            });
            return;
        };
        let Some(&link) = self.fwd.lookup(neighbor).copied().as_ref() else {
            self.counters.escalations_dropped += 1;
            self.tracer.instant(
                SpanKind::Drop,
                Cause::NoNeighbor,
                key,
                req.round,
                self.addr.0,
                now.0,
            );
            self.tracer.close_round(key, req.round, now.0);
            self.trace(now, || {
                format!(
                    "escalation for {} dropped: no route to neighbour {neighbor}",
                    req.flow
                )
            });
            return;
        };
        if Some(link) == self.uplink {
            self.counters.local_filter_fallbacks += 1;
            // Extend the temporary filter to the full horizon `T`; a full
            // table leaves the existing temporary protection in place.
            let _ = self.filters.install(req.flow, now, self.cfg.t_long);
            self.tracer.instant(
                SpanKind::LocalFilter,
                Cause::Protocol,
                key,
                req.round,
                self.addr.0,
                now.0,
            );
            self.tracer.close_round(key, req.round, now.0);
            self.trace(now, || {
                format!(
                    "round exhausted for {}: keeping local filter (refusing to sever own uplink)",
                    req.flow
                )
            });
            return;
        }
        self.counters.disconnects_peer += 1;
        self.tracer.instant(
            SpanKind::Disconnect,
            Cause::Protocol,
            key,
            req.round,
            self.addr.0,
            now.0,
        );
        self.tracer.close_round(key, req.round, now.0);
        self.trace(now, || {
            format!(
                "disconnecting peer {} (link {:?}) over {}",
                neighbor, link, req.flow
            )
        });
        ctx.set_incoming_blocked(link, true);
    }

    /// A shadowed flow reappeared: reinstall the temporary filter and
    /// escalate one round.
    fn on_reactivation(
        &mut self,
        entry: aitf_filter::ShadowEntry,
        packet: &Packet,
        ctx: &mut Context<'_>,
    ) {
        let now = ctx.now();
        let _ = self.filters.install(entry.label, now, self.cfg.t_tmp);
        let cooldown = self.cfg.t_tmp / 2;
        if now.saturating_since(entry.last_action) < cooldown {
            return;
        }
        let round = entry.round.saturating_add(1).min(self.cfg.max_round);
        self.shadow.note_round(&entry.label, round);
        self.shadow.touch_action(&entry.label, now);
        // The temporary filter expired and the shadowed flow came back:
        // that expiry is the cause of this whole round.
        self.tracer.start(
            SpanKind::Round,
            Cause::TempFilterExpired,
            flow_key(&entry.label),
            round,
            self.addr.0,
            now.0,
        );
        // Prefer the stored path; fall back to the triggering packet's
        // route record (plus our own hop).
        let path = if entry.path.is_empty() {
            let mut hops = packet.route_record.hops().to_vec();
            if hops.last() != Some(&self.addr) {
                hops.push(self.addr);
            }
            hops
        } else {
            entry.path.clone()
        };
        let req = FilteringRequest {
            id: entry.request_id,
            flow: entry.label,
            dest: RequestDestination::VictimGateway,
            duration_ns: self.cfg.t_long.as_nanos(),
            path: aitf_packet::RouteRecord::from_hops(path.iter().copied()),
            round,
        };
        self.propagate_as_victim_gateway(req, ctx);
    }

    // ------------------------------------------------------------------
    // Attacker-gateway role.
    // ------------------------------------------------------------------

    fn attacker_gateway_role(&mut self, req: FilteringRequest, ctx: &mut Context<'_>) {
        let now = ctx.now();
        if !self.policy.cooperating {
            self.counters.requests_ignored += 1;
            self.trace(now, || {
                format!("ignoring request for {} (non-cooperating)", req.flow)
            });
            return;
        }
        if self.cfg.verification {
            self.start_handshake(req, ctx);
        } else {
            self.satisfy_attacker_side(req, ctx, true);
        }
    }

    fn start_handshake(&mut self, req: FilteringRequest, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let Some(victim) = req.flow.dst_host() else {
            // Cannot query a wildcard victim; refuse conservatively.
            self.counters.requests_invalid += 1;
            return;
        };
        let nonce = Nonce(ctx.rng().gen());
        self.counters.handshakes_started += 1;
        self.counters.requests_accepted += 1;
        let span = self.tracer.start(
            SpanKind::Handshake,
            Cause::Protocol,
            flow_key(&req.flow),
            req.round,
            self.addr.0,
            now.0,
        );
        let query = VerificationQuery {
            request_id: req.id,
            flow: req.flow,
            nonce,
        };
        self.pending_handshakes.insert(
            nonce.0,
            PendingHandshake {
                request: req,
                nonce,
                span,
            },
        );
        let token = self.alloc_token(TimerAction::HandshakeTimeout { nonce: nonce.0 });
        ctx.set_timer(self.cfg.handshake_timeout, token);
        self.trace(now, || {
            format!("handshake query to {} nonce {}", victim, nonce)
        });
        self.send_control(ctx, victim, AitfMessage::VerificationQuery(query));
    }

    fn handle_verification_reply(&mut self, rep: VerificationReply, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let Some(pending) = self.pending_handshakes.remove(&rep.nonce.0) else {
            return;
        };
        // The reply must echo the exact flow, nonce and request id.
        if pending.request.id != rep.request_id
            || pending.request.flow != rep.flow
            || pending.nonce != rep.nonce
        {
            self.pending_handshakes.insert(rep.nonce.0, pending);
            return;
        }
        self.tracer.end(pending.span, now.0);
        if rep.confirm {
            self.counters.handshakes_confirmed += 1;
            self.trace(now, || format!("handshake confirmed for {}", rep.flow));
            self.satisfy_attacker_side(pending.request, ctx, false);
        } else {
            self.counters.handshakes_denied += 1;
            let key = flow_key(&pending.request.flow);
            self.tracer.instant(
                SpanKind::Drop,
                Cause::HandshakeDenied,
                key,
                pending.request.round,
                self.addr.0,
                now.0,
            );
            self.tracer.close_round(key, pending.request.round, now.0);
            self.trace(now, || format!("handshake DENIED for {}", rep.flow));
        }
    }

    /// Installs the long filter and pushes the request one step closer to
    /// the attacker, arming the disconnection grace timer. `from_request`
    /// marks calls made synchronously while handling a received request
    /// (as opposed to a verification reply arriving later), so the
    /// request-accounting buckets stay exact.
    fn satisfy_attacker_side(
        &mut self,
        req: FilteringRequest,
        ctx: &mut Context<'_>,
        from_request: bool,
    ) {
        let now = ctx.now();
        let flow = req.flow;
        let key = flow_key(&flow);
        let round = req.round;
        match self.filters.install(flow, now, self.cfg.t_long) {
            Ok(_) => {
                self.counters.filters_installed += 1;
                if from_request {
                    self.counters.requests_accepted += 1;
                }
                let cause = if from_request {
                    Cause::Protocol
                } else {
                    Cause::HandshakeConfirmed
                };
                self.tracer.instant(
                    SpanKind::LongFilter,
                    cause,
                    key,
                    req.round,
                    self.addr.0,
                    now.0,
                );
                self.tracer.close_round(key, req.round, now.0);
            }
            Err(InstallError::TableFull) => {
                // Only a synchronously handled request may count towards
                // `requests_unsatisfiable`: the deferred handshake-confirm
                // path already counted this request as accepted when the
                // handshake started, so counting it again here would break
                // the received-request conservation identity.
                if from_request {
                    self.counters.requests_unsatisfiable += 1;
                } else {
                    self.counters.deferred_unsatisfied += 1;
                }
                self.tracer.instant(
                    SpanKind::Drop,
                    Cause::TableFull,
                    key,
                    req.round,
                    self.addr.0,
                    now.0,
                );
                self.tracer.close_round(key, req.round, now.0);
                return;
            }
        }
        self.trace(now, || format!("attacker-gw: T-filter for {flow}"));

        // Who is my misbehaving client for this flow? Round 1: the attacker
        // host itself. Round k: the (k-1)-th node on the path — the client
        // network that failed to cooperate.
        let my_pos = req.path.position(self.addr);
        let client: Option<Addr> = match my_pos {
            Some(0) | None => flow.src_host(),
            Some(p) => req.path.hops().get(p - 1).copied(),
        };
        let Some(client) = client else { return };
        let client_link = self.fwd.lookup(client).copied();
        // Only police/disconnect parties that actually hang off a client
        // interface of ours.
        let is_client = client_link.is_some_and(|l| self.client_links.contains_key(&l));

        // Moves `req` — the notice keeps the path and id without a clone.
        let notice = FilteringRequest {
            dest: RequestDestination::Attacker,
            ..req
        };
        self.counters.attacker_notices_sent += 1;
        self.send_control(ctx, client, AitfMessage::FilteringRequest(notice));

        if is_client {
            let watch_id = self.next_id;
            self.next_id += 1;
            self.grace_watches.insert(
                watch_id,
                GraceWatch {
                    flow,
                    client_link,
                    armed_at: now,
                    round,
                },
            );
            let token = self.alloc_token(TimerAction::GraceCheck { watch: watch_id });
            ctx.set_timer(self.cfg.grace, token);
        }
    }

    /// `dest=Attacker` addressed to a *router*: an upstream gateway holds us
    /// responsible. A cooperating router blocks the flow itself and relays
    /// the notice towards the true attacker.
    fn attacker_role(&mut self, req: FilteringRequest, ctx: &mut Context<'_>) {
        let now = ctx.now();
        if !self.policy.cooperating {
            self.counters.requests_ignored += 1;
            return;
        }
        self.trace(now, || {
            format!("attacker-role: blocking {} (or be disconnected)", req.flow)
        });
        // Block the flow ourselves and relay one step closer to the true
        // attacker, with the same grace-watch policing of our own client.
        self.satisfy_attacker_side(req, ctx, true);
    }

    // ------------------------------------------------------------------
    // Timers.
    // ------------------------------------------------------------------

    fn on_grace_check(&mut self, watch_id: u64, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let Some(watch) = self.grace_watches.remove(&watch_id) else {
            return;
        };
        // Has the flow kept arriving well into the grace period?
        let margin = self.cfg.grace / 2;
        let still_flowing = self
            .filters
            .last_hit_of(&watch.flow)
            .is_some_and(|t| t > watch.armed_at + margin);
        if still_flowing {
            if let Some(link) = watch.client_link {
                self.counters.disconnects_client += 1;
                self.tracer.instant(
                    SpanKind::Disconnect,
                    Cause::GraceExpired,
                    flow_key(&watch.flow),
                    watch.round,
                    self.addr.0,
                    now.0,
                );
                self.trace(now, || {
                    format!(
                        "grace expired: disconnecting client link {:?} over {}",
                        link, watch.flow
                    )
                });
                ctx.set_incoming_blocked(link, true);
            }
        }
    }

    /// Reconnects a previously disconnected client (operator action in the
    /// paper's world; exposed for experiments).
    pub fn reconnect(&mut self, link: LinkId, ctx: &mut Context<'_>) {
        ctx.set_incoming_blocked(link, false);
    }
}

impl Node for BorderRouter {
    fn on_packet(&mut self, packet: Packet, link: LinkId, ctx: &mut Context<'_>) {
        // The Escalate hook sees control packets addressed to this router —
        // plus, under pushback, the protocol's link-local hop-by-hop
        // messages (no other policy addresses packets to `LINK_LOCAL`).
        if packet.header.dst == self.addr
            || (packet.header.dst == LINK_LOCAL && matches!(self.defense, DefensePolicy::Pushback))
        {
            self.handle_control(packet, link, ctx);
            return;
        }
        // Compromised on-path router: snoop verification queries and forge
        // confirming replies (Section III-B's caveat). Handshakes only
        // exist under AITF.
        if self.policy.compromised && matches!(self.defense, DefensePolicy::Aitf) {
            if let PayloadKind::Aitf(AitfMessage::VerificationQuery(q)) = &packet.payload {
                let forged = VerificationReply {
                    request_id: q.request_id,
                    flow: q.flow,
                    nonce: q.nonce,
                    confirm: true,
                };
                let origin = packet.header.src;
                let victim = packet.header.dst;
                self.counters.handshakes_forged += 1;
                let id = ctx.next_packet_id();
                // Spoof the victim's address as the reply source.
                if let Some(&out) = self.fwd.lookup(origin) {
                    let mut reply =
                        Packet::control(id, victim, origin, AitfMessage::VerificationReply(forged));
                    reply.header.src = victim;
                    ctx.send(out, reply);
                }
                // Swallow the query so the real victim never denies it.
                return;
            }
        }
        self.forward_data(packet, link, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        ctx.profile_subsystem(Subsystem::Escalation);
        match self.token_map.remove(&token) {
            Some(TimerAction::HandshakeTimeout { nonce }) => {
                if let Some(pending) = self.pending_handshakes.remove(&nonce) {
                    self.counters.handshakes_timed_out += 1;
                    let now = ctx.now();
                    let key = flow_key(&pending.request.flow);
                    self.tracer.end(pending.span, now.0);
                    self.tracer.instant(
                        SpanKind::Drop,
                        Cause::HandshakeTimeout,
                        key,
                        pending.request.round,
                        self.addr.0,
                        now.0,
                    );
                    self.tracer.close_round(key, pending.request.round, now.0);
                }
            }
            Some(TimerAction::GraceCheck { watch }) => self.on_grace_check(watch, ctx),
            None => {}
        }
    }

    fn subsystem(&self) -> Subsystem {
        Subsystem::RouterData
    }

    impl_node_any!();
}

// ----------------------------------------------------------------------
// Stage logic. Marker types and chain wiring live in `crate::pipeline`;
// the bodies live here, next to the router state they operate on. Read
// stages (`inspect`) may veto a packet; write stages (`apply`) mutate the
// packet or router state and cannot veto.
// ----------------------------------------------------------------------

// --- AITF ingress ------------------------------------------------------

impl ReadStage<BorderRouter> for pipeline::AitfIngressFilter {
    /// Ingress filtering: a client packet must be sourced inside the
    /// client's own prefixes (Section III-A's incentive).
    fn inspect(
        r: &mut BorderRouter,
        packet: &Packet,
        arrival: LinkId,
        _ctx: &mut Context<'_>,
    ) -> Verdict {
        if r.policy.aitf_enabled && r.policy.ingress_filtering && packet.is_data() {
            if let Some(prefixes) = r.client_prefixes(arrival) {
                if !prefixes.iter().any(|p| p.contains(packet.header.src)) {
                    r.counters.spoofed_dropped += 1;
                    return Verdict::Drop;
                }
            }
        }
        Verdict::Continue
    }
}

impl ReadStage<BorderRouter> for pipeline::AitfWireFilter {
    /// Wire-speed filter check.
    fn inspect(
        r: &mut BorderRouter,
        packet: &Packet,
        _arrival: LinkId,
        ctx: &mut Context<'_>,
    ) -> Verdict {
        let now = ctx.now();
        if r.policy.aitf_enabled && packet.is_data() && r.filters.matches(&packet.header, now) {
            r.counters.data_filtered_pkts += 1;
            r.counters.data_filtered_bytes += packet.size_bytes as u64;
            // The blocked packet still carries traceback information a
            // pending request may be waiting for.
            r.harvest_pending_path(packet, ctx);
            return Verdict::Drop;
        }
        Verdict::Continue
    }
}

impl ReadStage<BorderRouter> for pipeline::AitfShadowReact {
    /// Shadow reactivation: a recently blocked flow reappeared after its
    /// temporary filter expired — the attacker side never took over.
    fn inspect(
        r: &mut BorderRouter,
        packet: &Packet,
        _arrival: LinkId,
        ctx: &mut Context<'_>,
    ) -> Verdict {
        let now = ctx.now();
        if r.policy.aitf_enabled
            && packet.is_data()
            && r.cfg.packet_triggered_reactivation
            && r.policy.cooperating
        {
            if let Some(entry) = r.shadow.check_reactivation(&packet.header, now) {
                r.counters.reactivations += 1;
                r.trace(now, || {
                    format!(
                        "reactivation: {} round {} reappeared",
                        entry.label, entry.round
                    )
                });
                r.on_reactivation(entry, packet, ctx);
                return Verdict::Drop;
            }
        }
        Verdict::Continue
    }
}

// --- Shared egress -----------------------------------------------------

impl ReadStage<BorderRouter> for pipeline::TtlCheck {
    /// TTL-exhaustion veto: a packet whose TTL cannot survive the
    /// decrement is undeliverable.
    fn inspect(
        r: &mut BorderRouter,
        packet: &Packet,
        _arrival: LinkId,
        _ctx: &mut Context<'_>,
    ) -> Verdict {
        if packet.header.ttl <= 1 {
            r.counters.undeliverable += 1;
            return Verdict::Drop;
        }
        Verdict::Continue
    }
}

impl WriteStage<BorderRouter> for pipeline::TtlDecrement {
    fn apply(_r: &mut BorderRouter, packet: &mut Packet, _arrival: LinkId, _ctx: &mut Context<'_>) {
        packet.header.ttl -= 1;
    }
}

impl WriteStage<BorderRouter> for pipeline::AitfStamp {
    /// Traceback stamping (data plane only; control messages are
    /// point-to-point and need no traceback).
    fn apply(r: &mut BorderRouter, packet: &mut Packet, _arrival: LinkId, ctx: &mut Context<'_>) {
        if r.policy.aitf_enabled && packet.is_data() {
            match r.cfg.traceback {
                TracebackMode::RouteRecord => {
                    // A full record degrades traceback but must not break
                    // forwarding.
                    let _ = packet.route_record.push(r.addr);
                }
                TracebackMode::Sampling { p, .. } => {
                    if ctx.rng().gen_bool(p) {
                        packet.mark = Some(TracebackMark {
                            router: r.addr,
                            distance: 0,
                        });
                    } else if let Some(m) = &mut packet.mark {
                        m.distance = m.distance.saturating_add(1);
                    }
                }
            }
        }
    }
}

// --- AITF escalate -----------------------------------------------------

impl ReadStage<BorderRouter> for pipeline::AitfAdmission {
    /// Request admission: counting, enablement and contract policing
    /// (Section II-B) — every received request lands in exactly one
    /// counter bucket, starting here.
    fn inspect(
        r: &mut BorderRouter,
        packet: &Packet,
        arrival: LinkId,
        ctx: &mut Context<'_>,
    ) -> Verdict {
        let PayloadKind::Aitf(msg) = &packet.payload else {
            // A data payload addressed to a router is a misdelivery.
            return Verdict::Drop;
        };
        if matches!(msg, AitfMessage::FilteringRequest(_)) {
            r.counters.requests_received += 1;
            if !r.policy.aitf_enabled {
                r.counters.requests_ignored += 1;
                return Verdict::Drop;
            }
            // Contract policing per arrival interface (Section II-B).
            if !r.limiter.try_acquire(arrival.0 as u64, ctx.now()) {
                r.counters.requests_policed += 1;
                return Verdict::Drop;
            }
        }
        Verdict::Continue
    }
}

impl WriteStage<BorderRouter> for pipeline::AitfDispatch {
    /// Role dispatch for admitted control messages: victim's gateway,
    /// attacker's gateway, or the attacker itself.
    fn apply(r: &mut BorderRouter, packet: &mut Packet, arrival: LinkId, ctx: &mut Context<'_>) {
        // Take the message out of the packet so the roles can consume the
        // request without cloning its route record.
        let payload =
            std::mem::replace(&mut packet.payload, PayloadKind::Data(TrafficClass::Legit));
        let PayloadKind::Aitf(msg) = payload else {
            return;
        };
        match msg {
            AitfMessage::FilteringRequest(req) => match req.dest {
                RequestDestination::VictimGateway => r.victim_gateway_role(req, arrival, ctx),
                RequestDestination::AttackerGateway => r.attacker_gateway_role(req, ctx),
                RequestDestination::Attacker => r.attacker_role(req, ctx),
            },
            AitfMessage::VerificationReply(rep) => r.handle_verification_reply(rep, ctx),
            AitfMessage::VerificationQuery(_) | AitfMessage::Pushback(_) => {
                // Queries are for victims (end hosts) and pushback belongs
                // to the baseline policy; either here is a misdelivery.
                r.counters.undeliverable += 1;
            }
        }
    }
}

// --- Pushback ----------------------------------------------------------

impl ReadStage<BorderRouter> for pipeline::PushbackWireFilter {
    /// Aggregate-filter check; a drop still refreshes the arrival record
    /// so a later propagation knows where the aggregate comes from.
    fn inspect(
        r: &mut BorderRouter,
        packet: &Packet,
        arrival: LinkId,
        ctx: &mut Context<'_>,
    ) -> Verdict {
        let now = ctx.now();
        if packet.is_data() && r.filters.matches(&packet.header, now) {
            r.counters.data_filtered_pkts += 1;
            r.counters.data_filtered_bytes += packet.size_bytes as u64;
            r.pushback
                .note_arrival((packet.header.src, packet.header.dst), arrival);
            return Verdict::Drop;
        }
        Verdict::Continue
    }
}

impl ReadStage<BorderRouter> for pipeline::PushbackArrival {
    /// Arrival-link learning for packets that survive the filter.
    fn inspect(
        r: &mut BorderRouter,
        packet: &Packet,
        arrival: LinkId,
        _ctx: &mut Context<'_>,
    ) -> Verdict {
        if packet.is_data() {
            r.pushback
                .note_arrival((packet.header.src, packet.header.dst), arrival);
        }
        Verdict::Continue
    }
}

impl WriteStage<BorderRouter> for pipeline::PushbackControl {
    /// The pushback control plane: hop-by-hop requests from downstream
    /// plus the victim's edge trigger (the same filtering request AITF's
    /// victim's gateway consumes, with pushback semantics instead).
    fn apply(r: &mut BorderRouter, packet: &mut Packet, _arrival: LinkId, ctx: &mut Context<'_>) {
        match &packet.payload {
            PayloadKind::Aitf(AitfMessage::Pushback(p)) => {
                r.pushback.counters.pushback_received += 1;
                if !r.policy.cooperating {
                    r.pushback.counters.pushback_ignored += 1;
                    return;
                }
                let (flow, id, depth) = (p.flow, p.id, p.depth);
                r.pushback_block_and_propagate(flow, id, depth, ctx);
            }
            PayloadKind::Aitf(AitfMessage::FilteringRequest(req))
                if req.dest == RequestDestination::VictimGateway =>
            {
                r.counters.requests_received += 1;
                if r.policy.cooperating {
                    let (flow, id) = (req.flow, req.id);
                    r.pushback_block_and_propagate(flow, id, 0, ctx);
                }
            }
            _ => {}
        }
    }
}

// --- Ingress rate limiting --------------------------------------------

impl ReadStage<BorderRouter> for pipeline::PrefixPolice {
    /// Per-source-prefix token-bucket policing on client links: purely
    /// local, no escalation — and collateral for legitimate hosts sharing
    /// a /16 with attackers.
    fn inspect(
        r: &mut BorderRouter,
        packet: &Packet,
        arrival: LinkId,
        ctx: &mut Context<'_>,
    ) -> Verdict {
        if packet.is_data() && r.client_prefixes(arrival).is_some() {
            let key = (packet.header.src.0 >> 16) as u64;
            let now = ctx.now();
            let limiter = r
                .prefix_limiter
                .as_mut()
                .expect("prefix limiter exists under IngressRateLimit");
            if !limiter.try_acquire(key, now) {
                r.counters.data_filtered_pkts += 1;
                r.counters.data_filtered_bytes += packet.size_bytes as u64;
                return Verdict::Drop;
            }
        }
        Verdict::Continue
    }
}

impl ReadStage<BorderRouter> for pipeline::RatelimitControl {
    /// Control sink: the policy has no escalation plane, so filtering
    /// requests are counted (for the bake-off's request accounting) and
    /// dropped.
    fn inspect(
        r: &mut BorderRouter,
        packet: &Packet,
        _arrival: LinkId,
        _ctx: &mut Context<'_>,
    ) -> Verdict {
        if let PayloadKind::Aitf(AitfMessage::FilteringRequest(_)) = &packet.payload {
            r.counters.requests_received += 1;
            r.counters.requests_ignored += 1;
        }
        Verdict::Drop
    }
}

// --- Path stamping -----------------------------------------------------

impl ReadStage<BorderRouter> for pipeline::PathStampCheck {
    /// Drops stamped traffic whose first-hop router (the "capability"
    /// origin) has been revoked by a victim — coarse and collateral-heavy,
    /// which is exactly what the bake-off measures.
    fn inspect(
        r: &mut BorderRouter,
        packet: &Packet,
        _arrival: LinkId,
        ctx: &mut Context<'_>,
    ) -> Verdict {
        if packet.is_data() && !r.stamp_blocks.is_empty() {
            if let Some(&origin) = packet.route_record.hops().first() {
                let now = ctx.now();
                if r.stamp_blocks
                    .iter()
                    .any(|&(o, exp)| o == origin && exp > now)
                {
                    r.counters.data_filtered_pkts += 1;
                    r.counters.data_filtered_bytes += packet.size_bytes as u64;
                    return Verdict::Drop;
                }
            }
        }
        Verdict::Continue
    }
}

impl WriteStage<BorderRouter> for pipeline::PathStampMark {
    /// Every router stamps data packets unconditionally — the route
    /// record is the capability the victim side revokes against.
    fn apply(r: &mut BorderRouter, packet: &mut Packet, _arrival: LinkId, _ctx: &mut Context<'_>) {
        if packet.is_data() {
            let _ = packet.route_record.push(r.addr);
        }
    }
}

impl WriteStage<BorderRouter> for pipeline::PathStampControl {
    /// Origin revocation: a victim's filtering request names an attack
    /// path; its first hop (the attacker's edge router) is revoked for
    /// `T`, blocking *all* stamped traffic from that origin.
    fn apply(r: &mut BorderRouter, packet: &mut Packet, _arrival: LinkId, ctx: &mut Context<'_>) {
        let PayloadKind::Aitf(AitfMessage::FilteringRequest(req)) = &packet.payload else {
            return;
        };
        if req.dest != RequestDestination::VictimGateway {
            return;
        }
        r.counters.requests_received += 1;
        if !r.policy.cooperating {
            r.counters.requests_ignored += 1;
            return;
        }
        let Some(&origin) = req.path.hops().first() else {
            // No stamped path sample (e.g. the flood never reached the
            // victim): nothing to revoke against.
            r.counters.requests_invalid += 1;
            return;
        };
        let now = ctx.now();
        if let Some(entry) = r.stamp_blocks.iter_mut().find(|(o, _)| *o == origin) {
            entry.1 = now + r.cfg.t_long;
            r.counters.requests_refreshed += 1;
            return;
        }
        // Reclaim expired revocations before refusing for capacity.
        r.stamp_blocks.retain(|&(_, exp)| exp > now);
        if r.stamp_blocks.len() >= r.cfg.filter_capacity {
            r.counters.requests_unsatisfiable += 1;
            return;
        }
        r.stamp_blocks.push((origin, now + r.cfg.t_long));
        r.counters.requests_accepted += 1;
        r.counters.filters_installed += 1;
    }
}
