//! The hop-by-hop pushback policy ([MBF+01], §V of the paper), exercised
//! end to end through [`DefensePolicy::Pushback`]'s hook chains — the
//! ported behavioral suite of the former `aitf-baseline` crate.

use aitf_core::{AitfConfig, DefensePolicy, HostId, HostPolicy, NetId, World, WorldBuilder};
use aitf_netsim::SimDuration;
use aitf_packet::{Addr, Protocol, TrafficClass};

fn pushback_config() -> AitfConfig {
    AitfConfig {
        defense: DefensePolicy::Pushback,
        ..AitfConfig::default()
    }
}

/// Minimal flood app (mirrors aitf-attack's FloodSource without the
/// dependency, to keep the crate graph acyclic).
struct Flood {
    target: Addr,
    period: SimDuration,
}

impl aitf_core::TrafficApp for Flood {
    fn on_start(&mut self, api: &mut aitf_core::HostApi<'_, '_>) {
        api.set_timer(self.period, 0);
    }

    fn on_timer(&mut self, _t: u32, api: &mut aitf_core::HostApi<'_, '_>) {
        api.send_from_self(self.target, Protocol::Udp, 80, TrafficClass::Attack, 500);
        api.set_timer(self.period, 0);
    }
}

fn chain_world(
    depth: usize,
    rogue_level: Option<usize>,
) -> (World, Vec<NetId>, Vec<NetId>, HostId, HostId) {
    let mut b = WorldBuilder::new(9, pushback_config());
    let mut g_chain = Vec::new();
    let mut b_chain = Vec::new();
    for side in 0..2usize {
        let mut parent = None;
        let chain = if side == 0 {
            &mut g_chain
        } else {
            &mut b_chain
        };
        for level in (0..depth).rev() {
            let name = format!("{side}-{level}");
            let prefix = format!("10.{}.0.0/16", 1 + side * 100 + level);
            let id = b.network(&name, &prefix, parent);
            parent = Some(id);
            chain.push(id);
        }
        chain.reverse();
    }
    b.peer(
        g_chain[depth - 1],
        b_chain[depth - 1],
        WorldBuilder::default_net_link(),
    );
    if let Some(level) = rogue_level {
        b.set_router_policy(b_chain[level], aitf_core::RouterPolicy::non_cooperating());
    }
    let v = b.host(g_chain[0]);
    let a = b.host_with(
        b_chain[0],
        HostPolicy::Malicious,
        WorldBuilder::default_host_link(),
    );
    (b.build(), g_chain, b_chain, v, a)
}

#[test]
fn pushback_walks_hop_by_hop_to_the_attacker_edge() {
    let (mut w, g_chain, b_chain, v, a) = chain_world(3, None);
    let target = w.host_addr(v);
    w.add_app(
        a,
        Box::new(Flood {
            target,
            period: SimDuration::from_millis(1),
        }),
    );
    w.sim.run_for(SimDuration::from_secs(5));

    // EVERY router on the path ends up holding a filter — the paper's
    // "filtering bottleneck" contrast with AITF's 2 filters.
    let mut holding = 0;
    for &net in g_chain.iter().chain(b_chain.iter()) {
        if w.router(net).counters().filters_installed > 0 {
            holding += 1;
        }
    }
    assert_eq!(holding, 6, "all six routers hold pushback filters");

    // The flood is dead at the victim.
    let before = w.host(v).counters().rx_attack_pkts;
    w.sim.run_for(SimDuration::from_secs(2));
    assert_eq!(w.host(v).counters().rx_attack_pkts, before);
}

#[test]
fn one_rogue_hop_silently_breaks_the_chain() {
    // The middle attacker-side router ignores pushback.
    let (mut w, _g, b_chain, v, a) = chain_world(3, Some(1));
    let target = w.host_addr(v);
    w.add_app(
        a,
        Box::new(Flood {
            target,
            period: SimDuration::from_millis(1),
        }),
    );
    w.sim.run_for(SimDuration::from_secs(5));

    // Nothing upstream of the rogue ever installs a filter: pushback
    // has no disconnection lever (Section V's "relies on good will").
    let edge = w.router(b_chain[0]);
    assert_eq!(
        edge.counters().filters_installed,
        0,
        "the attacker's edge router is never reached"
    );
    let rogue = w.router(b_chain[1]);
    assert!(rogue.pushback().pushback_ignored > 0);
    assert_eq!(rogue.counters().filters_installed, 0);
    // The chain stalled at the first cooperating router above the
    // rogue: the flood keeps burning bandwidth on every hop below it
    // (attacker edge and the rogue keep forwarding forever), instead of
    // being cut at the source as AITF would enforce.
    assert!(
        rogue.counters().data_forwarded > 2000,
        "rogue keeps carrying the flood: {}",
        rogue.counters().data_forwarded
    );
    let top = w.router(b_chain[2]);
    assert!(
        top.counters().data_filtered_pkts > 2000,
        "the first cooperating hop above the rogue absorbs the flood: {}",
        top.counters().data_filtered_pkts
    );
}

#[test]
fn victim_side_still_blocks_under_pushback() {
    let (mut w, _g, _b, v, a) = chain_world(2, None);
    let target = w.host_addr(v);
    w.add_app(
        a,
        Box::new(Flood {
            target,
            period: SimDuration::from_millis(1),
        }),
    );
    w.sim.run_for(SimDuration::from_secs(3));
    let c = w.host(v).counters();
    assert!(c.rx_attack_pkts < 400, "victim leak {}", c.rx_attack_pkts);
    assert!(c.requests_sent >= 1);
}

#[test]
fn pushback_world_builds_and_runs() {
    let mut b = WorldBuilder::new(1, pushback_config());
    let wan = b.network("wan", "10.100.0.0/16", None);
    let net = b.network("net", "10.1.0.0/16", Some(wan));
    let host = b.host(net);
    let mut w = b.build();
    w.sim.run_for(SimDuration::from_secs(1));
    assert_eq!(w.host(host).counters().rx_attack_pkts, 0);
    // The router slots hold BorderRouters whose chains run the pushback
    // stages, not the AITF ones.
    assert_eq!(w.router(wan).defense(), DefensePolicy::Pushback);
    assert!(w
        .router(wan)
        .chains()
        .ingress
        .names()
        .any(|n| n == "pushback_wire_filter"));
}
