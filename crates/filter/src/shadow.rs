//! The DRAM shadow cache.
//!
//! Section II-B: the victim's gateway *"installs a filter for `Ttmp ≪ T`
//! time units, but keeps a 'shadow' of the filter in DRAM for `T` time
//! units"*. The shadow exists to defeat "on-off" attackers (footnote 2):
//! when a logged flow reappears after its temporary filter expired, the
//! gateway knows immediately that the attacker's gateway never took over
//! and can reinstall the filter and escalate, rather than re-running the
//! whole detection pipeline.
//!
//! DRAM is cheap, so the cache is large (`mv = R1·T` entries are enough to
//! honour a contract, Section IV-B) but still bounded; beyond capacity the
//! oldest entry is evicted FIFO.

use std::collections::HashMap;

use aitf_netsim::{SimDuration, SimTime};
use aitf_packet::{Addr, FlowLabel, Header};

/// A logged filtering request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShadowEntry {
    /// The blocked flow.
    pub label: FlowLabel,
    /// The originating request id.
    pub request_id: u64,
    /// When the request was logged.
    pub logged_at: SimTime,
    /// When the shadow stops being relevant (the `T` horizon).
    pub expires: SimTime,
    /// The escalation round the request had reached when last seen.
    pub round: u8,
    /// How many times the flow reappeared while shadowed (on-off count).
    pub reactivations: u32,
    /// The attack path carried by the logged request (border routers,
    /// attacker side first). Escalation reads rounds off this path.
    pub path: Vec<Addr>,
    /// Last time the logging router acted on this entry (propagated or
    /// escalated the request) — used to damp duplicate escalations.
    pub last_action: SimTime,
}

/// Statistics for the shadow cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShadowStats {
    /// Entries inserted.
    pub inserts: u64,
    /// Entries refreshed in place.
    pub refreshes: u64,
    /// Entries evicted FIFO because the cache was full.
    pub evictions: u64,
    /// Entries that aged out.
    pub expirations: u64,
    /// Packet checks that found a live shadow (on-off detections).
    pub reactivation_hits: u64,
    /// Highest simultaneous occupancy observed.
    pub peak_occupancy: usize,
}

/// The DRAM log of recent filtering requests.
///
/// # Examples
///
/// ```
/// use aitf_filter::ShadowCache;
/// use aitf_netsim::{SimDuration, SimTime};
/// use aitf_packet::{Addr, FlowLabel, Header};
///
/// let mut cache = ShadowCache::new(1000);
/// let label = FlowLabel::src_dst(Addr::new(10, 9, 0, 7), Addr::new(10, 1, 0, 1));
/// cache.insert(label, 42, SimTime::ZERO, SimDuration::from_secs(60), 1);
///
/// // The flow reappears 30 s later: the cache recognises it instantly.
/// let hdr = Header::udp(Addr::new(10, 9, 0, 7), Addr::new(10, 1, 0, 1), 1, 2);
/// let t = SimTime::ZERO + SimDuration::from_secs(30);
/// assert!(cache.check_reactivation(&hdr, t).is_some());
/// ```
#[derive(Debug)]
pub struct ShadowCache {
    capacity: usize,
    /// Entries in insertion order (for FIFO eviction); `None` = tombstone.
    entries: Vec<Option<ShadowEntry>>,
    /// Index of the oldest possibly-live slot.
    head: usize,
    /// Index: destination host → slot indices.
    by_dst: HashMap<Addr, Vec<usize>>,
    /// Slots whose label destination is not a /32.
    wildcard_dst: Vec<usize>,
    live: usize,
    stats: ShadowStats,
}

impl ShadowCache {
    /// Creates a cache holding at most `capacity` shadows.
    pub fn new(capacity: usize) -> Self {
        ShadowCache {
            capacity,
            entries: Vec::new(),
            head: 0,
            by_dst: HashMap::new(),
            wildcard_dst: Vec::new(),
            live: 0,
            stats: ShadowStats::default(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entry count as of the last operation.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ShadowStats {
        self.stats
    }

    /// Logs a filtering request for `ttl`; refreshes in place if the exact
    /// label is already shadowed (keeping the later expiry and the higher
    /// round).
    pub fn insert(
        &mut self,
        label: FlowLabel,
        request_id: u64,
        now: SimTime,
        ttl: SimDuration,
        round: u8,
    ) {
        self.insert_with_path(label, request_id, now, ttl, round, Vec::new());
    }

    /// Like [`ShadowCache::insert`], also logging the request's attack path.
    /// A longer path replaces a shorter one on refresh.
    pub fn insert_with_path(
        &mut self,
        label: FlowLabel,
        request_id: u64,
        now: SimTime,
        ttl: SimDuration,
        round: u8,
        path: Vec<Addr>,
    ) {
        self.purge_expired(now);
        let expires = now.saturating_add(ttl);
        if let Some(idx) = self.find_exact(&label) {
            let e = self.entries[idx].as_mut().expect("indexed slot is live");
            e.expires = e.expires.max(expires);
            e.round = e.round.max(round);
            e.request_id = request_id;
            if path.len() > e.path.len() {
                e.path = path;
            }
            self.stats.refreshes += 1;
            return;
        }
        if self.live >= self.capacity {
            self.evict_oldest();
        }
        let idx = self.entries.len();
        self.entries.push(Some(ShadowEntry {
            label,
            request_id,
            logged_at: now,
            expires,
            round,
            reactivations: 0,
            path,
            last_action: now,
        }));
        match label.dst_host() {
            Some(dst) => self.by_dst.entry(dst).or_default().push(idx),
            None => self.wildcard_dst.push(idx),
        }
        self.live += 1;
        self.stats.inserts += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.live);
    }

    /// Checks whether `header` belongs to a shadowed (recently blocked)
    /// flow. On a hit, bumps the entry's reactivation count and returns a
    /// copy — the caller reinstalls a temporary filter and escalates.
    pub fn check_reactivation(&mut self, header: &Header, now: SimTime) -> Option<ShadowEntry> {
        let idx = self.find_matching(header, now)?;
        let e = self.entries[idx].as_mut().expect("matched slot is live");
        e.reactivations += 1;
        self.stats.reactivation_hits += 1;
        Some(e.clone())
    }

    /// Looks up the shadow for an exact label without touching statistics.
    pub fn get(&self, label: &FlowLabel) -> Option<&ShadowEntry> {
        self.find_exact(label)
            .map(|i| self.entries[i].as_ref().expect("live slot"))
    }

    /// Records that the request for `label` has escalated to `round`.
    pub fn note_round(&mut self, label: &FlowLabel, round: u8) {
        if let Some(idx) = self.find_exact(label) {
            let e = self.entries[idx].as_mut().expect("live slot");
            e.round = e.round.max(round);
        }
    }

    /// Records that the logging router acted on `label` at `now`.
    pub fn touch_action(&mut self, label: &FlowLabel, now: SimTime) {
        if let Some(idx) = self.find_exact(label) {
            self.entries[idx].as_mut().expect("live slot").last_action = now;
        }
    }

    /// Drops entries expired at or before `now`.
    pub fn purge_expired(&mut self, now: SimTime) {
        let expired: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i, e.expires)))
            .filter(|&(_, exp)| exp <= now)
            .map(|(i, _)| i)
            .collect();
        for i in expired {
            self.remove_slot(i);
            self.stats.expirations += 1;
        }
        self.compact_if_sparse();
    }

    fn evict_oldest(&mut self) {
        while self.head < self.entries.len() {
            if self.entries[self.head].is_some() {
                self.remove_slot(self.head);
                self.stats.evictions += 1;
                return;
            }
            self.head += 1;
        }
    }

    fn find_exact(&self, label: &FlowLabel) -> Option<usize> {
        let scan: &[usize] = match label.dst_host() {
            Some(dst) => self.by_dst.get(&dst).map(Vec::as_slice).unwrap_or(&[]),
            None => &self.wildcard_dst,
        };
        scan.iter()
            .copied()
            .find(|&i| self.entries[i].as_ref().is_some_and(|e| e.label == *label))
    }

    fn find_matching(&self, header: &Header, now: SimTime) -> Option<usize> {
        if let Some(indices) = self.by_dst.get(&header.dst) {
            for &i in indices {
                if let Some(e) = self.entries[i].as_ref() {
                    if e.expires > now && e.label.matches(header) {
                        return Some(i);
                    }
                }
            }
        }
        self.wildcard_dst.iter().copied().find(|&i| {
            self.entries[i]
                .as_ref()
                .is_some_and(|e| e.expires > now && e.label.matches(header))
        })
    }

    fn remove_slot(&mut self, idx: usize) {
        let entry = self.entries[idx].take().expect("removing a live slot");
        match entry.label.dst_host() {
            Some(dst) => {
                if let Some(v) = self.by_dst.get_mut(&dst) {
                    v.retain(|&i| i != idx);
                    if v.is_empty() {
                        self.by_dst.remove(&dst);
                    }
                }
            }
            None => self.wildcard_dst.retain(|&i| i != idx),
        }
        self.live -= 1;
    }

    /// Rebuilds storage when tombstones dominate, keeping memory bounded
    /// over long runs.
    fn compact_if_sparse(&mut self) {
        if self.entries.len() < 64 || self.live * 4 > self.entries.len() {
            return;
        }
        let old = std::mem::take(&mut self.entries);
        self.by_dst.clear();
        self.wildcard_dst.clear();
        self.head = 0;
        for entry in old.into_iter().flatten() {
            let idx = self.entries.len();
            match entry.label.dst_host() {
                Some(dst) => self.by_dst.entry(dst).or_default().push(idx),
                None => self.wildcard_dst.push(idx),
            }
            self.entries.push(Some(entry));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn label(i: u8) -> FlowLabel {
        FlowLabel::src_dst(Addr::new(10, 9, 0, i), Addr::new(10, 1, 0, 1))
    }

    fn header(i: u8) -> Header {
        Header::udp(Addr::new(10, 9, 0, i), Addr::new(10, 1, 0, 1), 1, 2)
    }

    #[test]
    fn insert_and_reactivate() {
        let mut c = ShadowCache::new(100);
        c.insert(label(1), 7, t(0), SimDuration::from_secs(60), 1);
        let hit = c
            .check_reactivation(&header(1), t(30))
            .expect("shadow live");
        assert_eq!(hit.request_id, 7);
        assert_eq!(hit.reactivations, 1);
        let hit2 = c.check_reactivation(&header(1), t(40)).expect("still live");
        assert_eq!(hit2.reactivations, 2);
        assert!(c.check_reactivation(&header(2), t(30)).is_none());
    }

    #[test]
    fn shadow_expires_at_t_horizon() {
        let mut c = ShadowCache::new(100);
        c.insert(label(1), 7, t(0), SimDuration::from_secs(60), 1);
        assert!(c.check_reactivation(&header(1), t(61)).is_none());
        c.purge_expired(t(61));
        assert!(c.is_empty());
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn refresh_keeps_later_expiry_and_higher_round() {
        let mut c = ShadowCache::new(100);
        c.insert(label(1), 7, t(0), SimDuration::from_secs(60), 2);
        c.insert(label(1), 8, t(10), SimDuration::from_secs(10), 1);
        let e = c.get(&label(1)).unwrap();
        assert_eq!(e.expires, t(60));
        assert_eq!(e.round, 2);
        assert_eq!(e.request_id, 8);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().refreshes, 1);
    }

    #[test]
    fn fifo_eviction_when_full() {
        let mut c = ShadowCache::new(3);
        for i in 0..3 {
            c.insert(
                label(i),
                i as u64,
                t(i as u64),
                SimDuration::from_secs(600),
                1,
            );
        }
        c.insert(label(9), 9, t(3), SimDuration::from_secs(600), 1);
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 1);
        // The oldest (label 0) is gone; the newest present.
        assert!(c.get(&label(0)).is_none());
        assert!(c.get(&label(9)).is_some());
    }

    #[test]
    fn note_round_monotonic() {
        let mut c = ShadowCache::new(10);
        c.insert(label(1), 1, t(0), SimDuration::from_secs(60), 1);
        c.note_round(&label(1), 3);
        assert_eq!(c.get(&label(1)).unwrap().round, 3);
        c.note_round(&label(1), 2);
        assert_eq!(c.get(&label(1)).unwrap().round, 3);
    }

    #[test]
    fn wildcard_labels_supported() {
        let mut c = ShadowCache::new(10);
        let wide = FlowLabel::net_to_host("10.9.0.0/16".parse().unwrap(), Addr::new(10, 1, 0, 1));
        c.insert(wide, 1, t(0), SimDuration::from_secs(60), 1);
        assert!(c.check_reactivation(&header(200), t(1)).is_some());
        // Wildcard-destination label too.
        let mut c2 = ShadowCache::new(10);
        let any_dst = FlowLabel {
            src: aitf_packet::Prefix::host(Addr::new(10, 9, 0, 1)),
            ..FlowLabel::ANY
        };
        c2.insert(any_dst, 2, t(0), SimDuration::from_secs(60), 1);
        assert!(c2
            .check_reactivation(
                &Header::udp(Addr::new(10, 9, 0, 1), Addr::new(99, 9, 9, 9), 1, 2),
                t(1)
            )
            .is_some());
    }

    #[test]
    fn compaction_preserves_live_entries() {
        let mut c = ShadowCache::new(1000);
        // Insert many short-lived entries plus a few long-lived ones.
        for i in 0..200u32 {
            let lab = FlowLabel::src_dst(
                Addr::new(10, (i / 250) as u8, (i % 250) as u8, 1),
                Addr::new(10, 1, 0, 1),
            );
            let ttl = if i % 50 == 0 { 600 } else { 1 };
            c.insert(lab, i as u64, t(0), SimDuration::from_secs(ttl), 1);
        }
        c.purge_expired(t(10));
        assert_eq!(c.len(), 4);
        // Survivors still findable after compaction.
        let survivor = FlowLabel::src_dst(Addr::new(10, 0, 0, 1), Addr::new(10, 1, 0, 1));
        assert!(c.get(&survivor).is_some());
    }

    #[test]
    fn peak_occupancy_tracks_highwater() {
        let mut c = ShadowCache::new(100);
        for i in 0..10 {
            c.insert(label(i), i as u64, t(0), SimDuration::from_secs(60), 1);
        }
        c.purge_expired(t(61));
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().peak_occupancy, 10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The cache never exceeds capacity, and an entry can only be hit
        /// within its TTL window.
        #[test]
        fn capacity_and_ttl_invariants(
            ops in proptest::collection::vec((any::<u8>(), 1u64..100, 1u64..30), 1..200),
            cap in 1usize..12,
        ) {
            let mut c = ShadowCache::new(cap);
            let mut now = SimTime::ZERO;
            // Refreshes keep the *later* expiry, so track ground truth.
            let mut truth: std::collections::HashMap<u8, SimTime> = Default::default();
            for (i, ttl, advance) in ops {
                let lab = FlowLabel::src_dst(Addr::new(10, 9, 0, i), Addr::new(10, 1, 0, 1));
                c.insert(lab, i as u64, now, SimDuration::from_secs(ttl), 1);
                let exp = now + SimDuration::from_secs(ttl);
                let entry = truth.entry(i).or_insert(exp);
                *entry = (*entry).max(exp);
                prop_assert!(c.len() <= cap);
                now += SimDuration::from_secs(advance);
                let hdr = Header::udp(Addr::new(10, 9, 0, i), Addr::new(10, 1, 0, 1), 1, 2);
                if truth[&i] <= now {
                    prop_assert!(
                        c.check_reactivation(&hdr, now).is_none(),
                        "hit after TTL"
                    );
                }
                c.purge_expired(now);
                prop_assert!(c.len() <= cap);
            }
        }
    }
}
