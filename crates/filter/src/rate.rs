//! Filtering-contract rate policing.
//!
//! Section II-B: *"These contracts limit the rates by which the AD can
//! send/receive filtering requests to/from its end-hosts and peering ADs.
//! The limited rates allow the receiving router to police the requests to
//! the specified rates and indiscriminately drop requests when the rate is
//! in excess of the agreed rate."*
//!
//! [`TokenBucket`] is the policer for one contract; [`RateLimiterBank`]
//! holds one bucket per end-host / peering interface. Arithmetic is pure
//! integer (micro-tokens) so policing is bit-deterministic.

use std::collections::HashMap;

use aitf_netsim::SimTime;

/// Micro-tokens per request.
const TOKEN: u64 = 1_000_000;

/// A deterministic token bucket.
///
/// The bucket holds up to `burst` whole tokens and refills continuously at
/// `rate` tokens per second. Each admitted request costs one token.
///
/// # Examples
///
/// ```
/// use aitf_filter::TokenBucket;
/// use aitf_netsim::{SimDuration, SimTime};
///
/// // R1 = 2 requests/second with a burst of 2.
/// let mut tb = TokenBucket::new(2.0, 2);
/// let t0 = SimTime::ZERO;
/// assert!(tb.try_acquire(t0));
/// assert!(tb.try_acquire(t0));
/// assert!(!tb.try_acquire(t0), "burst exhausted");
/// // Half a second refills one token at 2/s.
/// assert!(tb.try_acquire(t0 + SimDuration::from_millis(500)));
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Refill rate in micro-tokens per second.
    rate_micro_per_s: u64,
    /// Capacity in micro-tokens.
    capacity_micro: u64,
    /// Current level in micro-tokens.
    tokens_micro: u64,
    /// Sub-micro-token refill carry, in units of `ns * rate_micro_per_s`.
    carry: u64,
    last_refill: SimTime,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests dropped by policing.
    pub dropped: u64,
}

impl TokenBucket {
    /// Creates a bucket refilling at `rate_per_sec` with capacity `burst`
    /// tokens. The bucket starts full.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is negative or not finite, or `burst` is 0.
    pub fn new(rate_per_sec: f64, burst: u32) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec >= 0.0,
            "rate must be finite and non-negative: {rate_per_sec}"
        );
        assert!(burst > 0, "burst must be at least 1");
        let capacity_micro = burst as u64 * TOKEN;
        TokenBucket {
            rate_micro_per_s: (rate_per_sec * TOKEN as f64).round() as u64,
            capacity_micro,
            tokens_micro: capacity_micro,
            carry: 0,
            last_refill: SimTime::ZERO,
            admitted: 0,
            dropped: 0,
        }
    }

    /// The configured refill rate, tokens per second.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_micro_per_s as f64 / TOKEN as f64
    }

    /// The burst capacity in whole tokens.
    pub fn burst(&self) -> u32 {
        (self.capacity_micro / TOKEN) as u32
    }

    /// Whole tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> u32 {
        self.refill(now);
        (self.tokens_micro / TOKEN) as u32
    }

    /// Tries to admit one request at `now`; returns `true` on admission.
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens_micro >= TOKEN {
            self.tokens_micro -= TOKEN;
            self.admitted += 1;
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.last_refill {
            return;
        }
        let elapsed_ns = now.since(self.last_refill).as_nanos();
        self.last_refill = now;
        // Exact arithmetic: accumulate `ns * rate` and carry the remainder
        // of the division by 1e9, so sub-token refills are never lost no
        // matter how often the bucket is polled. u128 avoids overflow.
        let product = elapsed_ns as u128 * self.rate_micro_per_s as u128 + self.carry as u128;
        let add = (product / 1_000_000_000) as u64;
        self.carry = (product % 1_000_000_000) as u64;
        self.tokens_micro = (self.tokens_micro + add).min(self.capacity_micro);
        if self.tokens_micro == self.capacity_micro {
            // A full bucket does not bank extra credit.
            self.carry = 0;
        }
    }
}

/// One token bucket per contract party (end-host or peering interface).
///
/// Keys are opaque `u64`s — the protocol layer uses link ids or host
/// addresses. Unknown keys are policed with the default contract installed
/// at construction.
#[derive(Debug)]
pub struct RateLimiterBank {
    default_rate: f64,
    default_burst: u32,
    buckets: HashMap<u64, TokenBucket>,
}

impl RateLimiterBank {
    /// Creates a bank whose unset keys get `(default_rate, default_burst)`.
    pub fn new(default_rate: f64, default_burst: u32) -> Self {
        RateLimiterBank {
            default_rate,
            default_burst,
            buckets: HashMap::new(),
        }
    }

    /// Installs an explicit contract for `key`.
    pub fn set_contract(&mut self, key: u64, rate_per_sec: f64, burst: u32) {
        self.buckets
            .insert(key, TokenBucket::new(rate_per_sec, burst));
    }

    /// Polices one request from `key` at `now`.
    pub fn try_acquire(&mut self, key: u64, now: SimTime) -> bool {
        let (rate, burst) = (self.default_rate, self.default_burst);
        self.buckets
            .entry(key)
            .or_insert_with(|| TokenBucket::new(rate, burst))
            .try_acquire(now)
    }

    /// Read-only view of the bucket for `key`, if it ever policed traffic.
    pub fn bucket(&self, key: u64) -> Option<&TokenBucket> {
        self.buckets.get(&key)
    }

    /// Number of distinct parties this bank currently tracks — per-party
    /// token state is defense footprint, the same way filter entries are.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the bank has policed anyone yet.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Total requests dropped across all keys.
    pub fn total_dropped(&self) -> u64 {
        // detlint::allow(hash-iter): u64 addition is commutative — the sum is independent of visit order
        self.buckets.values().map(|b| b.dropped).sum()
    }

    /// Total requests admitted across all keys.
    pub fn total_admitted(&self) -> u64 {
        // detlint::allow(hash-iter): u64 addition is commutative — the sum is independent of visit order
        self.buckets.values().map(|b| b.admitted).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitf_netsim::SimDuration;

    fn t_ms(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn burst_then_steady_rate() {
        let mut tb = TokenBucket::new(10.0, 5);
        // Burst of 5 at t=0.
        for _ in 0..5 {
            assert!(tb.try_acquire(SimTime::ZERO));
        }
        assert!(!tb.try_acquire(SimTime::ZERO));
        // At 10/s, one token every 100 ms.
        assert!(tb.try_acquire(t_ms(100)));
        assert!(!tb.try_acquire(t_ms(150)));
        assert!(tb.try_acquire(t_ms(200)));
    }

    #[test]
    fn long_term_rate_is_respected() {
        // Offer requests at 100/s against a 10/s contract for 10 s:
        // ~100 + burst admitted.
        let mut tb = TokenBucket::new(10.0, 1);
        let mut admitted = 0;
        for i in 0..1000u64 {
            if tb.try_acquire(t_ms(i * 10)) {
                admitted += 1;
            }
        }
        // 10 s * 10/s = 100, plus the initial burst token.
        assert!((100..=101).contains(&admitted), "admitted {admitted}");
        assert_eq!(tb.admitted, admitted);
        assert_eq!(tb.dropped, 1000 - admitted);
    }

    #[test]
    fn fractional_rates_accumulate() {
        // 0.5 tokens/s: an attempt every second admits every other time.
        let mut tb = TokenBucket::new(0.5, 1);
        assert!(tb.try_acquire(t_ms(0))); // Initial burst.
        let mut admitted = 0;
        for s in 1..=20u64 {
            if tb.try_acquire(t_ms(s * 1000)) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 10, "0.5/s over 20 s admits 10");
    }

    #[test]
    fn sub_token_remainders_not_lost_under_fast_polling() {
        // Poll every 1 ms against a 1/s contract through t = 5 s: exactly 5
        // refill tokens (plus the initial burst) must be admitted, even
        // though each 1 ms interval refills only 0.001 tokens.
        let mut tb = TokenBucket::new(1.0, 1);
        let mut admitted = 0;
        for ms in 0..=5_000u64 {
            if tb.try_acquire(t_ms(ms)) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 5 + 1);
    }

    #[test]
    fn zero_rate_admits_only_burst() {
        let mut tb = TokenBucket::new(0.0, 3);
        assert!(tb.try_acquire(t_ms(0)));
        assert!(tb.try_acquire(t_ms(1000)));
        assert!(tb.try_acquire(t_ms(100_000)));
        assert!(!tb.try_acquire(t_ms(1_000_000)));
    }

    #[test]
    fn available_reports_refilled_level() {
        let mut tb = TokenBucket::new(2.0, 4);
        assert_eq!(tb.available(SimTime::ZERO), 4);
        for _ in 0..4 {
            tb.try_acquire(SimTime::ZERO);
        }
        assert_eq!(tb.available(SimTime::ZERO), 0);
        assert_eq!(tb.available(t_ms(1000)), 2);
        assert_eq!(tb.available(t_ms(10_000)), 4, "capped at burst");
    }

    #[test]
    #[should_panic(expected = "burst must be at least 1")]
    fn zero_burst_rejected() {
        let _ = TokenBucket::new(1.0, 0);
    }

    #[test]
    fn bank_separates_keys() {
        let mut bank = RateLimiterBank::new(1.0, 1);
        assert!(bank.try_acquire(1, SimTime::ZERO));
        assert!(!bank.try_acquire(1, SimTime::ZERO));
        // A different key has its own bucket.
        assert!(bank.try_acquire(2, SimTime::ZERO));
        assert_eq!(bank.total_admitted(), 2);
        assert_eq!(bank.total_dropped(), 1);
    }

    #[test]
    fn bank_explicit_contract_overrides_default() {
        let mut bank = RateLimiterBank::new(1.0, 1);
        bank.set_contract(7, 100.0, 10);
        for _ in 0..10 {
            assert!(bank.try_acquire(7, SimTime::ZERO));
        }
        assert!(!bank.try_acquire(7, SimTime::ZERO));
        assert_eq!(bank.bucket(7).unwrap().burst(), 10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use aitf_netsim::SimDuration;
    use proptest::prelude::*;

    proptest! {
        /// Conformance: over any offered pattern, admissions never exceed
        /// `burst + rate * elapsed` (the token-bucket envelope).
        #[test]
        fn admissions_respect_envelope(
            gaps_ms in proptest::collection::vec(0u64..500, 1..300),
            rate in 1u32..50,
            burst in 1u32..10,
        ) {
            let mut tb = TokenBucket::new(rate as f64, burst);
            let mut now = SimTime::ZERO;
            let mut admitted = 0u64;
            for gap in gaps_ms {
                now += SimDuration::from_millis(gap);
                if tb.try_acquire(now) {
                    admitted += 1;
                }
                let envelope = burst as f64 + rate as f64 * now.as_secs_f64();
                prop_assert!(
                    (admitted as f64) <= envelope + 1e-6,
                    "admitted {} > envelope {}", admitted, envelope
                );
            }
        }

        /// Work conservation: a fully spaced-out offered load at or below
        /// the contract rate is never dropped. The period is rounded *up*
        /// so the offered rate never exceeds the contract.
        #[test]
        fn compliant_load_never_dropped(
            n in 1u64..100,
            rate in 1u32..20,
        ) {
            let mut tb = TokenBucket::new(rate as f64, 1);
            let period_ns = 1_000_000_000u64.div_ceil(rate as u64);
            for i in 0..n {
                let now = SimTime(i * period_ns);
                prop_assert!(tb.try_acquire(now), "request {} dropped", i);
            }
        }
    }
}
