//! Filtering substrate: bounded filter tables, the DRAM shadow cache and
//! contract rate limiters.
//!
//! The economics of the AITF paper rest on one asymmetry (Section II-B):
//! *"each router can afford gigabytes of DRAM but only a limited number of
//! filters."* This crate models both sides of that asymmetry plus the
//! policing that keeps request processing bounded:
//!
//! - [`FilterTable`] — the scarce resource: a hardware-style table with a
//!   hard capacity (typically a few thousand entries) that blocks packets
//!   at wire speed. Installation fails or evicts when the table is full.
//! - [`ShadowCache`] — the cheap resource: a large DRAM log of filtering
//!   requests kept for the full `T` window, used to catch "on-off" flows
//!   after the temporary filter is gone (Section II-B, footnotes 2–3).
//! - [`TokenBucket`] / [`RateLimiterBank`] — the filtering-contract
//!   policers: requests beyond the agreed rate `R1`/`R2` are
//!   indiscriminately dropped (Section II-B), which is what bounds a
//!   router's filter and CPU consumption.

pub mod rate;
pub mod shadow;
pub mod table;

pub use rate::{RateLimiterBank, TokenBucket};
pub use shadow::{ShadowCache, ShadowEntry, ShadowStats};
pub use table::{EvictionPolicy, FilterStats, FilterTable, InstallError, InstallOutcome};
