//! The bounded wire-speed filter table.
//!
//! A hardware router has "a fixed maximum number of wire-speed filters that
//! can block traffic with no degradation in router performance ... typically
//! limited to several thousand" (Section I). [`FilterTable`] enforces that
//! bound: installation beyond capacity either fails or evicts according to
//! the configured [`EvictionPolicy`], and the table tracks occupancy
//! statistics that the benchmark harness compares against the paper's
//! `nv = R1·Ttmp` and `na = R2·T` formulas.
//!
//! Lookups are indexed by destination host where possible (the common AITF
//! label shape is `src host → dst host`), falling back to a scan of the
//! small set of wildcard-destination filters.

use std::collections::HashMap;

use aitf_netsim::SimTime;
use aitf_packet::{Addr, FlowLabel, Header};

/// What to do when installing into a full table.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EvictionPolicy {
    /// Refuse the new filter; the caller must escalate or drop the request.
    /// This is the conservative behaviour the paper's contracts are sized
    /// to make unnecessary.
    #[default]
    Reject,
    /// Evict the entry closest to expiry to make room. Trades a short
    /// window of unfiltered traffic for accepting the new request.
    EvictSoonestExpiring,
    /// Evict the least specific entry (widest label) to make room.
    EvictLeastSpecific,
}

/// Why an installation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstallError {
    /// The table is full and the policy is [`EvictionPolicy::Reject`].
    TableFull,
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallError::TableFull => write!(f, "filter table full"),
        }
    }
}

impl std::error::Error for InstallError {}

/// How an installation was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstallOutcome {
    /// A new entry was created.
    Installed,
    /// An identical label already existed; its expiry was extended.
    Refreshed,
    /// An existing, *wider* entry already blocks this flow; nothing added.
    AlreadyCovered,
    /// A new entry was created after evicting another (policy-dependent).
    InstalledWithEviction,
}

/// Occupancy and traffic statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Successful new installations (including with eviction).
    pub installs: u64,
    /// Refreshes of an existing identical label.
    pub refreshes: u64,
    /// Requests absorbed by an already-covering entry.
    pub covered: u64,
    /// Installations rejected because the table was full.
    pub rejections: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries that aged out.
    pub expirations: u64,
    /// Packets dropped by a matching filter.
    pub hits: u64,
    /// Packets checked that matched nothing.
    pub misses: u64,
    /// Highest simultaneous occupancy ever observed.
    pub peak_occupancy: usize,
}

#[derive(Clone, Debug)]
struct Entry {
    label: FlowLabel,
    expires: SimTime,
    installed: SimTime,
    /// Last time a packet hit this filter; `None` until the first hit.
    last_hit: Option<SimTime>,
}

/// A bounded table of blocking filters.
///
/// # Examples
///
/// ```
/// use aitf_filter::FilterTable;
/// use aitf_netsim::{SimDuration, SimTime};
/// use aitf_packet::{Addr, FlowLabel, Header};
///
/// let mut table = FilterTable::new(100);
/// let attacker = Addr::new(10, 9, 0, 7);
/// let victim = Addr::new(10, 1, 0, 1);
/// let t0 = SimTime::ZERO;
///
/// table.install(FlowLabel::src_dst(attacker, victim), t0, SimDuration::from_secs(60)).unwrap();
/// assert!(table.matches(&Header::udp(attacker, victim, 1, 2), t0));
/// // After expiry the filter stops matching.
/// let later = t0 + SimDuration::from_secs(61);
/// assert!(!table.matches(&Header::udp(attacker, victim, 1, 2), later));
/// ```
#[derive(Debug)]
pub struct FilterTable {
    capacity: usize,
    policy: EvictionPolicy,
    /// Slab of entries; `None` slots are free.
    slots: Vec<Option<Entry>>,
    free: Vec<usize>,
    /// Index: destination host (/32 labels only) → slot indices.
    by_dst: HashMap<Addr, Vec<usize>>,
    /// Slots whose label has a non-/32 destination.
    wildcard_dst: Vec<usize>,
    live: usize,
    stats: FilterStats,
}

impl FilterTable {
    /// Creates a table holding at most `capacity` filters with the default
    /// ([`EvictionPolicy::Reject`]) policy.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, EvictionPolicy::default())
    }

    /// Creates a table with an explicit eviction policy.
    pub fn with_policy(capacity: usize, policy: EvictionPolicy) -> Self {
        FilterTable {
            capacity,
            policy,
            slots: Vec::new(),
            free: Vec::new(),
            by_dst: HashMap::new(),
            wildcard_dst: Vec::new(),
            live: 0,
            stats: FilterStats::default(),
        }
    }

    /// The hard capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live (non-expired as of the last operation) entry count.
    ///
    /// Expired entries are purged lazily; call [`FilterTable::purge_expired`]
    /// first for an exact figure at a given instant.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no filters are installed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Installs (or refreshes) a filter blocking `label` until
    /// `now + duration`.
    ///
    /// Behaviour on a full table depends on the [`EvictionPolicy`].
    pub fn install(
        &mut self,
        label: FlowLabel,
        now: SimTime,
        duration: aitf_netsim::SimDuration,
    ) -> Result<InstallOutcome, InstallError> {
        let expires = now.saturating_add(duration);
        self.purge_expired(now);

        // Refresh an identical label in place.
        if let Some(idx) = self.find_exact(&label) {
            let e = self.slots[idx].as_mut().expect("indexed slot is live");
            if expires > e.expires {
                e.expires = expires;
            }
            self.stats.refreshes += 1;
            return Ok(InstallOutcome::Refreshed);
        }

        // A wider live entry already blocks every packet of `label`.
        if self.find_covering(&label, now).is_some() {
            self.stats.covered += 1;
            return Ok(InstallOutcome::AlreadyCovered);
        }

        let mut evicted = false;
        if self.live >= self.capacity {
            match self.policy {
                EvictionPolicy::Reject => {
                    self.stats.rejections += 1;
                    return Err(InstallError::TableFull);
                }
                EvictionPolicy::EvictSoonestExpiring => {
                    let victim = self
                        .live_indices()
                        .min_by_key(|&i| {
                            let e = self.slots[i].as_ref().expect("live index");
                            (e.expires, i)
                        })
                        .expect("table is full, so non-empty");
                    self.remove_slot(victim);
                    self.stats.evictions += 1;
                    evicted = true;
                }
                EvictionPolicy::EvictLeastSpecific => {
                    let victim = self
                        .live_indices()
                        .min_by_key(|&i| {
                            let e = self.slots[i].as_ref().expect("live index");
                            (e.label.specificity(), i)
                        })
                        .expect("table is full, so non-empty");
                    self.remove_slot(victim);
                    self.stats.evictions += 1;
                    evicted = true;
                }
            }
        }

        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(Entry {
                    label,
                    expires,
                    installed: now,
                    last_hit: None,
                });
                i
            }
            None => {
                self.slots.push(Some(Entry {
                    label,
                    expires,
                    installed: now,
                    last_hit: None,
                }));
                self.slots.len() - 1
            }
        };
        match label.dst_host() {
            Some(dst) => self.by_dst.entry(dst).or_default().push(idx),
            None => self.wildcard_dst.push(idx),
        }
        self.live += 1;
        self.stats.installs += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.live);
        debug_assert!(self.indexes_consistent(), "occupancy indexes diverged");
        Ok(if evicted {
            InstallOutcome::InstalledWithEviction
        } else {
            InstallOutcome::Installed
        })
    }

    /// Removes the filter with exactly this label. Returns `true` if found.
    pub fn remove(&mut self, label: &FlowLabel) -> bool {
        match self.find_exact(label) {
            Some(idx) => {
                self.remove_slot(idx);
                true
            }
            None => false,
        }
    }

    /// Returns `true` if a live filter matches `header` — i.e. the packet
    /// must be dropped. Updates hit/miss statistics and the matching
    /// entry's last-hit time (used for grace-period checks).
    pub fn matches(&mut self, header: &Header, now: SimTime) -> bool {
        match self.find_live_match(header, now) {
            Some(idx) => {
                self.stats.hits += 1;
                self.slots[idx]
                    .as_mut()
                    .expect("matched slot is live")
                    .last_hit = Some(now);
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Last time a packet hit the filter with exactly this label.
    pub fn last_hit_of(&self, label: &FlowLabel) -> Option<SimTime> {
        self.find_exact(label)
            .and_then(|i| self.slots[i].as_ref().expect("live index").last_hit)
    }

    fn find_live_match(&self, header: &Header, now: SimTime) -> Option<usize> {
        if let Some(indices) = self.by_dst.get(&header.dst) {
            for &i in indices {
                if let Some(e) = self.slots[i].as_ref() {
                    if e.expires > now && e.label.matches(header) {
                        return Some(i);
                    }
                }
            }
        }
        self.wildcard_dst.iter().copied().find(|&i| {
            self.slots[i]
                .as_ref()
                .is_some_and(|e| e.expires > now && e.label.matches(header))
        })
    }

    /// Like [`FilterTable::matches`] but returns the matching label and does
    /// not update statistics or last-hit times.
    pub fn lookup(&self, header: &Header, now: SimTime) -> Option<FlowLabel> {
        self.find_live_match(header, now)
            .map(|i| self.slots[i].as_ref().expect("live index").label)
    }

    /// Returns the expiry of the filter with exactly this label, if live.
    pub fn expiry_of(&self, label: &FlowLabel) -> Option<SimTime> {
        self.find_exact(label)
            .map(|i| self.slots[i].as_ref().expect("live index").expires)
    }

    /// Drops every entry whose expiry is at or before `now`.
    pub fn purge_expired(&mut self, now: SimTime) {
        let expired: Vec<usize> = self
            .live_indices()
            .filter(|&i| self.slots[i].as_ref().expect("live index").expires <= now)
            .collect();
        for i in expired {
            self.remove_slot(i);
            self.stats.expirations += 1;
        }
    }

    /// All live labels with their expiry times, in no particular order.
    pub fn entries(&self) -> Vec<(FlowLabel, SimTime)> {
        self.live_indices()
            .map(|i| {
                let e = self.slots[i].as_ref().expect("live index");
                (e.label, e.expires)
            })
            .collect()
    }

    /// Removes every filter (used by non-cooperating-router experiments).
    pub fn clear(&mut self) {
        let all: Vec<usize> = self.live_indices().collect();
        for i in all {
            self.remove_slot(i);
        }
    }

    fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
    }

    fn find_exact(&self, label: &FlowLabel) -> Option<usize> {
        let candidates: &[usize] = match label.dst_host() {
            Some(dst) => self.by_dst.get(&dst)?,
            None => &self.wildcard_dst,
        };
        for &i in candidates {
            if let Some(e) = self.slots[i].as_ref() {
                if e.label == *label {
                    return Some(i);
                }
            }
        }
        None
    }

    fn find_covering(&self, label: &FlowLabel, now: SimTime) -> Option<usize> {
        // A covering entry with a /32 destination must have the same
        // destination host; wildcard-destination entries can cover anything.
        let check = |i: usize| -> bool {
            self.slots[i]
                .as_ref()
                .is_some_and(|e| e.expires > now && e.label.covers(label))
        };
        if let Some(dst) = label.dst_host() {
            if let Some(v) = self.by_dst.get(&dst) {
                for &i in v {
                    if check(i) {
                        return Some(i);
                    }
                }
            }
        }
        self.wildcard_dst.iter().copied().find(|&i| check(i))
    }

    fn remove_slot(&mut self, idx: usize) {
        let entry = self.slots[idx].take().expect("removing a live slot");
        match entry.label.dst_host() {
            Some(dst) => {
                if let Some(v) = self.by_dst.get_mut(&dst) {
                    v.retain(|&i| i != idx);
                    if v.is_empty() {
                        self.by_dst.remove(&dst);
                    }
                }
            }
            None => self.wildcard_dst.retain(|&i| i != idx),
        }
        self.free.push(idx);
        self.live -= 1;
        let _ = entry.installed; // Kept for future age-based policies.
        debug_assert!(self.indexes_consistent(), "occupancy indexes diverged");
    }

    /// Occupancy bookkeeping invariant: every live slot is indexed exactly
    /// once (in `by_dst` for /32-destination labels, in `wildcard_dst`
    /// otherwise), every index points at a live slot, and `live` equals the
    /// number of live slots. Eviction policies — `EvictLeastSpecific` in
    /// particular, which preferentially removes the wildcard-destination
    /// entries the fallback scan walks — must preserve this.
    fn indexes_consistent(&self) -> bool {
        let live_slots = self.slots.iter().filter(|s| s.is_some()).count();
        let indexed: usize =
            // detlint::allow(hash-iter): usize count over all buckets — order-independent debug invariant
            self.by_dst.values().map(Vec::len).sum::<usize>() + self.wildcard_dst.len();
        let all_point_at_live = self
            .by_dst
            // detlint::allow(hash-iter): universally-quantified predicate (`all`) — order-independent debug invariant
            .values()
            .flatten()
            .chain(self.wildcard_dst.iter())
            .all(|&i| self.slots.get(i).is_some_and(Option::is_some));
        live_slots == self.live && indexed == self.live && all_point_at_live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitf_netsim::SimDuration;
    use aitf_packet::Prefix;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn label(i: u8) -> FlowLabel {
        FlowLabel::src_dst(Addr::new(10, 9, 0, i), Addr::new(10, 1, 0, 1))
    }

    fn header(i: u8) -> Header {
        Header::udp(Addr::new(10, 9, 0, i), Addr::new(10, 1, 0, 1), 1, 2)
    }

    #[test]
    fn install_then_match_then_expire() {
        let mut tbl = FilterTable::new(10);
        assert_eq!(
            tbl.install(label(1), t(0), SimDuration::from_secs(60)),
            Ok(InstallOutcome::Installed)
        );
        assert!(tbl.matches(&header(1), t(30)));
        assert!(!tbl.matches(&header(2), t(30)));
        assert!(!tbl.matches(&header(1), t(61)));
        tbl.purge_expired(t(61));
        assert!(tbl.is_empty());
        assert_eq!(tbl.stats().expirations, 1);
    }

    #[test]
    fn capacity_bound_is_hard_with_reject_policy() {
        let mut tbl = FilterTable::new(3);
        for i in 0..3 {
            tbl.install(label(i), t(0), SimDuration::from_secs(60))
                .unwrap();
        }
        assert_eq!(
            tbl.install(label(9), t(0), SimDuration::from_secs(60)),
            Err(InstallError::TableFull)
        );
        assert_eq!(tbl.len(), 3);
        assert_eq!(tbl.stats().rejections, 1);
        assert_eq!(tbl.stats().peak_occupancy, 3);
    }

    #[test]
    fn expired_entries_free_capacity() {
        let mut tbl = FilterTable::new(1);
        tbl.install(label(1), t(0), SimDuration::from_secs(10))
            .unwrap();
        assert!(tbl
            .install(label(2), t(5), SimDuration::from_secs(10))
            .is_err());
        // After the first expires, the slot is reusable.
        assert_eq!(
            tbl.install(label(2), t(11), SimDuration::from_secs(10)),
            Ok(InstallOutcome::Installed)
        );
        assert_eq!(tbl.len(), 1);
    }

    #[test]
    fn refresh_extends_expiry() {
        let mut tbl = FilterTable::new(10);
        tbl.install(label(1), t(0), SimDuration::from_secs(10))
            .unwrap();
        assert_eq!(
            tbl.install(label(1), t(5), SimDuration::from_secs(10)),
            Ok(InstallOutcome::Refreshed)
        );
        assert_eq!(tbl.expiry_of(&label(1)), Some(t(15)));
        assert_eq!(tbl.len(), 1);
        // A shorter refresh must not shorten the expiry.
        tbl.install(label(1), t(6), SimDuration::from_secs(1))
            .unwrap();
        assert_eq!(tbl.expiry_of(&label(1)), Some(t(15)));
    }

    #[test]
    fn covering_entry_absorbs_narrower_request() {
        let mut tbl = FilterTable::new(10);
        let wide = FlowLabel::net_to_host("10.9.0.0/16".parse().unwrap(), Addr::new(10, 1, 0, 1));
        tbl.install(wide, t(0), SimDuration::from_secs(60)).unwrap();
        assert_eq!(
            tbl.install(label(1), t(0), SimDuration::from_secs(60)),
            Ok(InstallOutcome::AlreadyCovered)
        );
        assert_eq!(tbl.len(), 1);
        assert_eq!(tbl.stats().covered, 1);
    }

    #[test]
    fn evict_soonest_expiring_makes_room() {
        let mut tbl = FilterTable::with_policy(2, EvictionPolicy::EvictSoonestExpiring);
        tbl.install(label(1), t(0), SimDuration::from_secs(10))
            .unwrap();
        tbl.install(label(2), t(0), SimDuration::from_secs(60))
            .unwrap();
        assert_eq!(
            tbl.install(label(3), t(1), SimDuration::from_secs(60)),
            Ok(InstallOutcome::InstalledWithEviction)
        );
        // label(1) (soonest expiry) was evicted.
        assert!(!tbl.matches(&header(1), t(2)));
        assert!(tbl.matches(&header(2), t(2)));
        assert!(tbl.matches(&header(3), t(2)));
        assert_eq!(tbl.stats().evictions, 1);
    }

    #[test]
    fn evict_least_specific_prefers_wildcards() {
        let mut tbl = FilterTable::with_policy(2, EvictionPolicy::EvictLeastSpecific);
        let wide = FlowLabel::to_host(Addr::new(10, 2, 0, 1));
        tbl.install(wide, t(0), SimDuration::from_secs(60)).unwrap();
        tbl.install(label(2), t(0), SimDuration::from_secs(60))
            .unwrap();
        tbl.install(label(3), t(1), SimDuration::from_secs(60))
            .unwrap();
        // The wildcard entry went away; the two host-pair filters remain.
        assert!(tbl.matches(&header(2), t(2)));
        assert!(tbl.matches(&header(3), t(2)));
        assert!(!tbl.matches(
            &Header::udp(Addr::new(9, 9, 9, 9), Addr::new(10, 2, 0, 1), 1, 2),
            t(2)
        ));
    }

    #[test]
    fn remove_frees_the_slot() {
        let mut tbl = FilterTable::new(1);
        tbl.install(label(1), t(0), SimDuration::from_secs(60))
            .unwrap();
        assert!(tbl.remove(&label(1)));
        assert!(!tbl.remove(&label(1)));
        assert!(tbl.is_empty());
        assert!(tbl
            .install(label(2), t(0), SimDuration::from_secs(60))
            .is_ok());
    }

    #[test]
    fn wildcard_dst_labels_are_matched() {
        let mut tbl = FilterTable::new(10);
        let net_label = FlowLabel {
            src: Prefix::host(Addr::new(10, 9, 0, 1)),
            dst: "10.1.0.0/16".parse().unwrap(),
            ..FlowLabel::ANY
        };
        tbl.install(net_label, t(0), SimDuration::from_secs(60))
            .unwrap();
        let hdr = Header::udp(Addr::new(10, 9, 0, 1), Addr::new(10, 1, 77, 3), 1, 2);
        assert!(tbl.matches(&hdr, t(1)));
        assert!(tbl.remove(&net_label));
        assert!(!tbl.matches(&hdr, t(1)));
    }

    #[test]
    fn hit_miss_accounting() {
        let mut tbl = FilterTable::new(10);
        tbl.install(label(1), t(0), SimDuration::from_secs(60))
            .unwrap();
        tbl.matches(&header(1), t(1));
        tbl.matches(&header(1), t(2));
        tbl.matches(&header(2), t(3));
        let s = tbl.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
    }

    /// Regression: `EvictLeastSpecific` preferentially evicts the
    /// wildcard-destination entries that the fallback scan in
    /// `find_live_match` walks. Occupancy statistics (live count, peak,
    /// and the `installs = live + evictions + expirations` identity) must
    /// stay consistent through arbitrary interleavings of wildcard and
    /// host-pair installs, evictions and expiries.
    #[test]
    fn evict_least_specific_keeps_wildcard_occupancy_consistent() {
        let mut state: u64 = 0x5eed;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for cap in 1..8usize {
            let mut tbl = FilterTable::with_policy(cap, EvictionPolicy::EvictLeastSpecific);
            let mut now = SimTime::ZERO;
            for step in 0..5000 {
                let r = rng();
                let i = (r % 6) as u8;
                match (r >> 8) % 3 {
                    0 => {
                        // Host-pair label: indexed under by_dst.
                        let _ =
                            tbl.install(label(i), now, SimDuration::from_secs(1 + (r >> 16) % 60));
                    }
                    1 => {
                        // Wildcard-destination label: walks the fallback scan.
                        let lab = FlowLabel {
                            src: Prefix::host(Addr::new(10, 9, 0, i)),
                            dst: format!("10.{}.0.0/16", 1 + i).parse().unwrap(),
                            ..FlowLabel::ANY
                        };
                        let _ = tbl.install(lab, now, SimDuration::from_secs(1 + (r >> 16) % 60));
                    }
                    _ => {
                        now += SimDuration::from_secs((r >> 16) % 10);
                        tbl.purge_expired(now);
                    }
                }
                // Exercise both the indexed lookup and the wildcard fallback.
                let hit_hdr = header(i);
                let fb_hdr = Header::udp(Addr::new(10, 9, 0, i), Addr::new(1 + i, 0, 3, 7), 1, 2);
                let _ = tbl.matches(&hit_hdr, now);
                let _ = tbl.matches(&fb_hdr, now);

                let s = tbl.stats();
                let live = tbl.len();
                assert!(live <= cap, "step {step}: occupancy {live} > cap {cap}");
                assert!(s.peak_occupancy <= cap, "step {step}: peak beyond cap");
                assert_eq!(
                    live,
                    tbl.entries().len(),
                    "step {step}: len() disagrees with entries()"
                );
                assert_eq!(
                    s.installs,
                    live as u64 + s.evictions + s.expirations,
                    "step {step}: install/eviction/expiry identity broken: {s:?}"
                );
            }
        }
    }

    #[test]
    fn clear_empties_table() {
        let mut tbl = FilterTable::new(10);
        for i in 0..5 {
            tbl.install(label(i), t(0), SimDuration::from_secs(60))
                .unwrap();
        }
        tbl.clear();
        assert!(tbl.is_empty());
        assert!(!tbl.matches(&header(0), t(1)));
    }

    #[test]
    fn entries_lists_live_filters() {
        let mut tbl = FilterTable::new(10);
        tbl.install(label(1), t(0), SimDuration::from_secs(10))
            .unwrap();
        tbl.install(label(2), t(0), SimDuration::from_secs(20))
            .unwrap();
        let mut entries = tbl.entries();
        entries.sort_by_key(|&(_, e)| e);
        assert_eq!(entries, vec![(label(1), t(10)), (label(2), t(20))]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use aitf_netsim::SimDuration;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Install(u8, u64),
        Remove(u8),
        Advance(u64),
        Match(u8),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), 1u64..120).prop_map(|(i, d)| Op::Install(i, d)),
            any::<u8>().prop_map(Op::Remove),
            (1u64..30).prop_map(Op::Advance),
            any::<u8>().prop_map(Op::Match),
        ]
    }

    proptest! {
        /// Under any operation sequence: occupancy never exceeds capacity,
        /// and no expired entry ever matches a packet.
        #[test]
        fn capacity_and_expiry_invariants(
            ops in proptest::collection::vec(arb_op(), 1..200),
            cap in 1usize..16,
        ) {
            let mut tbl = FilterTable::with_policy(cap, EvictionPolicy::EvictSoonestExpiring);
            let mut now = SimTime::ZERO;
            // Track ground truth expiries for exact labels.
            let mut truth: std::collections::HashMap<u8, SimTime> = Default::default();
            for op in ops {
                match op {
                    Op::Install(i, d) => {
                        let lab = FlowLabel::src_dst(
                            Addr::new(10, 9, 0, i),
                            Addr::new(10, 1, 0, 1),
                        );
                        let dur = SimDuration::from_secs(d);
                        if tbl.install(lab, now, dur).is_ok() {
                            let exp = tbl.expiry_of(&lab);
                            if let Some(e) = exp {
                                truth.insert(i, e);
                            }
                        }
                    }
                    Op::Remove(i) => {
                        let lab = FlowLabel::src_dst(
                            Addr::new(10, 9, 0, i),
                            Addr::new(10, 1, 0, 1),
                        );
                        tbl.remove(&lab);
                        truth.remove(&i);
                    }
                    Op::Advance(s) => {
                        now += SimDuration::from_secs(s);
                    }
                    Op::Match(i) => {
                        let hdr = Header::udp(
                            Addr::new(10, 9, 0, i),
                            Addr::new(10, 1, 0, 1),
                            1,
                            2,
                        );
                        let hit = tbl.matches(&hdr, now);
                        // If ground truth says expired (or absent), the table
                        // must agree that nothing live matches; evictions can
                        // only make the table match *less*, never more.
                        match truth.get(&i) {
                            Some(&exp) if exp > now => {}
                            _ => prop_assert!(!hit, "expired/absent filter matched"),
                        }
                    }
                }
                tbl.purge_expired(now);
                prop_assert!(tbl.len() <= cap, "occupancy exceeded capacity");
            }
        }
    }

    #[derive(Debug, Clone)]
    enum TinyOp {
        /// Install a host-pair label (indexed under `by_dst`).
        InstallPair(u8, u64),
        /// Install a wildcard-destination label (walks the fallback scan).
        InstallWild(u8, u64),
        RemovePair(u8),
        RemoveWild(u8),
        Advance(u64),
        Lookup(u8),
    }

    fn arb_tiny_op() -> impl Strategy<Value = TinyOp> {
        prop_oneof![
            (0u8..6, 1u64..90).prop_map(|(i, d)| TinyOp::InstallPair(i, d)),
            (0u8..6, 1u64..90).prop_map(|(i, d)| TinyOp::InstallWild(i, d)),
            (0u8..6).prop_map(TinyOp::RemovePair),
            (0u8..6).prop_map(TinyOp::RemoveWild),
            (1u64..30).prop_map(TinyOp::Advance),
            (0u8..6).prop_map(TinyOp::Lookup),
        ]
    }

    fn pair_label(i: u8) -> FlowLabel {
        FlowLabel::src_dst(Addr::new(10, 9, 0, i), Addr::new(10, 1, 0, 1))
    }

    fn wild_label(i: u8) -> FlowLabel {
        FlowLabel {
            src: aitf_packet::Prefix::host(Addr::new(10, 9, 0, i)),
            dst: format!("10.{}.0.0/16", 100 + i).parse().unwrap(),
            ..FlowLabel::ANY
        }
    }

    proptest! {
        /// Tiny-capacity hammering under `EvictLeastSpecific` — the policy
        /// that preferentially evicts exactly the wildcard-destination
        /// entries the fallback scan depends on. Invariants after every
        /// operation:
        ///
        /// - occupancy never exceeds the capacity;
        /// - the `by_dst`/`wildcard_dst` indexes stay consistent with the
        ///   slab (every live slot indexed exactly once);
        /// - `lookup` agrees with a plain scan of `entries()` — a dropped
        ///   index entry would silently stop matching a live filter, the
        ///   wildcard-dst fallback in particular;
        /// - the `installs = live + evictions + expirations + removes`
        ///   lifecycle identity holds.
        #[test]
        fn tiny_capacity_evict_least_specific_invariants(
            ops in proptest::collection::vec(arb_tiny_op(), 1..120),
            cap in 1usize..5,
        ) {
            let mut tbl = FilterTable::with_policy(cap, EvictionPolicy::EvictLeastSpecific);
            let mut now = SimTime::ZERO;
            let mut removes = 0u64;
            for op in ops {
                match op {
                    TinyOp::InstallPair(i, d) => {
                        let _ = tbl.install(pair_label(i), now, SimDuration::from_secs(d));
                    }
                    TinyOp::InstallWild(i, d) => {
                        let _ = tbl.install(wild_label(i), now, SimDuration::from_secs(d));
                    }
                    TinyOp::RemovePair(i) => {
                        if tbl.remove(&pair_label(i)) {
                            removes += 1;
                        }
                    }
                    TinyOp::RemoveWild(i) => {
                        if tbl.remove(&wild_label(i)) {
                            removes += 1;
                        }
                    }
                    TinyOp::Advance(s) => {
                        now += SimDuration::from_secs(s);
                        tbl.purge_expired(now);
                    }
                    TinyOp::Lookup(i) => {
                        // One header served by the dst index, one only by the
                        // wildcard fallback.
                        for hdr in [
                            Header::udp(Addr::new(10, 9, 0, i), Addr::new(10, 1, 0, 1), 1, 2),
                            Header::udp(
                                Addr::new(10, 9, 0, i),
                                Addr::new(10, 100 + i, 3, 7),
                                1,
                                2,
                            ),
                        ] {
                            let via_index = tbl.lookup(&hdr, now);
                            let via_scan = tbl
                                .entries()
                                .into_iter()
                                .find(|(label, exp)| *exp > now && label.matches(&hdr));
                            prop_assert_eq!(
                                via_index.is_some(),
                                via_scan.is_some(),
                                "index lookup and slab scan disagree for {:?}",
                                hdr
                            );
                            let _ = tbl.matches(&hdr, now);
                        }
                    }
                }
                prop_assert!(tbl.len() <= cap, "occupancy {} > cap {cap}", tbl.len());
                prop_assert!(tbl.indexes_consistent(), "occupancy indexes diverged");
                let s = tbl.stats();
                prop_assert!(s.peak_occupancy <= cap, "peak beyond capacity");
                prop_assert_eq!(
                    s.installs,
                    tbl.len() as u64 + s.evictions + s.expirations + removes,
                    "lifecycle identity broken: {:?} (removes = {})", s, removes
                );
            }
        }
    }
}
