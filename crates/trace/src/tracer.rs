//! The recording facade: real when the `trace` feature is on, a zero-sized
//! pile of empty `#[inline]` stubs when it is off.
//!
//! Both variants expose the same API, so instrumentation call sites in the
//! protocol code need no `cfg` of their own. The disabled variant's
//! methods take and return the same types ([`SpanId::NONE`] everywhere)
//! and compile to nothing — the dispatch benches pin this at 0 allocations
//! per event.

use crate::span::{Cause, SpanId, SpanKind, SpanRecord};

#[cfg(feature = "trace")]
mod imp {
    use super::*;
    use crate::span::SpanStore;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A cloneable handle to a shared span store. Every border router in a
    /// world clones the same tracer, so round spans parent across routers.
    /// Not `Send` — worlds live and die on one worker thread.
    #[derive(Clone, Debug, Default)]
    pub struct Tracer {
        store: Rc<RefCell<SpanStore>>,
    }

    impl Tracer {
        /// A tracer with a fresh store.
        pub fn new() -> Tracer {
            Tracer::default()
        }

        /// Whether recording is compiled in.
        pub fn is_enabled(&self) -> bool {
            true
        }

        /// Starts a span (see [`SpanStore::start`]).
        pub fn start(
            &self,
            kind: SpanKind,
            cause: Cause,
            flow: u64,
            round: u8,
            router: u32,
            now_ns: u64,
        ) -> SpanId {
            self.store
                .borrow_mut()
                .start(kind, cause, flow, round, router, now_ns)
        }

        /// Records an instant (zero-duration) span.
        pub fn instant(
            &self,
            kind: SpanKind,
            cause: Cause,
            flow: u64,
            round: u8,
            router: u32,
            now_ns: u64,
        ) -> SpanId {
            let id = self.start(kind, cause, flow, round, router, now_ns);
            self.end(id, now_ns);
            id
        }

        /// Ends an open span.
        pub fn end(&self, id: SpanId, now_ns: u64) {
            self.store.borrow_mut().end(id, now_ns);
        }

        /// Ends the open round span for `(flow, round)` (terminal event).
        pub fn close_round(&self, flow: u64, round: u8, now_ns: u64) {
            self.store.borrow_mut().close_round(flow, round, now_ns);
        }

        /// Closes every still-open span at `now_ns` (end of run).
        pub fn finish(&self, now_ns: u64) {
            self.store.borrow_mut().close_all(now_ns);
        }

        /// Snapshot of every recorded span.
        pub fn spans(&self) -> Vec<SpanRecord> {
            self.store.borrow().spans().to_vec()
        }
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::*;

    /// The no-op tracer: zero-sized, every method an empty inline stub.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Tracer;

    impl Tracer {
        /// A tracer that records nothing.
        #[inline(always)]
        pub fn new() -> Tracer {
            Tracer
        }

        /// Whether recording is compiled in.
        #[inline(always)]
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// No-op; returns [`SpanId::NONE`].
        #[inline(always)]
        pub fn start(
            &self,
            _kind: SpanKind,
            _cause: Cause,
            _flow: u64,
            _round: u8,
            _router: u32,
            _now_ns: u64,
        ) -> SpanId {
            SpanId::NONE
        }

        /// No-op; returns [`SpanId::NONE`].
        #[inline(always)]
        pub fn instant(
            &self,
            _kind: SpanKind,
            _cause: Cause,
            _flow: u64,
            _round: u8,
            _router: u32,
            _now_ns: u64,
        ) -> SpanId {
            SpanId::NONE
        }

        /// No-op.
        #[inline(always)]
        pub fn end(&self, _id: SpanId, _now_ns: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn close_round(&self, _flow: u64, _round: u8, _now_ns: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn finish(&self, _now_ns: u64) {}

        /// Always empty.
        #[inline(always)]
        pub fn spans(&self) -> Vec<SpanRecord> {
            Vec::new()
        }
    }
}

pub use imp::Tracer;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(not(feature = "trace"))]
    fn disabled_tracer_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<Tracer>(), 0);
        let t = Tracer::new();
        assert!(!t.is_enabled());
        let id = t.start(SpanKind::Round, Cause::Detection, 1, 1, 1, 0);
        assert_eq!(id, SpanId::NONE);
        t.end(id, 5);
        assert!(t.spans().is_empty());
    }

    #[test]
    #[cfg(feature = "trace")]
    fn enabled_tracer_records_and_clones_share_the_store() {
        let t = Tracer::new();
        assert!(t.is_enabled());
        let u = t.clone();
        let round = t.start(SpanKind::Round, Cause::Detection, 1, 1, 10, 0);
        let hs = u.start(SpanKind::Handshake, Cause::Protocol, 1, 1, 20, 5);
        u.end(hs, 9);
        t.end(round, 12);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, Some(round.0));
    }
}
