//! # aitf-trace — zero-cost structured tracing and subsystem profiling
//!
//! The observability layer for the AITF reproduction. Two instruments:
//!
//! - **Spans with cause chains** ([`span`]): one span per escalation round
//!   (filter request → handshake → install/evict → expiry/refresh), each
//!   carrying `(flow, round, router, cause)`, so any leaked packet or
//!   dropped escalation can be attributed to the decision that caused it.
//!   Span clocks are **virtual time** — deterministic and testable.
//! - **Per-subsystem counters and timers** ([`profile`]): every dispatched
//!   simulator event is classified as netsim-queue / link / host-app /
//!   router-datapath / escalation / detector work and its **wall-clock**
//!   cost accumulated per bucket.
//!
//! The recording facade is [`Tracer`]. With the `trace` cargo feature off
//! (the default) it is a zero-sized type whose methods are empty `#[inline]`
//! stubs — every call compiles away, verified allocation-free and
//! throughput-neutral by the dispatch benches. The *data* types (records,
//! profiles, reports) are feature-independent so reports can always be
//! rendered and JSON schemas never change shape.

pub mod profile;
pub mod span;
mod tracer;

pub use profile::{Subsystem, SubsystemProfile};
pub use span::{Cause, SpanId, SpanKind, SpanRecord, SpanStore};
pub use tracer::Tracer;

/// Everything one run produced: the per-subsystem wall profile plus the
/// escalation span tree. Attached to engine outcomes when tracing is on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceReport {
    /// Wall-time-per-subsystem buckets (raw; render via
    /// [`SubsystemProfile::finalized`]).
    pub subsystems: SubsystemProfile,
    /// The recorded span tree, in start order.
    pub spans: Vec<SpanRecord>,
}

impl TraceReport {
    /// Flamegraph-ready folded-stack lines (`path;to;frame weight`),
    /// aggregated over the span tree. See [`span::folded_stacks`].
    pub fn folded(&self) -> Vec<String> {
        span::folded_stacks(&self.spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_default_is_empty() {
        let r = TraceReport::default();
        assert!(r.spans.is_empty());
        assert_eq!(r.subsystems.finalized().total_events(), 0);
        assert!(r.folded().is_empty());
    }
}
