//! Escalation spans: virtual-time intervals with parent and cause chains.
//!
//! One [`SpanKind::Round`] span is opened per escalation round of a flow;
//! everything the protocol does for that round — temporary filter,
//! handshake, long filter, escalation forward, disconnect — is a child of
//! it, wherever in the topology it happens. Parenting is keyed by
//! `(flow, round)`, so the chain crosses routers: the handshake span at
//! the attacker's gateway hangs off the round span opened at the victim's
//! gateway. Clocks are **virtual** (simulated nanoseconds): span data is
//! bit-deterministic and safe to pin in tests.

use std::collections::HashMap;

/// Handle to a recorded span. [`SpanId::NONE`] when tracing is disabled or
/// the span was never recorded — ending it is a no-op.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanId(pub u32);

impl SpanId {
    /// The null span handle.
    pub const NONE: SpanId = SpanId(u32::MAX);
}

/// What a span covers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SpanKind {
    /// One escalation round of one flow — the parent of everything below.
    Round,
    /// Temporary (`Ttmp`) filter installed at the victim's gateway.
    TempFilter,
    /// The 3-way verification handshake at the attacker's gateway.
    Handshake,
    /// Long (`T`) filter installed on the attacker side.
    LongFilter,
    /// Damped duplicate: the temporary filter was refreshed in place.
    Refresh,
    /// The round was forwarded to an AITF-enabled ancestor.
    Escalate,
    /// Local-filter fallback: the escalation dead-ended at the router's
    /// own uplink and the flow stays filtered locally.
    LocalFilter,
    /// A peer or client link was administratively disconnected.
    Disconnect,
    /// The round was dropped — nothing left to try.
    Drop,
}

impl SpanKind {
    /// Stable machine-readable name (folded-stack frames, JSON).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Round => "round",
            SpanKind::TempFilter => "temp_filter",
            SpanKind::Handshake => "handshake",
            SpanKind::LongFilter => "long_filter",
            SpanKind::Refresh => "refresh",
            SpanKind::Escalate => "escalate",
            SpanKind::LocalFilter => "local_filter",
            SpanKind::Disconnect => "disconnect",
            SpanKind::Drop => "drop",
        }
    }
}

/// Why a span exists — the decision that caused it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Cause {
    /// The victim detected the flow and asked its gateway.
    Detection,
    /// The temporary filter expired and the shadowed flow reappeared.
    TempFilterExpired,
    /// A previous round failed; this round is the escalation of it.
    Escalated,
    /// Damped duplicate request within the cooldown window.
    Duplicate,
    /// The victim confirmed the verification handshake.
    HandshakeConfirmed,
    /// The victim denied the verification handshake.
    HandshakeDenied,
    /// The verification handshake timed out.
    HandshakeTimeout,
    /// The wire-speed filter table was full.
    TableFull,
    /// No AITF-enabled ancestor left to escalate through.
    NoAncestor,
    /// No identifiable neighbour to disconnect.
    NoNeighbor,
    /// The grace period expired with the flow still arriving.
    GraceExpired,
    /// Plain protocol progress (no special trigger).
    Protocol,
}

impl Cause {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Cause::Detection => "detection",
            Cause::TempFilterExpired => "temp_filter_expired",
            Cause::Escalated => "escalated",
            Cause::Duplicate => "duplicate",
            Cause::HandshakeConfirmed => "handshake_confirmed",
            Cause::HandshakeDenied => "handshake_denied",
            Cause::HandshakeTimeout => "handshake_timeout",
            Cause::TableFull => "table_full",
            Cause::NoAncestor => "no_ancestor",
            Cause::NoNeighbor => "no_neighbor",
            Cause::GraceExpired => "grace_expired",
            Cause::Protocol => "protocol",
        }
    }
}

/// End time of a span that is still open.
pub const OPEN: u64 = u64::MAX;

/// One recorded span.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// This span's id (its index in the store).
    pub id: u32,
    /// Parent span id, or `None` for roots.
    pub parent: Option<u32>,
    /// What the span covers.
    pub kind: SpanKind,
    /// The decision that caused it.
    pub cause: Cause,
    /// Compact flow key (`src_host << 32 | dst_host` for host-to-host
    /// labels; caller-defined otherwise).
    pub flow: u64,
    /// Escalation round the span belongs to.
    pub round: u8,
    /// Raw address of the router (or host gateway) that recorded it.
    pub router: u32,
    /// Virtual start time, nanoseconds.
    pub start_ns: u64,
    /// Virtual end time, nanoseconds ([`OPEN`] while unfinished).
    pub end_ns: u64,
}

impl SpanRecord {
    /// Duration in virtual nanoseconds (0 while open).
    pub fn duration_ns(&self) -> u64 {
        if self.end_ns == OPEN {
            0
        } else {
            self.end_ns.saturating_sub(self.start_ns)
        }
    }

    /// Renders the record as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"parent\":{},\"kind\":\"{}\",\"cause\":\"{}\",\"flow\":{},\"round\":{},\"router\":{},\"start_ns\":{},\"end_ns\":{}}}",
            self.id,
            match self.parent {
                Some(p) => p.to_string(),
                None => "null".into(),
            },
            self.kind.name(),
            self.cause.name(),
            self.flow,
            self.round,
            self.router,
            self.start_ns,
            if self.end_ns == OPEN { self.start_ns } else { self.end_ns },
        )
    }
}

/// The span recorder: an append-only list plus the open-round index that
/// parents children across routers.
#[derive(Debug, Default)]
pub struct SpanStore {
    spans: Vec<SpanRecord>,
    open_rounds: HashMap<(u64, u8), u32>,
}

impl SpanStore {
    /// An empty store.
    pub fn new() -> Self {
        SpanStore::default()
    }

    /// Starts a span. A [`SpanKind::Round`] span becomes the open round
    /// for `(flow, round)` — a previously open round span for the same key
    /// (an escalation handed to the next router) is ended where the new
    /// one begins. Any other kind is parented under the open round for
    /// `(flow, round)`, or recorded as a root when no round is open
    /// (e.g. verification-disabled edge cases).
    pub fn start(
        &mut self,
        kind: SpanKind,
        cause: Cause,
        flow: u64,
        round: u8,
        router: u32,
        now_ns: u64,
    ) -> SpanId {
        let id = self.spans.len() as u32;
        let parent = if kind == SpanKind::Round {
            if let Some(old) = self.open_rounds.insert((flow, round), id) {
                self.end(SpanId(old), now_ns);
            }
            None
        } else {
            self.open_rounds.get(&(flow, round)).copied()
        };
        self.spans.push(SpanRecord {
            id,
            parent,
            kind,
            cause,
            flow,
            round,
            router,
            start_ns: now_ns,
            end_ns: OPEN,
        });
        SpanId(id)
    }

    /// Ends an open span (no-op for [`SpanId::NONE`] or already-ended).
    pub fn end(&mut self, id: SpanId, now_ns: u64) {
        if let Some(s) = self.spans.get_mut(id.0 as usize) {
            if s.end_ns == OPEN {
                s.end_ns = now_ns;
            }
        }
    }

    /// Ends and unregisters the open round span for `(flow, round)` — the
    /// round reached a terminal decision (long filter installed, dropped,
    /// disconnected, local fallback).
    pub fn close_round(&mut self, flow: u64, round: u8, now_ns: u64) {
        if let Some(id) = self.open_rounds.remove(&(flow, round)) {
            self.end(SpanId(id), now_ns);
        }
    }

    /// Closes every still-open span at `now_ns` (end of run).
    pub fn close_all(&mut self, now_ns: u64) {
        for s in &mut self.spans {
            if s.end_ns == OPEN {
                s.end_ns = now_ns;
            }
        }
    }

    /// Snapshot of every recorded span, in start order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Consumes the store, returning the records.
    pub fn into_spans(self) -> Vec<SpanRecord> {
        self.spans
    }
}

/// Flamegraph-ready folded stacks: one `frame;frame;frame weight` line per
/// distinct root-to-span path, weighted by the span's *exclusive* virtual
/// time in microseconds (minimum 1, so instant decisions stay visible).
/// Feed the lines to any `flamegraph.pl`-compatible renderer.
pub fn folded_stacks(spans: &[SpanRecord]) -> Vec<String> {
    // Exclusive time: own duration minus time covered by children.
    let mut child_ns: HashMap<u32, u64> = HashMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            *child_ns.entry(p).or_default() += s.duration_ns();
        }
    }
    let frame = |s: &SpanRecord| -> String {
        if s.kind == SpanKind::Round {
            format!("round_{}:{}", s.round, s.cause.name())
        } else {
            format!("{}:{}", s.kind.name(), s.cause.name())
        }
    };
    let mut weights: Vec<(String, u64)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for s in spans {
        let exclusive = s
            .duration_ns()
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        let micros = (exclusive / 1_000).max(1);
        // Build the path by walking parents (chains are shallow: round →
        // action → sub-action).
        let mut path = vec![frame(s)];
        let mut cur = s.parent;
        while let Some(p) = cur {
            let ps = &spans[p as usize];
            path.push(frame(ps));
            cur = ps.parent;
        }
        path.reverse();
        let key = path.join(";");
        match index.get(&key) {
            Some(&i) => weights[i].1 += micros,
            None => {
                index.insert(key.clone(), weights.len());
                weights.push((key, micros));
            }
        }
    }
    weights
        .into_iter()
        .map(|(k, w)| format!("{k} {w}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_parent_under_the_open_round_across_routers() {
        let mut st = SpanStore::new();
        let round = st.start(SpanKind::Round, Cause::Detection, 7, 1, 100, 0);
        let tmp = st.start(SpanKind::TempFilter, Cause::Protocol, 7, 1, 100, 10);
        st.end(tmp, 10);
        // Different router, same (flow, round): still a child of `round`.
        let hs = st.start(SpanKind::Handshake, Cause::Protocol, 7, 1, 200, 20);
        st.end(hs, 50);
        st.end(round, 60);
        let spans = st.spans();
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(0));
        assert_eq!(spans[2].router, 200);
        assert_eq!(spans[2].duration_ns(), 30);
    }

    #[test]
    fn rounds_key_independently_per_flow_and_round() {
        let mut st = SpanStore::new();
        st.start(SpanKind::Round, Cause::Detection, 1, 1, 9, 0);
        st.start(SpanKind::Round, Cause::Escalated, 1, 2, 9, 5);
        let child = st.start(SpanKind::Escalate, Cause::Escalated, 1, 1, 9, 6);
        // Round 1's child parents under the round-1 span, not round 2's.
        assert_eq!(st.spans()[child.0 as usize].parent, Some(0));
    }

    #[test]
    fn close_all_ends_open_spans_and_none_is_a_noop() {
        let mut st = SpanStore::new();
        let id = st.start(SpanKind::Round, Cause::Detection, 1, 1, 9, 10);
        st.end(SpanId::NONE, 99);
        st.close_all(25);
        assert_eq!(st.spans()[id.0 as usize].end_ns, 25);
        // Re-closing does not move the end.
        st.end(id, 99);
        assert_eq!(st.spans()[id.0 as usize].end_ns, 25);
    }

    #[test]
    fn folded_stacks_aggregate_paths_with_exclusive_weights() {
        let mut st = SpanStore::new();
        let round = st.start(SpanKind::Round, Cause::Detection, 7, 1, 1, 0);
        let hs = st.start(SpanKind::Handshake, Cause::Protocol, 7, 1, 2, 1_000_000);
        st.end(hs, 3_000_000);
        st.end(round, 10_000_000);
        let lines = folded_stacks(st.spans());
        assert_eq!(lines.len(), 2, "{lines:?}");
        // Root exclusive: 10 ms - 2 ms child = 8 ms = 8000 us.
        assert!(
            lines.contains(&"round_1:detection 8000".to_string()),
            "{lines:?}"
        );
        assert!(
            lines.contains(&"round_1:detection;handshake:protocol 2000".to_string()),
            "{lines:?}"
        );
    }

    #[test]
    fn span_json_is_shaped() {
        let mut st = SpanStore::new();
        let id = st.start(SpanKind::Round, Cause::Detection, 7, 1, 9, 5);
        st.end(id, 8);
        assert_eq!(
            st.spans()[0].to_json(),
            "{\"id\":0,\"parent\":null,\"kind\":\"round\",\"cause\":\"detection\",\"flow\":7,\"round\":1,\"router\":9,\"start_ns\":5,\"end_ns\":8}"
        );
    }
}
