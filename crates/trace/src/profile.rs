//! Per-subsystem event counters and wall-time buckets.

/// The subsystem a dispatched simulator event is attributed to.
///
/// The simulator seeds the class from the event kind (link completions are
/// [`Subsystem::Link`], node dispatches start from the node's own class);
/// nodes refine it mid-handler — a border router reclassifies control-plane
/// work as [`Subsystem::Escalation`], an end host reclassifies detection
/// work as [`Subsystem::Detector`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Subsystem {
    /// Event-loop overhead: queue pop/push, clock bookkeeping — everything
    /// in the loop that is not inside a dispatch. Derived as the residual
    /// `loop wall − Σ dispatch wall` by [`SubsystemProfile::finalized`].
    Queue,
    /// Link transmit completions and queue drains.
    Link,
    /// End-host application work: traffic sources, sinks, host timers.
    HostApp,
    /// Border-router data-path work: forwarding, filtering, shim stamping.
    RouterData,
    /// AITF control plane: filtering requests, handshakes, escalation.
    Escalation,
    /// Attack-detection work at end hosts (Td timers, rate estimators).
    Detector,
    /// Defense hook pipeline: events consumed by a router's defense
    /// stages — packets vetoed at the Ingress/Egress hooks, and the
    /// control planes of non-AITF policies (pushback, rate limiting,
    /// path stamping).
    DefenseHook,
}

impl Subsystem {
    /// Number of subsystem classes.
    pub const COUNT: usize = 7;

    /// Every class, in display order.
    pub const ALL: [Subsystem; Subsystem::COUNT] = [
        Subsystem::Queue,
        Subsystem::Link,
        Subsystem::HostApp,
        Subsystem::RouterData,
        Subsystem::DefenseHook,
        Subsystem::Escalation,
        Subsystem::Detector,
    ];

    /// Stable machine-readable name (JSON keys, table rows).
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Queue => "netsim_queue",
            Subsystem::Link => "link",
            Subsystem::HostApp => "host_app",
            Subsystem::RouterData => "router_datapath",
            Subsystem::DefenseHook => "defense_hook",
            Subsystem::Escalation => "escalation",
            Subsystem::Detector => "detector",
        }
    }

    fn index(self) -> usize {
        match self {
            Subsystem::Queue => 0,
            Subsystem::Link => 1,
            Subsystem::HostApp => 2,
            Subsystem::RouterData => 3,
            Subsystem::DefenseHook => 4,
            Subsystem::Escalation => 5,
            Subsystem::Detector => 6,
        }
    }
}

/// One subsystem's accumulated cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Bucket {
    /// Events attributed to this subsystem.
    pub events: u64,
    /// Wall nanoseconds spent in those events.
    pub nanos: u64,
}

/// Fixed-size per-subsystem accumulator — no allocation on the record
/// path, so the instrumented event loop stays alloc-free.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SubsystemProfile {
    buckets: [Bucket; Subsystem::COUNT],
    /// Total wall nanoseconds spent inside `run_until` loops.
    loop_nanos: u64,
}

impl SubsystemProfile {
    /// Attributes one event of `nanos` wall cost to `subsystem`.
    #[inline]
    pub fn record(&mut self, subsystem: Subsystem, nanos: u64) {
        let b = &mut self.buckets[subsystem.index()];
        b.events += 1;
        b.nanos += nanos;
    }

    /// Adds wall time spent inside the event loop (dispatches included).
    #[inline]
    pub fn add_loop_nanos(&mut self, nanos: u64) {
        self.loop_nanos += nanos;
    }

    /// Sums `other` into `self` (aggregating across runs).
    pub fn merge(&mut self, other: &SubsystemProfile) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            b.events += o.events;
            b.nanos += o.nanos;
        }
        self.loop_nanos += other.loop_nanos;
    }

    /// The bucket for `subsystem` as currently recorded (the
    /// [`Subsystem::Queue`] bucket is only meaningful after
    /// [`SubsystemProfile::finalized`]).
    pub fn bucket(&self, subsystem: Subsystem) -> Bucket {
        self.buckets[subsystem.index()]
    }

    /// Total events attributed across all dispatch buckets.
    pub fn total_events(&self) -> u64 {
        Subsystem::ALL
            .iter()
            .filter(|&&s| s != Subsystem::Queue)
            .map(|&s| self.bucket(s).events)
            .sum()
    }

    /// Total wall nanoseconds spent inside event loops.
    pub fn loop_nanos(&self) -> u64 {
        self.loop_nanos
    }

    /// A copy with the [`Subsystem::Queue`] bucket filled in as the
    /// residual: every dispatched event passed through the queue, and its
    /// cost is the loop wall time not attributed to any dispatch.
    pub fn finalized(&self) -> SubsystemProfile {
        let mut out = *self;
        let dispatched: u64 = Subsystem::ALL
            .iter()
            .filter(|&&s| s != Subsystem::Queue)
            .map(|&s| self.bucket(s).nanos)
            .sum();
        out.buckets[Subsystem::Queue.index()] = Bucket {
            events: self.total_events(),
            nanos: self.loop_nanos.saturating_sub(dispatched),
        };
        out
    }

    /// `(subsystem, bucket)` rows in display order, queue residual filled.
    pub fn rows(&self) -> Vec<(Subsystem, Bucket)> {
        let f = self.finalized();
        Subsystem::ALL.iter().map(|&s| (s, f.bucket(s))).collect()
    }

    /// Renders the finalized profile as one JSON object
    /// (`{"netsim_queue":{"events":..,"nanos":..},...}`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (s, b)) in self.rows().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"events\":{},\"nanos\":{}}}",
                s.name(),
                b.events,
                b.nanos
            ));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_finalize_attribute_the_residual_to_the_queue() {
        let mut p = SubsystemProfile::default();
        p.record(Subsystem::Link, 100);
        p.record(Subsystem::Escalation, 50);
        p.record(Subsystem::Escalation, 50);
        p.add_loop_nanos(300);
        assert_eq!(p.total_events(), 3);
        let f = p.finalized();
        let q = f.bucket(Subsystem::Queue);
        assert_eq!(q.events, 3);
        assert_eq!(q.nanos, 100, "300 loop - 200 dispatched");
        assert_eq!(f.bucket(Subsystem::Escalation).nanos, 100);
    }

    #[test]
    fn merge_sums_buckets_and_loop_time() {
        let mut a = SubsystemProfile::default();
        a.record(Subsystem::HostApp, 10);
        a.add_loop_nanos(20);
        let mut b = SubsystemProfile::default();
        b.record(Subsystem::HostApp, 5);
        b.record(Subsystem::Detector, 7);
        b.add_loop_nanos(30);
        a.merge(&b);
        assert_eq!(
            a.bucket(Subsystem::HostApp),
            Bucket {
                events: 2,
                nanos: 15
            }
        );
        assert_eq!(a.bucket(Subsystem::Detector).events, 1);
        assert_eq!(a.loop_nanos(), 50);
    }

    #[test]
    fn json_has_every_subsystem_key() {
        let j = SubsystemProfile::default().to_json();
        for s in Subsystem::ALL {
            assert!(j.contains(s.name()), "{j}");
        }
    }
}
