//! Building pushback worlds on AITF topologies.

use aitf_core::{World, WorldBuilder};

use crate::router::PushbackRouter;

/// Builds the world with a [`PushbackRouter`] at every network instead of
/// an AITF border router. End hosts are unchanged: the victim's filtering
/// request is the common trigger for both protocols, which keeps the
/// comparison fair.
///
/// # Examples
///
/// ```
/// use aitf_core::{AitfConfig, WorldBuilder};
/// use aitf_baseline::build_pushback_world;
///
/// let mut b = WorldBuilder::new(1, AitfConfig::default());
/// let wan = b.network("wan", "10.100.0.0/16", None);
/// let net = b.network("net", "10.1.0.0/16", Some(wan));
/// let _host = b.host(net);
/// let world = build_pushback_world(b);
/// assert_eq!(world.net_count(), 2);
/// ```
pub fn build_pushback_world(builder: WorldBuilder) -> World {
    builder.build_with_routers(|spec| Box::new(PushbackRouter::new(spec)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitf_core::AitfConfig;
    use aitf_netsim::SimDuration;

    #[test]
    fn pushback_world_builds_and_runs() {
        let mut b = WorldBuilder::new(1, AitfConfig::default());
        let wan = b.network("wan", "10.100.0.0/16", None);
        let net = b.network("net", "10.1.0.0/16", Some(wan));
        let host = b.host(net);
        let mut w = build_pushback_world(b);
        w.sim.run_for(SimDuration::from_secs(1));
        assert_eq!(w.host(host).counters().rx_attack_pkts, 0);
        // The router slots hold PushbackRouters, not BorderRouters.
        assert!(w
            .sim
            .node_ref::<PushbackRouter>(w.router_node(wan))
            .is_some());
    }
}
