//! The pushback router node.

use std::collections::HashMap;

use aitf_core::RouterSpec;
use aitf_filter::FilterTable;
use aitf_netsim::{impl_node_any, Context, LinkId, Node, SimDuration};
use aitf_packet::{
    Addr, AitfMessage, FlowLabel, LpmTable, Packet, PayloadKind, PushbackRequest,
    RequestDestination,
};

/// Maximum hops a pushback request travels (loop guard).
pub const MAX_PUSHBACK_DEPTH: u8 = 32;

/// Counters for one pushback router.
#[derive(Clone, Copy, Debug, Default)]
pub struct PushbackCounters {
    /// Data packets forwarded.
    pub data_forwarded: u64,
    /// Data packets dropped by a local aggregate filter.
    pub data_filtered_pkts: u64,
    /// Bytes dropped by a local aggregate filter.
    pub data_filtered_bytes: u64,
    /// Victim filtering requests received (edge trigger).
    pub requests_received: u64,
    /// Pushback messages received from downstream.
    pub pushback_received: u64,
    /// Pushback messages propagated upstream.
    pub pushback_sent: u64,
    /// Pushback messages ignored (non-cooperating router).
    pub pushback_ignored: u64,
    /// Aggregate filters installed.
    pub filters_installed: u64,
    /// Packets dropped for TTL/no-route.
    pub undeliverable: u64,
}

/// A router implementing hop-by-hop pushback (\[MBF+01\]-style), built from
/// the same [`RouterSpec`] wiring as an AITF border router so both can run
/// on identical topologies.
pub struct PushbackRouter {
    addr: Addr,
    cooperating: bool,
    fwd: LpmTable<LinkId>,
    filters: FilterTable,
    duration: SimDuration,
    /// Which link packets of a given `(src, dst)` pair arrive on — the
    /// "contributing upstream neighbour" needed for propagation.
    flow_arrivals: HashMap<(Addr, Addr), LinkId>,
    counters: PushbackCounters,
}

/// Destination address of link-local (hop-by-hop) pushback packets.
const LINK_LOCAL: Addr = Addr::ZERO;

impl PushbackRouter {
    /// Builds a pushback router from AITF wiring. The AITF-specific parts
    /// of the spec (contracts, parent gateway) are ignored — pushback has
    /// neither policing contracts nor escalation.
    pub fn new(spec: RouterSpec) -> Self {
        PushbackRouter {
            addr: spec.addr,
            cooperating: spec.policy.cooperating,
            fwd: spec.fwd,
            filters: FilterTable::new(spec.config.filter_capacity),
            duration: spec.config.t_long,
            flow_arrivals: HashMap::new(),
            counters: PushbackCounters::default(),
        }
    }

    /// This router's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Counter snapshot.
    pub fn counters(&self) -> PushbackCounters {
        self.counters
    }

    /// The local aggregate-filter table.
    pub fn filters(&self) -> &FilterTable {
        &self.filters
    }

    /// Flips cooperation (experiments).
    pub fn set_cooperating(&mut self, cooperating: bool) {
        self.cooperating = cooperating;
    }

    fn block_and_propagate(&mut self, flow: FlowLabel, id: u64, depth: u8, ctx: &mut Context<'_>) {
        let now = ctx.now();
        if self.filters.install(flow, now, self.duration).is_ok() {
            self.counters.filters_installed += 1;
        }
        if depth >= MAX_PUSHBACK_DEPTH {
            return;
        }
        // The contributing upstream neighbour is whoever the aggregate has
        // been arriving from.
        let key = match (flow.src_host(), flow.dst_host()) {
            (Some(s), Some(d)) => (s, d),
            _ => return,
        };
        let Some(&uplink) = self.flow_arrivals.get(&key) else {
            return;
        };
        let msg = AitfMessage::Pushback(PushbackRequest {
            id,
            flow,
            limit_bps: 0,
            duration_ns: self.duration.as_nanos(),
            depth: depth + 1,
        });
        let pkt = Packet::control(ctx.next_packet_id(), self.addr, LINK_LOCAL, msg);
        self.counters.pushback_sent += 1;
        ctx.send(uplink, pkt);
    }

    fn forward_data(&mut self, mut packet: Packet, arrival: LinkId, ctx: &mut Context<'_>) {
        let now = ctx.now();
        if packet.is_data() {
            if self.filters.matches(&packet.header, now) {
                self.counters.data_filtered_pkts += 1;
                self.counters.data_filtered_bytes += packet.size_bytes as u64;
                // Even while dropping we keep the arrival record fresh so a
                // later propagation knows where the aggregate comes from.
                self.note_arrival(&packet, arrival);
                return;
            }
            self.note_arrival(&packet, arrival);
        }
        match packet.header.ttl.checked_sub(1) {
            Some(0) | None => {
                self.counters.undeliverable += 1;
                return;
            }
            Some(ttl) => packet.header.ttl = ttl,
        }
        match self.fwd.lookup(packet.header.dst) {
            Some(&link) => {
                self.counters.data_forwarded += 1;
                ctx.send(link, packet);
            }
            None => self.counters.undeliverable += 1,
        }
    }

    fn note_arrival(&mut self, packet: &Packet, arrival: LinkId) {
        // Bounded: beyond 64k distinct pairs, stop learning new ones (old
        // pairs keep being refreshed in place).
        let key = (packet.header.src, packet.header.dst);
        if self.flow_arrivals.len() < 65_536 || self.flow_arrivals.contains_key(&key) {
            self.flow_arrivals.insert(key, arrival);
        }
    }
}

impl Node for PushbackRouter {
    fn on_packet(&mut self, packet: Packet, link: LinkId, ctx: &mut Context<'_>) {
        // Link-local pushback or a control packet addressed to me.
        if packet.header.dst == LINK_LOCAL || packet.header.dst == self.addr {
            match &packet.payload {
                PayloadKind::Aitf(AitfMessage::Pushback(p)) => {
                    self.counters.pushback_received += 1;
                    if !self.cooperating {
                        self.counters.pushback_ignored += 1;
                        return;
                    }
                    let (flow, id, depth) = (p.flow, p.id, p.depth);
                    self.block_and_propagate(flow, id, depth, ctx);
                }
                PayloadKind::Aitf(AitfMessage::FilteringRequest(req))
                    if req.dest == RequestDestination::VictimGateway =>
                {
                    // The victim's edge trigger: same input as AITF's
                    // victim's gateway, pushback semantics instead.
                    self.counters.requests_received += 1;
                    if self.cooperating {
                        let (flow, id) = (req.flow, req.id);
                        self.block_and_propagate(flow, id, 0, ctx);
                    }
                }
                _ => {}
            }
            return;
        }
        self.forward_data(packet, link, ctx);
    }

    fn subsystem(&self) -> aitf_netsim::Subsystem {
        aitf_netsim::Subsystem::RouterData
    }

    impl_node_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitf_core::{AitfConfig, HostPolicy, NetId, WorldBuilder};
    use aitf_netsim::SimDuration;
    use aitf_packet::{Protocol, TrafficClass};

    use crate::world::build_pushback_world;

    /// Minimal flood app (mirrors aitf-attack's FloodSource without the
    /// dependency, to keep the crate graph acyclic).
    struct Flood {
        target: Addr,
        period: SimDuration,
    }

    impl aitf_core::TrafficApp for Flood {
        fn on_start(&mut self, api: &mut aitf_core::HostApi<'_, '_>) {
            api.set_timer(self.period, 0);
        }

        fn on_timer(&mut self, _t: u32, api: &mut aitf_core::HostApi<'_, '_>) {
            api.send_from_self(self.target, Protocol::Udp, 80, TrafficClass::Attack, 500);
            api.set_timer(self.period, 0);
        }
    }

    fn chain_world(
        depth: usize,
        rogue_level: Option<usize>,
    ) -> (
        aitf_core::World,
        Vec<NetId>,
        Vec<NetId>,
        aitf_core::HostId,
        aitf_core::HostId,
    ) {
        let mut b = WorldBuilder::new(9, AitfConfig::default());
        let mut g_chain = Vec::new();
        let mut b_chain = Vec::new();
        for side in 0..2usize {
            let mut parent = None;
            let chain = if side == 0 {
                &mut g_chain
            } else {
                &mut b_chain
            };
            for level in (0..depth).rev() {
                let name = format!("{side}-{level}");
                let prefix = format!("10.{}.0.0/16", 1 + side * 100 + level);
                let id = b.network(&name, &prefix, parent);
                parent = Some(id);
                chain.push(id);
            }
            chain.reverse();
        }
        b.peer(
            g_chain[depth - 1],
            b_chain[depth - 1],
            WorldBuilder::default_net_link(),
        );
        if let Some(level) = rogue_level {
            b.set_router_policy(b_chain[level], aitf_core::RouterPolicy::non_cooperating());
        }
        let v = b.host(g_chain[0]);
        let a = b.host_with(
            b_chain[0],
            HostPolicy::Malicious,
            WorldBuilder::default_host_link(),
        );
        (build_pushback_world(b), g_chain, b_chain, v, a)
    }

    #[test]
    fn pushback_walks_hop_by_hop_to_the_attacker_edge() {
        let (mut w, g_chain, b_chain, v, a) = chain_world(3, None);
        let target = w.host_addr(v);
        w.add_app(
            a,
            Box::new(Flood {
                target,
                period: SimDuration::from_millis(1),
            }),
        );
        w.sim.run_for(SimDuration::from_secs(5));

        // EVERY router on the path ends up holding a filter — the paper's
        // "filtering bottleneck" contrast with AITF's 2 filters.
        let mut holding = 0;
        for &net in g_chain.iter().chain(b_chain.iter()) {
            let r = w
                .sim
                .node_ref::<PushbackRouter>(w.router_node(net))
                .expect("pushback router");
            if r.counters().filters_installed > 0 {
                holding += 1;
            }
        }
        assert_eq!(holding, 6, "all six routers hold pushback filters");

        // The flood is dead at the victim.
        let before = w.host(v).counters().rx_attack_pkts;
        w.sim.run_for(SimDuration::from_secs(2));
        assert_eq!(w.host(v).counters().rx_attack_pkts, before);
    }

    #[test]
    fn one_rogue_hop_silently_breaks_the_chain() {
        // The middle attacker-side router ignores pushback.
        let (mut w, _g, b_chain, v, a) = chain_world(3, Some(1));
        let target = w.host_addr(v);
        w.add_app(
            a,
            Box::new(Flood {
                target,
                period: SimDuration::from_millis(1),
            }),
        );
        w.sim.run_for(SimDuration::from_secs(5));

        // Nothing upstream of the rogue ever installs a filter: pushback
        // has no disconnection lever (Section V's "relies on good will").
        let edge = w
            .sim
            .node_ref::<PushbackRouter>(w.router_node(b_chain[0]))
            .unwrap();
        assert_eq!(
            edge.counters().filters_installed,
            0,
            "the attacker's edge router is never reached"
        );
        let rogue = w
            .sim
            .node_ref::<PushbackRouter>(w.router_node(b_chain[1]))
            .unwrap();
        assert!(rogue.counters().pushback_ignored > 0);
        assert_eq!(rogue.counters().filters_installed, 0);
        // The chain stalled at the first cooperating router above the
        // rogue: the flood keeps burning bandwidth on every hop below it
        // (attacker edge and the rogue keep forwarding forever), instead of
        // being cut at the source as AITF would enforce.
        assert!(
            rogue.counters().data_forwarded > 2000,
            "rogue keeps carrying the flood: {}",
            rogue.counters().data_forwarded
        );
        let top = w
            .sim
            .node_ref::<PushbackRouter>(w.router_node(b_chain[2]))
            .unwrap();
        assert!(
            top.counters().data_filtered_pkts > 2000,
            "the first cooperating hop above the rogue absorbs the flood: {}",
            top.counters().data_filtered_pkts
        );
    }

    #[test]
    fn victim_side_still_blocks_under_pushback() {
        let (mut w, _g, _b, v, a) = chain_world(2, None);
        let target = w.host_addr(v);
        w.add_app(
            a,
            Box::new(Flood {
                target,
                period: SimDuration::from_millis(1),
            }),
        );
        w.sim.run_for(SimDuration::from_secs(3));
        let c = w.host(v).counters();
        assert!(c.rx_attack_pkts < 400, "victim leak {}", c.rx_attack_pkts);
        assert!(c.requests_sent >= 1);
    }
}
