//! Pushback baseline: hop-by-hop aggregate blocking (\[MBF+01\]).
//!
//! Section V of the AITF paper contrasts AITF with Mahajan et al.'s
//! *pushback*: *"A pushback request is propagated hop by hop by the victim
//! towards the attacker. In contrast, the propagation of an AITF filtering
//! request involves only 4 nodes ... A pushback request does not force the
//! recipient router to rate-limit the problematic aggregate; it relies on
//! its good will."*
//!
//! This crate re-implements that baseline faithfully enough to compare:
//!
//! - the victim's gateway turns a victim filtering request into a local
//!   block plus a [`aitf_packet::PushbackRequest`] to the adjacent
//!   *upstream* router the aggregate arrives from;
//! - each recipient blocks locally and recursively propagates upstream,
//!   one hop at a time, until the attacker's edge is reached;
//! - every router on the path therefore holds a filter (the "filtering
//!   bottleneck" of Section I), and one non-cooperating hop silently
//!   breaks the chain upstream of it — there is no disconnection lever.
//!
//! The rate limit is configured to 0 bps (drop) so effectiveness is
//! directly comparable with AITF's blocking.

pub mod router;
pub mod world;

pub use router::{PushbackCounters, PushbackRouter};
pub use world::build_pushback_world;
