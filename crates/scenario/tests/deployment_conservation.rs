//! Request conservation under random partial deployment.
//!
//! The deployment-aware escalation paths reroute filtering requests
//! around legacy providers; whatever subset of the networks drops out of
//! AITF, no request may simply *vanish*. Every border router accounts
//! each received request in exactly one bucket:
//!
//! ```text
//! received == policed + ignored + invalid + refreshed
//!           + unsatisfiable + accepted
//! ```
//!
//! (`accepted` covers "work committed": temporary filter installed on the
//! victim side, verification handshake started, or long filter installed
//! on the attacker side. The identity is **exact at any table capacity**:
//! a request whose handshake was accepted but whose deferred
//! handshake-confirm install then hits a full table stays `accepted` and
//! is tallied in the separate non-identity `deferred_unsatisfied`
//! counter, never double-counted into `unsatisfiable`.)
//!
//! The proptest drives a two-level provider tree with every one of the
//! 2^8 legacy/AITF subsets reachable from the random mask — including
//! worlds where the victim's own gateway, the hub, or the whole attacker
//! side is legacy — and checks the identity at every router after the
//! flood has provoked detection, escalation and (where possible)
//! filtering.

use aitf_core::{AitfConfig, HostPolicy, NetId};
use aitf_netsim::SimDuration;
use aitf_scenario::{
    DeploymentSpec, HostSel, Role, Scenario, TargetSel, TopologySpec, TrafficSpec,
};
use proptest::prelude::*;

/// The test world: hub + victim_net + 2 mid providers + 4 leaf networks,
/// one zombie per leaf.
fn topology() -> TopologySpec {
    TopologySpec::tree(2, 2, 1, HostPolicy::Malicious, 10_000_000)
}

proptest! {
    #[test]
    fn random_legacy_subsets_never_lose_a_request(mask in 0u32..256) {
        let topo = topology();
        let legacy: Vec<String> = topo
            .nets
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, n)| n.name.clone())
            .collect();
        let scenario = Scenario::new(topo)
            .config(AitfConfig::default())
            .deployment(DeploymentSpec::legacy_nets(legacy))
            .duration(SimDuration::from_secs(2))
            .traffic(TrafficSpec::flood(
                HostSel::Role(Role::Attacker),
                TargetSel::Victim,
                200,
                400,
            ));
        // The escape hatch: run by hand so the raw router counters stay
        // inspectable after the horizon.
        let mut world = scenario.build(7);
        world.world.sim.run_for(SimDuration::from_secs(2));

        let net_count = world.world.net_count();
        let mut total_received = 0u64;
        for i in 0..net_count {
            let c = world.world.router(NetId(i)).counters();
            total_received += c.requests_received;
            let accounted = c.requests_policed
                + c.requests_ignored
                + c.requests_invalid
                + c.requests_refreshed
                + c.requests_unsatisfiable
                + c.requests_accepted;
            prop_assert_eq!(
                c.requests_received,
                accounted,
                "router {} lost a request under legacy mask {:#010b}: {:?}",
                i,
                mask,
                c
            );
        }
        // Non-triviality: the victim always detects the flood and asks
        // its gateway, and that request is received (and then accounted
        // above) whether or not the gateway runs AITF.
        let victim = world.victim();
        prop_assert!(world.world.host(victim).counters().requests_sent >= 1);
        prop_assert!(total_received >= 1, "mask {:#010b}", mask);
    }
}

/// The regression the identity used to have: a starved filter table makes
/// the *deferred* handshake-confirm install fail with TableFull. That
/// request was already counted `accepted` when its handshake started, so
/// it must land in `deferred_unsatisfied` — not `unsatisfiable` — and the
/// identity must stay strict.
#[test]
fn full_tables_on_the_deferred_confirm_path_keep_the_identity_strict() {
    let cfg = AitfConfig {
        // One slot per router. With every attacker-side net below legacy,
        // all four flows' requests target the hub; the first confirmed
        // handshake's long filter holds the hub's only slot for T, and
        // every later confirm (of a flow retried via fast_redetect once
        // the victim gateway's temp slot frees) hits TableFull on the
        // deferred path.
        filter_capacity: 1,
        ..AitfConfig::default()
    };
    let topo = topology();
    let legacy: Vec<String> = topo
        .nets
        .iter()
        .filter(|n| n.name != "hub" && n.name != "victim_net")
        .map(|n| n.name.clone())
        .collect();
    let scenario = Scenario::new(topo)
        .config(cfg)
        .deployment(DeploymentSpec::legacy_nets(legacy))
        .duration(SimDuration::from_secs(4))
        .traffic(TrafficSpec::flood(
            HostSel::Role(Role::Attacker),
            TargetSel::Victim,
            200,
            400,
        ));
    let mut world = scenario.build(7);
    world.world.sim.run_for(SimDuration::from_secs(4));

    let mut total_received = 0u64;
    let mut total_deferred = 0u64;
    let mut total_confirmed = 0u64;
    for i in 0..world.world.net_count() {
        let c = world.world.router(NetId(i)).counters();
        total_received += c.requests_received;
        total_deferred += c.deferred_unsatisfied;
        total_confirmed += c.handshakes_confirmed;
        let accounted = c.requests_policed
            + c.requests_ignored
            + c.requests_invalid
            + c.requests_refreshed
            + c.requests_unsatisfiable
            + c.requests_accepted;
        assert_eq!(
            c.requests_received, accounted,
            "router {i} broke the identity under capacity 1: {c:?}"
        );
    }
    assert!(total_received >= 1);
    // Non-triviality: the starved tables actually exercised the deferred
    // TableFull path this test exists for.
    assert!(
        total_confirmed >= 1,
        "no handshake ever confirmed; the deferred path never ran"
    );
    assert!(
        total_deferred >= 1,
        "capacity 1 never starved a deferred confirm; the regression path \
         went unexercised"
    );
}
