//! Request conservation under random partial deployment.
//!
//! The deployment-aware escalation paths reroute filtering requests
//! around legacy providers; whatever subset of the networks drops out of
//! AITF, no request may simply *vanish*. Every border router accounts
//! each received request in exactly one bucket:
//!
//! ```text
//! received == policed + ignored + invalid + refreshed
//!           + unsatisfiable + accepted
//! ```
//!
//! (`accepted` covers "work committed": temporary filter installed on the
//! victim side, verification handshake started, or long filter installed
//! on the attacker side. With verification on and ample table capacity —
//! this test's configuration — the identity is exact; a full table on the
//! deferred handshake-confirm path would count one request as both
//! accepted and unsatisfiable, which is over-, never under-accounting.)
//!
//! The proptest drives a two-level provider tree with every one of the
//! 2^8 legacy/AITF subsets reachable from the random mask — including
//! worlds where the victim's own gateway, the hub, or the whole attacker
//! side is legacy — and checks the identity at every router after the
//! flood has provoked detection, escalation and (where possible)
//! filtering.

use aitf_core::{AitfConfig, HostPolicy, NetId};
use aitf_netsim::SimDuration;
use aitf_scenario::{
    DeploymentSpec, HostSel, Role, Scenario, TargetSel, TopologySpec, TrafficSpec,
};
use proptest::prelude::*;

/// The test world: hub + victim_net + 2 mid providers + 4 leaf networks,
/// one zombie per leaf.
fn topology() -> TopologySpec {
    TopologySpec::tree(2, 2, 1, HostPolicy::Malicious, 10_000_000)
}

proptest! {
    #[test]
    fn random_legacy_subsets_never_lose_a_request(mask in 0u32..256) {
        let topo = topology();
        let legacy: Vec<String> = topo
            .nets
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, n)| n.name.clone())
            .collect();
        let scenario = Scenario::new(topo)
            .config(AitfConfig::default())
            .deployment(DeploymentSpec::legacy_nets(legacy))
            .duration(SimDuration::from_secs(2))
            .traffic(TrafficSpec::flood(
                HostSel::Role(Role::Attacker),
                TargetSel::Victim,
                200,
                400,
            ));
        // The escape hatch: run by hand so the raw router counters stay
        // inspectable after the horizon.
        let mut world = scenario.build(7);
        world.world.sim.run_for(SimDuration::from_secs(2));

        let net_count = world.world.net_count();
        let mut total_received = 0u64;
        for i in 0..net_count {
            let c = world.world.router(NetId(i)).counters();
            total_received += c.requests_received;
            let accounted = c.requests_policed
                + c.requests_ignored
                + c.requests_invalid
                + c.requests_refreshed
                + c.requests_unsatisfiable
                + c.requests_accepted;
            prop_assert_eq!(
                c.requests_received,
                accounted,
                "router {} lost a request under legacy mask {:#010b}: {:?}",
                i,
                mask,
                c
            );
        }
        // Non-triviality: the victim always detects the flood and asks
        // its gateway, and that request is received (and then accounted
        // above) whether or not the gateway runs AITF.
        let victim = world.victim();
        prop_assert!(world.world.host(victim).counters().requests_sent >= 1);
        prop_assert!(total_received >= 1, "mask {:#010b}", mask);
    }
}
