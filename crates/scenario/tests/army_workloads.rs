//! End-to-end workload behaviour on star topologies: flood armies congest
//! the victim's tail circuit, AITF rescues it, and staggered starts spread
//! the detections — the cross-crate tests that used to live next to
//! `aitf_attack::army`, now expressed through the declarative API.

use aitf_core::HostPolicy;
use aitf_netsim::SimDuration;
use aitf_scenario::{
    HostSel, ProbeSet, Role, Scenario, Side, TargetSel, TopologySpec, TrafficSpec,
};

#[test]
fn army_floods_congest_then_aitf_rescues() {
    // 8 nets × 2 zombies × 500 pps × 500 B = 32 Mbit/s against a
    // 10 Mbit/s victim tail circuit.
    let scenario = Scenario::new(TopologySpec::star(8, 2, HostPolicy::Malicious, 10_000_000))
        .duration(SimDuration::from_secs(5))
        .traffic(TrafficSpec::flood(
            HostSel::Role(Role::Attacker),
            TargetSel::Victim,
            500,
            500,
        ));
    let mut w = scenario.build(11);
    w.world.sim.run_for(SimDuration::from_secs(5));
    // Every zombie flow must have been detected and requested.
    let detections = w.world.host(w.victim()).counters().detections;
    assert!(
        detections >= 16,
        "all 16 zombie flows should be detected, got {detections}"
    );
    // The zombie gateways hold long filters (or disconnected clients).
    let mut filters = 0u64;
    let mut disconnects = 0u64;
    for net in w.nets_on(Side::Attacker) {
        let c = w.world.router(net).counters();
        filters += c.filters_installed;
        disconnects += c.disconnects_client;
    }
    assert!(
        filters >= 16,
        "attacker gateways must hold the filters: {filters}"
    );
    assert_eq!(disconnects, 16, "malicious zombies get disconnected");
    // The attack is dead: no new attack bytes arrive late in the run.
    let before = w.world.host(w.victim()).counters().rx_attack_bytes;
    w.world.sim.run_for(SimDuration::from_secs(2));
    let after = w.world.host(w.victim()).counters().rx_attack_bytes;
    assert_eq!(before, after, "flood must stay quenched");
}

#[test]
fn staggered_start_spreads_requests() {
    let scenario = Scenario::new(TopologySpec::star(4, 1, HostPolicy::Malicious, 10_000_000))
        .traffic(
            TrafficSpec::flood(HostSel::Role(Role::Attacker), TargetSel::Victim, 200, 500)
                .staggered(SimDuration::from_millis(500)),
        );
    let mut w = scenario.build(12);
    // After 0.7 s only the first two zombies have fired.
    w.world.sim.run_for(SimDuration::from_millis(700));
    let d = w.world.host(w.victim()).counters().detections;
    assert!(d <= 2, "detections too early: {d}");
    w.world.sim.run_for(SimDuration::from_secs(3));
    assert_eq!(w.world.host(w.victim()).counters().detections, 4);
}

#[test]
fn probes_summarise_the_rescue() {
    // The same scenario through the declarative run path: standard probes
    // quantify what the imperative assertions above check by hand.
    let outcome = Scenario::new(TopologySpec::star(4, 2, HostPolicy::Malicious, 10_000_000))
        .duration(SimDuration::from_secs(5))
        .traffic(TrafficSpec::flood(
            HostSel::Role(Role::Attacker),
            TargetSel::Victim,
            500,
            500,
        ))
        .probes(
            ProbeSet::new()
                .leak_ratio("leak_r")
                .filters_installed_on("blocked", Side::Attacker),
        )
        .run(11);
    assert!(outcome.metrics.f64("leak_r") < 0.25);
    assert!(outcome.metrics.u64("blocked") >= 8);
    assert!(outcome.events > 0);
}
