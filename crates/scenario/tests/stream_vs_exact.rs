//! Streaming aggregates vs exact materialized aggregates.
//!
//! The streaming probes trade a `HashMap<key, count>` (memory ∝ distinct
//! flows) for a [`CountMinSketch`] + [`TopK`] (memory ∝ parameters) and a
//! full value vector for a [`Reservoir`]. That trade is only sound inside
//! the sketch's published contract, which these proptests pin at small
//! scale where the exact answer is cheap to materialize:
//!
//! - count-min estimates are one-sided: `exact ≤ estimate` always, and
//!   `estimate ≤ exact + ε·total` with `ε = e/width` (the classic bound;
//!   our seeds are fixed, so a violation is a code bug, not bad luck);
//! - the heavy-hitter *ranking* matches the exact ranking whenever the
//!   count gap between the k-th and (k+1)-th key exceeds the error bound
//!   — the regime every E20-style experiment is parameterized into;
//! - a reservoir below capacity **is** the exact value stream, so its
//!   mean/quantiles equal the materialized ones bit-for-bit.

use std::collections::HashMap;

use aitf_scenario::stream::{CountMinSketch, Reservoir, TopK};
use proptest::prelude::*;

/// Zipf-ish synthetic flow stream: `n_keys` keys where key `i` gets
/// `base >> min(i, 20)` packets — a heavy tail with well-separated head
/// counts (each head key has 2× its successor, far above sketch error).
fn skewed_stream(n_keys: u64, base: u64, salt: u64) -> Vec<(u64, u64)> {
    (0..n_keys)
        .map(|i| (splitmix_key(i, salt), base >> i.min(20)))
        .filter(|&(_, c)| c > 0)
        .collect()
}

/// Spreads key ids over the u64 space so slot indices are not simply
/// sequential (sequential keys would under-stress the row hashing).
fn splitmix_key(i: u64, salt: u64) -> u64 {
    aitf_engine::splitmix(i ^ (salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

proptest! {
    #[test]
    fn count_min_brackets_the_exact_counts(seed in 0u64..1_000_000, n_keys in 1u64..200) {
        let stream = skewed_stream(n_keys, 1 << 16, seed);
        let mut cms = CountMinSketch::new(1024, 4, seed);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for &(key, count) in &stream {
            cms.add(key, count);
            *exact.entry(key).or_default() += count;
        }
        let total: u64 = exact.values().sum();
        prop_assert_eq!(cms.total(), total);
        // ε·N with ε = e/width; width is rounded to a power of two, so
        // recompute from the sketch itself.
        let bound = (std::f64::consts::E / cms.width() as f64 * total as f64).ceil() as u64;
        for (&key, &true_count) in &exact {
            let est = cms.estimate(key);
            prop_assert!(est >= true_count, "underestimate for {}: {} < {}", key, est, true_count);
            prop_assert!(
                est <= true_count + bound,
                "estimate {} exceeds {} + bound {}",
                est, true_count, bound
            );
        }
    }

    #[test]
    fn heavy_hitter_ranking_matches_exact_ranking(seed in 0u64..1_000_000) {
        // 64 keys, counts 2^16, 2^15, …: the top-8 gaps are thousands of
        // packets while the sketch error on a 1024-wide sketch over
        // ~131k total is far smaller, so the rankings must be identical.
        let stream = skewed_stream(64, 1 << 16, seed);
        let mut cms = CountMinSketch::new(1024, 4, seed);
        let mut top = TopK::new(8);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for &(key, count) in &stream {
            cms.add(key, count);
            top.offer(key, cms.estimate(key));
            *exact.entry(key).or_default() += count;
        }
        let mut truth: Vec<(u64, u64)> = exact.into_iter().collect();
        truth.sort_by_key(|&(key, count)| (std::cmp::Reverse(count), key));
        truth.truncate(8);
        let ranked = top.ranked();
        let ranked_keys: Vec<u64> = ranked.iter().map(|&(k, _)| k).collect();
        let truth_keys: Vec<u64> = truth.iter().map(|&(k, _)| k).collect();
        prop_assert_eq!(ranked_keys, truth_keys, "heavy-hitter ranking diverged");
        for (&(_, est), &(_, true_count)) in ranked.iter().zip(&truth) {
            prop_assert!(est >= true_count, "ranked estimate below truth");
        }
    }

    #[test]
    fn reservoir_below_capacity_is_exact(seed in 0u64..1_000_000, n in 1usize..256) {
        let mut r = Reservoir::new(256, seed);
        let values: Vec<f64> = (0..n).map(|i| (splitmix_key(i as u64, seed) % 1000) as f64).collect();
        for &v in &values {
            r.offer(v);
        }
        prop_assert_eq!(r.len(), n);
        let exact_mean = values.iter().sum::<f64>() / n as f64;
        prop_assert_eq!(r.mean(), exact_mean, "sub-capacity reservoir must be the exact stream");
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(r.quantile(0.0), sorted[0]);
        prop_assert_eq!(r.quantile(1.0), sorted[n - 1]);
    }

    #[test]
    fn reservoir_over_capacity_stays_in_range_and_roughly_centered(seed in 0u64..1_000_000) {
        let mut r = Reservoir::new(128, seed);
        for i in 0..50_000u64 {
            r.offer((i % 1000) as f64);
        }
        prop_assert_eq!(r.len(), 128);
        prop_assert_eq!(r.seen(), 50_000);
        // Every sample must be a genuinely offered value, and a uniform
        // sample of a uniform stream cannot be stuck on a prefix.
        let med = r.quantile(0.5);
        prop_assert!((0.0..=999.0).contains(&med));
        prop_assert!((150.0..850.0).contains(&med), "median {} wildly off-center", med);
    }
}
