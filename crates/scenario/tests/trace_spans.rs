//! Span cause-chain regression for one full escalation (trace builds only).
//!
//! Runs the paper's Figure 1 world — a malicious flood with every
//! attacker-side gateway non-cooperating, so escalation walks the whole
//! ladder — and pins the recorded span tree: each escalation round opens a
//! `Round` span with the right cause (`detection` for round 1, escalation
//! or temp-filter expiry afterwards), the handshake and filter spans
//! parent under their round even though they happen on *different
//! routers*, and the chain terminates in a disconnect.

#![cfg(feature = "trace")]

use aitf_core::{HostPolicy, RouterPolicy};
use aitf_netsim::SimDuration;
use aitf_scenario::{HostSel, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};
use aitf_trace::{Cause, SpanKind, SpanRecord};

fn fig1_spans() -> Vec<SpanRecord> {
    // The attacker's own gateway shirks, so round 1's request is ignored,
    // the temporary filter expires, and the ladder climbs to round 2 where
    // the next gateway up (B_isp) cooperates: handshake, long filter, and
    // the policing disconnect of the shirking client below it.
    let mut topo = TopologySpec::fig1(HostPolicy::Malicious);
    topo.set_net_policy("B_net", RouterPolicy::non_cooperating());
    let scenario = Scenario::new(topo)
        .duration(SimDuration::from_secs(8))
        .traffic(TrafficSpec::flood(
            HostSel::Role(Role::Attacker),
            TargetSel::Victim,
            1000,
            500,
        ));
    let outcome = scenario.run(42);
    outcome
        .trace
        .expect("trace feature is on; every outcome carries a report")
        .spans
        .clone()
}

fn find(spans: &[SpanRecord], kind: SpanKind, cause: Cause, round: u8) -> Option<&SpanRecord> {
    spans
        .iter()
        .find(|s| s.kind == kind && s.cause == cause && s.round == round)
}

#[test]
fn one_full_escalation_pins_its_parent_and_cause_chain() {
    let spans = fig1_spans();
    assert!(!spans.is_empty(), "a traced escalation must record spans");

    // Every span is closed (run finished) and well-formed.
    for s in &spans {
        assert!(s.end_ns >= s.start_ns, "open or time-reversed span: {s:?}");
    }

    // Round 1 exists, caused by detection, and is a root span.
    let r1 = find(&spans, SpanKind::Round, Cause::Detection, 1)
        .expect("round 1 opens on the victim's gateway after detection");
    assert_eq!(r1.parent, None, "rounds are roots of the cause chain");

    // Work committed in round 1: the victim-side temporary filter, a
    // child of the round on the same router. (No handshake yet — the
    // shirking B_net gateway ignores the round-1 request.)
    let tmp = find(&spans, SpanKind::TempFilter, Cause::Protocol, 1)
        .expect("temporary filter installs in round 1");
    assert_eq!(tmp.parent, Some(r1.id));
    assert_eq!(tmp.router, r1.router, "temp filter is victim-gateway work");

    // The attack outlives round 1, so round 2 opens — via escalation or
    // temp-filter expiry — and the virtual-time clock orders it strictly
    // after round 1 began.
    let r2 = spans
        .iter()
        .find(|s| {
            s.kind == SpanKind::Round
                && s.round == 2
                && matches!(s.cause, Cause::Escalated | Cause::TempFilterExpired)
        })
        .expect("the flood escalates to round 2");
    assert_eq!(r2.parent, None, "rounds are roots of the cause chain");
    assert_eq!(r2.flow, r1.flow);
    assert!(r2.start_ns > r1.start_ns, "rounds advance in virtual time");

    // Round 2's verification handshake parents under a round-2 Round span
    // — and runs on a *different router* (the attacker-side gateway; the
    // round opened victim-side), which is exactly what the shared world
    // tracer exists for.
    let hs = find(&spans, SpanKind::Handshake, Cause::Protocol, 2)
        .expect("verification handshake inside round 2");
    let hs_round = spans
        .iter()
        .find(|s| Some(s.id) == hs.parent)
        .expect("handshake parents under a span");
    assert_eq!(hs_round.kind, SpanKind::Round);
    assert_eq!(hs_round.round, 2);
    assert_eq!(hs.flow, hs_round.flow, "same escalation, same flow key");
    assert_ne!(
        hs.router, hs_round.router,
        "handshake happens on the attacker side, round opened on the victim side"
    );

    // The confirmed handshake commits the attacker-side long filter,
    // parented under the same round-2 span.
    let long = find(&spans, SpanKind::LongFilter, Cause::HandshakeConfirmed, 2)
        .expect("long filter installs once the handshake confirms");
    assert_eq!(long.parent, Some(hs_round.id));
    assert_eq!(long.router, hs.router, "long filter is attacker-side work");

    // The ladder terminates: the shirking client below gets disconnected.
    let disc = spans
        .iter()
        .find(|s| s.kind == SpanKind::Disconnect)
        .expect("Figure 1's endgame with a shirking gateway is a disconnection");
    assert!(disc.round >= 2, "disconnection only after escalation");

    // Determinism: span records are virtual-time data, so a second run of
    // the same seed reproduces the tree exactly.
    assert_eq!(spans, fig1_spans());
}
